//! `ntv` — command-line front end for the near-threshold variation
//! toolkit.
//!
//! ```text
//! ntv drop      <node> <vdd>        variation-induced performance drop
//! ntv spares    <node> <vdd>        structural-duplication solution
//! ntv margin    <node> <vdd>        voltage-margining solution
//! ntv plan      <node> <vdd>        combined design-space exploration
//! ntv quantile  <node> <vdd>        exact chip-delay quantile (analytic)
//! ntv yield     <node> <vdd> <ns>   timing yield at a clock period
//! ntv sensitivity <node> <vdd>      variance decomposition by source
//! ntv info      <node>              device-model summary
//! ntv serve                         long-running HTTP query service
//! ```
//!
//! Nodes: `90nm`, `45nm`, `32nm`, `22nm`. Voltages in volts (e.g. `0.55`).
//! `--threads N` anywhere on the command line sets the worker count
//! (default: all hardware threads; results are identical for any value).
//! `margin`, `plan` and `quantile` accept `--json`, emitting the same
//! byte-stable result objects the `ntv serve` HTTP endpoint returns (one
//! serialization path — see `ntv_serve::wire`).

use std::process::ExitCode;

use ntv_simd::core::dse::DseStudy;
use ntv_simd::core::duplication::DuplicationStudy;
use ntv_simd::core::margining::MarginStudy;
use ntv_simd::core::perf;
use ntv_simd::core::sensitivity;
use ntv_simd::core::yield_model::YieldStudy;
use ntv_simd::core::{DatapathConfig, DatapathEngine, Executor};
use ntv_simd::device::energy::EnergyModel;
use ntv_simd::device::{Corner, TechModel, TechNode};
use ntv_simd::serve::wire::{self, Query};
use ntv_simd::serve::{serve, ServeConfig};
use ntv_simd::units::Volts;

const SAMPLES: usize = 5_000;
const SEED: u64 = 2012;

fn usage() -> ExitCode {
    eprintln!(
        "usage: ntv <command> <node> [args] [--threads N]\n\
         commands:\n  \
         drop <node> <vdd>          performance drop vs nominal\n  \
         spares <node> <vdd>        duplication solution (Table 1 cell)\n  \
         margin <node> <vdd>        margining solution (Table 2 cell)\n  \
         plan <node> <vdd>          combined exploration (Table 3 style)\n  \
         quantile <node> <vdd>      exact chip-delay quantile [--q P] [--spares N]\n  \
         yield <node> <vdd> <ns>    timing yield at a clock period\n  \
         sensitivity <node> <vdd>   variance decomposition by source\n  \
         info <node>                device-model summary\n  \
         serve                      HTTP query service [--addr A] [--workers N]\n                             \
         [--cache-bound N] [--mc-capacity N]\n\
         nodes: 90nm | 45nm | 32nm | 22nm\n\
         margin | plan | quantile accept --json (the serve wire format)"
    );
    ExitCode::FAILURE
}

/// Strip a `--threads N` pair out of `args`, returning the executor.
fn take_executor(args: &mut Vec<String>) -> Result<Executor, ExitCode> {
    let Some(flag) = args.iter().position(|a| a == "--threads") else {
        return Ok(Executor::default());
    };
    let threads = args
        .get(flag + 1)
        .and_then(|v| v.parse::<usize>().ok())
        .ok_or_else(|| {
            eprintln!("--threads expects a positive integer");
            ExitCode::FAILURE
        })?;
    args.drain(flag..=flag + 1);
    Ok(Executor::new(threads))
}

/// Strip a boolean `--flag` out of `args`, reporting whether it was there.
fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == name) {
        args.remove(i);
        true
    } else {
        false
    }
}

/// Strip a `--name VALUE` pair out of `args` and parse the value.
fn take_value<T: std::str::FromStr>(
    args: &mut Vec<String>,
    name: &str,
) -> Result<Option<T>, ExitCode> {
    let Some(flag) = args.iter().position(|a| a == name) else {
        return Ok(None);
    };
    let parsed = args.get(flag + 1).and_then(|v| v.parse::<T>().ok());
    match parsed {
        Some(value) => {
            args.drain(flag..=flag + 1);
            Ok(Some(value))
        }
        None => {
            eprintln!("{name} expects a value");
            Err(ExitCode::FAILURE)
        }
    }
}

fn parse_node(s: &str) -> Result<TechNode, ExitCode> {
    s.parse().map_err(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })
}

fn parse_vdd(s: &str) -> Result<f64, ExitCode> {
    match s.parse::<f64>() {
        Ok(v) if (0.3..=1.2).contains(&v) => Ok(v),
        _ => {
            eprintln!("invalid supply voltage `{s}` (expected volts, 0.3..=1.2)");
            Err(ExitCode::FAILURE)
        }
    }
}

/// `ntv serve`: bind the HTTP query service and block in the foreground.
fn cmd_serve(mut args: Vec<String>) -> ExitCode {
    let mut config = ServeConfig {
        addr: "127.0.0.1:7341".to_string(),
        ..ServeConfig::default()
    };
    match (
        take_value::<String>(&mut args, "--addr"),
        take_value::<usize>(&mut args, "--workers"),
        take_value::<usize>(&mut args, "--cache-bound"),
        take_value::<usize>(&mut args, "--mc-capacity"),
    ) {
        (Ok(addr), Ok(workers), Ok(bound), Ok(mc)) => {
            if let Some(addr) = addr {
                config.addr = addr;
            }
            if let Some(workers) = workers {
                config.workers = workers;
            }
            if let Some(bound) = bound {
                // 0 over the CLI means "unbounded".
                config.cache_bound = (bound > 0).then_some(bound);
            }
            if let Some(mc) = mc {
                config.mc_capacity = mc;
            }
        }
        _ => return ExitCode::FAILURE,
    }
    if args.len() > 1 {
        eprintln!("serve: unexpected arguments {:?}", &args[1..]);
        return ExitCode::FAILURE;
    }
    match serve(&config) {
        Ok(handle) => {
            println!("ntv-serve listening on http://{}", handle.addr());
            handle.wait();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: cannot bind {}: {e}", config.addr);
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let exec = match take_executor(&mut args) {
        Ok(e) => e,
        Err(code) => return code,
    };
    let json = take_flag(&mut args, "--json");
    let Some(command) = args.first().cloned() else {
        return usage();
    };
    if command == "serve" {
        return cmd_serve(args);
    }
    let (q_level, spares) = match (
        take_value::<f64>(&mut args, "--q"),
        take_value::<u32>(&mut args, "--spares"),
    ) {
        (Ok(q), Ok(s)) => (q.unwrap_or(0.99), s.unwrap_or(0)),
        _ => return ExitCode::FAILURE,
    };

    match (command.as_str(), args.get(1), args.get(2), args.get(3)) {
        ("info", Some(node), None, None) => {
            let node = match parse_node(node) {
                Ok(n) => n,
                Err(e) => return e,
            };
            let tech = TechModel::new(node);
            let p = tech.params();
            println!("{node}: nominal {}, Vth0 {}", p.vdd_nominal, p.vth0);
            println!(
                "  FO4 delay: {:.1} ps @nominal, {:.1} ps @0.5 V",
                tech.fo4_delay_ps(p.vdd_nominal),
                tech.fo4_delay_ps(Volts(0.5))
            );
            println!(
                "  sigma(Vth): {:.1} mV random, {:.1} mV systematic; sigma(ln k): {:.3} / {:.3}",
                p.sigma_vth_random.get() * 1000.0,
                p.sigma_vth_systematic.get() * 1000.0,
                p.sigma_k_random,
                p.sigma_k_systematic
            );
            for corner in Corner::ALL {
                println!(
                    "  {corner}: {:+.1}% delay @0.5 V",
                    corner.slowdown(&tech, Volts(0.5)) * 100.0
                );
            }
            let e = EnergyModel::new(&tech);
            let min = e.minimum_energy_point();
            println!(
                "  minimum energy: {:.1} fJ/op at {:.2} V",
                min.total_fj,
                min.vdd.get()
            );
            ExitCode::SUCCESS
        }
        ("drop", Some(node), Some(vdd), None) => {
            let (node, vdd) = match (parse_node(node), parse_vdd(vdd)) {
                (Ok(n), Ok(v)) => (n, v),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            let tech = TechModel::new(node);
            let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
            let p = perf::performance_drop(&engine, Volts(vdd), SAMPLES, SEED, exec);
            println!(
                "{node} @{vdd} V: q99 = {:.2} FO4, drop vs nominal = {:.1}%",
                p.q99_fo4,
                p.drop * 100.0
            );
            ExitCode::SUCCESS
        }
        ("spares", Some(node), Some(vdd), None) => {
            let (node, vdd) = match (parse_node(node), parse_vdd(vdd)) {
                (Ok(n), Ok(v)) => (n, v),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            let tech = TechModel::new(node);
            let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
            match DuplicationStudy::new(&engine).with_executor(exec).solve(
                Volts(vdd),
                128,
                SAMPLES,
                SEED,
            ) {
                Ok(sol) => println!(
                    "{node} @{vdd} V: {} spares ({:.1}% area, {:.2}% power)",
                    sol.spares,
                    sol.area_overhead * 100.0,
                    sol.power_overhead * 100.0
                ),
                Err(e) => println!("{node} @{vdd} V: {e}"),
            }
            ExitCode::SUCCESS
        }
        ("margin", Some(node), Some(vdd), None) => {
            let (node, vdd) = match (parse_node(node), parse_vdd(vdd)) {
                (Ok(n), Ok(v)) => (n, v),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            let tech = TechModel::new(node);
            let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
            let sol =
                MarginStudy::new(&engine)
                    .with_executor(exec)
                    .solve(Volts(vdd), SAMPLES, SEED);
            if json {
                println!("{}", wire::render_margin(node, engine.mode(), &sol));
            } else {
                println!(
                    "{node} @{vdd} V: +{:.1} mV margin ({:.2}% power), target {:.3} ns",
                    sol.margin.get() * 1000.0,
                    sol.power_overhead * 100.0,
                    sol.target_ns
                );
            }
            ExitCode::SUCCESS
        }
        ("plan", Some(node), Some(vdd), None) => {
            let (node, vdd) = match (parse_node(node), parse_vdd(vdd)) {
                (Ok(n), Ok(v)) => (n, v),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            let tech = TechModel::new(node);
            let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
            let dse = DseStudy::new(&engine).with_executor(exec);
            let choices = dse.explore(Volts(vdd), &[0, 1, 2, 4, 8, 16, 26], SAMPLES, SEED);
            if json {
                println!(
                    "{}",
                    wire::render_dse(node, engine.mode(), Volts(vdd), &choices)
                );
                return ExitCode::SUCCESS;
            }
            for c in &choices {
                println!(
                    "  {:>2} spares + {:>5.1} mV -> {:.2}% power",
                    c.spares,
                    c.margin.get() * 1000.0,
                    c.power_overhead * 100.0
                );
            }
            let best = DseStudy::best(&choices);
            println!(
                "best: {} spares + {:.1} mV ({:.2}% power)",
                best.spares,
                best.margin.get() * 1000.0,
                best.power_overhead * 100.0
            );
            ExitCode::SUCCESS
        }
        ("quantile", Some(node), Some(vdd), None) => {
            let (node, vdd) = match (parse_node(node), parse_vdd(vdd)) {
                (Ok(n), Ok(v)) => (n, v),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            if !(0.0..1.0).contains(&q_level) || q_level == 0.0 {
                eprintln!("--q expects a quantile level in (0, 1)");
                return ExitCode::FAILURE;
            }
            // The CLI goes through the same query object the HTTP service
            // executes, so `--json` output is the serve wire format by
            // construction.
            let query = Query::Quantile {
                node,
                mode: Default::default(),
                vdd: Volts(vdd),
                q: q_level,
                spares,
            };
            let body = query.run(&exec);
            if json {
                println!("{body}");
            } else {
                let engine = wire::paper_engine(node, Default::default());
                let solver = ntv_simd::core::ChipQuantileSolver::new(engine);
                let fo4 = solver.spares_quantile_fo4(Volts(vdd), spares, q_level);
                let ns = fo4 * engine.fo4_unit_ps(Volts(vdd)) / 1000.0;
                println!(
                    "{node} @{vdd} V: q{:.4} = {fo4:.2} FO4 ({ns:.3} ns) with {spares} spares",
                    q_level * 100.0
                );
            }
            ExitCode::SUCCESS
        }
        ("yield", Some(node), Some(vdd), Some(t_clk)) => {
            let (node, vdd) = match (parse_node(node), parse_vdd(vdd)) {
                (Ok(n), Ok(v)) => (n, v),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            let Ok(t_clk_ns) = t_clk.parse::<f64>() else {
                eprintln!("invalid clock period `{t_clk}` (expected ns)");
                return ExitCode::FAILURE;
            };
            let tech = TechModel::new(node);
            let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
            let study = YieldStudy::new(&engine).with_executor(exec);
            let y = study.timing_yield(Volts(vdd), t_clk_ns, SAMPLES, SEED);
            let q99 = study.period_for_yield(Volts(vdd), 0.99, SAMPLES, SEED);
            println!(
                "{node} @{vdd} V: yield {:.2}% at {t_clk_ns} ns (99% yield needs {:.3} ns)",
                y * 100.0,
                q99
            );
            ExitCode::SUCCESS
        }
        ("sensitivity", Some(node), Some(vdd), None) => {
            let (node, vdd) = match (parse_node(node), parse_vdd(vdd)) {
                (Ok(n), Ok(v)) => (n, v),
                (Err(e), _) | (_, Err(e)) => return e,
            };
            let tech = TechModel::new(node);
            let report = sensitivity::decompose(
                &tech,
                DatapathConfig::paper_default(),
                Volts(vdd),
                SAMPLES,
                SEED,
                exec,
            );
            print!("{report}");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
