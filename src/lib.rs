#![warn(missing_docs)]
// Tests assert exact golden values; strict float equality is the point there.
#![cfg_attr(test, allow(clippy::float_cmp))]

//! # ntv-simd
//!
//! A reproduction of **"Process Variation in Near-Threshold Wide SIMD
//! Architectures"** (Seo, Dreslinski, Woh, Park, Chakrabarti, Mahlke,
//! Blaauw, Mudge — DAC 2012) as a Rust workspace.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`mc`] — Monte-Carlo and statistics toolkit (normal quantiles,
//!   Gauss–Hermite quadrature, order statistics, histograms),
//! * [`device`] — transregional MOSFET delay/energy models and per-node
//!   process-variation parameters (90/45 nm GP, 32/22 nm PTM HP),
//! * [`circuit`] — gates, FO4 chains, a netlist/STA engine, Kogge–Stone and
//!   ripple-carry adders, and the circuit-level Monte-Carlo engines,
//! * [`core`] — the paper's contribution: architecture-level variation
//!   analysis for wide SIMD datapaths and the three mitigation techniques
//!   (structural duplication, voltage margining, frequency margining) plus
//!   their combination,
//! * [`soda`] — a functional simulator of the Diet SODA processing element
//!   (128-lane 16-bit SIMD pipeline, banked memory, AGUs, XRAM crossbar)
//!   with timing-fault injection and error-handling policies.
//!
//! ## Quickstart
//!
//! ```
//! use ntv_simd::device::{TechModel, TechNode};
//! use ntv_simd::core::{DatapathConfig, DatapathEngine};
//! use ntv_simd::mc::StreamRng;
//! use ntv_simd::units::Volts;
//!
//! // 128-wide SIMD datapath in 90nm GP, evaluated at 0.55 V.
//! let tech = TechModel::new(TechNode::Gp90);
//! let config = DatapathConfig::paper_default();
//! let engine = DatapathEngine::new(&tech, config);
//! let mut rng = StreamRng::from_seed(1);
//! let dist = engine.chip_delay_distribution(Volts(0.55), 2_000, &mut rng);
//! // The 99% chip-delay point in FO4 units is a little above the ideal
//! // 50-FO4 critical path because variation makes the slowest of
//! // 128 lanes x 100 paths slower.
//! assert!(dist.fo4_quantiles.q99() > 50.0);
//! ```

pub use ntv_circuit as circuit;
pub use ntv_core as core;
pub use ntv_device as device;
pub use ntv_mc as mc;
pub use ntv_serve as serve;
pub use ntv_soda as soda;
pub use ntv_units as units;
