// Tests assert exact golden values; strict float equality is the point there.
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::float_cmp))]

//! Zero-cost SI unit newtypes for the ntv-simd workspace.
//!
//! Every headline result of the reproduction is a physical quantity —
//! supply and threshold voltages, delays, frequencies, powers — and before
//! this crate existed they all travelled as bare `f64`. A swapped
//! `(vdd, vth)` argument pair compiled clean and silently corrupted every
//! Monte-Carlo statistic downstream. The newtypes here make that class of
//! bug a type error while compiling to exactly the same machine code as
//! the raw `f64` (each type is `#[repr(transparent)]` with no arithmetic
//! of its own beyond trivial inlined operators).
//!
//! Conventions (enforced by `cargo xtask lint`'s `ntv::bare-unit` rule and
//! documented in DESIGN.md §8):
//!
//! * **SI base units only, no implicit scaling.** `Volts(0.55)` is 0.55 V;
//!   there is no `Millivolts` type and no constructor that multiplies by
//!   1e-3. Sub-scaled engineering quantities that the workspace keeps in
//!   ps/ns/fJ for bit-compatibility with the paper's tables stay `f64`
//!   and carry the scale in their *name* (`fo4_delay_ps`, `t_clk_ns`);
//!   SI-base quantities carry the unit in their *type*.
//! * **Wrappers, not rescalings.** Wrapping and unwrapping (`.0`) never
//!   changes the bit pattern, so migrating an API to a newtype cannot
//!   perturb a single Monte-Carlo result.
//! * **Total ordering is explicit.** The types expose `total_cmp` (and
//!   `min`/`max` built on it) instead of implementing `Ord`, mirroring the
//!   workspace float-totality policy: NaN handling is a decision, not an
//!   accident.
//!
//! Arithmetic is deliberately minimal and dimension-aware: same-unit
//! addition/subtraction, scaling by dimensionless `f64`, and same-unit
//! division yielding a dimensionless ratio. Cross-unit products (V·A,
//! W·s, …) are out of scope until a result type exists to receive them —
//! unwrap with `.0` at such sites and document the unit of the result.

use serde::{Deserialize, Serialize};

/// Implements a transparent `f64` unit newtype with dimension-aware
/// arithmetic.
macro_rules! unit {
    ($(#[$meta:meta])* $name:ident, $symbol:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
        #[repr(transparent)]
        #[serde(transparent)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// The raw `f64` magnitude in SI base units.
            #[must_use]
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Magnitude of the quantity (same unit).
            #[must_use]
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Whether the magnitude is finite (not NaN or ±∞).
            #[must_use]
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// IEEE-754 `totalOrder` comparison of the magnitudes — total
            /// over NaN and distinguishes `-0.0` from `0.0`, like
            /// [`f64::total_cmp`].
            #[must_use]
            #[inline]
            pub fn total_cmp(&self, other: &Self) -> core::cmp::Ordering {
                self.0.total_cmp(&other.0)
            }

            /// The smaller of two quantities under [`Self::total_cmp`].
            #[must_use]
            #[inline]
            pub fn min(self, other: Self) -> Self {
                match self.total_cmp(&other) {
                    core::cmp::Ordering::Greater => other,
                    _ => self,
                }
            }

            /// The larger of two quantities under [`Self::total_cmp`].
            #[must_use]
            #[inline]
            pub fn max(self, other: Self) -> Self {
                match self.total_cmp(&other) {
                    core::cmp::Ordering::Less => other,
                    _ => self,
                }
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        /// Scale by a dimensionless factor.
        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        /// Scale by a dimensionless factor (commuted).
        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        /// Scale in place by a dimensionless factor.
        impl core::ops::MulAssign<f64> for $name {
            #[inline]
            fn mul_assign(&mut self, rhs: f64) {
                self.0 *= rhs;
            }
        }

        /// Divide in place by a dimensionless factor.
        impl core::ops::DivAssign<f64> for $name {
            #[inline]
            fn div_assign(&mut self, rhs: f64) {
                self.0 /= rhs;
            }
        }

        /// Divide by a dimensionless factor.
        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        /// Same-unit ratio: the units cancel to a dimensionless `f64`.
        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        /// Renders the magnitude (honouring width/precision flags) followed
        /// by the SI symbol, e.g. `0.55 V`.
        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                self.0.fmt(f)?;
                f.write_str(concat!(" ", $symbol))
            }
        }

        impl core::str::FromStr for $name {
            type Err = core::num::ParseFloatError;

            /// Parses a bare magnitude (`"0.55"`) or a magnitude with the
            /// SI symbol (`"0.55 V"` / `"0.55V"`).
            fn from_str(s: &str) -> Result<Self, Self::Err> {
                let s = s.trim();
                let s = s.strip_suffix($symbol).unwrap_or(s).trim_end();
                s.parse::<f64>().map(Self)
            }
        }
    };
}

unit!(
    /// An electric potential in volts (SI base-derived, no scaling).
    ///
    /// The workspace's most misuse-prone quantity: supply voltages,
    /// threshold voltages, body-bias shifts and margins all share this
    /// type, so `on_current(vth, vdd)` no longer compiles.
    Volts,
    "V"
);
unit!(
    /// A time span in seconds (SI base, no scaling).
    ///
    /// The Monte-Carlo delay plumbing keeps its historical ps/ns `f64`
    /// fields (named `*_ps` / `*_ns`) for bit-compatibility with the
    /// paper's tables; `Seconds` is for genuinely SI-scaled time such as
    /// period/frequency conversions.
    Seconds,
    "s"
);
unit!(
    /// A frequency in hertz (SI base-derived, no scaling).
    Hertz,
    "Hz"
);
unit!(
    /// A power in watts (SI base-derived, no scaling).
    Watts,
    "W"
);
unit!(
    /// A thermodynamic temperature in kelvin (SI base, no scaling).
    Kelvin,
    "K"
);

impl Seconds {
    /// The corresponding frequency `1/T`.
    #[must_use]
    #[inline]
    pub fn frequency(self) -> Hertz {
        Hertz(self.0.recip())
    }

    /// A period from a nanosecond magnitude (explicit scaling: `ns × 1e-9`).
    #[must_use]
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        Self(ns * 1e-9)
    }
}

impl Hertz {
    /// The corresponding period `1/f`.
    #[must_use]
    #[inline]
    pub fn period(self) -> Seconds {
        Seconds(self.0.recip())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::cmp::Ordering;

    #[test]
    fn wrappers_are_transparent() {
        // Zero-cost contract: wrapping cannot perturb the bit pattern.
        let subnormal = f64::from_bits(1); // smallest positive subnormal
        for x in [0.0, -0.0, 0.55, f64::MIN_POSITIVE, subnormal, f64::NAN] {
            assert_eq!(Volts(x).get().to_bits(), x.to_bits());
            assert_eq!(Seconds(x).0.to_bits(), x.to_bits());
        }
        assert_eq!(core::mem::size_of::<Volts>(), core::mem::size_of::<f64>());
    }

    #[test]
    fn same_unit_arithmetic() {
        let v = Volts(0.5) + Volts(0.05) - Volts(0.1);
        assert!((v.get() - 0.45).abs() < 1e-15);
        assert_eq!(-Volts(0.2), Volts(-0.2));
        let mut acc = Volts::ZERO;
        acc += Volts(1.0);
        acc -= Volts(0.25);
        assert_eq!(acc, Volts(0.75));
        let total: Volts = [Volts(0.1), Volts(0.2)].into_iter().sum();
        assert!((total.get() - 0.3).abs() < 1e-15);
    }

    #[test]
    fn dimensionless_scaling_and_ratio() {
        assert_eq!(Volts(0.5) * 2.0, Volts(1.0));
        assert_eq!(3.0 * Volts(0.5), Volts(1.5));
        assert_eq!(Volts(1.0) / 4.0, Volts(0.25));
        // Same-unit division cancels to a plain ratio.
        let ratio: f64 = Volts(1.0) / Volts(0.5);
        assert_eq!(ratio, 2.0);
    }

    #[test]
    fn negative_and_subnormal_magnitudes_survive_arithmetic() {
        let sub = Seconds(f64::from_bits(1)); // smallest positive subnormal
        assert!(sub.get() > 0.0);
        assert_eq!(sub + Seconds::ZERO, sub);
        assert_eq!((sub * 1.0).get().to_bits(), 1);
        let neg = Seconds(-1.5e-9) + Seconds(0.5e-9);
        assert!(neg.get() < 0.0);
        assert!((neg.abs().get() - 1e-9).abs() < 1e-24);
    }

    #[test]
    fn total_cmp_is_total_and_orders_signed_zero() {
        // -0.0 < +0.0 under totalOrder, and NaN is ordered, not poisonous.
        assert_eq!(Volts(-0.0).total_cmp(&Volts(0.0)), Ordering::Less);
        assert_eq!(Volts(0.0).total_cmp(&Volts(-0.0)), Ordering::Greater);
        assert_eq!(Volts(1.0).total_cmp(&Volts(1.0)), Ordering::Equal);
        assert_eq!(
            Volts(f64::NAN).total_cmp(&Volts(f64::INFINITY)),
            Ordering::Greater
        );
        assert_eq!(Volts(-1.0).total_cmp(&Volts(1.0)), Ordering::Less);
        // min/max follow total_cmp, so they are deterministic on ties of
        // signed zero rather than returning either operand.
        assert_eq!(
            Volts(-0.0).min(Volts(0.0)).get().to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(
            Volts(-0.0).max(Volts(0.0)).get().to_bits(),
            0.0f64.to_bits()
        );
        assert_eq!(Seconds(2.0).max(Seconds(3.0)), Seconds(3.0));
        assert_eq!(Seconds(2.0).min(Seconds(3.0)), Seconds(2.0));
    }

    #[test]
    fn display_carries_the_si_symbol() {
        assert_eq!(Volts(0.55).to_string(), "0.55 V");
        assert_eq!(format!("{:.2}", Volts(0.5)), "0.50 V");
        assert_eq!(Hertz(5e8).to_string(), "500000000 Hz");
        assert_eq!(Watts(1.5).to_string(), "1.5 W");
        assert_eq!(Kelvin(300.0).to_string(), "300 K");
        assert_eq!(Seconds(1e-9).to_string(), "0.000000001 s");
    }

    #[test]
    fn from_str_accepts_bare_and_suffixed() {
        assert_eq!("0.55".parse::<Volts>().expect("bare"), Volts(0.55));
        assert_eq!("0.55 V".parse::<Volts>().expect("suffixed"), Volts(0.55));
        assert_eq!("300K".parse::<Kelvin>().expect("tight"), Kelvin(300.0));
        assert!("volts".parse::<Volts>().is_err());
    }

    #[test]
    fn period_frequency_roundtrip() {
        let t = Seconds::from_ns(2.0);
        assert!((t.get() - 2e-9).abs() < 1e-24);
        let f = t.frequency();
        assert!((f.get() - 5e8).abs() < 1.0);
        assert!((f.period().get() - t.get()).abs() < 1e-24);
    }

    #[test]
    fn parse_rejects_wrong_symbol() {
        // "0.5 V" is not a Kelvin; the suffix strip only removes this
        // type's own symbol, so foreign symbols fail float parsing.
        assert!("0.5 V".parse::<Kelvin>().is_err());
        assert!("NaN".parse::<Volts>().map(|v| v.get().is_nan()) == Ok(true));
    }
}
