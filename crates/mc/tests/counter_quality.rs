//! Statistical-quality gate for the counter-based generator.
//!
//! Every headline number of the reproduction flows through [`CounterRng`]
//! after the deterministic-parallel refactor, so this file pins down three
//! properties:
//!
//! 1. **sampler quality** — the normal sampler, driven in the actual usage
//!    pattern (one fresh draw cursor per sample index), has the right
//!    moments;
//! 2. **decorrelation** — draws are uncorrelated across adjacent indexes,
//!    across labelled streams, and across draw positions;
//! 3. **sequence stability** — the raw word sequence is pinned to golden
//!    values, so the generator can never silently change (which would
//!    invalidate every recorded experiment table).

use ntv_mc::rng::{CounterRng, SampleStream};
use ntv_mc::Summary;

/// Pearson correlation of two equal-length samples.
fn correlation(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[test]
fn normal_sampler_moments_in_index_addressed_use() {
    // One cursor per index — exactly how the engine consumes the generator.
    let stream = CounterRng::new(2012, "quality-normal");
    let s: Summary = (0..200_000u64)
        .map(|i| stream.at(i).standard_normal())
        .collect();
    assert!(s.mean().abs() < 0.01, "mean {}", s.mean());
    assert!((s.std_dev() - 1.0).abs() < 0.01, "std {}", s.std_dev());
    assert!(s.skewness().abs() < 0.05, "skew {}", s.skewness());
}

#[test]
fn scaled_normal_moments() {
    let stream = CounterRng::new(7, "quality-scaled");
    let s: Summary = (0..100_000u64)
        .map(|i| stream.at(i).normal(10.0, 2.0))
        .collect();
    assert!((s.mean() - 10.0).abs() < 0.05);
    assert!((s.std_dev() - 2.0).abs() < 0.05);
}

#[test]
fn uniform_moments_and_range() {
    let stream = CounterRng::new(5, "quality-uniform");
    let xs: Vec<f64> = (0..100_000u64).map(|i| stream.at(i).uniform()).collect();
    let s: Summary = xs.iter().copied().collect();
    // U(0,1): mean 1/2, std 1/sqrt(12) ≈ 0.2887.
    assert!((s.mean() - 0.5).abs() < 0.005, "mean {}", s.mean());
    assert!(
        (s.std_dev() - 0.288_675).abs() < 0.005,
        "std {}",
        s.std_dev()
    );
    assert!(xs.iter().all(|&u| (0.0..1.0).contains(&u)));
}

#[test]
fn adjacent_indexes_are_uncorrelated() {
    const N: usize = 100_000;
    let stream = CounterRng::new(2012, "quality-lag");
    let xs: Vec<f64> = (0..N as u64)
        .map(|i| stream.at(i).standard_normal())
        .collect();
    let ys: Vec<f64> = (0..N as u64)
        .map(|i| stream.at(i + 1).standard_normal())
        .collect();
    let r = correlation(&xs, &ys);
    // 5σ bound for true independence is ~5/sqrt(N) ≈ 0.016.
    assert!(r.abs() < 0.02, "lag-1 index correlation {r}");
}

#[test]
fn labelled_streams_are_uncorrelated() {
    const N: usize = 100_000;
    let a = CounterRng::new(2012, "quality-stream-a");
    let b = CounterRng::new(2012, "quality-stream-b");
    let xs: Vec<f64> = (0..N as u64).map(|i| a.at(i).standard_normal()).collect();
    let ys: Vec<f64> = (0..N as u64).map(|i| b.at(i).standard_normal()).collect();
    let r = correlation(&xs, &ys);
    assert!(r.abs() < 0.02, "inter-stream correlation {r}");
}

#[test]
fn successive_draws_within_a_cell_are_uncorrelated() {
    const N: usize = 100_000;
    let stream = CounterRng::new(2012, "quality-within");
    let mut xs = Vec::with_capacity(N);
    let mut ys = Vec::with_capacity(N);
    for i in 0..N as u64 {
        let mut d = stream.at(i);
        xs.push(d.uniform());
        ys.push(d.uniform());
    }
    let r = correlation(&xs, &ys);
    assert!(r.abs() < 0.02, "within-cell draw correlation {r}");
}

#[test]
fn raw_word_sequence_is_pinned() {
    // Golden values: changing the mixing constants, the finalizer, or
    // `derive_seed` MUST fail this test — the whole experiment archive
    // (EXPERIMENTS.md tables, BENCH_*.json) is keyed to this sequence.
    let stream = CounterRng::new(2012, "pinned");
    assert_eq!(stream.key(), 0xf0e5_fb36_e404_149f);

    let take3 = |index: u64| -> [u64; 3] {
        let mut d = stream.at(index);
        [d.next_word(), d.next_word(), d.next_word()]
    };
    assert_eq!(
        take3(0),
        [
            0x27d3_2197_d0bc_d836,
            0xac34_4b6b_7f5a_f987,
            0xcaaf_19d3_c0b8_716a
        ]
    );
    assert_eq!(
        take3(1),
        [
            0x44e7_c032_be5b_ee3d,
            0x8579_3407_75f6_003b,
            0x6588_da2f_aebb_1e9c
        ]
    );
    assert_eq!(
        take3(12_345),
        [
            0xa43d_8c28_5824_b7c4,
            0x6807_108e_4a0c_e64d,
            0x495b_572e_3ad5_1f20
        ]
    );
}

#[test]
fn first_uniform_is_pinned() {
    let stream = CounterRng::new(2012, "pinned");
    let u = stream.at(0).uniform();
    assert_eq!(u.to_bits(), 0.155_565_356_792_738_09_f64.to_bits());
}
