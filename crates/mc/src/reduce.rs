//! Fixed-order and compensated f64 reductions.
//!
//! Float addition is not associative, so the *order* of a summation is part
//! of its value: reassociating the same terms — which is exactly what SIMD
//! lane splitting, tree reduction, or thread partitioning does — changes
//! the result by ulps that the workspace's bit-reproducibility contract
//! cannot absorb. The `ntv::reduction-order` lint denies raw sequential
//! accumulation on public paths; these helpers are the sanctioned
//! replacements:
//!
//! * [`sum_ordered`] / [`sum2_ordered`] — a *documented* left-to-right
//!   fold, bit-identical to the naive `for` loop it replaces. Migrating a
//!   loop here does not change a single bit; it marks the site as
//!   order-pinned so the vectorization pass knows the order is load-bearing
//!   and must be reproduced (e.g. by lane-invariant tree order) rather than
//!   discovered.
//! * [`sum_compensated`] — Neumaier's improved Kahan summation: the running
//!   compensation recovers the low-order bits ordinary accumulation drops,
//!   so the result is nearly independent of term order. Use it where the
//!   *accuracy* of the sum matters more than bit-matching a historical
//!   order (new code, accuracy-critical tails).
//!
//! All three are allocation-free single passes over any `f64` iterator.
//!
//! The `*_ordered` batch variants ([`add_assign_ordered`], [`axpy_ordered`],
//! [`sum2_axpy_ordered`]) are the structure-of-arrays counterparts: each
//! call adds *one term* to every element of an accumulator slice, so a
//! loop over terms calling a batch helper is the loop-interchanged form of
//! N independent scalar folds. Element `i` still sees its terms strictly
//! left-to-right, which makes the interchange bit-identical to calling
//! [`sum_ordered`] / [`sum2_ordered`] per element — the transform SIMD
//! batch kernels rely on. The inner loops are fixed-stride with no
//! cross-element dependence, so the compiler is free to vectorize them.

/// Left-to-right ordered sum: exactly `iter.fold(0.0, |a, x| a + x)`.
///
/// Bit-identical to the sequential `acc += x` loop and to
/// `Iterator::sum::<f64>()` over the same order — the point is the name:
/// a call site declares its summation order fixed and documented.
#[must_use]
pub fn sum_ordered(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0;
    for x in values {
        acc += x; // ntv:allow(reduction-order): this IS the documented fixed-order helper
    }
    acc
}

/// Two ordered sums in one pass: `(Σ aᵢ, Σ bᵢ)` with each accumulator
/// folded left-to-right, bit-identical to the paired `+=` loop it
/// replaces. For kernels whose per-element work must not run twice
/// (side-effecting closures, expensive model evaluations).
#[must_use]
pub fn sum2_ordered(values: impl IntoIterator<Item = (f64, f64)>) -> (f64, f64) {
    let mut a = 0.0;
    let mut b = 0.0;
    for (x, y) in values {
        a += x; // ntv:allow(reduction-order): this IS the documented fixed-order helper
        b += y; // ntv:allow(reduction-order): this IS the documented fixed-order helper
    }
    (a, b)
}

/// Batch accumulate one term per element: `acc[i] += terms[i]`.
///
/// This is the loop-interchange primitive for vectorizing N independent
/// ordered sums: calling it once per term row reproduces, for every
/// element `i`, exactly the left-to-right fold [`sum_ordered`] performs
/// over that element's column — bit-identical, because each `acc[i]` is
/// its own accumulator and never reassociates with its neighbours.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn add_assign_ordered(acc: &mut [f64], terms: &[f64]) {
    assert_eq!(acc.len(), terms.len(), "batch accumulator length mismatch");
    for (a, &t) in acc.iter_mut().zip(terms) {
        *a += t;
    }
}

/// Batch scaled accumulate: `acc[i] += w * xs[i]`.
///
/// Same interchange contract as [`add_assign_ordered`], with the common
/// weighted-term shape fused in: the term added to element `i` is computed
/// as `w * xs[i]`, exactly the expression the scalar fold would form.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy_ordered(acc: &mut [f64], w: f64, xs: &[f64]) {
    assert_eq!(acc.len(), xs.len(), "batch accumulator length mismatch");
    for (a, &x) in acc.iter_mut().zip(xs) {
        *a += w * x;
    }
}

/// Batch first/second-moment accumulate: `m1[i] += w * xs[i]` and
/// `m2[i] += (w * xs[i]) * xs[i]`, the interchanged form of the
/// [`sum2_ordered`] quadrature-moment fold over `(w·v, w·v·v)` pairs
/// (note `w * v * v` parses as `(w * v) * v`, which is reproduced here).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn sum2_axpy_ordered(m1: &mut [f64], m2: &mut [f64], w: f64, xs: &[f64]) {
    assert_eq!(m1.len(), xs.len(), "batch accumulator length mismatch");
    assert_eq!(m2.len(), xs.len(), "batch accumulator length mismatch");
    for i in 0..xs.len() {
        let t = w * xs[i];
        m1[i] += t;
        m2[i] += t * xs[i];
    }
}

/// Neumaier-compensated sum: a Kahan-style running error term that also
/// handles the case where the next term is larger than the running sum.
///
/// The result changes by at most one ulp under any reordering of finite
/// inputs with the same exponent range — the right tool when a future
/// vectorized kernel must agree with the scalar path without pinning an
/// order. Infinities and NaNs propagate as in ordinary summation.
#[must_use]
pub fn sum_compensated(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut comp = 0.0; // running compensation for lost low-order bits
    for x in values {
        let t = sum + x;
        if sum.abs() >= x.abs() {
            comp += (sum - t) + x; // ntv:allow(reduction-order): compensated-helper internals
        } else {
            comp += (x - t) + sum; // ntv:allow(reduction-order): compensated-helper internals
        }
        sum = t;
    }
    sum + comp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_ordered_is_bit_identical_to_the_naive_loop() {
        // An ill-conditioned mix of magnitudes: ordered summation must
        // reproduce the naive loop bit for bit, drift and all.
        let xs: Vec<f64> = (0..1000)
            .map(|i| {
                let i = f64::from(i);
                (i * 0.1).sin() * 10f64.powi((i as i32 % 7) - 3)
            })
            .collect();
        let mut naive = 0.0;
        for &x in &xs {
            naive += x;
        }
        assert_eq!(sum_ordered(xs.iter().copied()).to_bits(), naive.to_bits());
        let iter_sum: f64 = xs.iter().sum();
        assert_eq!(
            sum_ordered(xs.iter().copied()).to_bits(),
            iter_sum.to_bits()
        );
    }

    #[test]
    fn sum2_ordered_matches_paired_accumulators() {
        let pairs: Vec<(f64, f64)> = (0..500)
            .map(|i| {
                let i = f64::from(i);
                ((i * 0.31).cos(), (i * 0.17).sin() * 1e-8)
            })
            .collect();
        let (mut a, mut b) = (0.0, 0.0);
        for &(x, y) in &pairs {
            a += x;
            b += y;
        }
        let (sa, sb) = sum2_ordered(pairs.iter().copied());
        assert_eq!(sa.to_bits(), a.to_bits());
        assert_eq!(sb.to_bits(), b.to_bits());
    }

    #[test]
    fn compensated_sum_recovers_cancelled_bits() {
        // 1.0 + 1e16 - 1e16 loses the 1.0 in naive order.
        let xs = [1.0, 1e16, -1e16];
        assert_eq!(sum_compensated(xs.iter().copied()), 1.0);
        let naive = sum_ordered(xs.iter().copied());
        assert_eq!(naive, 0.0); // demonstrates exactly what was lost
    }

    #[test]
    fn compensated_sum_is_order_insensitive_where_naive_is_not() {
        let mut xs: Vec<f64> = (0..2000)
            .map(|i| 10f64.powi((i % 13) - 6) * f64::from(i % 17 - 8))
            .collect();
        let fwd = sum_compensated(xs.iter().copied());
        xs.reverse();
        let rev = sum_compensated(xs.iter().copied());
        assert!((fwd - rev).abs() <= fwd.abs() * 1e-15 + 1e-300);
    }

    #[test]
    fn batch_accumulators_are_bit_identical_to_per_element_scalar_folds() {
        // A (terms × elements) matrix of ill-conditioned values: the
        // interchanged batch accumulation must match, per element, the
        // scalar left-to-right fold over that element's column.
        let n = 37; // deliberately not a multiple of any lane width
        let rows = 24;
        let matrix: Vec<Vec<f64>> = (0..rows)
            .map(|j| {
                (0..n)
                    .map(|i| {
                        let v = f64::from(i as i32 * 31 + j * 7);
                        (v * 0.113).sin() * 10f64.powi((i as i32 + j) % 9 - 4)
                    })
                    .collect()
            })
            .collect();
        let weights: Vec<f64> = (0..rows).map(|j| 0.3 + 0.1 * f64::from(j)).collect();

        // add_assign_ordered vs per-element sum_ordered.
        let mut acc = vec![0.0; n];
        for row in &matrix {
            add_assign_ordered(&mut acc, row);
        }
        for i in 0..n {
            let scalar = sum_ordered(matrix.iter().map(|row| row[i]));
            assert_eq!(acc[i].to_bits(), scalar.to_bits());
        }

        // axpy_ordered vs per-element weighted sum_ordered.
        let mut acc = vec![0.0; n];
        for (row, &w) in matrix.iter().zip(&weights) {
            axpy_ordered(&mut acc, w, row);
        }
        for i in 0..n {
            let scalar = sum_ordered(matrix.iter().zip(&weights).map(|(row, &w)| w * row[i]));
            assert_eq!(acc[i].to_bits(), scalar.to_bits());
        }

        // sum2_axpy_ordered vs per-element sum2_ordered over (w·v, w·v·v).
        let (mut m1, mut m2) = (vec![0.0; n], vec![0.0; n]);
        for (row, &w) in matrix.iter().zip(&weights) {
            sum2_axpy_ordered(&mut m1, &mut m2, w, row);
        }
        for i in 0..n {
            let (a, b) = sum2_ordered(matrix.iter().zip(&weights).map(|(row, &w)| {
                let v = row[i];
                (w * v, w * v * v)
            }));
            assert_eq!(m1[i].to_bits(), a.to_bits());
            assert_eq!(m2[i].to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_accumulators_accept_empty_slices() {
        let mut acc: Vec<f64> = Vec::new();
        add_assign_ordered(&mut acc, &[]);
        axpy_ordered(&mut acc, 2.0, &[]);
        let mut m2: Vec<f64> = Vec::new();
        sum2_axpy_ordered(&mut acc, &mut m2, 2.0, &[]);
        assert!(acc.is_empty());
    }

    #[test]
    fn empty_and_single_sums_are_exact() {
        assert_eq!(sum_ordered(std::iter::empty()), 0.0);
        assert_eq!(sum_compensated(std::iter::empty()), 0.0);
        assert_eq!(sum_ordered([42.5]), 42.5);
        assert_eq!(sum_compensated([42.5]), 42.5);
        assert_eq!(sum2_ordered(std::iter::empty()), (0.0, 0.0));
    }
}
