//! Fixed-order and compensated f64 reductions.
//!
//! Float addition is not associative, so the *order* of a summation is part
//! of its value: reassociating the same terms — which is exactly what SIMD
//! lane splitting, tree reduction, or thread partitioning does — changes
//! the result by ulps that the workspace's bit-reproducibility contract
//! cannot absorb. The `ntv::reduction-order` lint denies raw sequential
//! accumulation on public paths; these helpers are the sanctioned
//! replacements:
//!
//! * [`sum_ordered`] / [`sum2_ordered`] — a *documented* left-to-right
//!   fold, bit-identical to the naive `for` loop it replaces. Migrating a
//!   loop here does not change a single bit; it marks the site as
//!   order-pinned so the vectorization pass knows the order is load-bearing
//!   and must be reproduced (e.g. by lane-invariant tree order) rather than
//!   discovered.
//! * [`sum_compensated`] — Neumaier's improved Kahan summation: the running
//!   compensation recovers the low-order bits ordinary accumulation drops,
//!   so the result is nearly independent of term order. Use it where the
//!   *accuracy* of the sum matters more than bit-matching a historical
//!   order (new code, accuracy-critical tails).
//!
//! All three are allocation-free single passes over any `f64` iterator.

/// Left-to-right ordered sum: exactly `iter.fold(0.0, |a, x| a + x)`.
///
/// Bit-identical to the sequential `acc += x` loop and to
/// `Iterator::sum::<f64>()` over the same order — the point is the name:
/// a call site declares its summation order fixed and documented.
#[must_use]
pub fn sum_ordered(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = 0.0;
    for x in values {
        acc += x; // ntv:allow(reduction-order): this IS the documented fixed-order helper
    }
    acc
}

/// Two ordered sums in one pass: `(Σ aᵢ, Σ bᵢ)` with each accumulator
/// folded left-to-right, bit-identical to the paired `+=` loop it
/// replaces. For kernels whose per-element work must not run twice
/// (side-effecting closures, expensive model evaluations).
#[must_use]
pub fn sum2_ordered(values: impl IntoIterator<Item = (f64, f64)>) -> (f64, f64) {
    let mut a = 0.0;
    let mut b = 0.0;
    for (x, y) in values {
        a += x; // ntv:allow(reduction-order): this IS the documented fixed-order helper
        b += y; // ntv:allow(reduction-order): this IS the documented fixed-order helper
    }
    (a, b)
}

/// Neumaier-compensated sum: a Kahan-style running error term that also
/// handles the case where the next term is larger than the running sum.
///
/// The result changes by at most one ulp under any reordering of finite
/// inputs with the same exponent range — the right tool when a future
/// vectorized kernel must agree with the scalar path without pinning an
/// order. Infinities and NaNs propagate as in ordinary summation.
#[must_use]
pub fn sum_compensated(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut comp = 0.0; // running compensation for lost low-order bits
    for x in values {
        let t = sum + x;
        if sum.abs() >= x.abs() {
            comp += (sum - t) + x; // ntv:allow(reduction-order): compensated-helper internals
        } else {
            comp += (x - t) + sum; // ntv:allow(reduction-order): compensated-helper internals
        }
        sum = t;
    }
    sum + comp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_ordered_is_bit_identical_to_the_naive_loop() {
        // An ill-conditioned mix of magnitudes: ordered summation must
        // reproduce the naive loop bit for bit, drift and all.
        let xs: Vec<f64> = (0..1000)
            .map(|i| {
                let i = f64::from(i);
                (i * 0.1).sin() * 10f64.powi((i as i32 % 7) - 3)
            })
            .collect();
        let mut naive = 0.0;
        for &x in &xs {
            naive += x;
        }
        assert_eq!(sum_ordered(xs.iter().copied()).to_bits(), naive.to_bits());
        let iter_sum: f64 = xs.iter().sum();
        assert_eq!(
            sum_ordered(xs.iter().copied()).to_bits(),
            iter_sum.to_bits()
        );
    }

    #[test]
    fn sum2_ordered_matches_paired_accumulators() {
        let pairs: Vec<(f64, f64)> = (0..500)
            .map(|i| {
                let i = f64::from(i);
                ((i * 0.31).cos(), (i * 0.17).sin() * 1e-8)
            })
            .collect();
        let (mut a, mut b) = (0.0, 0.0);
        for &(x, y) in &pairs {
            a += x;
            b += y;
        }
        let (sa, sb) = sum2_ordered(pairs.iter().copied());
        assert_eq!(sa.to_bits(), a.to_bits());
        assert_eq!(sb.to_bits(), b.to_bits());
    }

    #[test]
    fn compensated_sum_recovers_cancelled_bits() {
        // 1.0 + 1e16 - 1e16 loses the 1.0 in naive order.
        let xs = [1.0, 1e16, -1e16];
        assert_eq!(sum_compensated(xs.iter().copied()), 1.0);
        let naive = sum_ordered(xs.iter().copied());
        assert_eq!(naive, 0.0); // demonstrates exactly what was lost
    }

    #[test]
    fn compensated_sum_is_order_insensitive_where_naive_is_not() {
        let mut xs: Vec<f64> = (0..2000)
            .map(|i| 10f64.powi((i % 13) - 6) * f64::from(i % 17 - 8))
            .collect();
        let fwd = sum_compensated(xs.iter().copied());
        xs.reverse();
        let rev = sum_compensated(xs.iter().copied());
        assert!((fwd - rev).abs() <= fwd.abs() * 1e-15 + 1e-300);
    }

    #[test]
    fn empty_and_single_sums_are_exact() {
        assert_eq!(sum_ordered(std::iter::empty()), 0.0);
        assert_eq!(sum_compensated(std::iter::empty()), 0.0);
        assert_eq!(sum_ordered([42.5]), 42.5);
        assert_eq!(sum_compensated([42.5]), 42.5);
        assert_eq!(sum2_ordered(std::iter::empty()), (0.0, 0.0));
    }
}
