//! Fixed-bin histograms for distribution figures.
//!
//! Figures 1, 3, 5 and 6 of the paper are delay histograms ("Occurrences" vs
//! delay). [`Histogram`] reproduces those series: fixed uniform bins over a
//! range, counts per bin, and a text rendering used by the `ntv-bench`
//! figure binaries.

use serde::{Deserialize, Serialize};

/// A uniform-bin histogram over `[lo, hi)`.
///
/// Samples outside the range are counted in saturating under/overflow
/// buckets so no data is silently lost.
///
/// # Example
///
/// ```
/// use ntv_mc::histogram::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [0.5, 1.0, 2.5, 2.6, 9.9, 11.0] {
///     h.add(x);
/// }
/// assert_eq!(h.counts(), &[2, 2, 0, 0, 1]);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`, the bounds are not finite, or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram requires at least one bin");
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid histogram range [{lo}, {hi})"
        );
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Create a histogram spanning the observed range of `samples`.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `bins == 0`.
    #[must_use]
    pub fn from_samples(samples: &[f64], bins: usize) -> Self {
        assert!(!samples.is_empty(), "cannot infer a range from no samples");
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        // Widen degenerate/exact ranges so the max lands inside the last bin.
        let span = (hi - lo).max(f64::EPSILON * lo.abs().max(1.0));
        let mut h = Self::new(lo, lo + span * (1.0 + 1e-9), bins);
        for &x in samples {
            h.add(x);
        }
        h
    }

    /// Add one sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the upper bound.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples added, including under/overflow.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Centre of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index {i} out of range");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// `(bin_center, count)` series, e.g. for plotting.
    #[must_use]
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }

    /// Render an ASCII bar chart, `width` characters for the largest bin.
    #[must_use]
    pub fn render_ascii(&self, width: usize) -> String {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = (c as usize * width) / peak as usize;
            out.push_str(&format!(
                "{:>12.4e} |{}{} {}\n",
                self.bin_center(i),
                "#".repeat(bar),
                " ".repeat(width - bar),
                c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_partition_the_range() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..1000 {
            h.add(f64::from(i) / 1000.0);
        }
        assert_eq!(h.total(), 1000);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        // Bin edges are subject to floating-point rounding; allow +-1.
        assert!(
            h.counts().iter().all(|&c| (99..=101).contains(&c)),
            "{:?}",
            h.counts()
        );
    }

    #[test]
    fn under_overflow_counted() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-0.1);
        h.add(1.0);
        h.add(2.0);
        h.add(0.5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn from_samples_covers_all() {
        let samples: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.3 - 5.0).collect();
        let h = Histogram::from_samples(&samples, 8);
        assert_eq!(h.total(), 100);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn from_samples_constant_input() {
        let h = Histogram::from_samples(&[5.0; 10], 3);
        assert_eq!(h.total(), 10);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn bin_centers_increase() {
        let h = Histogram::new(0.0, 10.0, 5);
        for i in 1..5 {
            assert!(h.bin_center(i) > h.bin_center(i - 1));
        }
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_render_has_one_line_per_bin() {
        let mut h = Histogram::new(0.0, 1.0, 6);
        h.add(0.5);
        let text = h.render_ascii(20);
        assert_eq!(text.lines().count(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
