//! Quasi-Monte-Carlo support: the Halton low-discrepancy sequence.
//!
//! Extreme-quantile estimates (the paper's q99 chip delay) converge slowly
//! under plain Monte Carlo. A low-discrepancy stream fills the unit
//! interval far more evenly, cutting the quantile estimator's variance for
//! the one-dimensional maxima this workspace samples. The convergence
//! ablation in `ntv-bench` quantifies the win; the experiments default to
//! plain MC for like-for-like comparison with the paper.

use crate::normal;

/// A Halton low-discrepancy sequence in one dimension.
///
/// # Example
///
/// ```
/// use ntv_mc::qmc::Halton;
/// let mut h = Halton::new(2);
/// assert_eq!(h.next_point(), 0.5);
/// assert_eq!(h.next_point(), 0.25);
/// assert_eq!(h.next_point(), 0.75);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Halton {
    base: u64,
    index: u64,
}

impl Halton {
    /// Sequence with the given prime base, starting at index 1.
    ///
    /// # Panics
    ///
    /// Panics if `base < 2`.
    #[must_use]
    pub fn new(base: u64) -> Self {
        assert!(base >= 2, "Halton base must be at least 2");
        Self { base, index: 0 }
    }

    /// The radical-inverse value at a given index (1-based).
    #[must_use]
    pub fn at(&self, index: u64) -> f64 {
        let mut f = 1.0;
        let mut r = 0.0;
        let mut i = index;
        while i > 0 {
            f /= self.base as f64;
            // ntv:allow(reduction-order): radical-inverse digit recurrence — each term depends on the running scale f, not a reorderable sum
            r += f * (i % self.base) as f64;
            i /= self.base;
        }
        r
    }

    /// Next point in `(0, 1)`.
    pub fn next_point(&mut self) -> f64 {
        self.index += 1;
        self.at(self.index)
    }

    /// Next standard-normal variate via the inverse CDF.
    pub fn next_normal(&mut self) -> f64 {
        let u = self
            .next_point()
            .clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
        normal::quantile(u)
    }

    /// Next maximum-of-`n` standard normals (inverse-CDF of `Φⁿ`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_max_normal(&mut self, n: usize) -> f64 {
        assert!(n > 0, "maximum of zero variables is undefined");
        let u = self
            .next_point()
            .clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON);
        let p = (u.ln() / n as f64).exp().min(1.0 - f64::EPSILON);
        normal::quantile(p.max(f64::MIN_POSITIVE))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::Quantiles;
    use crate::rng::StreamRng;

    #[test]
    fn base2_prefix_is_the_van_der_corput_sequence() {
        let mut h = Halton::new(2);
        let got: Vec<f64> = (0..7).map(|_| h.next_point()).collect();
        let want = [0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875];
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn points_fill_the_interval_evenly() {
        let mut h = Halton::new(3);
        let n = 1000;
        let mut bins = [0usize; 10];
        for _ in 0..n {
            bins[((h.next_point() * 10.0) as usize).min(9)] += 1;
        }
        for &b in &bins {
            assert!((90..=110).contains(&b), "{bins:?}");
        }
    }

    #[test]
    fn qmc_quantile_beats_mc_at_equal_budget() {
        // Estimate the q99 of max-of-100 normals (true value ~3.72) with
        // 2000 points each way; QMC should land much closer.
        let true_q99 = normal::quantile(0.99_f64.powf(1.0 / 100.0));
        let n = 2000;

        let mut h = Halton::new(2);
        let qmc: Vec<f64> = (0..n).map(|_| h.next_max_normal(100)).collect();
        let qmc_err = (Quantiles::from_samples(qmc).q99() - true_q99).abs();

        let mut worst_mc_err = 0.0_f64;
        let mut mean_mc_err = 0.0;
        for seed in 0..5 {
            let mut rng = StreamRng::from_seed(seed);
            let mc: Vec<f64> = (0..n)
                .map(|_| crate::order::sample_max_normal(&mut rng, 100, 0.0, 1.0))
                .collect();
            let err = (Quantiles::from_samples(mc).q99() - true_q99).abs();
            worst_mc_err = worst_mc_err.max(err);
            mean_mc_err += err / 5.0;
        }
        assert!(
            qmc_err < mean_mc_err,
            "QMC err {qmc_err} vs mean MC err {mean_mc_err} (worst {worst_mc_err})"
        );
        assert!(qmc_err < 0.03, "QMC err {qmc_err}");
    }

    #[test]
    fn normal_stream_has_unit_moments() {
        let mut h = Halton::new(2);
        let s: crate::stats::Summary = (0..20_000).map(|_| h.next_normal()).collect();
        assert!(s.mean().abs() < 0.01);
        assert!((s.std_dev() - 1.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "base must be at least 2")]
    fn base_one_rejected() {
        let _ = Halton::new(1);
    }
}
