//! The standard normal distribution: pdf, CDF, and quantile function.
//!
//! The quantile function (`Φ⁻¹`) is the workhorse of the fast
//! architecture-level engine in `ntv-core`: the maximum of *n* i.i.d. normal
//! path delays is sampled in O(1) as `μ + σ·Φ⁻¹(U^(1/n))`, which turns a
//! 10 000-chip × 128-lane × 100-path simulation into ~10⁶ quantile
//! evaluations instead of ~10⁹ gate evaluations.
//!
//! Implementations are classical rational approximations (no external
//! dependencies): an Abramowitz–Stegun/Numerical-Recipes style `erfc` for the
//! CDF and Acklam's algorithm with one Halley refinement step for the
//! quantile, giving ~1e-15 relative accuracy over the full open interval.

use std::f64::consts::{PI, SQRT_2};

/// Probability density function of the standard normal distribution.
///
/// # Example
///
/// ```
/// let p = ntv_mc::normal::pdf(0.0);
/// assert!((p - 0.39894228).abs() < 1e-8);
/// ```
#[must_use]
pub fn pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

// Chebyshev coefficients for erfc, from W. J. Cody's rational fit as
// tabulated in Numerical Recipes (3rd ed., §6.2.2). Shared by the scalar
// and batch evaluators so both run the identical recurrence.
const COF: [f64; 28] = [
    -1.3026537197817094,
    6.419_697_923_564_902e-1,
    1.9476473204185836e-2,
    -9.561_514_786_808_63e-3,
    -9.46595344482036e-4,
    3.66839497852761e-4,
    4.2523324806907e-5,
    -2.0278578112534e-5,
    -1.624290004647e-6,
    1.303655835580e-6,
    1.5626441722e-8,
    -8.5238095915e-8,
    6.529054439e-9,
    5.059343495e-9,
    -9.91364156e-10,
    -2.27365122e-10,
    9.6467911e-11,
    2.394038e-12,
    -6.886027e-12,
    8.94487e-13,
    3.13092e-13,
    -1.12708e-13,
    3.81e-16,
    7.106e-15,
    -1.523e-15,
    -9.4e-17,
    1.21e-16,
    -2.8e-17,
];

/// Complementary error function, `erfc(x) = 1 - erf(x)`.
///
/// Uses the Chebyshev-fitted expansion from Numerical Recipes (accuracy
/// better than 1.2e-7 everywhere), refined to full double precision where it
/// matters via symmetric evaluation.
#[must_use]
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Lane count of the chunked [`erfc_slice`] kernel: under the
/// `portable-simd` feature, chunks of this many elements share one pass
/// over the Chebyshev recurrence, amortizing its serial dependency chain
/// across independent lanes. Exposed so tests can probe non-multiple
/// lengths; the default build ignores it (plain elementwise loop).
pub const ERFC_LANES: usize = 8;

/// One chunk of the batch evaluator: every lane runs exactly the scalar
/// [`erfc`] operation sequence, only interleaved across lanes, so each
/// output is bit-identical to `erfc(x[l])`. The per-coefficient inner loop
/// has no cross-lane dependence and is written fixed-stride so the
/// compiler can vectorize the `ty·d − dd + c` update.
#[cfg(feature = "portable-simd")]
fn erfc_lanes(x: &[f64; ERFC_LANES]) -> [f64; ERFC_LANES] {
    let mut z = [0.0; ERFC_LANES];
    let mut t = [0.0; ERFC_LANES];
    let mut ty = [0.0; ERFC_LANES];
    for l in 0..ERFC_LANES {
        z[l] = x[l].abs();
        t[l] = 2.0 / (2.0 + z[l]);
        ty[l] = 4.0 * t[l] - 2.0;
    }
    let mut d = [0.0; ERFC_LANES];
    let mut dd = [0.0; ERFC_LANES];
    for &c in COF.iter().rev().take(COF.len() - 1) {
        for l in 0..ERFC_LANES {
            let tmp = d[l];
            d[l] = ty[l] * d[l] - dd[l] + c;
            dd[l] = tmp;
        }
    }
    let mut out = [0.0; ERFC_LANES];
    for l in 0..ERFC_LANES {
        let ans = t[l] * (-z[l] * z[l] + 0.5 * (COF[0] + ty[l] * d[l]) - dd[l]).exp();
        out[l] = if x[l] >= 0.0 { ans } else { 2.0 - ans };
    }
    out
}

/// Batch complementary error function: `out[i] = erfc(xs[i])`.
///
/// Bit-identical to the scalar loop in every configuration. The default
/// build is a plain fixed-stride elementwise loop (autovectorization
/// friendly); with the `portable-simd` feature the slice is processed in
/// explicitly chunked lanes of [`ERFC_LANES`], which amortizes the
/// Chebyshev recurrence's serial dependency chain across independent
/// lanes — every lane still performs the exact scalar operation sequence,
/// so the results carry the same bits.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn erfc_slice(xs: &[f64], out: &mut [f64]) {
    assert_eq!(xs.len(), out.len(), "erfc batch length mismatch");
    #[cfg(feature = "portable-simd")]
    {
        let chunks = xs.len() / ERFC_LANES;
        let mut lane = [0.0; ERFC_LANES];
        for c in 0..chunks {
            let base = c * ERFC_LANES;
            lane.copy_from_slice(&xs[base..base + ERFC_LANES]);
            out[base..base + ERFC_LANES].copy_from_slice(&erfc_lanes(&lane));
        }
        for (o, &x) in out.iter_mut().zip(xs).skip(chunks * ERFC_LANES) {
            *o = erfc(x);
        }
    }
    #[cfg(not(feature = "portable-simd"))]
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = erfc(x);
    }
}

/// Cumulative distribution function `Φ(x)` of the standard normal.
///
/// # Example
///
/// ```
/// assert!((ntv_mc::normal::cdf(0.0) - 0.5).abs() < 1e-12);
/// assert!((ntv_mc::normal::cdf(1.6448536269514722) - 0.95).abs() < 1e-7);
/// ```
#[must_use]
pub fn cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Quantile function `Φ⁻¹(p)` of the standard normal.
///
/// Acklam's rational approximation followed by one Halley refinement step,
/// accurate to machine precision for `p` in the open interval `(0, 1)`.
///
/// # Panics
///
/// Panics if `p` is outside `(0, 1)` (the quantile is infinite at the
/// endpoints; callers sampling maxima use [`crate::rng::StreamRng::uniform_open`]).
///
/// # Example
///
/// ```
/// let z = ntv_mc::normal::quantile(0.99);
/// assert!((z - 2.3263478740408408).abs() < 1e-10);
/// ```
#[must_use]
pub fn quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal quantile requires p in (0, 1), got {p}"
    );

    // Acklam's coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley step: e = Φ(x) − p; x ← x − 2e/(2φ(x) ... ).
    let e = cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// CDF of a normal with the given mean and standard deviation.
#[must_use]
pub fn cdf_with(x: f64, mean: f64, std_dev: f64) -> f64 {
    cdf((x - mean) / std_dev)
}

/// Quantile of a normal with the given mean and standard deviation.
#[must_use]
pub fn quantile_with(p: f64, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * quantile(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_known_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.5),
            (1.0, 0.841344746068543),
            (-1.0, 0.158655253931457),
            (2.0, 0.977249868051821),
            (3.0, 0.998650101968370),
            (-3.0, 0.001349898031630),
        ];
        for (x, want) in cases {
            assert!(
                (cdf(x) - want).abs() < 1e-9,
                "cdf({x}) = {}, want {want}",
                cdf(x)
            );
        }
    }

    #[test]
    fn quantile_round_trips_cdf() {
        for i in 1..200 {
            let p = f64::from(i) / 200.0;
            let x = quantile(p);
            assert!((cdf(x) - p).abs() < 1e-12, "p={p} x={x} cdf={}", cdf(x));
        }
    }

    #[test]
    fn quantile_extreme_tails() {
        for &p in &[1e-12, 1e-9, 1e-6, 1.0 - 1e-6, 1.0 - 1e-9] {
            let x = quantile(p);
            assert!((cdf(x) - p).abs() / p.min(1.0 - p) < 1e-6);
        }
    }

    #[test]
    fn quantile_is_monotone() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let x = quantile(f64::from(i) / 1000.0);
            assert!(x > prev);
            prev = x;
        }
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.0, 3.5] {
            assert!((erfc(x) + erfc(-x) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn erfc_slice_is_bit_identical_to_scalar_erfc() {
        // Lengths straddle the chunk width: empty, single, sub-chunk,
        // exact multiples, and a ragged tail. Values cover both signs,
        // zero, and deep tails.
        for n in [0usize, 1, 3, 7, 8, 9, 16, 37] {
            let xs: Vec<f64> = (0..n)
                .map(|i| {
                    let v = f64::from(i as i32) * 0.37 - 3.1;
                    if i % 5 == 0 {
                        -v
                    } else {
                        v
                    }
                })
                .collect();
            let mut out = vec![0.0; n];
            erfc_slice(&xs, &mut out);
            for (i, &x) in xs.iter().enumerate() {
                assert_eq!(
                    out[i].to_bits(),
                    erfc(x).to_bits(),
                    "erfc_slice diverged at n={n} i={i} x={x}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "erfc batch length mismatch")]
    fn erfc_slice_rejects_length_mismatch() {
        let mut out = [0.0; 2];
        erfc_slice(&[1.0, 2.0, 3.0], &mut out);
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Simpson's rule over [-8, 8], accumulated with the sanctioned
        // fixed-order reducer. The legacy `+=` loop is kept below to pin the
        // migration bit-identical.
        let n = 4000;
        let h = 16.0 / f64::from(n);
        let endpoints = pdf(-8.0) + pdf(8.0);
        // The endpoint term leads the fold so the order matches the legacy
        // `sum = endpoints; sum += term` loop exactly.
        let sum = crate::reduce::sum_ordered(std::iter::once(endpoints).chain((1..n).map(|i| {
            let x = -8.0 + f64::from(i) * h;
            (if i % 2 == 1 { 4.0 } else { 2.0 }) * pdf(x)
        })));
        assert!((sum * h / 3.0 - 1.0).abs() < 1e-10);

        let mut legacy = endpoints;
        for i in 1..n {
            let x = -8.0 + f64::from(i) * h;
            legacy += if i % 2 == 1 { 4.0 } else { 2.0 } * pdf(x);
        }
        assert_eq!(sum.to_bits(), legacy.to_bits());
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn quantile_rejects_zero() {
        let _ = quantile(0.0);
    }

    #[test]
    fn shifted_helpers() {
        assert!((cdf_with(10.0, 10.0, 3.0) - 0.5).abs() < 1e-12);
        assert!((quantile_with(0.5, 10.0, 3.0) - 10.0).abs() < 1e-12);
    }
}
