//! Streaming summary statistics.
//!
//! [`Summary`] accumulates count, mean, variance, skewness, min and max in a
//! single pass using Welford-style updates (numerically stable for the long
//! near-constant delay streams this workspace produces). The paper's headline
//! circuit-level metric, the relative spread **3σ/μ**, is provided directly.

use serde::{Deserialize, Serialize};

/// Single-pass summary statistics over a stream of `f64` samples.
///
/// # Example
///
/// ```
/// use ntv_mc::stats::Summary;
/// let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.std_dev() - 2.138089935299395).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    m3: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Create an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not finite — a NaN delay always indicates a modelling
    /// bug upstream and must not be silently averaged away.
    pub fn add(&mut self, x: f64) {
        assert!(
            x.is_finite(),
            "summary statistics require finite samples, got {x}"
        );
        let n0 = self.count as f64;
        self.count += 1;
        let n = self.count as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let term1 = delta * delta_n * n0;
        self.mean += delta_n;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another summary into this one (parallel-reduction friendly).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let n = n1 + n2;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let m2 = self.m2 + other.m2 + delta2 * n1 * n2 / n;
        let m3 = self.m3
            + other.m3
            + delta2 * delta * n1 * n2 * (n1 - n2) / (n * n)
            + 3.0 * delta * (n1 * other.m2 - n2 * self.m2) / n;
        self.mean += delta * n2 / n;
        self.m2 = m2;
        self.m3 = m3;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of samples seen.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean.
    ///
    /// Returns 0 for an empty summary.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (n−1 denominator).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation σ/μ.
    ///
    /// Returns 0 when the mean is zero.
    #[must_use]
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }

    /// The paper's delay-variation metric **3σ/μ**, as a fraction (not %).
    ///
    /// Fig 1 reports, e.g., `3σ/μ = 35.49 %` for a single 90 nm inverter at
    /// 0.5 V; that corresponds to `three_sigma_over_mu() == 0.3549`.
    #[must_use]
    pub fn three_sigma_over_mu(&self) -> f64 {
        3.0 * self.cv()
    }

    /// Sample skewness (g1, biased).
    #[must_use]
    pub fn skewness(&self) -> f64 {
        if self.count < 3 || self.m2 == 0.0 {
            return 0.0;
        }
        let n = self.count as f64;
        (n.sqrt() * self.m3) / self.m2.powf(1.5)
    }

    /// Smallest sample seen.
    ///
    /// Returns `+∞` for an empty summary.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen.
    ///
    /// Returns `−∞` for an empty summary.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Pearson correlation of paired samples.
///
/// Used to validate common-random-number solvers: with shared seeds, chip
/// delays at nearby voltages are near-perfectly correlated, which is what
/// makes the margin bisection monotone sample-by-sample.
///
/// # Panics
///
/// Panics if the slices differ in length or have fewer than 2 samples.
///
/// # Example
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.1, 3.9, 6.2, 7.8];
/// assert!(ntv_mc::stats::pearson(&x, &y) > 0.99);
/// ```
#[must_use]
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "paired samples must have equal length");
    assert!(x.len() >= 2, "correlation needs at least two samples");
    let n = x.len() as f64;
    let mx = crate::reduce::sum_ordered(x.iter().copied()) / n;
    let my = crate::reduce::sum_ordered(y.iter().copied()) / n;
    // Each accumulator folds left-to-right over the same pairing as the
    // legacy three-accumulator loop, so every sum is bit-identical to it.
    let sxy = crate::reduce::sum_ordered(x.iter().zip(y).map(|(&a, &b)| (a - mx) * (b - my)));
    let (sxx, syy) = crate::reduce::sum2_ordered(
        x.iter()
            .zip(y)
            .map(|(&a, &b)| ((a - mx) * (a - mx), (b - my) * (b - my))),
    );
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.three_sigma_over_mu(), 0.0);
    }

    #[test]
    fn matches_two_pass_reference() {
        let data: Vec<f64> = (0..1000)
            .map(|i| f64::from((i * 37) % 101) * 0.13 + 5.0)
            .collect();
        let s: Summary = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() as f64 - 1.0);
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.variance() - var).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| f64::from(i).sin() * 2.0 + 3.0).collect();
        let whole: Summary = data.iter().copied().collect();
        let mut left: Summary = data[..200].iter().copied().collect();
        let right: Summary = data[200..].iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert!((left.skewness() - whole.skewness()).abs() < 1e-8);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed: lognormal-ish samples.
        let s: Summary = (0..10_000)
            .map(|i| (f64::from(i % 97) / 97.0 * 3.0 - 1.5_f64).exp())
            .collect();
        assert!(s.skewness() > 0.5);
    }

    #[test]
    fn three_sigma_over_mu_example() {
        let s: Summary = [9.0, 10.0, 11.0].into_iter().collect();
        assert!((s.three_sigma_over_mu() - 3.0 * 1.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_known_cases() {
        let x = [1.0, 2.0, 3.0];
        assert!((pearson(&x, &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pearson_rejects_ragged_pairs() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let mut s = Summary::new();
        s.add(f64::NAN);
    }
}
