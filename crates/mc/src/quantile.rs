//! Empirical quantiles.
//!
//! The architecture study compares distributions at their **99 % point**
//! ("fo4chipd" in the paper): the number of spares (Table 1) and the voltage
//! margin (Table 2) are both defined by matching q99 of a mitigated system to
//! q99 of the nominal-voltage baseline. [`Quantiles`] owns a sorted copy of a
//! sample and answers interpolated quantile queries.

use serde::{Deserialize, Serialize};

use crate::error::SampleError;

/// A sorted sample supporting interpolated quantile queries.
///
/// Uses the common linear-interpolation definition (type 7 in the
/// Hyndman–Fan taxonomy, the default of R and NumPy).
///
/// # Example
///
/// ```
/// use ntv_mc::quantile::Quantiles;
/// let q = Quantiles::from_samples(vec![4.0, 1.0, 3.0, 2.0]);
/// assert_eq!(q.quantile(0.0), 1.0);
/// assert_eq!(q.quantile(1.0), 4.0);
/// assert_eq!(q.quantile(0.5), 2.5);
/// assert_eq!(q.median(), 2.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Build from an unsorted sample, rejecting empty or non-finite input.
    ///
    /// # Errors
    ///
    /// Returns [`SampleError::Empty`] for an empty sample and
    /// [`SampleError::NonFinite`] (with the offending index) if any value
    /// is NaN or infinite.
    pub fn try_from_samples(mut samples: Vec<f64>) -> Result<Self, SampleError> {
        crate::error::validate(&samples)?;
        samples.sort_by(f64::total_cmp);
        Ok(Self { sorted: samples })
    }

    /// Build from an unsorted sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-finite values; use
    /// [`Quantiles::try_from_samples`] to handle those as errors.
    #[must_use]
    pub fn from_samples(samples: Vec<f64>) -> Self {
        // ntv:allow(panic-path): documented panicking convenience; `try_from_samples` is the total API
        Self::try_from_samples(samples).expect("quantiles require a non-empty finite sample")
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Interpolated quantile for probability `p ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile requires p in [0,1], got {p}"
        );
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let h = p * (n - 1) as f64;
        // `h ≤ n-1` already, but the clamp makes the cast's range explicit
        // (and keeps the truncation lint happy without a waiver).
        let lo = (h.floor() as usize).min(n - 1);
        let hi = (h.ceil() as usize).min(n - 1);
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = h - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// The 99 % point — the paper's chip-delay comparison statistic.
    #[must_use]
    pub fn q99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Median (50 % point).
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// Borrow the sorted sample.
    #[must_use]
    pub fn as_sorted_slice(&self) -> &[f64] {
        &self.sorted
    }

    /// Consume and return the sorted sample.
    #[must_use]
    pub fn into_sorted_vec(self) -> Vec<f64> {
        self.sorted
    }
}

impl FromIterator<f64> for Quantiles {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self::from_samples(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_sample() {
        let q = Quantiles::from_samples(vec![7.0]);
        assert_eq!(q.quantile(0.0), 7.0);
        assert_eq!(q.quantile(0.37), 7.0);
        assert_eq!(q.quantile(1.0), 7.0);
    }

    #[test]
    fn interpolation_matches_numpy_default() {
        // numpy.quantile([1,2,3,4,5], 0.99) == 4.96
        let q = Quantiles::from_samples(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((q.q99() - 4.96).abs() < 1e-12);
        // numpy.quantile([1,2,3,4], 0.25) == 1.75
        let q = Quantiles::from_samples(vec![4.0, 3.0, 2.0, 1.0]);
        assert!((q.quantile(0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_monotone_in_p() {
        let q: Quantiles = (0..100).map(|i| f64::from((i * 61) % 100)).collect();
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=50 {
            let v = q.quantile(f64::from(i) / 50.0);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn min_max_and_bounds() {
        let q = Quantiles::from_samples(vec![3.0, -1.0, 10.0]);
        assert_eq!(q.min(), -1.0);
        assert_eq!(q.max(), 10.0);
        assert_eq!(q.quantile(0.0), q.min());
        assert_eq!(q.quantile(1.0), q.max());
    }

    #[test]
    #[should_panic(expected = "non-empty finite sample")]
    fn empty_rejected() {
        let _ = Quantiles::from_samples(vec![]);
    }

    #[test]
    fn nan_input_is_an_error_not_a_panic() {
        use crate::error::SampleError;
        let r = Quantiles::try_from_samples(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(r, Err(SampleError::NonFinite { index: 1 }));
        let r = Quantiles::try_from_samples(vec![f64::INFINITY]);
        assert_eq!(r, Err(SampleError::NonFinite { index: 0 }));
        assert_eq!(Quantiles::try_from_samples(vec![]), Err(SampleError::Empty));
    }

    #[test]
    fn try_from_samples_accepts_finite_input() {
        let q = Quantiles::try_from_samples(vec![2.0, 1.0]).expect("finite");
        assert_eq!(q.as_sorted_slice(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "p in [0,1]")]
    fn out_of_range_p_rejected() {
        let q = Quantiles::from_samples(vec![1.0]);
        let _ = q.quantile(1.5);
    }
}
