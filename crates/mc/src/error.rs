//! Errors for sample-based constructors.
//!
//! [`Quantiles`](crate::Quantiles) and [`Ecdf`](crate::Ecdf) both require a
//! non-empty, all-finite sample; the fallible `try_from_samples`
//! constructors report violations through [`SampleError`] instead of
//! panicking, so Monte-Carlo pipelines can surface a bad batch (a NaN from
//! a degenerate delay model, an empty sweep) as a recoverable error.

/// Why a sample was rejected by a statistics constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleError {
    /// The sample contained no values.
    Empty,
    /// The sample contained a NaN or infinite value at the given index.
    NonFinite {
        /// Index of the first offending value in the input order.
        index: usize,
    },
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::Empty => f.write_str("sample is empty"),
            SampleError::NonFinite { index } => {
                write!(f, "sample contains a non-finite value at index {index}")
            }
        }
    }
}

impl std::error::Error for SampleError {}

/// Validate a sample: non-empty and all-finite.
///
/// Returns the first offending index so callers can point at the bad draw.
pub(crate) fn validate(samples: &[f64]) -> Result<(), SampleError> {
    if samples.is_empty() {
        return Err(SampleError::Empty);
    }
    if let Some(index) = samples.iter().position(|x| !x.is_finite()) {
        return Err(SampleError::NonFinite { index });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_rejected() {
        assert_eq!(validate(&[]), Err(SampleError::Empty));
    }

    #[test]
    fn first_offender_is_reported() {
        let r = validate(&[1.0, f64::NAN, f64::INFINITY]);
        assert_eq!(r, Err(SampleError::NonFinite { index: 1 }));
    }

    #[test]
    fn finite_samples_pass() {
        assert_eq!(validate(&[0.0, -1.5, 3.0]), Ok(()));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(SampleError::Empty.to_string(), "sample is empty");
        assert!(SampleError::NonFinite { index: 7 }
            .to_string()
            .contains("index 7"));
    }
}
