//! Deterministic random-number streams.
//!
//! Every experiment in this workspace takes an explicit `u64` seed, and
//! derives independent sub-streams from string labels, so that
//!
//! * results are bit-reproducible across runs,
//! * common-random-number (CRN) comparisons are possible: two configurations
//!   evaluated with the same seed see the same process-variation draws, which
//!   removes Monte-Carlo noise from *differences* (used heavily by the
//!   voltage-margin bisection in `ntv-core`),
//! * adding a new consumer of randomness does not perturb existing streams
//!   (each consumer derives its own labelled stream).

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Derive a child seed from a parent seed and a label using the FNV-1a hash.
///
/// This is not cryptographic; it only needs to decorrelate streams, which is
/// sufficient for Monte-Carlo use with a counter-based generator underneath.
///
/// # Example
///
/// ```
/// let a = ntv_mc::rng::derive_seed(1, "lanes");
/// let b = ntv_mc::rng::derive_seed(1, "paths");
/// assert_ne!(a, b);
/// assert_eq!(a, ntv_mc::rng::derive_seed(1, "lanes"));
/// ```
#[must_use]
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finalizer) so nearby seeds diverge.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// A seeded random stream with convenience samplers for this workspace.
///
/// Wraps [`SmallRng`] (fast, non-cryptographic — appropriate for Monte-Carlo)
/// and adds Gaussian sampling via the Marsaglia polar method.
///
/// # Example
///
/// ```
/// use ntv_mc::rng::StreamRng;
/// let mut rng = StreamRng::from_seed(7);
/// let x = rng.standard_normal();
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct StreamRng {
    inner: SmallRng,
    /// Cached second output of the polar method.
    spare_normal: Option<f64>,
}

impl StreamRng {
    /// Create a stream from a raw seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Create a stream from a seed and a purpose label (see [`derive_seed`]).
    #[must_use]
    pub fn from_seed_and_label(seed: u64, label: &str) -> Self {
        Self::from_seed(derive_seed(seed, label))
    }

    /// Split off an independent child stream identified by `label`.
    ///
    /// The child is derived from fresh entropy drawn from `self`, mixed with
    /// the label, so repeated splits with distinct labels are decorrelated
    /// from each other and from the parent's future output.
    #[must_use]
    pub fn split(&mut self, label: &str) -> Self {
        let fresh = self.inner.next_u64();
        Self::from_seed(derive_seed(fresh, label))
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform sample in the open interval `(0, 1)`.
    ///
    /// Useful when the value feeds an inverse CDF that is singular at 0 or 1.
    pub fn uniform_open(&mut self) -> f64 {
        loop {
            let u = self.inner.gen::<f64>();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Standard normal sample (Marsaglia polar method).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u: f64 = 2.0 * self.inner.gen::<f64>() - 1.0;
            let v: f64 = 2.0 * self.inner.gen::<f64>() - 1.0;
            let s: f64 = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * f);
                return u * f;
            }
        }
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "standard deviation must be finite and non-negative, got {std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        self.inner.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(3, "a"), derive_seed(3, "a"));
        assert_ne!(derive_seed(3, "a"), derive_seed(3, "b"));
        assert_ne!(derive_seed(3, "a"), derive_seed(4, "a"));
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = StreamRng::from_seed(99);
        let mut b = StreamRng::from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = StreamRng::from_seed(5);
        let mut c1 = parent.split("one");
        let mut c2 = parent.split("two");
        let x: Vec<f64> = (0..8).map(|_| c1.uniform()).collect();
        let y: Vec<f64> = (0..8).map(|_| c2.uniform()).collect();
        assert_ne!(x, y);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StreamRng::from_seed(1234);
        let s: Summary = (0..200_000).map(|_| rng.standard_normal()).collect();
        assert!(s.mean().abs() < 0.01, "mean {}", s.mean());
        assert!((s.std_dev() - 1.0).abs() < 0.01, "std {}", s.std_dev());
        assert!(s.skewness().abs() < 0.05, "skew {}", s.skewness());
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StreamRng::from_seed(77);
        let s: Summary = (0..100_000).map(|_| rng.normal(10.0, 2.0)).collect();
        assert!((s.mean() - 10.0).abs() < 0.05);
        assert!((s.std_dev() - 2.0).abs() < 0.05);
    }

    #[test]
    fn uniform_open_never_zero() {
        let mut rng = StreamRng::from_seed(2);
        for _ in 0..10_000 {
            let u = rng.uniform_open();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn normal_rejects_negative_sigma() {
        let mut rng = StreamRng::from_seed(0);
        let _ = rng.normal(0.0, -1.0);
    }

    #[test]
    fn index_covers_range() {
        let mut rng = StreamRng::from_seed(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
