//! Deterministic random-number streams.
//!
//! Every experiment in this workspace takes an explicit `u64` seed, and
//! derives independent sub-streams from string labels, so that
//!
//! * results are bit-reproducible across runs,
//! * common-random-number (CRN) comparisons are possible: two configurations
//!   evaluated with the same seed see the same process-variation draws, which
//!   removes Monte-Carlo noise from *differences* (used heavily by the
//!   voltage-margin bisection in `ntv-core`),
//! * adding a new consumer of randomness does not perturb existing streams
//!   (each consumer derives its own labelled stream).
//!
//! Two generator families implement the shared [`SampleStream`] sampler
//! interface:
//!
//! * [`CounterRng`] — the **counter-based** generator every library-level
//!   Monte-Carlo loop must use. It maps `(seed, stream label, sample index)`
//!   to an independent draw sequence, so sample *i* is a pure function of the
//!   seed and *i*: samplers can be evaluated in any order, split across
//!   threads, and paired across configurations (CRN) *by construction*.
//! * [`StreamRng`] — the legacy sequential stream (a seeded [`SmallRng`]).
//!   Kept for gate-level circuit Monte Carlo and exploratory harness code;
//!   new index-addressed sampling paths should take a [`CounterRng`].

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Derive a child seed from a parent seed and a label using the FNV-1a hash.
///
/// This is not cryptographic; it only needs to decorrelate streams, which is
/// sufficient for Monte-Carlo use with a counter-based generator underneath.
///
/// # Example
///
/// ```
/// let a = ntv_mc::rng::derive_seed(1, "lanes");
/// let b = ntv_mc::rng::derive_seed(1, "paths");
/// assert_ne!(a, b);
/// assert_eq!(a, ntv_mc::rng::derive_seed(1, "lanes"));
/// ```
#[must_use]
pub fn derive_seed(seed: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    // Final avalanche (splitmix64 finalizer) so nearby seeds diverge.
    splitmix_finalize(h)
}

/// The additive constant of splitmix64 (2⁶⁴ / φ, forced odd).
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// The splitmix64 finalizer: a full-avalanche bijection on `u64`.
#[inline]
#[must_use]
fn splitmix_finalize(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The common sampler interface over a uniform `u64` source.
///
/// Implemented by both [`StreamRng`] (sequential) and [`CounterDraws`]
/// (counter-based), so Monte-Carlo code can be written once and driven
/// either by a legacy stream or by index-addressed draws.
pub trait SampleStream {
    /// Next raw uniform 64-bit word.
    fn next_word(&mut self) -> u64;

    /// Access the cached second output of the polar normal method.
    fn spare_normal_slot(&mut self) -> &mut Option<f64>;

    /// Uniform sample in `[0, 1)` with 53-bit resolution.
    fn uniform(&mut self) -> f64 {
        // 53 high bits — the standard IEEE-double uniform construction.
        (self.next_word() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in the open interval `(0, 1)`.
    ///
    /// Useful when the value feeds an inverse CDF that is singular at 0 or 1.
    fn uniform_open(&mut self) -> f64 {
        loop {
            let u = self.uniform();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Standard normal sample (Marsaglia polar method).
    fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal_slot().take() {
            return z;
        }
        loop {
            let u: f64 = 2.0 * self.uniform() - 1.0;
            let v: f64 = 2.0 * self.uniform() - 1.0;
            let s: f64 = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                *self.spare_normal_slot() = Some(v * f);
                return u * f;
            }
        }
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "standard deviation must be finite and non-negative, got {std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Uniform integer in `[0, n)` (Lemire's unbiased multiply-shift).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        let n = n as u64;
        // Rejection threshold: 2^64 mod n, computed as (-n) mod n.
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = u128::from(self.next_word()) * u128::from(n);
            if (m as u64) >= threshold {
                #[allow(clippy::cast_possible_truncation)]
                return (m >> 64) as usize;
            }
        }
    }
}

/// A counter-based random generator: `(key, sample index) → draw sequence`.
///
/// `CounterRng` itself is an immutable *stream descriptor* (a 64-bit key
/// derived from `(seed, label)` via [`derive_seed`]). Calling [`at`] with a
/// sample index yields a [`CounterDraws`] cursor whose entire sequence is a
/// pure function of `(key, index)` — splitmix64 seeded through a
/// Philox-style key/counter mix. Consequences:
///
/// * **Order independence** — samples can be generated in any order or in
///   parallel and are bit-identical to the sequential evaluation.
/// * **CRN by construction** — two configurations evaluated at the same
///   `(seed, label, index)` see the same underlying draws.
/// * **Stability under growth** — adding draws to sample *i* never perturbs
///   sample *j*.
///
/// [`at`]: CounterRng::at
///
/// # Example
///
/// ```
/// use ntv_mc::rng::{CounterRng, SampleStream};
/// let stream = CounterRng::new(2012, "chip-delay");
/// let a = stream.at(17).standard_normal();
/// let b = stream.at(17).standard_normal();
/// assert_eq!(a.to_bits(), b.to_bits()); // pure function of (seed, label, 17)
/// assert_ne!(a.to_bits(), stream.at(18).standard_normal().to_bits());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterRng {
    key: u64,
}

impl CounterRng {
    /// Stream for `(seed, label)` — the labelled-stream scheme shared with
    /// [`StreamRng::from_seed_and_label`].
    #[must_use]
    pub fn new(seed: u64, label: &str) -> Self {
        Self {
            key: derive_seed(seed, label),
        }
    }

    /// Stream from a raw 64-bit key (e.g. a previously derived seed).
    #[must_use]
    pub fn from_key(key: u64) -> Self {
        Self { key }
    }

    /// The stream's key.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Derive an independent child stream identified by `label`.
    ///
    /// Unlike [`StreamRng::split`], this is deterministic in `(key, label)`
    /// alone — no hidden state advances — so repeated calls commute.
    #[must_use]
    pub fn stream(&self, label: &str) -> Self {
        Self {
            key: derive_seed(self.key, label),
        }
    }

    /// The draw sequence of sample `index`: a pure function of
    /// `(key, index)`.
    #[must_use]
    pub fn at(&self, index: u64) -> CounterDraws {
        // Philox-style key/counter mix: avalanche the counter, fold in the
        // key, avalanche again. Both rounds are bijections, so distinct
        // (key, index) pairs cannot collide systematically.
        let state = splitmix_finalize(
            self.key ^ splitmix_finalize(index.wrapping_mul(GOLDEN_GAMMA) ^ 0x1405_7b7e_f767_814f),
        );
        CounterDraws {
            state,
            spare_normal: None,
        }
    }

    /// Batch draw: `out[i] = self.at(first + i).uniform()`.
    ///
    /// The `SampleStream`-compatible bulk path — each element is the first
    /// half-open-uniform draw of its own `(key, index)` cell, bit-identical
    /// to the scalar [`at`](CounterRng::at) path by construction. The
    /// counter mix is pure integer arithmetic with no cross-element
    /// dependence, written as a fixed-stride loop.
    pub fn uniform_batch(&self, first: u64, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.at(first.wrapping_add(i as u64)).uniform();
        }
    }

    /// Batch draw: `out[i] = self.at(first + i).uniform_open()`.
    ///
    /// Open-interval variant of [`uniform_batch`](CounterRng::uniform_batch);
    /// this is the draw the engine's batched maximum-sampling kernels
    /// consume (quantile transforms require `u > 0`).
    pub fn uniform_open_batch(&self, first: u64, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.at(first.wrapping_add(i as u64)).uniform_open();
        }
    }

    /// Batch draw: `out[i] = self.at(first + i).standard_normal()`.
    ///
    /// Each element is the first polar-method normal of its own cell —
    /// bit-identical to the scalar path; the spare second output is
    /// discarded exactly as a fresh [`at`](CounterRng::at) cursor would.
    pub fn standard_normal_batch(&self, first: u64, out: &mut [f64]) {
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.at(first.wrapping_add(i as u64)).standard_normal();
        }
    }
}

/// The draw cursor of one `(key, index)` cell of a [`CounterRng`].
///
/// Successive draws step a splitmix64 generator whose seed is the mixed
/// `(key, index)` state, so the *j*-th draw is a pure function of
/// `(key, index, j)`.
#[derive(Debug, Clone)]
pub struct CounterDraws {
    state: u64,
    /// Cached second output of the polar method.
    spare_normal: Option<f64>,
}

impl SampleStream for CounterDraws {
    fn next_word(&mut self) -> u64 {
        // splitmix64: Weyl sequence through the finalizer.
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        splitmix_finalize(self.state)
    }

    fn spare_normal_slot(&mut self) -> &mut Option<f64> {
        &mut self.spare_normal
    }
}

/// A seeded sequential random stream with convenience samplers.
///
/// Wraps [`SmallRng`] (fast, non-cryptographic — appropriate for Monte-Carlo)
/// and adds Gaussian sampling via the Marsaglia polar method. This is the
/// *stateful* generator: draws depend on every draw before them, so a
/// `StreamRng` loop cannot be split across threads without changing results.
/// Library-level experiment loops use [`CounterRng`] instead; `StreamRng`
/// remains for gate-level circuit Monte Carlo and harness code.
///
/// # Example
///
/// ```
/// use ntv_mc::rng::StreamRng;
/// let mut rng = StreamRng::from_seed(7);
/// let x = rng.standard_normal();
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct StreamRng {
    inner: SmallRng,
    /// Cached second output of the polar method.
    spare_normal: Option<f64>,
}

impl StreamRng {
    /// Create a stream from a raw seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self {
            inner: SmallRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Create a stream from a seed and a purpose label (see [`derive_seed`]).
    #[must_use]
    pub fn from_seed_and_label(seed: u64, label: &str) -> Self {
        Self::from_seed(derive_seed(seed, label))
    }

    /// Split off an independent child stream identified by `label`.
    ///
    /// The child is derived from fresh entropy drawn from `self`, mixed with
    /// the label, so repeated splits with distinct labels are decorrelated
    /// from each other and from the parent's future output.
    #[must_use]
    pub fn split(&mut self, label: &str) -> Self {
        let fresh = self.inner.next_u64();
        Self::from_seed(derive_seed(fresh, label))
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform sample in the open interval `(0, 1)`.
    ///
    /// Useful when the value feeds an inverse CDF that is singular at 0 or 1.
    pub fn uniform_open(&mut self) -> f64 {
        loop {
            let u = self.inner.gen::<f64>();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Standard normal sample (Marsaglia polar method).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u: f64 = 2.0 * self.inner.gen::<f64>() - 1.0;
            let v: f64 = 2.0 * self.inner.gen::<f64>() - 1.0;
            let s: f64 = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                self.spare_normal = Some(v * f);
                return u * f;
            }
        }
    }

    /// Normal sample with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or not finite.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "standard deviation must be finite and non-negative, got {std_dev}"
        );
        mean + std_dev * self.standard_normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        self.inner.gen_range(0..n)
    }
}

/// `StreamRng` exposes the same sampler interface; the inherent methods are
/// kept (and delegated to) so existing sequential call sites are untouched.
impl SampleStream for StreamRng {
    fn next_word(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn spare_normal_slot(&mut self) -> &mut Option<f64> {
        &mut self.spare_normal
    }

    // Keep the trait view bit-identical to the inherent methods: `uniform`
    // must go through SmallRng's own f64 path, not the default 53-bit
    // construction over `next_word` (same distribution, different draws).
    fn uniform(&mut self) -> f64 {
        StreamRng::uniform(self)
    }

    fn uniform_open(&mut self) -> f64 {
        StreamRng::uniform_open(self)
    }

    fn standard_normal(&mut self) -> f64 {
        StreamRng::standard_normal(self)
    }

    fn index(&mut self, n: usize) -> usize {
        StreamRng::index(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn derive_seed_is_deterministic_and_label_sensitive() {
        assert_eq!(derive_seed(3, "a"), derive_seed(3, "a"));
        assert_ne!(derive_seed(3, "a"), derive_seed(3, "b"));
        assert_ne!(derive_seed(3, "a"), derive_seed(4, "a"));
    }

    #[test]
    fn streams_are_reproducible() {
        let mut a = StreamRng::from_seed(99);
        let mut b = StreamRng::from_seed(99);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn split_streams_diverge() {
        let mut parent = StreamRng::from_seed(5);
        let mut c1 = parent.split("one");
        let mut c2 = parent.split("two");
        let x: Vec<f64> = (0..8).map(|_| c1.uniform()).collect();
        let y: Vec<f64> = (0..8).map(|_| c2.uniform()).collect();
        assert_ne!(x, y);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StreamRng::from_seed(1234);
        let s: Summary = (0..200_000).map(|_| rng.standard_normal()).collect();
        assert!(s.mean().abs() < 0.01, "mean {}", s.mean());
        assert!((s.std_dev() - 1.0).abs() < 0.01, "std {}", s.std_dev());
        assert!(s.skewness().abs() < 0.05, "skew {}", s.skewness());
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StreamRng::from_seed(77);
        let s: Summary = (0..100_000).map(|_| rng.normal(10.0, 2.0)).collect();
        assert!((s.mean() - 10.0).abs() < 0.05);
        assert!((s.std_dev() - 2.0).abs() < 0.05);
    }

    #[test]
    fn uniform_open_never_zero() {
        let mut rng = StreamRng::from_seed(2);
        for _ in 0..10_000 {
            let u = rng.uniform_open();
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn normal_rejects_negative_sigma() {
        let mut rng = StreamRng::from_seed(0);
        let _ = rng.normal(0.0, -1.0);
    }

    #[test]
    fn index_covers_range() {
        let mut rng = StreamRng::from_seed(11);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.index(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    // ---- CounterRng ----

    #[test]
    fn counter_draws_are_pure_in_seed_label_index() {
        let a = CounterRng::new(7, "x");
        let b = CounterRng::new(7, "x");
        for i in [0u64, 1, 2, 1_000_000, u64::MAX] {
            let xs: Vec<u64> = {
                let mut d = a.at(i);
                (0..16).map(|_| d.next_word()).collect()
            };
            let ys: Vec<u64> = {
                let mut d = b.at(i);
                (0..16).map(|_| d.next_word()).collect()
            };
            assert_eq!(xs, ys, "index {i}");
        }
    }

    #[test]
    fn counter_indexes_and_streams_decorrelate() {
        let s = CounterRng::new(7, "x");
        assert_ne!(s.at(0).next_word(), s.at(1).next_word());
        assert_ne!(
            CounterRng::new(7, "x").at(3).next_word(),
            CounterRng::new(7, "y").at(3).next_word()
        );
        assert_ne!(
            CounterRng::new(7, "x").at(3).next_word(),
            CounterRng::new(8, "x").at(3).next_word()
        );
        assert_eq!(s.stream("child").key(), s.stream("child").key());
        assert_ne!(s.stream("child").key(), s.stream("other").key());
    }

    #[test]
    fn counter_uniform_is_in_unit_interval() {
        let s = CounterRng::new(42, "u");
        for i in 0..10_000u64 {
            let mut d = s.at(i);
            let u = d.uniform();
            assert!((0.0..1.0).contains(&u), "index {i}: {u}");
            let o = d.uniform_open();
            assert!(o > 0.0 && o < 1.0);
        }
    }

    #[test]
    fn counter_index_is_unbiased_across_cells() {
        let s = CounterRng::new(9, "idx");
        let mut counts = [0usize; 7];
        for i in 0..70_000u64 {
            counts[s.at(i).index(7)] += 1;
        }
        for (k, &c) in counts.iter().enumerate() {
            // Expected 10_000 per bucket; 5σ ≈ 460.
            assert!((c as i64 - 10_000).abs() < 500, "bucket {k}: {c}");
        }
    }

    #[test]
    fn counter_batch_draws_are_bit_identical_to_scalar_at() {
        let s = CounterRng::new(2012, "batch");
        // Sizes straddle lane widths; offsets exercise non-zero bases and
        // the wrapping edge near u64::MAX.
        for first in [0u64, 17, u64::MAX - 3] {
            for n in [0usize, 1, 5, 8, 13, 64] {
                let mut u = vec![0.0; n];
                let mut uo = vec![0.0; n];
                let mut z = vec![0.0; n];
                s.uniform_batch(first, &mut u);
                s.uniform_open_batch(first, &mut uo);
                s.standard_normal_batch(first, &mut z);
                for i in 0..n {
                    let idx = first.wrapping_add(i as u64);
                    assert_eq!(u[i].to_bits(), s.at(idx).uniform().to_bits());
                    assert_eq!(uo[i].to_bits(), s.at(idx).uniform_open().to_bits());
                    assert_eq!(z[i].to_bits(), s.at(idx).standard_normal().to_bits());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn counter_index_rejects_zero() {
        let _ = CounterRng::new(0, "z").at(0).index(0);
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn counter_normal_rejects_negative_sigma() {
        let _ = CounterRng::new(0, "z").at(0).normal(0.0, -1.0);
    }
}
