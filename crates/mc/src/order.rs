//! Order-statistics helpers.
//!
//! The chip delay of an N-wide SIMD datapath is the **maximum** over N lane
//! delays, each of which is the maximum over ~100 critical-path delays
//! (paper §3.2). Structural duplication (§4.1) drops the α slowest of
//! `128 + α` lanes, i.e. takes the 128-th *smallest* order statistic. This
//! module provides:
//!
//! * O(1) sampling of `max(X₁..Xₙ)` for i.i.d. normal `Xᵢ` via the inverse
//!   CDF (`F_max = Φⁿ` ⇒ `max = Φ⁻¹(U^{1/n})`),
//! * k-th order statistic selection from a sample,
//! * Blom's approximation to expected normal order statistics (used for
//!   sanity checks and analytic comparisons).

use crate::normal;
use crate::rng::SampleStream;
#[cfg(test)]
use crate::rng::StreamRng;

/// Sample the maximum of `n` i.i.d. `N(mean, std_dev²)` variables in O(1).
///
/// Exact in distribution: if `U ~ Uniform(0,1)` then `Φ⁻¹(U^{1/n})` has the
/// distribution of the maximum of `n` standard normals. Generic over the
/// draw source, so it works with both a sequential [`crate::rng::StreamRng`]
/// and the per-index draws of a [`crate::rng::CounterRng`].
///
/// # Panics
///
/// Panics if `n == 0` or `std_dev < 0`.
///
/// # Example
///
/// ```
/// use ntv_mc::{order, rng::StreamRng};
/// let mut rng = StreamRng::from_seed(1);
/// let m = order::sample_max_normal(&mut rng, 100, 0.0, 1.0);
/// assert!(m.is_finite());
/// ```
pub fn sample_max_normal<R: SampleStream + ?Sized>(
    rng: &mut R,
    n: usize,
    mean: f64,
    std_dev: f64,
) -> f64 {
    assert!(n > 0, "maximum of zero variables is undefined");
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    if std_dev == 0.0 {
        return mean;
    }
    let u = rng.uniform_open();
    mean + std_dev * normal::quantile(max_cdf_target(u, n))
}

/// CDF target `u^{1/n}` of the maximum of `n` i.i.d. draws, computed in log
/// space and clamped into the open interval quantile functions accept.
///
/// If `U ~ Uniform(0,1)` then `F⁻¹(U^{1/n})` is distributed as the maximum
/// of `n` i.i.d. variables with CDF `F`; the same expression with a fixed
/// probability `p` in place of `U` gives the exact `p`-quantile of the
/// maximum. The log-space form stays accurate for `n` up to 10⁹ and for
/// subnormal `u`, where a naive `u.powf(1.0 / n)` loses all precision.
///
/// The dual survival-side target is [`max_survival_target`]; the two are
/// deliberately *not* derived from one another (`1 − x` would destroy the
/// sub-epsilon resolution each side carries near its own end).
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn max_cdf_target(u: f64, n: usize) -> f64 {
    assert!(n > 0, "maximum of zero variables is undefined");
    debug_assert!(u > 0.0 && u < 1.0, "probability must lie in (0,1)");
    // u^(1/n) computed in log space to stay accurate for large n.
    let p = (u.ln() / n as f64).exp();
    // Guard against p rounding to exactly 1.0 for tiny n and u ≈ 1.
    let p = p.min(1.0 - f64::EPSILON);
    p.max(f64::MIN_POSITIVE)
}

/// Survival target `1 − u^{1/n}` of the maximum of `n` i.i.d. draws,
/// computed stably via `−expm1(ln(u)/n)` and floored at the smallest
/// positive normal so inverse-survival lookups never receive exact zero.
///
/// For large `n`, `1 − u^{1/n} ≈ −ln(u)/n` shrinks far below `f64::EPSILON`;
/// the `expm1` form keeps full relative precision there where computing
/// `1.0 − max_cdf_target(u, n)` would cancel to zero. This is the shared
/// implementation of the survival-side max trick used by grid-based
/// inverse-survival samplers.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn max_survival_target(u: f64, n: usize) -> f64 {
    assert!(n > 0, "maximum of zero variables is undefined");
    debug_assert!(u > 0.0 && u < 1.0, "probability must lie in (0,1)");
    (-(u.ln() / n as f64).exp_m1()).max(f64::MIN_POSITIVE)
}

/// k-th smallest element (0-based) of a sample, by partial selection.
///
/// # Panics
///
/// Panics if `k >= samples.len()`.
#[must_use]
pub fn kth_smallest(samples: &[f64], k: usize) -> f64 {
    assert!(k < samples.len(), "order statistic index out of range");
    let mut v = samples.to_vec();
    let (_, kth, _) = v.select_nth_unstable_by(k, |a, b| a.total_cmp(b));
    *kth
}

/// Largest element of a non-empty sample.
///
/// # Panics
///
/// Panics if `samples` is empty.
#[must_use]
pub fn max(samples: &[f64]) -> f64 {
    assert!(
        !samples.is_empty(),
        "maximum of an empty sample is undefined"
    );
    samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Blom's approximation to the expected i-th order statistic (1-based,
/// ascending) of `n` standard normals: `Φ⁻¹((i − 3/8) / (n + 1/4))`.
///
/// # Panics
///
/// Panics if `i == 0` or `i > n`.
#[must_use]
pub fn blom_score(i: usize, n: usize) -> f64 {
    assert!(i >= 1 && i <= n, "order statistic index {i} out of 1..={n}");
    normal::quantile((i as f64 - 0.375) / (n as f64 + 0.25))
}

/// Expected maximum of `n` standard normals (Blom approximation).
#[must_use]
pub fn expected_max_normal(n: usize) -> f64 {
    blom_score(n, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn sample_max_matches_brute_force_distribution() {
        let mut fast = StreamRng::from_seed(10);
        let mut slow = StreamRng::from_seed(11);
        let n = 50;
        let fast_stats: Summary = (0..20_000)
            .map(|_| sample_max_normal(&mut fast, n, 0.0, 1.0))
            .collect();
        let slow_stats: Summary = (0..20_000)
            .map(|_| {
                (0..n)
                    .map(|_| slow.standard_normal())
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        assert!(
            (fast_stats.mean() - slow_stats.mean()).abs() < 0.02,
            "fast {} slow {}",
            fast_stats.mean(),
            slow_stats.mean()
        );
        assert!((fast_stats.std_dev() - slow_stats.std_dev()).abs() < 0.02);
    }

    #[test]
    fn sample_max_of_one_is_plain_normal() {
        let mut rng = StreamRng::from_seed(3);
        let s: Summary = (0..50_000)
            .map(|_| sample_max_normal(&mut rng, 1, 2.0, 3.0))
            .collect();
        assert!((s.mean() - 2.0).abs() < 0.05);
        assert!((s.std_dev() - 3.0).abs() < 0.05);
    }

    #[test]
    fn sample_max_zero_sigma() {
        let mut rng = StreamRng::from_seed(4);
        assert_eq!(sample_max_normal(&mut rng, 10, 5.0, 0.0), 5.0);
    }

    #[test]
    fn expected_max_grows_with_n() {
        let mut prev = f64::NEG_INFINITY;
        for n in [1, 2, 10, 100, 1000, 12_800] {
            let e = expected_max_normal(n);
            assert!(e > prev, "n={n}");
            prev = e;
        }
        // Known value: E[max of 100 std normals] ~ 2.50.
        assert!((expected_max_normal(100) - 2.50).abs() < 0.03);
    }

    #[test]
    fn kth_smallest_selects_correctly() {
        let v = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(kth_smallest(&v, 0), 1.0);
        assert_eq!(kth_smallest(&v, 2), 3.0);
        assert_eq!(kth_smallest(&v, 4), 5.0);
    }

    #[test]
    fn max_helper() {
        assert_eq!(max(&[1.0, 9.0, -3.0]), 9.0);
    }

    #[test]
    fn blom_median_is_zero() {
        // For odd n, the middle order statistic has expectation ~0.
        let mid = blom_score(51, 101);
        assert!(mid.abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "maximum of zero")]
    fn max_of_zero_vars_rejected() {
        let mut rng = StreamRng::from_seed(0);
        let _ = sample_max_normal(&mut rng, 0, 0.0, 1.0);
    }

    #[test]
    fn max_targets_are_complementary_for_moderate_inputs() {
        for &n in &[1usize, 2, 7, 100, 12_800] {
            for &u in &[0.01, 0.1, 0.5, 0.9, 0.99] {
                let p = max_cdf_target(u, n);
                let g = max_survival_target(u, n);
                assert!(p > 0.0 && p < 1.0);
                assert!(g > 0.0 && g < 1.0);
                assert!((p + g - 1.0).abs() < 1e-14, "n={n} u={u}: {p} + {g}");
            }
        }
    }

    #[test]
    fn max_survival_target_keeps_precision_at_extreme_n() {
        // 1 − u^{1/n} ≈ −ln(u)/n for huge n; the expm1 form keeps full
        // relative precision where the naive 1.0 − powf subtraction is
        // quantised to half-ulps of 1.0 (~7 significant digits at n = 10⁹).
        for &n in &[1_000_000usize, 1_000_000_000] {
            let g = max_survival_target(0.5, n);
            let expect = std::f64::consts::LN_2 / n as f64;
            assert!((g / expect - 1.0).abs() < 1e-6, "n={n}: {g} vs {expect}");
        }
    }

    #[test]
    fn max_cdf_target_handles_subnormal_u() {
        // Smallest positive subnormal: ln is finite, so the log-space root
        // is exact where powf underflows its intermediate.
        let u = f64::from_bits(1);
        let p = max_cdf_target(u, 10);
        assert!(p > 0.0 && p.is_finite());
        assert!((p.ln() - u.ln() / 10.0).abs() < 1e-12 * u.ln().abs());
        let g = max_survival_target(u, 10);
        assert!(g > 1.0 - 1e-12 && g <= 1.0);
    }

    #[test]
    fn max_targets_are_clamped_into_the_open_interval() {
        // u → 1⁻ with n = 1 would round the CDF target to exactly 1.0
        // without the clamp, and the survival floor keeps grid lookups off
        // exact zero.
        let u = 1.0 - f64::EPSILON / 2.0;
        assert!(max_cdf_target(u, 1) <= 1.0 - f64::EPSILON);
        assert!(max_survival_target(u, 1) >= f64::MIN_POSITIVE);
        assert!(max_cdf_target(f64::MIN_POSITIVE, 1) >= f64::MIN_POSITIVE);
    }

    #[test]
    fn max_targets_are_monotone_in_u() {
        for &n in &[1usize, 100, 12_800] {
            let mut prev_p = 0.0;
            let mut prev_g = 1.0;
            for i in 1..200 {
                let u = f64::from(i) / 200.0;
                let p = max_cdf_target(u, n);
                let g = max_survival_target(u, n);
                assert!(p >= prev_p, "cdf target not monotone at n={n} u={u}");
                assert!(g <= prev_g, "survival target not monotone at n={n} u={u}");
                prev_p = p;
                prev_g = g;
            }
        }
    }

    #[test]
    #[should_panic(expected = "maximum of zero")]
    fn max_survival_target_rejects_zero_n() {
        let _ = max_survival_target(0.5, 0);
    }
}
