//! Order-statistics helpers.
//!
//! The chip delay of an N-wide SIMD datapath is the **maximum** over N lane
//! delays, each of which is the maximum over ~100 critical-path delays
//! (paper §3.2). Structural duplication (§4.1) drops the α slowest of
//! `128 + α` lanes, i.e. takes the 128-th *smallest* order statistic. This
//! module provides:
//!
//! * O(1) sampling of `max(X₁..Xₙ)` for i.i.d. normal `Xᵢ` via the inverse
//!   CDF (`F_max = Φⁿ` ⇒ `max = Φ⁻¹(U^{1/n})`),
//! * k-th order statistic selection from a sample,
//! * Blom's approximation to expected normal order statistics (used for
//!   sanity checks and analytic comparisons).

use crate::normal;
use crate::rng::SampleStream;
#[cfg(test)]
use crate::rng::StreamRng;

/// Sample the maximum of `n` i.i.d. `N(mean, std_dev²)` variables in O(1).
///
/// Exact in distribution: if `U ~ Uniform(0,1)` then `Φ⁻¹(U^{1/n})` has the
/// distribution of the maximum of `n` standard normals. Generic over the
/// draw source, so it works with both a sequential [`crate::rng::StreamRng`]
/// and the per-index draws of a [`crate::rng::CounterRng`].
///
/// # Panics
///
/// Panics if `n == 0` or `std_dev < 0`.
///
/// # Example
///
/// ```
/// use ntv_mc::{order, rng::StreamRng};
/// let mut rng = StreamRng::from_seed(1);
/// let m = order::sample_max_normal(&mut rng, 100, 0.0, 1.0);
/// assert!(m.is_finite());
/// ```
pub fn sample_max_normal<R: SampleStream + ?Sized>(
    rng: &mut R,
    n: usize,
    mean: f64,
    std_dev: f64,
) -> f64 {
    assert!(n > 0, "maximum of zero variables is undefined");
    assert!(std_dev >= 0.0, "standard deviation must be non-negative");
    if std_dev == 0.0 {
        return mean;
    }
    let u = rng.uniform_open();
    // u^(1/n) computed in log space to stay accurate for large n.
    let p = (u.ln() / n as f64).exp();
    // Guard against p rounding to exactly 1.0 for tiny n and u ≈ 1.
    let p = p.min(1.0 - f64::EPSILON);
    mean + std_dev * normal::quantile(p.max(f64::MIN_POSITIVE))
}

/// k-th smallest element (0-based) of a sample, by partial selection.
///
/// # Panics
///
/// Panics if `k >= samples.len()`.
#[must_use]
pub fn kth_smallest(samples: &[f64], k: usize) -> f64 {
    assert!(k < samples.len(), "order statistic index out of range");
    let mut v = samples.to_vec();
    let (_, kth, _) = v.select_nth_unstable_by(k, |a, b| a.total_cmp(b));
    *kth
}

/// Largest element of a non-empty sample.
///
/// # Panics
///
/// Panics if `samples` is empty.
#[must_use]
pub fn max(samples: &[f64]) -> f64 {
    assert!(
        !samples.is_empty(),
        "maximum of an empty sample is undefined"
    );
    samples.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Blom's approximation to the expected i-th order statistic (1-based,
/// ascending) of `n` standard normals: `Φ⁻¹((i − 3/8) / (n + 1/4))`.
///
/// # Panics
///
/// Panics if `i == 0` or `i > n`.
#[must_use]
pub fn blom_score(i: usize, n: usize) -> f64 {
    assert!(i >= 1 && i <= n, "order statistic index {i} out of 1..={n}");
    normal::quantile((i as f64 - 0.375) / (n as f64 + 0.25))
}

/// Expected maximum of `n` standard normals (Blom approximation).
#[must_use]
pub fn expected_max_normal(n: usize) -> f64 {
    blom_score(n, n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;

    #[test]
    fn sample_max_matches_brute_force_distribution() {
        let mut fast = StreamRng::from_seed(10);
        let mut slow = StreamRng::from_seed(11);
        let n = 50;
        let fast_stats: Summary = (0..20_000)
            .map(|_| sample_max_normal(&mut fast, n, 0.0, 1.0))
            .collect();
        let slow_stats: Summary = (0..20_000)
            .map(|_| {
                (0..n)
                    .map(|_| slow.standard_normal())
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        assert!(
            (fast_stats.mean() - slow_stats.mean()).abs() < 0.02,
            "fast {} slow {}",
            fast_stats.mean(),
            slow_stats.mean()
        );
        assert!((fast_stats.std_dev() - slow_stats.std_dev()).abs() < 0.02);
    }

    #[test]
    fn sample_max_of_one_is_plain_normal() {
        let mut rng = StreamRng::from_seed(3);
        let s: Summary = (0..50_000)
            .map(|_| sample_max_normal(&mut rng, 1, 2.0, 3.0))
            .collect();
        assert!((s.mean() - 2.0).abs() < 0.05);
        assert!((s.std_dev() - 3.0).abs() < 0.05);
    }

    #[test]
    fn sample_max_zero_sigma() {
        let mut rng = StreamRng::from_seed(4);
        assert_eq!(sample_max_normal(&mut rng, 10, 5.0, 0.0), 5.0);
    }

    #[test]
    fn expected_max_grows_with_n() {
        let mut prev = f64::NEG_INFINITY;
        for n in [1, 2, 10, 100, 1000, 12_800] {
            let e = expected_max_normal(n);
            assert!(e > prev, "n={n}");
            prev = e;
        }
        // Known value: E[max of 100 std normals] ~ 2.50.
        assert!((expected_max_normal(100) - 2.50).abs() < 0.03);
    }

    #[test]
    fn kth_smallest_selects_correctly() {
        let v = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(kth_smallest(&v, 0), 1.0);
        assert_eq!(kth_smallest(&v, 2), 3.0);
        assert_eq!(kth_smallest(&v, 4), 5.0);
    }

    #[test]
    fn max_helper() {
        assert_eq!(max(&[1.0, 9.0, -3.0]), 9.0);
    }

    #[test]
    fn blom_median_is_zero() {
        // For odd n, the middle order statistic has expectation ~0.
        let mid = blom_score(51, 101);
        assert!(mid.abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "maximum of zero")]
    fn max_of_zero_vars_rejected() {
        let mut rng = StreamRng::from_seed(0);
        let _ = sample_max_normal(&mut rng, 0, 0.0, 1.0);
    }
}
