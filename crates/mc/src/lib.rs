#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Tests assert exact golden values; strict float equality is the point there.
#![cfg_attr(test, allow(clippy::float_cmp))]

//! Monte-Carlo and statistics toolkit used throughout the `ntv-simd` workspace.
//!
//! The variation study in Seo et al. (DAC 2012) is, at its core, a Monte-Carlo
//! order-statistics exercise: sample per-device threshold-voltage and
//! current-factor deviations, propagate them through a gate-delay model, and
//! look at extreme quantiles of maxima over many critical paths and SIMD
//! lanes. This crate provides the numerical machinery for that, implemented
//! from scratch on top of [`rand`]:
//!
//! * [`rng`] — deterministic seeding, labelled stream splitting and the
//!   counter-based [`CounterRng`] (index-addressed draws) so every experiment
//!   is reproducible and parallelizable without changing results,
//! * [`normal`] — the standard normal pdf/CDF/quantile function,
//! * [`quadrature`] — Gauss–Hermite rules for expectations under a normal,
//! * [`stats`] — streaming summary statistics (mean, σ, 3σ/μ, skewness),
//! * [`quantile`] — empirical quantiles of a sample,
//! * [`histogram`] — fixed-bin histograms for distribution plots,
//! * [`ecdf`] — empirical CDFs and Kolmogorov–Smirnov distance,
//! * [`error`] — the [`SampleError`] type returned by the fallible
//!   sample-based constructors,
//! * [`order`] — order-statistics helpers (sampling the maximum of *n*
//!   i.i.d. normals in O(1), Blom scores),
//! * [`qmc`] — a Halton low-discrepancy stream for variance-reduced
//!   quantile estimation,
//! * [`bootstrap`] — percentile-bootstrap confidence intervals,
//! * [`reduce`] — fixed-order and Neumaier-compensated f64 summation, the
//!   sanctioned shapes for the `ntv::reduction-order` lint.
//!
//! # Example
//!
//! ```
//! use ntv_mc::rng::StreamRng;
//! use ntv_mc::stats::Summary;
//!
//! let mut rng = StreamRng::from_seed_and_label(42, "example");
//! let summary: Summary = (0..10_000).map(|_| 3.0 + rng.standard_normal()).collect();
//! assert!((summary.mean() - 3.0).abs() < 0.05);
//! assert!((summary.std_dev() - 1.0).abs() < 0.05);
//! ```

pub mod bootstrap;
pub mod ecdf;
pub mod error;
pub mod histogram;
pub mod normal;
pub mod order;
pub mod qmc;
pub mod quadrature;
pub mod quantile;
pub mod reduce;
pub mod rng;
pub mod stats;

pub use ecdf::Ecdf;
pub use error::SampleError;
pub use histogram::Histogram;
pub use quadrature::GaussHermite;
pub use quantile::Quantiles;
pub use reduce::{sum2_ordered, sum_compensated, sum_ordered};
pub use rng::{CounterDraws, CounterRng, SampleStream, StreamRng};
pub use stats::Summary;
