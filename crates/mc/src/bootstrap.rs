//! Percentile-bootstrap confidence intervals.
//!
//! Monte-Carlo estimates of extreme quantiles (the 99 % chip-delay point)
//! carry sampling noise; the experiment harness reports bootstrap intervals
//! so paper-vs-measured comparisons in EXPERIMENTS.md are honest about it.

use crate::rng::StreamRng;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Whether `value` lies inside the interval (inclusive).
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Percentile bootstrap for an arbitrary statistic.
///
/// Resamples `samples` with replacement `resamples` times, evaluates
/// `statistic` on each, and returns the `[(1−level)/2, (1+level)/2]`
/// percentile interval.
///
/// # Panics
///
/// Panics if `samples` is empty, `resamples == 0`, or `level` is outside
/// `(0, 1)`.
///
/// # Example
///
/// ```
/// use ntv_mc::bootstrap::bootstrap_ci;
/// use ntv_mc::rng::StreamRng;
/// let data: Vec<f64> = (0..200).map(|i| f64::from(i % 10)).collect();
/// let mut rng = StreamRng::from_seed(9);
/// let ci = bootstrap_ci(&data, 500, 0.95, &mut rng, |s| {
///     s.iter().sum::<f64>() / s.len() as f64
/// });
/// assert!(ci.contains(4.5));
/// ```
pub fn bootstrap_ci(
    samples: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut StreamRng,
    mut statistic: impl FnMut(&[f64]) -> f64,
) -> ConfidenceInterval {
    assert!(!samples.is_empty(), "bootstrap requires samples");
    assert!(resamples > 0, "bootstrap requires at least one resample");
    assert!(
        level > 0.0 && level < 1.0,
        "level must be in (0,1), got {level}"
    );

    let estimate = statistic(samples);
    let mut stats = Vec::with_capacity(resamples);
    let mut scratch = vec![0.0; samples.len()];
    for _ in 0..resamples {
        for slot in &mut scratch {
            *slot = samples[rng.index(samples.len())];
        }
        stats.push(statistic(&scratch));
    }
    stats.sort_by(f64::total_cmp);
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((stats.len() as f64 - 1.0) * alpha).round() as usize;
    let hi_idx = ((stats.len() as f64 - 1.0) * (1.0 - alpha)).round() as usize;
    ConfidenceInterval {
        estimate,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean(s: &[f64]) -> f64 {
        s.iter().sum::<f64>() / s.len() as f64
    }

    #[test]
    fn interval_brackets_true_mean() {
        let mut rng = StreamRng::from_seed(42);
        let data: Vec<f64> = (0..1000).map(|_| 5.0 + rng.standard_normal()).collect();
        let ci = bootstrap_ci(&data, 400, 0.99, &mut rng, mean);
        assert!(ci.contains(5.0), "{ci:?}");
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
    }

    #[test]
    fn width_shrinks_with_sample_size() {
        let mut rng = StreamRng::from_seed(7);
        let small: Vec<f64> = (0..50).map(|_| rng.standard_normal()).collect();
        let large: Vec<f64> = (0..5000).map(|_| rng.standard_normal()).collect();
        let ci_small = bootstrap_ci(&small, 300, 0.95, &mut rng, mean);
        let ci_large = bootstrap_ci(&large, 300, 0.95, &mut rng, mean);
        assert!(ci_large.width() < ci_small.width());
    }

    #[test]
    fn degenerate_sample_gives_point_interval() {
        let mut rng = StreamRng::from_seed(1);
        let ci = bootstrap_ci(&[3.0; 20], 100, 0.9, &mut rng, mean);
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
        assert_eq!(ci.estimate, 3.0);
    }

    #[test]
    #[should_panic(expected = "requires samples")]
    fn empty_sample_rejected() {
        let mut rng = StreamRng::from_seed(0);
        let _ = bootstrap_ci(&[], 10, 0.9, &mut rng, mean);
    }
}
