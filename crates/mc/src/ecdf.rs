//! Empirical cumulative distribution functions.
//!
//! Used by validation tests to compare the exact gate-level Monte-Carlo
//! engine against the closed-form (CLT + quadrature) engine: the two must
//! produce statistically indistinguishable delay distributions, which we
//! check with the Kolmogorov–Smirnov distance.

use serde::{Deserialize, Serialize};

use crate::error::SampleError;

/// An empirical CDF over a sorted sample.
///
/// # Example
///
/// ```
/// use ntv_mc::ecdf::Ecdf;
/// let e = Ecdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(e.eval(0.0), 0.0);
/// assert_eq!(e.eval(2.0), 0.5);
/// assert_eq!(e.eval(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from an unsorted sample, rejecting empty or non-finite input.
    ///
    /// # Errors
    ///
    /// Returns [`SampleError::Empty`] for an empty sample and
    /// [`SampleError::NonFinite`] (with the offending index) if any value
    /// is NaN or infinite.
    pub fn try_from_samples(mut samples: Vec<f64>) -> Result<Self, SampleError> {
        crate::error::validate(&samples)?;
        samples.sort_by(f64::total_cmp);
        Ok(Self { sorted: samples })
    }

    /// Build from an unsorted sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or contains non-finite values; use
    /// [`Ecdf::try_from_samples`] to handle those as errors.
    #[must_use]
    pub fn from_samples(samples: Vec<f64>) -> Self {
        // ntv:allow(panic-path): documented panicking convenience; `try_from_samples` is the total API
        Self::try_from_samples(samples).expect("ecdf requires a non-empty finite sample")
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty (never true for a constructed value).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — fraction of samples `<= x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The underlying sorted sample.
    #[must_use]
    pub fn as_sorted_slice(&self) -> &[f64] {
        &self.sorted
    }

    /// Two-sample Kolmogorov–Smirnov statistic `sup |F₁ − F₂|`.
    #[must_use]
    pub fn ks_distance(&self, other: &Ecdf) -> f64 {
        let mut d: f64 = 0.0;
        for &x in &self.sorted {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        for &x in &other.sorted {
            d = d.max((self.eval(x) - other.eval(x)).abs());
        }
        d
    }

    /// One-sample KS statistic against a reference CDF.
    pub fn ks_distance_to(&self, mut cdf: impl FnMut(f64) -> f64) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = cdf(x);
            d = d.max((f - i as f64 / n).abs());
            d = d.max(((i + 1) as f64 / n - f).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal;
    use crate::rng::StreamRng;

    #[test]
    fn eval_steps() {
        let e = Ecdf::from_samples(vec![2.0, 1.0, 3.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-12);
        assert!((e.eval(2.5) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.eval(3.0), 1.0);
    }

    #[test]
    fn identical_samples_have_zero_ks() {
        let a = Ecdf::from_samples(vec![1.0, 2.0, 3.0]);
        let b = a.clone();
        assert_eq!(a.ks_distance(&b), 0.0);
    }

    #[test]
    fn disjoint_samples_have_ks_one() {
        let a = Ecdf::from_samples(vec![1.0, 2.0]);
        let b = Ecdf::from_samples(vec![10.0, 20.0]);
        assert!((a.ks_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normal_sample_matches_normal_cdf() {
        let mut rng = StreamRng::from_seed(31);
        let e = Ecdf::from_samples((0..20_000).map(|_| rng.standard_normal()).collect());
        let d = e.ks_distance_to(normal::cdf);
        // KS critical value at alpha=0.001 for n=20000 is ~1.95/sqrt(n)=0.0138.
        assert!(d < 0.0138, "ks distance {d}");
    }

    #[test]
    fn nan_input_is_an_error_not_a_panic() {
        use crate::error::SampleError;
        let r = Ecdf::try_from_samples(vec![0.5, f64::NAN]);
        assert_eq!(r, Err(SampleError::NonFinite { index: 1 }));
        assert_eq!(Ecdf::try_from_samples(vec![]), Err(SampleError::Empty));
        assert!(Ecdf::try_from_samples(vec![0.5, 1.5]).is_ok());
    }

    #[test]
    fn ks_is_symmetric() {
        let mut rng = StreamRng::from_seed(5);
        let a = Ecdf::from_samples((0..500).map(|_| rng.standard_normal()).collect());
        let b = Ecdf::from_samples((0..700).map(|_| rng.standard_normal() + 0.2).collect());
        assert!((a.ks_distance(&b) - b.ks_distance(&a)).abs() < 1e-12);
    }
}
