//! Gauss–Hermite quadrature for expectations under a normal distribution.
//!
//! The fast architecture-level delay engine needs, per Monte-Carlo chip
//! sample, the conditional mean and variance of a single gate's delay given
//! the chip's systematic variation — an expectation of a nonlinear delay
//! model over the *random* per-device threshold deviation. An 16-point
//! Gauss–Hermite rule evaluates that to near machine precision at a cost of
//! 16 delay-model calls, which is what makes 10 000-chip sweeps interactive.

/// A physicists' Gauss–Hermite rule of order `n`: nodes `xᵢ` and weights
/// `wᵢ` such that `∫ f(x)·exp(−x²) dx ≈ Σ wᵢ f(xᵢ)`.
///
/// Use [`GaussHermite::expect_normal`] for expectations under `N(μ, σ²)`.
///
/// # Example
///
/// ```
/// use ntv_mc::quadrature::GaussHermite;
/// let gh = GaussHermite::new(16);
/// // E[X²] for X ~ N(0, 1) is 1.
/// let m2 = gh.expect_normal(0.0, 1.0, |x| x * x);
/// assert!((m2 - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussHermite {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussHermite {
    /// Construct the rule of order `n` by Newton iteration on the Hermite
    /// recurrence (the classical `gauher` algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the Newton iteration fails to converge
    /// (does not happen for any practical `n ≤ 128`).
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "quadrature order must be positive");
        const EPS: f64 = 3.0e-14;
        const PIM4: f64 = 0.751_125_544_464_943; // π^(-1/4)
        const MAX_IT: usize = 64;

        let mut nodes = vec![0.0_f64; n];
        let mut weights = vec![0.0_f64; n];
        let m = n.div_ceil(2);
        let nf = n as f64;
        let mut z = 0.0_f64;
        for i in 0..m {
            // Initial guesses from Numerical Recipes.
            z = match i {
                0 => (2.0 * nf + 1.0).sqrt() - 1.85575 * (2.0 * nf + 1.0).powf(-1.0 / 6.0),
                1 => z - 1.14 * nf.powf(0.426) / z,
                2 => 1.86 * z - 0.86 * nodes[0],
                3 => 1.91 * z - 0.91 * nodes[1],
                _ => 2.0 * z - nodes[i - 2],
            };
            let mut pp = 0.0;
            let mut converged = false;
            for _ in 0..MAX_IT {
                let mut p1 = PIM4;
                let mut p2 = 0.0;
                for j in 0..n {
                    let p3 = p2;
                    p2 = p1;
                    let jf = j as f64;
                    p1 = z * (2.0 / (jf + 1.0)).sqrt() * p2 - (jf / (jf + 1.0)).sqrt() * p3;
                }
                pp = (2.0 * nf).sqrt() * p2;
                let z1 = z;
                z = z1 - p1 / pp;
                if (z - z1).abs() <= EPS {
                    converged = true;
                    break;
                }
            }
            assert!(converged, "Gauss-Hermite Newton iteration did not converge");
            nodes[i] = z;
            // ntv:allow(panic-path): n-1-i < n because i < ceil(n/2), and both vecs hold n slots
            nodes[n - 1 - i] = -z;
            weights[i] = 2.0 / (pp * pp);
            // ntv:allow(panic-path): same mirror-index bound as the nodes store above
            weights[n - 1 - i] = weights[i];
        }
        Self { nodes, weights }
    }

    /// Rule order.
    #[must_use]
    pub fn order(&self) -> usize {
        self.nodes.len()
    }

    /// Quadrature nodes (descending).
    #[must_use]
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Quadrature weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Expectation `E[f(X)]` for `X ~ N(mean, std_dev²)`.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn expect_normal(&self, mean: f64, std_dev: f64, mut f: impl FnMut(f64) -> f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        const INV_SQRT_PI: f64 = 0.564_189_583_547_756_3;
        let scale = std::f64::consts::SQRT_2 * std_dev;
        // Fixed-order accumulation over the node list, bit-identical to the
        // sequential loop this replaced (pinned by test below).
        let acc = crate::reduce::sum_ordered(
            self.nodes
                .iter()
                .zip(&self.weights)
                .map(|(&x, &w)| w * f(mean + scale * x)),
        );
        acc * INV_SQRT_PI
    }

    /// Mean and variance of `f(X)` for `X ~ N(mean, std_dev²)` in one pass.
    pub fn moments_normal(
        &self,
        mean: f64,
        std_dev: f64,
        mut f: impl FnMut(f64) -> f64,
    ) -> (f64, f64) {
        const INV_SQRT_PI: f64 = 0.564_189_583_547_756_3;
        let scale = std::f64::consts::SQRT_2 * std_dev;
        // One pass (f may be expensive or side-effecting), both accumulators
        // folded in fixed order — bit-identical to the paired `+=` loop.
        let (mut m1, mut m2) =
            crate::reduce::sum2_ordered(self.nodes.iter().zip(&self.weights).map(|(&x, &w)| {
                let v = f(mean + scale * x);
                (w * v, w * v * v)
            }));
        m1 *= INV_SQRT_PI;
        m2 *= INV_SQRT_PI;
        (m1, (m2 - m1 * m1).max(0.0))
    }

    /// Evaluation points of the rule under `N(mean, std_dev²)`:
    /// `out[i] = mean + √2·std_dev·xᵢ` — exactly the arguments
    /// [`moments_normal`](GaussHermite::moments_normal) hands its closure,
    /// in node order. The batch-kernel split: compute the abscissas here,
    /// evaluate the integrand over the whole vector with a batch kernel,
    /// then fold with [`moments_from_values`](GaussHermite::moments_from_values).
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the rule order.
    pub fn abscissas_into(&self, mean: f64, std_dev: f64, out: &mut [f64]) {
        assert_eq!(out.len(), self.nodes.len(), "quadrature length mismatch");
        let scale = std::f64::consts::SQRT_2 * std_dev;
        for (o, &x) in out.iter_mut().zip(&self.nodes) {
            *o = mean + scale * x;
        }
    }

    /// Fold precomputed integrand values into `(mean, variance)`:
    /// bit-identical to [`moments_normal`](GaussHermite::moments_normal)
    /// called with a closure returning `values[i]` at node `i` (pinned by
    /// test). `values` must be in node order, e.g. the output of a batch
    /// kernel over [`abscissas_into`](GaussHermite::abscissas_into).
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the rule order.
    #[must_use]
    pub fn moments_from_values(&self, values: &[f64]) -> (f64, f64) {
        assert_eq!(values.len(), self.nodes.len(), "quadrature length mismatch");
        const INV_SQRT_PI: f64 = 0.564_189_583_547_756_3;
        let (mut m1, mut m2) = crate::reduce::sum2_ordered(
            values
                .iter()
                .zip(&self.weights)
                .map(|(&v, &w)| (w * v, w * v * v)),
        );
        m1 *= INV_SQRT_PI;
        m2 *= INV_SQRT_PI;
        (m1, (m2 - m1 * m1).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_sqrt_pi() {
        for n in [1, 2, 5, 16, 32] {
            let gh = GaussHermite::new(n);
            let total: f64 = gh.weights().iter().sum();
            assert!(
                (total - std::f64::consts::PI.sqrt()).abs() < 1e-10,
                "order {n}: weight sum {total}"
            );
        }
    }

    #[test]
    fn nodes_are_symmetric() {
        let gh = GaussHermite::new(16);
        for i in 0..8 {
            assert!((gh.nodes()[i] + gh.nodes()[15 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn polynomial_moments_exact() {
        let gh = GaussHermite::new(8);
        // For X ~ N(0,1): E[X^k] = 0, 1, 0, 3, 0, 15 for k = 1..6.
        let expected = [0.0, 1.0, 0.0, 3.0, 0.0, 15.0];
        for (k, want) in expected.iter().enumerate() {
            let got = gh.expect_normal(0.0, 1.0, |x| x.powi(k as i32 + 1));
            assert!((got - want).abs() < 1e-9, "moment {}: {got}", k + 1);
        }
    }

    #[test]
    fn lognormal_mean_matches_closed_form() {
        let gh = GaussHermite::new(32);
        // E[exp(X)] for X ~ N(mu, sigma^2) = exp(mu + sigma^2/2).
        let (mu, sigma) = (0.2, 0.5);
        let got = gh.expect_normal(mu, sigma, f64::exp);
        let want = (mu + sigma * sigma / 2.0).exp();
        assert!((got - want).abs() < 1e-10);
    }

    #[test]
    fn moments_normal_consistent() {
        let gh = GaussHermite::new(24);
        let (m, v) = gh.moments_normal(1.0, 0.3, |x| 2.0 * x + 1.0);
        assert!((m - 3.0).abs() < 1e-10);
        assert!((v - (2.0_f64 * 0.3).powi(2)).abs() < 1e-10);
    }

    #[test]
    fn zero_sigma_degenerates_to_point_evaluation() {
        let gh = GaussHermite::new(8);
        let got = gh.expect_normal(2.5, 0.0, |x| x * x);
        assert!((got - 6.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "order must be positive")]
    fn zero_order_rejected() {
        let _ = GaussHermite::new(0);
    }

    /// The `reduce::sum_ordered` migration must not move a single bit: the
    /// accumulation order over the node list is part of the published
    /// numbers.
    #[test]
    fn ordered_reduction_is_bit_identical_to_the_legacy_loops() {
        const INV_SQRT_PI: f64 = 0.564_189_583_547_756_3;
        let gh = GaussHermite::new(32);
        let (mean, std_dev) = (0.37, 1.9);
        let scale = std::f64::consts::SQRT_2 * std_dev;
        let f = |x: f64| (0.25 * x).exp() * (x * x + 0.5);

        let mut acc = 0.0;
        for (&x, &w) in gh.nodes().iter().zip(gh.weights()) {
            acc += w * f(mean + scale * x);
        }
        let legacy_expect = acc * INV_SQRT_PI;
        let got = gh.expect_normal(mean, std_dev, f);
        assert_eq!(got.to_bits(), legacy_expect.to_bits());

        let mut m1 = 0.0;
        let mut m2 = 0.0;
        for (&x, &w) in gh.nodes().iter().zip(gh.weights()) {
            let v = f(mean + scale * x);
            m1 += w * v;
            m2 += w * v * v;
        }
        m1 *= INV_SQRT_PI;
        m2 *= INV_SQRT_PI;
        let legacy_moments = (m1, (m2 - m1 * m1).max(0.0));
        let got = gh.moments_normal(mean, std_dev, f);
        assert_eq!(got.0.to_bits(), legacy_moments.0.to_bits());
        assert_eq!(got.1.to_bits(), legacy_moments.1.to_bits());
    }

    /// The batch split (abscissas → bulk evaluate → fold) must agree with
    /// the closure-driven path bit for bit.
    #[test]
    fn batch_split_is_bit_identical_to_moments_normal() {
        let gh = GaussHermite::new(16);
        let (mean, std_dev) = (-0.12, 0.031);
        let f = |x: f64| (1.0 + x * x).ln() + 3.7 * x;

        let mut pts = vec![0.0; gh.order()];
        gh.abscissas_into(mean, std_dev, &mut pts);
        let values: Vec<f64> = pts.iter().map(|&x| f(x)).collect();
        let batch = gh.moments_from_values(&values);
        let scalar = gh.moments_normal(mean, std_dev, f);
        assert_eq!(batch.0.to_bits(), scalar.0.to_bits());
        assert_eq!(batch.1.to_bits(), scalar.1.to_bits());
    }
}
