//! The technology model: transregional current and FO4 delay.

use ntv_mc::SampleStream;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::node::TechNode;
use crate::params::{DeviceParams, THERMAL_VOLTAGE};
use crate::variation::{self, ChipSample, GateSample, RegionSample};

/// Operating-voltage region (paper §2 and Fig 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatingRegion {
    /// `Vdd` well below `Vth`: exponential delay, leakage-energy dominated.
    SubThreshold,
    /// `Vdd ≈ Vth`: the paper's sweet spot — ~10× energy reduction for
    /// ~10× performance loss relative to nominal.
    NearThreshold,
    /// `Vdd` well above `Vth`: switching-energy dominated.
    SuperThreshold,
}

impl std::fmt::Display for OperatingRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OperatingRegion::SubThreshold => "sub-threshold",
            OperatingRegion::NearThreshold => "near-threshold",
            OperatingRegion::SuperThreshold => "super-threshold",
        };
        f.write_str(s)
    }
}

/// Analytical stand-in for an HSPICE technology deck: current, delay and
/// variation sampling for one node.
///
/// The on-current uses a generalized EKV interpolation
///
/// ```text
/// I(V, Vth) = [ ln(1 + exp((V − Vth) / (α·n·φt))) ]^α
/// ```
///
/// which is `exp((V − Vth)/(n·φt))` in deep sub-threshold (slope factor `n`)
/// and `((V − Vth)/(α·n·φt))^α` in strong inversion (velocity-saturation
/// exponent `α`), with a smooth near-threshold transition — exactly the
/// regime structure the paper's analysis relies on. The FO4 delay is
/// `delay_scale · V / I`, and a varied device divides the current by a
/// log-normal factor `exp(ln_k)` and shifts `Vth` by the sampled ΔVth.
///
/// # Example
///
/// ```
/// use ntv_device::{TechModel, TechNode};
/// use ntv_units::Volts;
/// let tech = TechModel::new(TechNode::Gp90);
/// // Chain-of-50 delay at 0.5 V is ≈ 22 ns in the paper (§3.2).
/// let chain_ns = 50.0 * tech.fo4_delay_ps(Volts(0.5)) / 1000.0;
/// assert!((chain_ns - 22.05).abs() < 1.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechModel {
    params: DeviceParams,
}

impl TechModel {
    /// Model with the calibrated parameters for `node`.
    #[must_use]
    pub fn new(node: TechNode) -> Self {
        Self {
            params: DeviceParams::for_node(node),
        }
    }

    /// Model from explicit (already validated) parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`DeviceParams::validate`]; use the builder
    /// to construct checked custom parameters.
    #[must_use]
    pub fn from_params(params: DeviceParams) -> Self {
        // ntv:allow(panic-path): documented panic (see `# Panics`); the builder is the checked path
        params.validate().expect("device parameters must be valid");
        Self { params }
    }

    /// The parameter set in use.
    #[must_use]
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// The technology node.
    #[must_use]
    pub fn node(&self) -> TechNode {
        self.params.node
    }

    /// Nominal (full) supply voltage.
    #[must_use]
    pub fn nominal_vdd(&self) -> Volts {
        self.params.vdd_nominal
    }

    pub(crate) fn assert_voltage(&self, vdd: Volts) {
        assert!(
            vdd.is_finite() && vdd > Volts(0.05) && vdd < Volts(2.0),
            "supply voltage {vdd} outside the supported range (0.05 V, 2.0 V)"
        );
    }

    /// Normalized on-current at supply `vdd` for effective threshold `vth`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is outside the supported `(0.05, 2.0)` V range.
    #[must_use]
    pub fn on_current(&self, vdd: Volts, vth: Volts) -> f64 {
        self.assert_voltage(vdd);
        let p = &self.params;
        let x = (vdd - vth) / (p.alpha * p.slope_n * THERMAL_VOLTAGE);
        softplus(x).powf(p.alpha)
    }

    /// Variation-free FO4 inverter delay at `vdd`, in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is outside the supported range.
    #[must_use]
    pub fn fo4_delay_ps(&self, vdd: Volts) -> f64 {
        self.params.delay_scale_ps * vdd.get() / self.on_current(vdd, self.params.vth0)
    }

    /// FO4 delay (ps) of one varied device on one varied chip.
    ///
    /// The chip's systematic ΔVth/ln-k and the gate's random ΔVth/ln-k
    /// compose additively (in Vth and log-current respectively).
    #[must_use]
    pub fn gate_delay_ps(&self, vdd: Volts, chip: &ChipSample, gate: &GateSample) -> f64 {
        let vth = self.params.vth0 + chip.dvth + gate.dvth;
        let kappa = (chip.ln_k + gate.ln_k).exp();
        self.params.delay_scale_ps * vdd.get() / (self.on_current(vdd, vth) * kappa)
    }

    /// Delay of a varied device given an explicit conditioning chip and a
    /// *specific* random ΔVth / ln-k pair. Used by the quadrature engine.
    #[must_use]
    pub fn gate_delay_ps_at(
        &self,
        vdd: Volts,
        chip: &ChipSample,
        dvth_rand: Volts,
        ln_k_rand: f64,
    ) -> f64 {
        self.gate_delay_ps(
            vdd,
            chip,
            &GateSample {
                dvth: dvth_rand,
                ln_k: ln_k_rand,
            },
        )
    }

    /// First-order delay sensitivity `S(V) = −∂ ln D / ∂ Vth` (1/V) at the
    /// nominal threshold.
    ///
    /// Grows steeply as `vdd` approaches `Vth` — the root cause of
    /// near-threshold delay variability (paper §3).
    #[must_use]
    // ntv:allow(bare-unit): the return is a log-sensitivity in 1/V, not a voltage
    pub fn delay_vth_sensitivity(&self, vdd: Volts) -> f64 {
        self.assert_voltage(vdd);
        let p = &self.params;
        let denom = p.alpha * p.slope_n * THERMAL_VOLTAGE;
        let x = (vdd - p.vth0) / denom;
        // d lnD/dVth = α/denom · sigmoid(x)/softplus(x)
        let sig = 1.0 / (1.0 + (-x).exp());
        p.alpha / denom.get() * (sig / softplus(x))
    }

    /// Which operating region `vdd` falls in for this node.
    ///
    /// Near-threshold is taken as `Vth − 50 mV .. Vth + 250 mV`, matching
    /// the 0.4–0.65 V band the paper treats as NTV for these nodes.
    #[must_use]
    pub fn region(&self, vdd: Volts) -> OperatingRegion {
        self.assert_voltage(vdd);
        if vdd < self.params.vth0 - Volts(0.05) {
            OperatingRegion::SubThreshold
        } else if vdd < self.params.vth0 + Volts(0.25) {
            OperatingRegion::NearThreshold
        } else {
            OperatingRegion::SuperThreshold
        }
    }

    /// Draw one chip's total systematic variation (what a single-region
    /// circuit such as a chain or adder experiences).
    pub fn sample_chip<R: SampleStream + ?Sized>(&self, rng: &mut R) -> ChipSample {
        variation::sample_chip(&self.params, rng)
    }

    /// Draw the chip-global share of systematic variation (see
    /// [`crate::variation::sample_chip_global`]).
    pub fn sample_chip_global<R: SampleStream + ?Sized>(&self, rng: &mut R) -> ChipSample {
        variation::sample_chip_global(&self.params, rng)
    }

    /// Draw one lane's regional variation offset.
    pub fn sample_region<R: SampleStream + ?Sized>(&self, rng: &mut R) -> RegionSample {
        variation::sample_region(&self.params, rng)
    }

    /// Draw one device's random variation.
    pub fn sample_gate<R: SampleStream + ?Sized>(&self, rng: &mut R) -> GateSample {
        variation::sample_gate(&self.params, rng)
    }

    /// First-order delay multiplier for a lane with regional offset
    /// `region`: `exp(S(vdd)·ΔVth − ln_k)`.
    ///
    /// Regional offsets are a fraction of the (already small) systematic σ,
    /// so the linearized exponent is accurate to well below Monte-Carlo
    /// noise; it lets the architecture engine scale conditional path
    /// moments per lane without re-running quadrature.
    #[must_use]
    pub fn region_delay_factor(&self, vdd: Volts, region: &RegionSample) -> f64 {
        (self.delay_vth_sensitivity(vdd) * region.dvth.get() - region.ln_k).exp()
    }
}

/// Numerically-stable `ln(1 + eˣ)`. Shared with the batch kernels in
/// [`crate::batch`] so scalar and batch paths run the identical branch.
pub(crate) fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softplus_limits() {
        assert!((softplus(40.0) - 40.0).abs() < 1e-12);
        assert!(softplus(-40.0) > 0.0);
        assert!((softplus(0.0) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn delay_decreases_with_voltage() {
        for node in TechNode::ALL {
            let tech = TechModel::new(node);
            let mut prev = f64::INFINITY;
            let mut v = 0.35;
            while v <= tech.nominal_vdd().get() + 1e-9 {
                let d = tech.fo4_delay_ps(Volts(v));
                assert!(d < prev, "{node}: delay not monotone at {v} V");
                prev = d;
                v += 0.05;
            }
        }
    }

    #[test]
    fn chain_delay_matches_paper_90nm() {
        let tech = TechModel::new(TechNode::Gp90);
        let chain_ns_05 = 50.0 * tech.fo4_delay_ps(Volts(0.5)) / 1000.0;
        let chain_ns_06 = 50.0 * tech.fo4_delay_ps(Volts(0.6)) / 1000.0;
        // Paper §3.2: 22.05 ns @0.5 V, 8.99 ns @0.6 V. Allow ±15 %.
        assert!(
            (chain_ns_05 / 22.05 - 1.0).abs() < 0.15,
            "0.5 V: {chain_ns_05} ns"
        );
        assert!(
            (chain_ns_06 / 8.99 - 1.0).abs() < 0.15,
            "0.6 V: {chain_ns_06} ns"
        );
    }

    #[test]
    fn sensitivity_explodes_near_threshold() {
        for node in TechNode::ALL {
            let tech = TechModel::new(node);
            let s_nom = tech.delay_vth_sensitivity(tech.nominal_vdd());
            let s_ntv = tech.delay_vth_sensitivity(Volts(0.5));
            assert!(s_ntv > 3.0 * s_nom, "{node}: {s_ntv} vs {s_nom}");
        }
    }

    #[test]
    fn sensitivity_matches_finite_difference() {
        let tech = TechModel::new(TechNode::Gp90);
        for &v in &[0.5, 0.6, 0.8, 1.0] {
            let h = 1e-6;
            let v = Volts(v);
            let d0 = tech.params().delay_scale_ps * v.get()
                / tech.on_current(v, tech.params().vth0 - Volts(h));
            let d1 = tech.params().delay_scale_ps * v.get()
                / tech.on_current(v, tech.params().vth0 + Volts(h));
            let num = (d1.ln() - d0.ln()) / (2.0 * h);
            let ana = tech.delay_vth_sensitivity(v);
            assert!((num - ana).abs() / ana < 1e-5, "v={v}: {num} vs {ana}");
        }
    }

    #[test]
    fn higher_vth_means_slower_gate() {
        let tech = TechModel::new(TechNode::Gp45);
        let chip = ChipSample::nominal();
        let slow = GateSample {
            dvth: Volts(0.03),
            ln_k: 0.0,
        };
        let fast = GateSample {
            dvth: Volts(-0.03),
            ln_k: 0.0,
        };
        let d_slow = tech.gate_delay_ps(Volts(0.55), &chip, &slow);
        let d_fast = tech.gate_delay_ps(Volts(0.55), &chip, &fast);
        let d_nom = tech.gate_delay_ps(Volts(0.55), &chip, &GateSample::nominal());
        assert!(d_slow > d_nom && d_nom > d_fast);
        assert!((d_nom - tech.fo4_delay_ps(Volts(0.55))).abs() < 1e-9);
    }

    #[test]
    fn current_factor_scales_delay_exactly() {
        let tech = TechModel::new(TechNode::PtmHp32);
        let chip = ChipSample::nominal();
        let g = GateSample {
            dvth: Volts::ZERO,
            ln_k: 0.2,
        };
        let ratio = tech.gate_delay_ps(Volts(0.6), &chip, &g) / tech.fo4_delay_ps(Volts(0.6));
        assert!((ratio - (-0.2_f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn regions_are_ordered() {
        let tech = TechModel::new(TechNode::Gp90);
        assert_eq!(tech.region(Volts(0.3)), OperatingRegion::SubThreshold);
        assert_eq!(tech.region(Volts(0.5)), OperatingRegion::NearThreshold);
        assert_eq!(tech.region(Volts(1.0)), OperatingRegion::SuperThreshold);
    }

    #[test]
    fn nominal_fo4_delays_are_plausible() {
        // FO4 at nominal voltage should be tens of ps and shrink with node.
        let d: Vec<f64> = TechNode::ALL
            .iter()
            .map(|&n| {
                let t = TechModel::new(n);
                t.fo4_delay_ps(t.nominal_vdd())
            })
            .collect();
        assert!(d[0] > d[1] && d[1] > d[2] && d[2] > d[3], "{d:?}");
        assert!(d[0] < 100.0 && d[3] > 5.0);
    }

    #[test]
    #[should_panic(expected = "outside the supported range")]
    fn absurd_voltage_rejected() {
        let tech = TechModel::new(TechNode::Gp90);
        let _ = tech.fo4_delay_ps(Volts(5.0));
    }
}
