//! Calibration targets published in the paper.
//!
//! These constants are the numbers the paper prints in Fig 1/2 and §3, used
//! by calibration tests (with generous tolerances — our device model is an
//! analytical surrogate, and the reproduction brief is *shape*, not
//! decimals) and by the `ntv-bench` EXPERIMENTS report, which records
//! paper-vs-measured side by side.

use crate::node::TechNode;

/// A `(vdd, three_sigma_over_mu)` pair; the ratio is a fraction (0.3549 =
/// "35.49 %" in the paper's annotation).
pub type VariationTarget = (f64, f64);

/// Fig 1(a): single 90 nm GP inverter, cross-chip delay variation.
pub const FIG1_SINGLE_INVERTER_90NM: [VariationTarget; 6] = [
    (1.0, 0.1558),
    (0.9, 0.1570),
    (0.8, 0.1629),
    (0.7, 0.1774),
    (0.6, 0.2225),
    (0.5, 0.3549),
];

/// Fig 1(b): chain of 50 FO4 inverters, 90 nm GP.
pub const FIG1_CHAIN50_90NM: [VariationTarget; 6] = [
    (1.0, 0.0576),
    (0.9, 0.0584),
    (0.8, 0.0596),
    (0.7, 0.0617),
    (0.6, 0.0681),
    (0.5, 0.0943),
];

/// §3.2: absolute delay of the 50-FO4 chain at 0.5 V (ns), 90 nm GP.
pub const CHAIN50_DELAY_NS_90NM_05V: f64 = 22.05;

/// §3.2: absolute delay of the 50-FO4 chain at 0.6 V (ns), 90 nm GP.
pub const CHAIN50_DELAY_NS_90NM_06V: f64 = 8.99;

/// Fig 2 (as stated in §3.1 prose): chain-of-50 3σ/μ for 22 nm PTM HP at
/// its nominal 0.8 V and at 0.5 V.
pub const FIG2_CHAIN50_22NM: [VariationTarget; 2] = [(0.8, 0.11), (0.5, 0.25)];

/// §3.1: the 22 nm chain-of-50 variation at 0.55 V is ≈2.5× the 90 nm one.
pub const CHAIN50_22NM_OVER_90NM_AT_055V: f64 = 2.5;

/// §3.1 (citing Drego et al. \[7\]): a 64-bit Kogge–Stone adder shows ≈8.4 %
/// delay variation (3σ/μ) at 0.5 V — same order as the chain of 50.
pub const KOGGE_STONE_64B_3SIGMA_05V: f64 = 0.084;

/// Fig 4 (90 nm GP): 128-wide performance drop at 0.5/0.55/0.6 V.
pub const FIG4_PERF_DROP_90NM: [(f64, f64); 3] = [(0.5, 0.05), (0.55, 0.025), (0.6, 0.015)];

/// Fig 4 / §3.2 prose: 22 nm PTM HP performance drop at 0.5 V (≈18–20 %).
pub const FIG4_PERF_DROP_22NM_05V: f64 = 0.18;

/// Table 1 (90 nm GP): required spares at 0.50–0.70 V.
pub const TABLE1_SPARES_90NM: [(f64, u32); 5] =
    [(0.50, 28), (0.55, 6), (0.60, 2), (0.65, 1), (0.70, 1)];

/// Table 2: required voltage margin (mV) per node at 0.50–0.70 V.
///
/// Rows are voltages 0.50, 0.55, 0.60, 0.65, 0.70; columns the margin in
/// millivolts for (90 nm, 45 nm, 32 nm, 22 nm).
pub const TABLE2_MARGIN_MV: [(f64, [f64; 4]); 5] = [
    (0.50, [5.8, 19.6, 12.1, 16.4]),
    (0.55, [4.1, 18.2, 11.1, 17.6]),
    (0.60, [2.9, 16.2, 10.4, 11.1]),
    (0.65, [2.2, 14.0, 8.9, 11.5]),
    (0.70, [1.7, 12.8, 7.7, 9.6]),
];

/// Table 3 (45 nm, 128-wide @600 mV): (spares, margin mV, power overhead).
pub const TABLE3_DESIGN_CHOICES: [(u32, f64, f64); 5] = [
    (26, 0.0, 0.043),
    (8, 5.0, 0.020),
    (2, 10.0, 0.017),
    (1, 15.0, 0.023),
    (0, 17.0, 0.024),
];

/// Index of a node in per-node target arrays (paper column order).
#[must_use]
pub fn node_index(node: TechNode) -> usize {
    match node {
        TechNode::Gp90 => 0,
        TechNode::Gp45 => 1,
        TechNode::PtmHp32 => 2,
        TechNode::PtmHp22 => 3,
    }
}

/// Relative error `|got − want| / want`.
///
/// # Panics
///
/// Panics if `want == 0`.
#[must_use]
pub fn relative_error(got: f64, want: f64) -> f64 {
    assert!(
        want != 0.0,
        "relative error against zero target is undefined"
    );
    (got - want).abs() / want.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_are_internally_consistent() {
        // Chain variation is always far below single-gate variation.
        for (a, b) in FIG1_SINGLE_INVERTER_90NM.iter().zip(&FIG1_CHAIN50_90NM) {
            assert_eq!(a.0, b.0);
            assert!(a.1 > 2.0 * b.1);
        }
        // Variation increases monotonically as voltage drops.
        for w in FIG1_SINGLE_INVERTER_90NM.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
    }

    #[test]
    fn node_index_covers_all() {
        let mut seen = [false; 4];
        for node in TechNode::ALL {
            seen[node_index(node)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(10.0, 10.0), 0.0);
    }
}
