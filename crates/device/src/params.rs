//! Per-node device-model parameters and their calibration provenance.
//!
//! The paper ran HSPICE Monte Carlo on commercial 90/45 nm GP decks and
//! 32/22 nm PTM HP decks. We do not have those decks, so each node carries
//! an analytical parameter set calibrated against the numbers the paper
//! itself publishes:
//!
//! * The **delay scale** (`delay_scale_ps`) and **threshold/slope** values
//!   are set so the variation-free FO4 delay reproduces the paper's
//!   chain-of-50 absolute delays for 90 nm (22.05 ns @0.5 V and 8.99 ns
//!   @0.6 V ⇒ FO4 = 441 ps and ≈180 ps, §3.2) and plausible published FO4
//!   delays at nominal voltage for the other nodes.
//! * The **variation σ values** are fitted to Fig 1 (90 nm single-inverter
//!   and chain-of-50 3σ/μ at 1.0 V and 0.5 V) and Fig 2 (chain-of-50 3σ/μ
//!   at each node's nominal voltage and at 0.5 V, plus the stated 2.5×
//!   90-vs-22 nm ratio at 0.55 V). The split between per-chip systematic and
//!   per-device random components is pinned down by the paper's own
//!   single-gate vs chain-of-50 ratios (2.7×–3.8×, far below the √50 ≈ 7.07×
//!   a purely random model would give).
//!
//! Fitting uses the first-order sensitivity `S(V) = −∂lnD/∂Vth` of the
//! transregional current model; the Monte-Carlo engines then see the full
//! nonlinear model (which also produces the right-skewed histograms of
//! Fig 1).

use ntv_units::{Kelvin, Volts};
use serde::{Deserialize, Serialize};

use crate::node::TechNode;

/// Reference junction temperature for the calibrated parameter sets.
pub const ROOM_TEMPERATURE: Kelvin = Kelvin(300.0);

/// Thermal voltage kT/q at [`ROOM_TEMPERATURE`].
pub const THERMAL_VOLTAGE: Volts = Volts(0.02585);

/// Complete analytical device model for one technology node.
///
/// Construct via [`DeviceParams::for_node`] for the calibrated paper nodes,
/// or build a custom value with [`DeviceParams::builder`] for what-if
/// studies (e.g. the variation-scaling ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceParams {
    /// Which node this parameter set describes.
    pub node: TechNode,
    /// Nominal supply voltage.
    pub vdd_nominal: Volts,
    /// Nominal threshold voltage Vth0.
    pub vth0: Volts,
    /// Sub-threshold slope factor `n` (I ∝ exp((V−Vth)/(n·φt)) below Vth).
    pub slope_n: f64,
    /// Velocity-saturation exponent α of the strong-inversion power law
    /// (I ∝ (V−Vth)^α; α = 2 would be the long-channel square law).
    pub alpha: f64,
    /// Delay prefactor (ps · normalized-current): FO4 delay =
    /// `delay_scale_ps · Vdd / I_on(Vdd, Vth)`.
    pub delay_scale_ps: f64,
    /// Per-device random σ(Vth) (RDF, plus LER at 32/22 nm).
    pub sigma_vth_random: Volts,
    /// Per-chip systematic σ(Vth).
    pub sigma_vth_systematic: Volts,
    /// Per-device random σ of the log current factor (dimensionless).
    pub sigma_k_random: f64,
    /// Per-chip systematic σ of the log current factor (dimensionless).
    pub sigma_k_systematic: f64,
    /// Share of the *systematic variance* that is regional (correlated
    /// within one SIMD lane but varying lane-to-lane across the die) rather
    /// than chip-global. Spatially-correlated within-die variation is what
    /// makes structural duplication effective: dropping the slowest lanes
    /// trims the regional tail (Table 1 / Fig 5). A chain or adder sits in
    /// a single region and therefore sees the full systematic σ.
    pub lane_fraction: f64,
    /// Normalized leakage prefactor for the energy model, in the same units
    /// as the on-current. Folds the `exp(−Vth/(n·φt))` off-state factor and
    /// the idle-device width multiplier; calibrated so the minimum-energy
    /// point lands in the sub-threshold region (Fig 9) with a few percent
    /// leakage share at nominal voltage.
    pub leak_i0: f64,
    /// DIBL coefficient η (V/V): leakage ∝ exp((η·Vdd − Vth)/(n·φt)).
    pub dibl: f64,
    /// Effective switching capacitance energy scale (fJ/V² per FO4 op).
    pub switch_cap_fj: f64,
}

impl DeviceParams {
    /// The calibrated parameter set for one of the paper's nodes.
    ///
    /// # Example
    ///
    /// ```
    /// use ntv_device::{DeviceParams, TechNode};
    /// use ntv_units::Volts;
    /// let p = DeviceParams::for_node(TechNode::Gp90);
    /// assert_eq!(p.vdd_nominal, Volts(1.0));
    /// ```
    #[must_use]
    pub fn for_node(node: TechNode) -> Self {
        match node {
            // Fitted to Fig 1 (15.58 %@1.0 V → 35.49 %@0.5 V single gate;
            // 5.76 % → 9.43 % chain-50) and the 441 ps / ~180 ps FO4 delays.
            TechNode::Gp90 => Self {
                node,
                vdd_nominal: Volts(1.0),
                vth0: Volts(0.43),
                slope_n: 1.30,
                alpha: 1.35,
                delay_scale_ps: 1848.0,
                sigma_vth_random: Volts(7.6e-3),
                sigma_vth_systematic: Volts(1.42e-3),
                sigma_k_random: 0.0487,
                sigma_k_systematic: 0.0174,
                lane_fraction: 0.5,
                leak_i0: 6.0e-3,
                dibl: 0.10,
                switch_cap_fj: 1.0,
            },
            // Commercial 45 nm GP: larger random dopant fluctuation than
            // 90 nm; chain-50 targets ~7 %@1.0 V -> ~20 %@0.5 V (between the
            // 32 nm PTM and 22 nm curves of Fig 2 — the commercial 45 nm
            // deck is *more* variable than predictive 32 nm, as implied by
            // the larger Table 2 voltage margins: 19.6 mV vs 12.1 mV).
            TechNode::Gp45 => Self {
                node,
                vdd_nominal: Volts(1.0),
                vth0: Volts(0.40),
                slope_n: 1.30,
                alpha: 1.32,
                delay_scale_ps: 715.0,
                sigma_vth_random: Volts(17.6e-3),
                sigma_vth_systematic: Volts(4.97e-3),
                sigma_k_random: 0.0625,
                sigma_k_systematic: 0.0178,
                lane_fraction: 0.5,
                leak_i0: 6.0e-3,
                dibl: 0.12,
                switch_cap_fj: 0.42,
            },
            // 32 nm PTM HP (predictive — optimistic vs commercial 45 nm):
            // chain-50 targets ~5.5 %@0.9 V → ~14 %@0.5 V.
            TechNode::PtmHp32 => Self {
                node,
                vdd_nominal: Volts(0.9),
                vth0: Volts(0.40),
                slope_n: 1.28,
                alpha: 1.30,
                delay_scale_ps: 459.0,
                sigma_vth_random: Volts(12.3e-3),
                sigma_vth_systematic: Volts(3.47e-3),
                sigma_k_random: 0.0484,
                sigma_k_systematic: 0.0137,
                lane_fraction: 0.5,
                leak_i0: 7.0e-3,
                dibl: 0.13,
                switch_cap_fj: 0.26,
            },
            // 22 nm PTM HP: LER becomes significant (paper §3.1); chain-50
            // targets 11 %@0.8 V → 25 %@0.5 V and 2.5× the 90 nm value at
            // 0.55 V (both stated in the paper).
            TechNode::PtmHp22 => Self {
                node,
                vdd_nominal: Volts(0.8),
                vth0: Volts(0.41),
                slope_n: 1.30,
                alpha: 1.28,
                delay_scale_ps: 288.0,
                sigma_vth_random: Volts(20.4e-3),
                sigma_vth_systematic: Volts(5.75e-3),
                sigma_k_random: 0.0939,
                sigma_k_systematic: 0.0266,
                lane_fraction: 0.5,
                leak_i0: 6.0e-3,
                dibl: 0.15,
                switch_cap_fj: 0.16,
            },
        }
    }

    /// Start a builder pre-populated from this node's calibrated values.
    #[must_use]
    pub fn builder(node: TechNode) -> DeviceParamsBuilder {
        DeviceParamsBuilder {
            params: Self::for_node(node),
        }
    }

    /// Validate physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), InvalidDeviceParams> {
        fn check(ok: bool, what: &'static str) -> Result<(), InvalidDeviceParams> {
            if ok {
                Ok(())
            } else {
                Err(InvalidDeviceParams { what })
            }
        }
        check(
            self.vdd_nominal > Volts::ZERO && self.vdd_nominal < Volts(2.0),
            "nominal Vdd out of range",
        )?;
        check(
            self.vth0 > Volts::ZERO && self.vth0 < self.vdd_nominal,
            "Vth0 out of range",
        )?;
        check(
            self.slope_n >= 1.0 && self.slope_n < 3.0,
            "slope factor out of range",
        )?;
        check(self.alpha > 1.0 && self.alpha <= 2.0, "alpha out of range")?;
        check(self.delay_scale_ps > 0.0, "delay scale must be positive")?;
        check(
            self.sigma_vth_random >= Volts::ZERO
                && self.sigma_vth_systematic >= Volts::ZERO
                && self.sigma_k_random >= 0.0
                && self.sigma_k_systematic >= 0.0,
            "variation sigmas must be non-negative",
        )?;
        check(
            (0.0..=1.0).contains(&self.lane_fraction),
            "lane fraction must lie in [0, 1]",
        )?;
        check(
            self.leak_i0 >= 0.0,
            "leakage prefactor must be non-negative",
        )?;
        check(
            (0.0..1.0).contains(&self.dibl),
            "DIBL coefficient out of range",
        )?;
        check(
            self.switch_cap_fj > 0.0,
            "switching capacitance must be positive",
        )?;
        Ok(())
    }
}

/// Error describing an invalid [`DeviceParams`] field combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidDeviceParams {
    what: &'static str,
}

impl std::fmt::Display for InvalidDeviceParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid device parameters: {}", self.what)
    }
}

impl std::error::Error for InvalidDeviceParams {}

/// Builder for custom [`DeviceParams`] (what-if and ablation studies).
///
/// # Example
///
/// ```
/// use ntv_device::{DeviceParams, TechNode};
/// let params = DeviceParams::builder(TechNode::Gp90)
///     .sigma_scale(2.0)
///     .build()
///     .expect("valid parameters");
/// assert!(params.sigma_vth_random > DeviceParams::for_node(TechNode::Gp90).sigma_vth_random);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceParamsBuilder {
    params: DeviceParams,
}

impl DeviceParamsBuilder {
    /// Override the nominal threshold voltage.
    #[must_use]
    pub fn vth0(mut self, vth0: Volts) -> Self {
        self.params.vth0 = vth0;
        self
    }

    /// Override the sub-threshold slope factor.
    #[must_use]
    pub fn slope_n(mut self, n: f64) -> Self {
        self.params.slope_n = n;
        self
    }

    /// Override the velocity-saturation exponent.
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.params.alpha = alpha;
        self
    }

    /// Scale all four variation σ components by `factor` (ablation knob).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn sigma_scale(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "sigma scale must be finite and >= 0"
        );
        self.params.sigma_vth_random *= factor;
        self.params.sigma_vth_systematic *= factor;
        self.params.sigma_k_random *= factor;
        self.params.sigma_k_systematic *= factor;
        self
    }

    /// Override the per-device random σ(Vth).
    #[must_use]
    pub fn sigma_vth_random(mut self, sigma: Volts) -> Self {
        self.params.sigma_vth_random = sigma;
        self
    }

    /// Override the per-chip systematic σ(Vth).
    #[must_use]
    pub fn sigma_vth_systematic(mut self, sigma: Volts) -> Self {
        self.params.sigma_vth_systematic = sigma;
        self
    }

    /// Finish, validating the resulting parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceParams`] if any field is out of its physical
    /// range.
    pub fn build(self) -> Result<DeviceParams, InvalidDeviceParams> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_calibrated_nodes_validate() {
        for node in TechNode::ALL {
            DeviceParams::for_node(node)
                .validate()
                .expect("calibrated params are valid");
        }
    }

    #[test]
    fn nominal_vdd_agrees_with_node() {
        for node in TechNode::ALL {
            assert_eq!(DeviceParams::for_node(node).vdd_nominal, node.nominal_vdd());
        }
    }

    #[test]
    fn variation_grows_with_scaling_for_random_vth() {
        let sigmas: Vec<Volts> = TechNode::ALL
            .iter()
            .map(|&n| DeviceParams::for_node(n).sigma_vth_random)
            .collect();
        // 90 < 45, 45 < 22, 32 < 22 (45 nm commercial exceeds 32 nm PTM).
        assert!(sigmas[0] < sigmas[1]);
        assert!(sigmas[1] < sigmas[3]);
        assert!(sigmas[2] < sigmas[3]);
    }

    #[test]
    fn builder_overrides_and_validates() {
        let p = DeviceParams::builder(TechNode::Gp45)
            .vth0(Volts(0.5))
            .slope_n(1.4)
            .build()
            .unwrap();
        assert_eq!(p.vth0, Volts(0.5));
        assert_eq!(p.slope_n, 1.4);

        let bad = DeviceParams::builder(TechNode::Gp45)
            .vth0(Volts(1.5))
            .build();
        assert!(bad.is_err());
        assert!(bad.unwrap_err().to_string().contains("Vth0"));
    }

    #[test]
    fn sigma_scale_zero_gives_deterministic_device() {
        let p = DeviceParams::builder(TechNode::Gp90)
            .sigma_scale(0.0)
            .build()
            .unwrap();
        assert_eq!(p.sigma_vth_random, Volts::ZERO);
        assert_eq!(p.sigma_k_systematic, 0.0);
    }

    #[test]
    fn validate_rejects_boundary_voltages() {
        // Both ends of the Vdd range are open intervals: exactly 0 V and
        // exactly 2 V are rejected, values strictly inside are accepted.
        let mut p = DeviceParams::for_node(TechNode::Gp90);
        p.vdd_nominal = Volts::ZERO;
        assert!(p.validate().is_err());
        p.vdd_nominal = Volts(2.0);
        assert!(p.validate().is_err());
        p.vdd_nominal = Volts(1.999);
        assert!(p.validate().is_ok());

        // Vth0 must be strictly below the nominal supply.
        let mut p = DeviceParams::for_node(TechNode::Gp90);
        p.vth0 = p.vdd_nominal;
        assert!(p.validate().is_err());
        p.vth0 = p.vdd_nominal - Volts(1e-9);
        assert!(p.validate().is_ok());
        p.vth0 = Volts::ZERO;
        assert!(p.validate().is_err());
    }

    #[test]
    fn systematic_is_smaller_than_random() {
        // The chain-of-50 averaging in Fig 1 requires the systematic
        // component to be a minority share of single-gate variance.
        for node in TechNode::ALL {
            let p = DeviceParams::for_node(node);
            assert!(p.sigma_vth_systematic < p.sigma_vth_random);
            assert!(p.sigma_k_systematic < p.sigma_k_random);
        }
    }
}
