//! Batch EKV kernels: structure-of-arrays evaluation of on-current and
//! gate delay over threshold vectors and voltage grids.
//!
//! Every kernel in this module is a *loop-interchanged* form of the scalar
//! methods on [`TechModel`]: loop-invariant pure subexpressions (the EKV
//! slope denominator, the composed chip threshold, the current factor
//! `exp(ln k)`, the delay numerator) are hoisted — computing the same
//! value by the same operations once instead of per element — and the
//! remaining per-element work runs in a fixed-stride loop with no
//! cross-element dependence. Division stays division and no sums are
//! reassociated, so every output is **bit-identical** to the scalar call
//! it replaces; the tests in this module pin that by `to_bits`.
//!
//! The slices are plain `f64`-width lanes (`Volts` is a transparent f64
//! newtype), so the loops are amenable to autovectorization; the chunked
//! `portable-simd` paths live one layer down in `ntv_mc` (the erfc
//! kernel), not here — transcendentals (`powf`, `exp`) dominate these
//! loops and stay scalar per element.

use ntv_units::Volts;

use crate::model::{softplus, TechModel};
use crate::params::THERMAL_VOLTAGE;
use crate::variation::{ChipSample, GateSample};

impl TechModel {
    /// Batch [`on_current`](TechModel::on_current) over a threshold
    /// vector: `out[i] = self.on_current(vdd, vths[i])`, bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is outside the supported range or the slices differ
    /// in length.
    pub fn on_current_batch(&self, vdd: Volts, vths: &[Volts], out: &mut [f64]) {
        assert_eq!(vths.len(), out.len(), "batch kernel length mismatch");
        self.assert_voltage(vdd);
        let p = self.params();
        let denom = p.alpha * p.slope_n * THERMAL_VOLTAGE;
        for (o, &vth) in out.iter_mut().zip(vths) {
            let x = (vdd - vth) / denom;
            *o = softplus(x).powf(p.alpha);
        }
    }

    /// Batch [`on_current`](TechModel::on_current) over a voltage grid:
    /// `out[i] = self.on_current(vdds[i], vth)`, bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if any voltage is outside the supported range or the slices
    /// differ in length.
    pub fn on_current_grid(&self, vdds: &[Volts], vth: Volts, out: &mut [f64]) {
        assert_eq!(vdds.len(), out.len(), "batch kernel length mismatch");
        let p = self.params();
        let denom = p.alpha * p.slope_n * THERMAL_VOLTAGE;
        for (o, &vdd) in out.iter_mut().zip(vdds) {
            self.assert_voltage(vdd);
            let x = (vdd - vth) / denom;
            *o = softplus(x).powf(p.alpha);
        }
    }

    /// Batch [`gate_delay_ps`](TechModel::gate_delay_ps) over per-gate
    /// variation vectors (SoA): `out[i]` is the delay of the gate with
    /// random offsets `(dvth[i], ln_k[i])` on chip `chip`, bit-identical
    /// to the scalar call per gate.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is outside the supported range or the slices differ
    /// in length.
    pub fn gate_delay_ps_batch(
        &self,
        vdd: Volts,
        chip: &ChipSample,
        dvth: &[Volts],
        ln_k: &[f64],
        out: &mut [f64],
    ) {
        assert_eq!(dvth.len(), out.len(), "batch kernel length mismatch");
        assert_eq!(ln_k.len(), out.len(), "batch kernel length mismatch");
        self.assert_voltage(vdd);
        let p = self.params();
        let denom = p.alpha * p.slope_n * THERMAL_VOLTAGE;
        let vth_chip = p.vth0 + chip.dvth;
        let num = p.delay_scale_ps * vdd.get();
        for i in 0..out.len() {
            let vth = vth_chip + dvth[i];
            let kappa = (chip.ln_k + ln_k[i]).exp();
            let x = (vdd - vth) / denom;
            out[i] = num / (softplus(x).powf(p.alpha) * kappa);
        }
    }

    /// Batch [`gate_delay_ps_at`](TechModel::gate_delay_ps_at) over a
    /// random-ΔVth vector with one shared random ln-k:
    /// `out[i] = self.gate_delay_ps_at(vdd, chip, dvth_rand[i], ln_k_rand)`,
    /// bit-identical. This is the quadrature engine's shape — Gauss–Hermite
    /// nodes sweep ΔVth while ln-k is integrated analytically.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is outside the supported range or the slices differ
    /// in length.
    pub fn gate_delay_ps_dvth_batch(
        &self,
        vdd: Volts,
        chip: &ChipSample,
        dvth_rand: &[Volts],
        ln_k_rand: f64,
        out: &mut [f64],
    ) {
        assert_eq!(dvth_rand.len(), out.len(), "batch kernel length mismatch");
        self.assert_voltage(vdd);
        let p = self.params();
        let denom = p.alpha * p.slope_n * THERMAL_VOLTAGE;
        let vth_chip = p.vth0 + chip.dvth;
        let kappa = (chip.ln_k + ln_k_rand).exp();
        let num = p.delay_scale_ps * vdd.get();
        for (o, &dv) in out.iter_mut().zip(dvth_rand) {
            let vth = vth_chip + dv;
            let x = (vdd - vth) / denom;
            *o = num / (softplus(x).powf(p.alpha) * kappa);
        }
    }

    /// Batch [`gate_delay_ps`](TechModel::gate_delay_ps) over a voltage
    /// grid for one fixed gate: `out[i] = self.gate_delay_ps(vdds[i],
    /// chip, gate)`, bit-identical. This is the operating-point
    /// prefetch shape — one conditioning sample, many supply voltages.
    ///
    /// # Panics
    ///
    /// Panics if any voltage is outside the supported range or the slices
    /// differ in length.
    pub fn gate_delay_ps_grid(
        &self,
        vdds: &[Volts],
        chip: &ChipSample,
        gate: &GateSample,
        out: &mut [f64],
    ) {
        assert_eq!(vdds.len(), out.len(), "batch kernel length mismatch");
        let p = self.params();
        let denom = p.alpha * p.slope_n * THERMAL_VOLTAGE;
        let vth = p.vth0 + chip.dvth + gate.dvth;
        let kappa = (chip.ln_k + gate.ln_k).exp();
        for (o, &vdd) in out.iter_mut().zip(vdds) {
            self.assert_voltage(vdd);
            let x = (vdd - vth) / denom;
            *o = p.delay_scale_ps * vdd.get() / (softplus(x).powf(p.alpha) * kappa);
        }
    }

    /// Batch [`fo4_delay_ps`](TechModel::fo4_delay_ps) over a voltage
    /// grid: `out[i] = self.fo4_delay_ps(vdds[i])`, bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if any voltage is outside the supported range or the slices
    /// differ in length.
    pub fn fo4_delay_ps_grid(&self, vdds: &[Volts], out: &mut [f64]) {
        assert_eq!(vdds.len(), out.len(), "batch kernel length mismatch");
        let p = self.params();
        let denom = p.alpha * p.slope_n * THERMAL_VOLTAGE;
        for (o, &vdd) in out.iter_mut().zip(vdds) {
            self.assert_voltage(vdd);
            let x = (vdd - p.vth0) / denom;
            *o = p.delay_scale_ps * vdd.get() / softplus(x).powf(p.alpha);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::node::TechNode;
    use crate::variation::{ChipSample, GateSample};
    use crate::TechModel;
    use ntv_units::Volts;

    fn chips() -> Vec<ChipSample> {
        vec![
            ChipSample::nominal(),
            ChipSample {
                dvth: Volts(0.017),
                ln_k: -0.08,
            },
            ChipSample {
                dvth: Volts(-0.009),
                ln_k: 0.05,
            },
        ]
    }

    #[test]
    fn on_current_batch_matches_scalar_bitwise() {
        for node in TechNode::ALL {
            let tech = TechModel::new(node);
            for n in [0usize, 1, 7, 24] {
                let vths: Vec<Volts> = (0..n)
                    .map(|i| Volts(0.25 + 0.01 * f64::from(i as i32) - 0.002))
                    .collect();
                let mut out = vec![0.0; n];
                tech.on_current_batch(Volts(0.55), &vths, &mut out);
                for (i, &vth) in vths.iter().enumerate() {
                    assert_eq!(
                        out[i].to_bits(),
                        tech.on_current(Volts(0.55), vth).to_bits(),
                        "{node} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn on_current_grid_matches_scalar_bitwise() {
        let tech = TechModel::new(TechNode::Gp45);
        let vdds: Vec<Volts> = (0..33).map(|i| Volts(0.35 + 0.02 * f64::from(i))).collect();
        let mut out = vec![0.0; vdds.len()];
        tech.on_current_grid(&vdds, Volts(0.31), &mut out);
        for (i, &v) in vdds.iter().enumerate() {
            assert_eq!(out[i].to_bits(), tech.on_current(v, Volts(0.31)).to_bits());
        }
    }

    #[test]
    fn gate_delay_batches_match_scalar_bitwise() {
        for node in [TechNode::Gp90, TechNode::PtmHp22] {
            let tech = TechModel::new(node);
            for chip in &chips() {
                let dvth: Vec<Volts> = (0..17)
                    .map(|i| Volts(0.012 * f64::from(i - 8) / 8.0))
                    .collect();
                let ln_k: Vec<f64> = (0..17).map(|i| 0.07 * f64::from(i - 5) / 5.0).collect();
                let vdd = Volts(0.5);

                let mut out = vec![0.0; dvth.len()];
                tech.gate_delay_ps_batch(vdd, chip, &dvth, &ln_k, &mut out);
                for i in 0..dvth.len() {
                    let gate = GateSample {
                        dvth: dvth[i],
                        ln_k: ln_k[i],
                    };
                    assert_eq!(
                        out[i].to_bits(),
                        tech.gate_delay_ps(vdd, chip, &gate).to_bits(),
                        "{node} SoA i={i}"
                    );
                }

                tech.gate_delay_ps_dvth_batch(vdd, chip, &dvth, 0.0, &mut out);
                for i in 0..dvth.len() {
                    assert_eq!(
                        out[i].to_bits(),
                        tech.gate_delay_ps_at(vdd, chip, dvth[i], 0.0).to_bits(),
                        "{node} dvth i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn voltage_grid_kernels_match_scalar_bitwise() {
        let tech = TechModel::new(TechNode::PtmHp32);
        let chip = ChipSample {
            dvth: Volts(0.011),
            ln_k: -0.03,
        };
        let gate = GateSample {
            dvth: Volts(-0.006),
            ln_k: 0.02,
        };
        let vdds: Vec<Volts> = (0..29).map(|i| Volts(0.4 + 0.02 * f64::from(i))).collect();
        let mut out = vec![0.0; vdds.len()];

        tech.gate_delay_ps_grid(&vdds, &chip, &gate, &mut out);
        for (i, &v) in vdds.iter().enumerate() {
            assert_eq!(
                out[i].to_bits(),
                tech.gate_delay_ps(v, &chip, &gate).to_bits()
            );
        }

        tech.fo4_delay_ps_grid(&vdds, &mut out);
        for (i, &v) in vdds.iter().enumerate() {
            assert_eq!(out[i].to_bits(), tech.fo4_delay_ps(v).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "batch kernel length mismatch")]
    fn batch_kernels_reject_length_mismatch() {
        let tech = TechModel::new(TechNode::Gp90);
        let mut out = [0.0; 2];
        tech.on_current_batch(Volts(0.5), &[Volts(0.3)], &mut out);
    }

    #[test]
    #[should_panic(expected = "outside the supported range")]
    fn grid_kernels_validate_every_voltage() {
        let tech = TechModel::new(TechNode::Gp90);
        let mut out = [0.0; 2];
        tech.fo4_delay_ps_grid(&[Volts(0.5), Volts(3.0)], &mut out);
    }
}
