//! Switching + leakage energy model (paper §2, Appendix A / Fig 9).
//!
//! Energy per operation at supply `V` is modelled as
//!
//! ```text
//! E(V) = E_switch(V) + E_leak(V)
//!      = C_sw · V²  +  I_leak(V) · V · D_op(V)
//!      = C_sw · V² · (1 + I_leak(V) / I_on(V))
//! ```
//!
//! where the second form follows because the operation delay is
//! `D_op ∝ V / I_on(V)`. The leakage current `I_leak ∝ exp(η·V/(n·φt))`
//! (sub-threshold off-current with DIBL; the `exp(−Vth/(n·φt))` factor and
//! the idle-device width multiplier are folded into the `leak_i0`
//! calibration constant). Because `I_on` collapses exponentially below
//! threshold while `I_leak` only shrinks slowly, the leakage *energy* rises
//! near-exponentially in deep sub-threshold, producing the energy
//! **minimum** of Fig 9 below `Vth`; near-threshold operation sits just
//! above it, trading ≈2× energy for ≈10× performance versus the
//! minimum-energy point.

use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::model::TechModel;
use crate::params::THERMAL_VOLTAGE;

/// Number of FO4 stages in the reference operation (the paper's critical
/// path: a chain of 50 FO4 inverters).
pub const OP_CHAIN_LENGTH: usize = 50;

/// One point of an energy/delay sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyPoint {
    /// Supply voltage.
    pub vdd: Volts,
    /// Switching energy per op (fJ).
    pub switching_fj: f64,
    /// Leakage energy per op (fJ).
    pub leakage_fj: f64,
    /// Total energy per op (fJ).
    pub total_fj: f64,
    /// Operation delay (ns).
    pub delay_ns: f64,
}

/// Energy queries on a [`TechModel`].
///
/// # Example
///
/// ```
/// use ntv_device::{TechModel, TechNode};
/// use ntv_device::energy::EnergyModel;
/// use ntv_units::Volts;
///
/// let tech = TechModel::new(TechNode::Gp90);
/// let energy = EnergyModel::new(&tech);
/// // Near-threshold operation saves substantial energy vs nominal.
/// let nominal = energy.point(Volts(1.0)).total_fj;
/// let ntv = energy.point(Volts(0.5)).total_fj;
/// assert!(nominal / ntv > 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyModel<'a> {
    tech: &'a TechModel,
}

impl<'a> EnergyModel<'a> {
    /// Attach an energy model to a technology model.
    #[must_use]
    pub fn new(tech: &'a TechModel) -> Self {
        Self { tech }
    }

    /// Normalized leakage current at supply `vdd` (same units as
    /// [`TechModel::on_current`]; the `exp(−Vth/(n·φt))` off-state factor and
    /// the idle-width multiplier are folded into `leak_i0`).
    #[must_use]
    pub fn leakage_current(&self, vdd: Volts) -> f64 {
        let p = self.tech.params();
        p.leak_i0 * (p.dibl * vdd / (p.slope_n * THERMAL_VOLTAGE)).exp()
    }

    /// Per-operation delay (ns): the 50-stage reference critical path.
    #[must_use]
    pub fn op_delay_ns(&self, vdd: Volts) -> f64 {
        OP_CHAIN_LENGTH as f64 * self.tech.fo4_delay_ps(vdd) / 1000.0
    }

    /// Full energy breakdown at `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is outside the supported `(0.05, 2.0)` V range.
    #[must_use]
    pub fn point(&self, vdd: Volts) -> EnergyPoint {
        let p = self.tech.params();
        let switching_fj = p.switch_cap_fj * vdd.get() * vdd.get() * OP_CHAIN_LENGTH as f64;
        let delay_ns = self.op_delay_ns(vdd);
        // I_leak·V·D_op in the same fJ units as switching: D_op ∝ V/I_on
        // with the C/I scale already inside switch_cap_fj, so
        // E_leak = E_switch · I_leak/I_on.
        let i_on = self.tech.on_current(vdd, p.vth0);
        let leakage_fj = switching_fj * self.leakage_current(vdd) / i_on;
        EnergyPoint {
            vdd,
            switching_fj,
            leakage_fj,
            total_fj: switching_fj + leakage_fj,
            delay_ns,
        }
    }

    /// Sweep `[v_lo, v_hi]` in `steps` uniform increments (Fig 9 series).
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2` or the range is empty/invalid.
    #[must_use]
    pub fn sweep(&self, v_lo: Volts, v_hi: Volts, steps: usize) -> Vec<EnergyPoint> {
        assert!(steps >= 2, "a sweep needs at least two points");
        assert!(v_lo < v_hi, "invalid sweep range [{v_lo}, {v_hi}]");
        (0..steps)
            .map(|i| {
                let v = v_lo + (v_hi - v_lo) * i as f64 / (steps - 1) as f64;
                self.point(v)
            })
            .collect()
    }

    /// The minimum-energy operating point, found by golden-section search
    /// over `[0.1 V, nominal]`.
    ///
    /// Lands in the sub-threshold region for every calibrated node, as in
    /// Fig 9.
    #[must_use]
    pub fn minimum_energy_point(&self) -> EnergyPoint {
        let (mut a, mut b) = (Volts(0.1), self.tech.nominal_vdd());
        const PHI: f64 = 0.618_033_988_749_895;
        let mut c = b - PHI * (b - a);
        let mut d = a + PHI * (b - a);
        for _ in 0..80 {
            if self.point(c).total_fj < self.point(d).total_fj {
                b = d;
            } else {
                a = c;
            }
            c = b - PHI * (b - a);
            d = a + PHI * (b - a);
        }
        self.point(0.5 * (a + b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OperatingRegion;
    use crate::node::TechNode;

    #[test]
    fn energy_minimum_is_subthreshold() {
        for node in TechNode::ALL {
            let tech = TechModel::new(node);
            let e = EnergyModel::new(&tech);
            let min = e.minimum_energy_point();
            assert!(
                min.vdd < tech.params().vth0,
                "{node}: Emin at {} but Vth = {}",
                min.vdd,
                tech.params().vth0
            );
            assert_eq!(tech.region(min.vdd), OperatingRegion::SubThreshold);
        }
    }

    #[test]
    fn near_threshold_energy_tradeoff_matches_fig9() {
        // Paper: scaling from sub-threshold minimum up to NTV costs ~2x
        // energy but buys ~6-10x performance; NTV vs nominal saves large
        // energy at ~10x performance cost.
        let tech = TechModel::new(TechNode::Gp90);
        let e = EnergyModel::new(&tech);
        let min = e.minimum_energy_point();
        let ntv = e.point(Volts(0.5));
        let nominal = e.point(Volts(1.0));

        let energy_ratio_ntv_vs_min = ntv.total_fj / min.total_fj;
        assert!(
            energy_ratio_ntv_vs_min > 1.0 && energy_ratio_ntv_vs_min < 3.5,
            "NTV/min energy ratio {energy_ratio_ntv_vs_min}"
        );
        let speedup_ntv_vs_min = min.delay_ns / ntv.delay_ns;
        assert!(
            speedup_ntv_vs_min > 4.0,
            "NTV vs min speedup {speedup_ntv_vs_min}"
        );

        let energy_saving = nominal.total_fj / ntv.total_fj;
        assert!(energy_saving > 3.0, "nominal/NTV energy {energy_saving}");
        let slowdown = ntv.delay_ns / nominal.delay_ns;
        assert!(slowdown > 4.0 && slowdown < 25.0, "NTV slowdown {slowdown}");
    }

    #[test]
    fn switching_energy_is_quadratic_in_v() {
        let tech = TechModel::new(TechNode::Gp45);
        let e = EnergyModel::new(&tech);
        let r = e.point(Volts(1.0)).switching_fj / e.point(Volts(0.5)).switching_fj;
        assert!((r - 4.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_energy_dominates_in_deep_subthreshold() {
        let tech = TechModel::new(TechNode::PtmHp22);
        let e = EnergyModel::new(&tech);
        let deep = e.point(Volts(0.18));
        assert!(deep.leakage_fj > deep.switching_fj);
        let nominal = e.point(tech.nominal_vdd());
        assert!(nominal.switching_fj > nominal.leakage_fj);
    }

    #[test]
    fn sweep_is_ordered_and_consistent() {
        let tech = TechModel::new(TechNode::Gp90);
        let e = EnergyModel::new(&tech);
        let pts = e.sweep(Volts(0.2), Volts(1.0), 17);
        assert_eq!(pts.len(), 17);
        for w in pts.windows(2) {
            assert!(w[1].vdd > w[0].vdd);
            // Delay decreases monotonically with voltage.
            assert!(w[1].delay_ns < w[0].delay_ns);
        }
        for p in &pts {
            assert!((p.total_fj - p.switching_fj - p.leakage_fj).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn sweep_rejects_single_point() {
        let tech = TechModel::new(TechNode::Gp90);
        let _ = EnergyModel::new(&tech).sweep(Volts(0.2), Volts(1.0), 1);
    }
}
