//! Technology-node identifiers.

use std::fmt;
use std::str::FromStr;

use ntv_units::Volts;
use serde::{Deserialize, Serialize};

/// The four technology nodes studied in the paper (§3, Fig 2).
///
/// 90 nm and 45 nm use commercial general-purpose (GP) model calibrations;
/// 32 nm and 22 nm use Predictive Technology Model (PTM) high-performance
/// (HP) calibrations, simulated only up to their nominal voltages (0.9 V and
/// 0.8 V respectively — paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TechNode {
    /// 90 nm general-purpose (commercial model), nominal 1.0 V.
    Gp90,
    /// 45 nm general-purpose (commercial model), nominal 1.0 V.
    Gp45,
    /// 32 nm PTM high-performance, nominal 0.9 V.
    PtmHp32,
    /// 22 nm PTM high-performance, nominal 0.8 V.
    PtmHp22,
}

impl TechNode {
    /// All four nodes in the order the paper presents them.
    pub const ALL: [TechNode; 4] = [
        TechNode::Gp90,
        TechNode::Gp45,
        TechNode::PtmHp32,
        TechNode::PtmHp22,
    ];

    /// Feature size in nanometres.
    #[must_use]
    pub fn feature_nm(self) -> u32 {
        match self {
            TechNode::Gp90 => 90,
            TechNode::Gp45 => 45,
            TechNode::PtmHp32 => 32,
            TechNode::PtmHp22 => 22,
        }
    }

    /// Nominal ("full") supply voltage for the node.
    ///
    /// The paper's performance-drop baseline (Fig 4) and duplication target
    /// (Table 1) are both defined at this voltage.
    #[must_use]
    pub fn nominal_vdd(self) -> Volts {
        match self {
            TechNode::Gp90 | TechNode::Gp45 => Volts(1.0),
            TechNode::PtmHp32 => Volts(0.9),
            TechNode::PtmHp22 => Volts(0.8),
        }
    }

    /// Whether the node uses a predictive (PTM) rather than commercial model.
    #[must_use]
    pub fn is_predictive(self) -> bool {
        matches!(self, TechNode::PtmHp32 | TechNode::PtmHp22)
    }
}

impl fmt::Display for TechNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TechNode::Gp90 => "90nm GP",
            TechNode::Gp45 => "45nm GP",
            TechNode::PtmHp32 => "32nm PTM HP",
            TechNode::PtmHp22 => "22nm PTM HP",
        };
        f.write_str(name)
    }
}

/// Error returned when parsing a [`TechNode`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTechNodeError {
    input: String,
}

impl fmt::Display for ParseTechNodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown technology node `{}` (expected one of: 90nm, 45nm, 32nm, 22nm)",
            self.input
        )
    }
}

impl std::error::Error for ParseTechNodeError {}

impl FromStr for TechNode {
    type Err = ParseTechNodeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "90" | "90nm" | "gp90" | "90nm gp" => Ok(TechNode::Gp90),
            "45" | "45nm" | "gp45" | "45nm gp" => Ok(TechNode::Gp45),
            "32" | "32nm" | "ptmhp32" | "32nm ptm hp" => Ok(TechNode::PtmHp32),
            "22" | "22nm" | "ptmhp22" | "22nm ptm hp" => Ok(TechNode::PtmHp22),
            _ => Err(ParseTechNodeError {
                input: s.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nodes_listed_in_paper_order() {
        assert_eq!(TechNode::ALL.len(), 4);
        assert_eq!(TechNode::ALL[0].feature_nm(), 90);
        assert_eq!(TechNode::ALL[3].feature_nm(), 22);
    }

    #[test]
    fn nominal_voltages_match_paper() {
        assert_eq!(TechNode::Gp90.nominal_vdd(), Volts(1.0));
        assert_eq!(TechNode::Gp45.nominal_vdd(), Volts(1.0));
        assert_eq!(TechNode::PtmHp32.nominal_vdd(), Volts(0.9));
        assert_eq!(TechNode::PtmHp22.nominal_vdd(), Volts(0.8));
    }

    #[test]
    fn display_and_parse_round_trip() {
        for node in TechNode::ALL {
            let shown = node.to_string();
            let parsed: TechNode = shown.parse().expect("display form parses");
            assert_eq!(parsed, node);
        }
    }

    #[test]
    fn parse_shorthand() {
        assert_eq!("90nm".parse::<TechNode>().unwrap(), TechNode::Gp90);
        assert_eq!("22".parse::<TechNode>().unwrap(), TechNode::PtmHp22);
        assert!("65nm".parse::<TechNode>().is_err());
    }

    #[test]
    fn predictive_flag() {
        assert!(!TechNode::Gp90.is_predictive());
        assert!(!TechNode::Gp45.is_predictive());
        assert!(TechNode::PtmHp32.is_predictive());
        assert!(TechNode::PtmHp22.is_predictive());
    }
}
