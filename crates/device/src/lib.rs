#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Tests assert exact golden values; strict float equality is the point there.
#![cfg_attr(test, allow(clippy::float_cmp))]

//! Transistor-level delay, variation and energy models for near-threshold
//! operation.
//!
//! This crate is the workspace's substitute for the HSPICE Monte-Carlo decks
//! used by Seo et al. (DAC 2012). It provides, for each of the paper's four
//! technology nodes (90 nm GP, 45 nm GP, 32 nm PTM HP, 22 nm PTM HP):
//!
//! * a **transregional on-current model** (generalized EKV interpolation
//!   that is exponential in sub-threshold, power-law with a
//!   velocity-saturation exponent in strong inversion, and smooth in
//!   between) — [`TechModel::on_current`],
//! * an **FO4 gate-delay model** driven by that current —
//!   [`TechModel::fo4_delay_ps`] and [`TechModel::gate_delay_ps`],
//! * a **process-variation model** with per-chip systematic and per-device
//!   random components for both threshold voltage (RDF + LER) and current
//!   factor — [`variation`],
//! * a **switching + leakage energy model** exhibiting the three operating
//!   regions and the sub-threshold energy minimum of the paper's Fig 9 —
//!   [`energy`].
//!
//! Model constants are calibrated against the numbers the paper publishes
//! (Fig 1/2 delay-variation percentages, the 22.05 ns / 8.99 ns chain-of-50
//! delays at 0.5/0.6 V); see [`params`] for the provenance of every value
//! and [`calib`] for the calibration targets used in tests.
//!
//! # Example
//!
//! ```
//! use ntv_device::{TechModel, TechNode};
//! use ntv_mc::StreamRng;
//! use ntv_units::Volts;
//!
//! let tech = TechModel::new(TechNode::Gp90);
//! // Variation-free FO4 delay grows steeply in the near-threshold region.
//! assert!(tech.fo4_delay_ps(Volts(0.5)) > 3.0 * tech.fo4_delay_ps(Volts(0.7)));
//!
//! // Sample one chip and one device, and evaluate a varied gate delay.
//! let mut rng = StreamRng::from_seed(1);
//! let chip = tech.sample_chip(&mut rng);
//! let gate = tech.sample_gate(&mut rng);
//! let d = tech.gate_delay_ps(Volts(0.5), &chip, &gate);
//! assert!(d > 0.0);
//! ```

pub mod batch;
pub mod calib;
pub mod corners;
pub mod energy;
pub mod node;
pub mod params;
pub mod variation;

mod model;

pub use corners::Corner;
pub use model::{OperatingRegion, TechModel};
pub use node::TechNode;
pub use params::DeviceParams;
pub use variation::{ChipSample, GateSample, RegionSample};
