//! Process corners.
//!
//! Monte-Carlo studies sample the full variation distribution; corner
//! analysis pins the systematic components at fixed multiples of σ — the
//! classic SS/TT/FF sign-off view. The near-threshold twist the paper's
//! data makes vivid: the same 3σ-slow corner costs roughly twice the
//! relative delay at 0.5 V that it does at nominal voltage, because the
//! delay sensitivity `S(V)` explodes near threshold.

use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::model::TechModel;
use crate::variation::ChipSample;

/// A systematic process corner, in units of the systematic σ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Corner {
    /// Fast-fast: threshold 3σ low, current factor 3σ strong.
    FastFast,
    /// Typical (no systematic shift).
    Typical,
    /// Slow-slow: threshold 3σ high, current factor 3σ weak.
    SlowSlow,
}

impl Corner {
    /// All corners, fast to slow.
    pub const ALL: [Corner; 3] = [Corner::FastFast, Corner::Typical, Corner::SlowSlow];

    /// The systematic shift this corner pins, as a multiple of σ.
    #[must_use]
    pub fn sigma_multiple(self) -> f64 {
        match self {
            Corner::FastFast => -3.0,
            Corner::Typical => 0.0,
            Corner::SlowSlow => 3.0,
        }
    }

    /// The chip-level systematic sample representing this corner for a
    /// technology model.
    #[must_use]
    pub fn chip_sample(self, tech: &TechModel) -> ChipSample {
        let k = self.sigma_multiple();
        let p = tech.params();
        ChipSample {
            dvth: k * p.sigma_vth_systematic,
            // Slow corner = weak current = negative ln-k.
            ln_k: -k * p.sigma_k_systematic,
        }
    }

    /// Variation-free FO4 delay (ps) of a chip sitting at this corner.
    #[must_use]
    pub fn fo4_delay_ps(self, tech: &TechModel, vdd: Volts) -> f64 {
        let chip = self.chip_sample(tech);
        tech.gate_delay_ps(vdd, &chip, &crate::variation::GateSample::nominal())
    }

    /// Fractional slowdown of this corner vs typical at `vdd`.
    #[must_use]
    pub fn slowdown(self, tech: &TechModel, vdd: Volts) -> f64 {
        self.fo4_delay_ps(tech, vdd) / Corner::Typical.fo4_delay_ps(tech, vdd) - 1.0
    }
}

impl std::fmt::Display for Corner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Corner::FastFast => "FF",
            Corner::Typical => "TT",
            Corner::SlowSlow => "SS",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TechNode;

    #[test]
    fn corners_are_ordered_fast_to_slow() {
        let tech = TechModel::new(TechNode::Gp90);
        for vdd in [Volts(0.5), Volts(0.7), Volts(1.0)] {
            let ff = Corner::FastFast.fo4_delay_ps(&tech, vdd);
            let tt = Corner::Typical.fo4_delay_ps(&tech, vdd);
            let ss = Corner::SlowSlow.fo4_delay_ps(&tech, vdd);
            assert!(ff < tt && tt < ss, "{vdd}: {ff} {tt} {ss}");
        }
    }

    #[test]
    fn typical_corner_matches_nominal_delay() {
        let tech = TechModel::new(TechNode::Gp45);
        assert!(
            (Corner::Typical.fo4_delay_ps(&tech, Volts(0.6)) - tech.fo4_delay_ps(Volts(0.6))).abs()
                < 1e-12
        );
        assert_eq!(Corner::Typical.slowdown(&tech, Volts(0.6)), 0.0);
    }

    #[test]
    fn corner_spread_explodes_near_threshold() {
        // The defining near-threshold hazard: the same 3-sigma systematic
        // corner costs substantially more relative delay at 0.5 V than at
        // nominal voltage. The amplification is bounded below by the
        // Vth-driven share of the systematic budget (the current-factor
        // share is voltage-independent).
        for node in TechNode::ALL {
            let tech = TechModel::new(node);
            let at_nominal = Corner::SlowSlow.slowdown(&tech, tech.nominal_vdd());
            let at_ntv = Corner::SlowSlow.slowdown(&tech, Volts(0.5));
            assert!(
                at_ntv > 1.5 * at_nominal,
                "{node}: SS slowdown {at_ntv} vs {at_nominal}"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(Corner::FastFast.to_string(), "FF");
        assert_eq!(Corner::Typical.to_string(), "TT");
        assert_eq!(Corner::SlowSlow.to_string(), "SS");
    }
}
