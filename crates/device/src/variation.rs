//! Process-variation sampling.
//!
//! The paper's variation sources (§3.1): random dopant fluctuation (RDF) —
//! the dominant on-current variation source in near-threshold operation —
//! and line-edge roughness (LER), significant at advanced nodes. Both are
//! represented, as in the paper, by **normal distributions** on threshold
//! voltage, plus a log-normal current-factor term capturing
//! mobility/geometry variation that does not act through Vth.
//!
//! Two correlation scopes matter:
//!
//! * **per-chip systematic** ([`ChipSample`]) — shared by every gate on one
//!   die (die-to-die + long-range within-die correlation). This is what
//!   stops the chain-of-50 variance from shrinking with 1/N forever
//!   (Fig 1b vs Fig 1a, Fig 11).
//! * **per-device random** ([`GateSample`]) — independent per gate; averages
//!   out along a logic chain.

use ntv_mc::SampleStream;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::params::DeviceParams;

/// Regional (per-lane) variation draw: the part of within-die systematic
/// variation that differs between SIMD lanes (spatial correlation falls off
/// with distance, so a lane — a compact column of the array — shares one
/// regional offset, while different lanes see different ones).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RegionSample {
    /// Regional threshold-voltage shift ΔVth.
    pub dvth: Volts,
    /// Regional log current-factor shift.
    pub ln_k: f64,
}

impl RegionSample {
    /// The variation-free region (all shifts zero).
    #[must_use]
    pub fn nominal() -> Self {
        Self::default()
    }
}

/// Systematic (per-chip) variation draw, shared by all gates on a die.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ChipSample {
    /// Systematic threshold-voltage shift ΔVth.
    pub dvth: Volts,
    /// Systematic log current-factor shift.
    pub ln_k: f64,
}

impl ChipSample {
    /// The variation-free chip (all shifts zero).
    #[must_use]
    pub fn nominal() -> Self {
        Self::default()
    }
}

/// Random (per-device) variation draw, independent for each gate.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GateSample {
    /// Random threshold-voltage shift ΔVth.
    pub dvth: Volts,
    /// Random log current-factor shift.
    pub ln_k: f64,
}

impl GateSample {
    /// The variation-free gate (all shifts zero).
    #[must_use]
    pub fn nominal() -> Self {
        Self::default()
    }
}

/// Draw one chip's *total* systematic variation (chip-global plus one
/// regional offset) — what a single-region circuit such as an inverter
/// chain or an adder experiences. Cross-chip Monte Carlo over chains
/// (Fig 1/2) uses this.
pub fn sample_chip<R: SampleStream + ?Sized>(params: &DeviceParams, rng: &mut R) -> ChipSample {
    ChipSample {
        dvth: Volts(rng.normal(0.0, params.sigma_vth_systematic.get())),
        ln_k: rng.normal(0.0, params.sigma_k_systematic),
    }
}

/// Draw the chip-global share of systematic variation (variance fraction
/// `1 − lane_fraction`). Combine with per-lane [`sample_region`] draws to
/// model a multi-lane die.
pub fn sample_chip_global<R: SampleStream + ?Sized>(
    params: &DeviceParams,
    rng: &mut R,
) -> ChipSample {
    let f = (1.0 - params.lane_fraction).sqrt();
    ChipSample {
        dvth: Volts(rng.normal(0.0, params.sigma_vth_systematic.get() * f)),
        ln_k: rng.normal(0.0, params.sigma_k_systematic * f),
    }
}

/// Draw one lane's regional offset (variance fraction `lane_fraction` of
/// the systematic budget).
pub fn sample_region<R: SampleStream + ?Sized>(params: &DeviceParams, rng: &mut R) -> RegionSample {
    let f = params.lane_fraction.sqrt();
    RegionSample {
        dvth: Volts(rng.normal(0.0, params.sigma_vth_systematic.get() * f)),
        ln_k: rng.normal(0.0, params.sigma_k_systematic * f),
    }
}

/// Draw one device's random variation.
pub fn sample_gate<R: SampleStream + ?Sized>(params: &DeviceParams, rng: &mut R) -> GateSample {
    GateSample {
        dvth: Volts(rng.normal(0.0, params.sigma_vth_random.get())),
        ln_k: rng.normal(0.0, params.sigma_k_random),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TechNode;
    use ntv_mc::{StreamRng, Summary};

    #[test]
    fn nominal_samples_are_zero() {
        assert_eq!(ChipSample::nominal().dvth, Volts::ZERO);
        assert_eq!(GateSample::nominal().ln_k, 0.0);
    }

    #[test]
    fn sampled_sigmas_match_parameters() {
        let params = DeviceParams::for_node(TechNode::PtmHp22);
        let mut rng = StreamRng::from_seed(8);
        let chips: Summary = (0..50_000)
            .map(|_| sample_chip(&params, &mut rng).dvth.get())
            .collect();
        let gates: Summary = (0..50_000)
            .map(|_| sample_gate(&params, &mut rng).dvth.get())
            .collect();
        assert!(
            (chips.std_dev() - params.sigma_vth_systematic.get()).abs()
                < 0.05 * params.sigma_vth_systematic.get() + 1e-6
        );
        assert!(
            (gates.std_dev() - params.sigma_vth_random.get()).abs()
                < 0.05 * params.sigma_vth_random.get() + 1e-6
        );
        assert!(chips.mean().abs() < 1e-4);
        assert!(gates.mean().abs() < 1e-3);
    }

    #[test]
    fn global_and_regional_variances_partition_the_systematic_budget() {
        let params = DeviceParams::for_node(TechNode::Gp45);
        let mut rng = StreamRng::from_seed(4);
        let combined: Summary = (0..50_000)
            .map(|_| {
                (sample_chip_global(&params, &mut rng).dvth + sample_region(&params, &mut rng).dvth)
                    .get()
            })
            .collect();
        assert!(
            (combined.std_dev() - params.sigma_vth_systematic.get()).abs()
                < 0.05 * params.sigma_vth_systematic.get()
        );
    }

    #[test]
    fn zero_sigma_params_give_deterministic_samples() {
        let params = DeviceParams::builder(TechNode::Gp90)
            .sigma_scale(0.0)
            .build()
            .unwrap();
        let mut rng = StreamRng::from_seed(3);
        for _ in 0..10 {
            assert_eq!(sample_chip(&params, &mut rng), ChipSample::nominal());
            assert_eq!(sample_gate(&params, &mut rng), GateSample::nominal());
        }
    }
}
