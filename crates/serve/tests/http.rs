//! End-to-end contract of the serve front: routing, batch semantics,
//! Monte-Carlo shedding, and the double-run byte-identity guarantee with
//! the bounded cache enabled.

use std::time::Duration;

use ntv_serve::client::{request_once, Connection};
use ntv_serve::json::{self, Value};
use ntv_serve::{serve, ServeConfig};

fn test_config() -> ServeConfig {
    ServeConfig {
        // A small bound forces eviction inside the identity workload.
        cache_bound: Some(8),
        workers: 2,
        mc_capacity: 0,
        idle_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    }
}

/// The scripted query set for identity checks: more operating points than
/// the cache bound, across kinds, nodes and modes.
fn scripted_queries() -> Vec<String> {
    let mut bodies = vec![
        r#"{"kind":"min_spares","node":"90nm","vdd":0.5}"#.to_string(),
        r#"{"kind":"margin","node":"45nm","vdd":0.6}"#.to_string(),
        r#"{"kind":"dse","node":"90nm","vdd":0.55,"spares":[0,2,8]}"#.to_string(),
        r#"{"kind":"sweep","node":"22nm","vdd_start":0.5,"vdd_stop":0.7,"steps":9}"#.to_string(),
        r#"{"queries":[{"kind":"quantile","node":"45nm","vdd":0.6,"mode":"skewed-iid"},
                       {"kind":"quantile","node":"32nm","vdd":0.62,"q":0.999}]}"#
            .to_string(),
    ];
    for i in 0..12 {
        let vdd = 0.5 + 0.015 * f64::from(i);
        bodies.push(format!(
            r#"{{"kind":"quantile","node":"90nm","vdd":{vdd}}}"#
        ));
    }
    bodies
}

#[test]
fn routes_and_statuses() {
    let handle = serve(&test_config()).expect("bind");
    let addr = handle.addr();

    let health = request_once(addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(
        (health.status, health.body.as_str()),
        (200, r#"{"ok":true}"#)
    );

    let missing = request_once(addr, "GET", "/nope", "").expect("404");
    assert_eq!(missing.status, 404);

    let wrong_method = request_once(addr, "GET", "/v1/query", "").expect("405");
    assert_eq!(wrong_method.status, 405);

    let bad_json = request_once(addr, "POST", "/v1/query", "{oops").expect("400");
    assert_eq!(bad_json.status, 400);
    assert!(bad_json.body.contains("error"), "{}", bad_json.body);

    let bad_query =
        request_once(addr, "POST", "/v1/query", r#"{"kind":"margin","vdd":0.6}"#).expect("400");
    assert_eq!(bad_query.status, 400);
    assert!(bad_query.body.contains("node"), "{}", bad_query.body);

    handle.shutdown();
}

#[test]
fn batches_return_results_in_order() {
    let handle = serve(&test_config()).expect("bind");
    let mut conn = Connection::open(handle.addr()).expect("connect");

    let body = r#"{"queries":[
        {"kind":"quantile","node":"45nm","vdd":0.6},
        {"kind":"min_spares","node":"45nm","vdd":0.6},
        {"kind":"quantile","node":"45nm","vdd":0.6,"spares":4}]}"#;
    let response = conn.query(body).expect("batch");
    assert_eq!(response.status, 200);
    let parsed = json::parse(&response.body).expect("valid JSON");
    let results = parsed
        .get("results")
        .and_then(Value::as_arr)
        .expect("results");
    assert_eq!(results.len(), 3);
    assert_eq!(
        results[0].get("kind").and_then(Value::as_str),
        Some("quantile")
    );
    assert_eq!(
        results[1].get("kind").and_then(Value::as_str),
        Some("min_spares")
    );
    assert_eq!(results[2].get("spares").and_then(Value::as_f64), Some(4.0));

    // Spares strictly reduce the quantile.
    let (q0, q4) = (
        results[0].get("fo4").and_then(Value::as_f64).expect("fo4"),
        results[2].get("fo4").and_then(Value::as_f64).expect("fo4"),
    );
    assert!(q4 < q0, "spares must reduce q99: {q4} !< {q0}");
}

#[test]
fn mc_requests_shed_with_429_when_the_gate_is_full() {
    // Capacity 0: every MC request sheds, deterministically.
    let handle = serve(&test_config()).expect("bind");
    let mut conn = Connection::open(handle.addr()).expect("connect");

    let analytic = conn
        .query(r#"{"kind":"margin","node":"45nm","vdd":0.6}"#)
        .expect("analytic margin");
    assert_eq!(analytic.status, 200, "analytic work is never shed");

    let mc = conn
        .query(r#"{"kind":"margin","node":"45nm","vdd":0.6,"evaluation":"mc","samples":50}"#)
        .expect("mc margin");
    assert_eq!(mc.status, 429);
    assert!(mc.body.contains("capacity"), "{}", mc.body);

    // A batch is shed atomically if any member needs MC.
    let mixed = conn
        .query(
            r#"{"queries":[{"kind":"quantile","node":"45nm","vdd":0.6},
                           {"kind":"dse","node":"45nm","vdd":0.6,"evaluation":"mc","samples":50}]}"#,
        )
        .expect("mixed batch");
    assert_eq!(mixed.status, 429);

    handle.shutdown();
}

#[test]
fn mc_requests_run_when_capacity_allows() {
    let config = ServeConfig {
        mc_capacity: 1,
        ..test_config()
    };
    let handle = serve(&config).expect("bind");
    let mut conn = Connection::open(handle.addr()).expect("connect");
    let response = conn
        .query(r#"{"kind":"margin","node":"90nm","vdd":0.6,"evaluation":"mc","samples":50}"#)
        .expect("mc margin");
    assert_eq!(response.status, 200, "{}", response.body);
    assert!(response.body.contains(r#""kind":"margin""#));
    handle.shutdown();
}

#[test]
fn stats_endpoint_reports_cache_and_server_counters() {
    let handle = serve(&test_config()).expect("bind");
    let mut conn = Connection::open(handle.addr()).expect("connect");
    // Same operating point twice: at least one cache hit.
    for _ in 0..2 {
        let r = conn
            .query(r#"{"kind":"quantile","node":"45nm","vdd":0.612}"#)
            .expect("query");
        assert_eq!(r.status, 200);
    }
    let stats = conn.request("GET", "/stats", "").expect("stats");
    assert_eq!(stats.status, 200);
    let parsed = json::parse(&stats.body).expect("valid JSON");
    let cache = parsed.get("cache").expect("cache section");
    assert!(cache.get("hits").and_then(Value::as_f64).expect("hits") >= 1.0);
    assert_eq!(cache.get("bound").and_then(Value::as_f64), Some(8.0));
    let server = parsed.get("server").expect("server section");
    assert!(
        server
            .get("queries")
            .and_then(Value::as_f64)
            .expect("queries")
            >= 2.0
    );
    handle.shutdown();
}

#[test]
fn double_run_bodies_are_byte_identical_with_bounded_cache() {
    // Two full passes over the scripted set — against *two different
    // server instances* and an 8-entry cache the workload overflows — must
    // produce byte-identical response bodies: values are pure functions of
    // the query, so neither eviction history nor server lifetime may leak
    // into a single byte.
    let run = || -> Vec<String> {
        let handle = serve(&test_config()).expect("bind");
        let mut conn = Connection::open(handle.addr()).expect("connect");
        let bodies: Vec<String> = scripted_queries()
            .iter()
            .map(|q| {
                let r = conn.query(q).expect("query");
                assert_eq!(r.status, 200, "{}", r.body);
                r.body
            })
            .collect();
        handle.shutdown();
        bodies
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "response bodies must be byte-identical");
}

#[test]
fn concurrent_clients_get_identical_answers() {
    let handle = serve(&ServeConfig {
        workers: 4,
        ..test_config()
    })
    .expect("bind");
    let addr = handle.addr();
    let body = r#"{"queries":[{"kind":"quantile","node":"90nm","vdd":0.58},
                              {"kind":"quantile","node":"90nm","vdd":0.58,"spares":2},
                              {"kind":"min_spares","node":"90nm","vdd":0.58}]}"#;

    let mut answers: Vec<String> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut conn = Connection::open(addr).expect("connect");
                    (0..8)
                        .map(|_| {
                            let r = conn.query(body).expect("query");
                            assert_eq!(r.status, 200);
                            r.body
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            answers.extend(h.join().expect("client thread"));
        }
    });
    let reference = &answers[0];
    assert!(
        answers.iter().all(|a| a == reference),
        "all clients must observe identical bytes"
    );
    handle.shutdown();
}
