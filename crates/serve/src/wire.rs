//! The query wire format: parse request objects into typed [`Query`]
//! values, execute them on the analytic fast path, and render byte-stable
//! JSON results.
//!
//! This module is the *single* serialization path for analysis results —
//! the HTTP server and the `ntv` CLI's `--json` mode both call
//! [`Query::run`] / the `render_*` helpers here, so a margin solve prints
//! the same bytes whether it travelled over a socket or stdout.
//!
//! ## Schema
//!
//! A query is a JSON object with a `kind` plus kind-specific fields
//! (defaults in parentheses):
//!
//! | kind         | fields                                                        |
//! |--------------|---------------------------------------------------------------|
//! | `margin`     | `node`, `vdd`, `mode` (paper-normal), `evaluation` (analytic), `samples` (5000), `seed` (2012) |
//! | `quantile`   | `node`, `vdd`, `q` (0.99), `spares` (0), `mode`               |
//! | `sweep`      | `node`, `vdd_start`, `vdd_stop`, `steps`, `q` (0.99), `mode`  |
//! | `min_spares` | `node`, `vdd`, `max_spares` (128), `mode`                     |
//! | `dse`        | `node`, `vdd`, `spares` ([0,1,2,4,8,16,26]), `mode`, `evaluation`, `samples`, `seed` |
//!
//! `node` is `90nm | 45nm | 32nm | 22nm`; `mode` is
//! `paper-normal | skewed-iid | hierarchical`; `evaluation` is
//! `analytic | mc`. Only `margin` and `dse` have a Monte-Carlo fallback —
//! the other kinds are closed-form by construction. Voltages are validated
//! to the calibrated 0.3–1.2 V range.

use std::sync::OnceLock;

use ntv_core::dse::{DesignChoice, DseStudy};
use ntv_core::duplication::DuplicationStudy;
use ntv_core::engine::VariationMode;
use ntv_core::margining::{MarginSolution, MarginStudy};
use ntv_core::perf;
use ntv_core::{ChipQuantileSolver, DatapathConfig, DatapathEngine, Evaluation, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;

use crate::json::{self, Value};

/// Hard cap on sweep grid size: bounds per-query work so one request
/// cannot occupy a worker indefinitely.
pub const MAX_SWEEP_STEPS: u64 = 4_096;

/// Hard cap on spare-lane counts accepted over the wire.
pub const MAX_SPARES: u64 = 4_096;

/// Default Monte-Carlo sample count (matches the `ntv` CLI).
pub const DEFAULT_SAMPLES: u64 = 5_000;

/// Default Monte-Carlo seed (matches the `ntv` CLI).
pub const DEFAULT_SEED: u64 = 2_012;

/// Default spare-lane candidates for `dse` (the Table 3 ladder).
pub const DEFAULT_SPARE_CANDIDATES: [u32; 7] = [0, 1, 2, 4, 8, 16, 26];

/// A validated, executable query.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Voltage-margin solve (a Table 2 cell).
    Margin {
        /// Technology node.
        node: TechNode,
        /// Variation-correlation mode.
        mode: VariationMode,
        /// NTV operating voltage.
        vdd: Volts,
        /// Analytic fast path or Monte-Carlo fallback.
        evaluation: Evaluation,
        /// MC sample count (ignored by the analytic path).
        samples: usize,
        /// MC seed (ignored by the analytic path).
        seed: u64,
    },
    /// Chip-delay quantile probe with optional spare lanes.
    Quantile {
        /// Technology node.
        node: TechNode,
        /// Variation-correlation mode.
        mode: VariationMode,
        /// Supply voltage.
        vdd: Volts,
        /// Quantile level in (0, 1).
        q: f64,
        /// Spare lanes (0 = the plain chip delay).
        spares: u32,
    },
    /// Quantile sweep over a linear voltage grid.
    Sweep {
        /// Technology node.
        node: TechNode,
        /// Variation-correlation mode.
        mode: VariationMode,
        /// First grid voltage.
        vdd_start: Volts,
        /// Last grid voltage (inclusive).
        vdd_stop: Volts,
        /// Grid size (2..=[`MAX_SWEEP_STEPS`]).
        steps: usize,
        /// Quantile level in (0, 1).
        q: f64,
    },
    /// Smallest spare count meeting the nominal-voltage baseline.
    MinSpares {
        /// Technology node.
        node: TechNode,
        /// Variation-correlation mode.
        mode: VariationMode,
        /// Supply voltage.
        vdd: Volts,
        /// Largest spare count to consider.
        max_spares: u32,
    },
    /// Combined spares + margin exploration (a Table 3).
    Dse {
        /// Technology node.
        node: TechNode,
        /// Variation-correlation mode.
        mode: VariationMode,
        /// Supply voltage.
        vdd: Volts,
        /// Spare-lane candidates to cost out.
        spares: Vec<u32>,
        /// Analytic fast path or Monte-Carlo fallback.
        evaluation: Evaluation,
        /// MC sample count (ignored by the analytic path).
        samples: usize,
        /// MC seed (ignored by the analytic path).
        seed: u64,
    },
}

/// Process-wide table of prebuilt paper-default engines, one per
/// `(node, mode)` — 12 entries at most, built on first use and kept for
/// the life of the process.
///
/// Constructing a `TechModel` + `DatapathEngine` costs ~5 µs (dominated
/// by the Gauss–Hermite quadrature in `PathModel`), an order of magnitude
/// more than the closed-form quantile solve itself (~0.4 µs). A
/// per-query rebuild capped service throughput at ~26 k queries/s; the
/// table removes it entirely. The deliberate `Box::leak` is bounded by
/// the 12-entry key space.
#[must_use]
pub fn paper_engine(node: TechNode, mode: VariationMode) -> &'static DatapathEngine<'static> {
    static TABLE: [[OnceLock<&'static DatapathEngine<'static>>; 3]; 4] =
        [const { [const { OnceLock::new() }; 3] }; 4];
    let n = match node {
        TechNode::Gp90 => 0,
        TechNode::Gp45 => 1,
        TechNode::PtmHp32 => 2,
        TechNode::PtmHp22 => 3,
    };
    let m = match mode {
        VariationMode::PaperNormal => 0,
        VariationMode::SkewedIid => 1,
        VariationMode::Hierarchical => 2,
    };
    TABLE[n][m].get_or_init(|| {
        let tech: &'static TechModel = Box::leak(Box::new(TechModel::new(node)));
        Box::leak(Box::new(DatapathEngine::with_mode(
            tech,
            DatapathConfig::paper_default(),
            mode,
        )))
    })
}

/// Canonical wire name of a node (`"90nm"`, ... — also accepted on input).
#[must_use]
pub fn node_name(node: TechNode) -> String {
    format!("{}nm", node.feature_nm())
}

/// Canonical wire name of a variation mode.
#[must_use]
pub fn mode_name(mode: VariationMode) -> &'static str {
    match mode {
        VariationMode::PaperNormal => "paper-normal",
        VariationMode::SkewedIid => "skewed-iid",
        VariationMode::Hierarchical => "hierarchical",
    }
}

fn parse_mode(s: &str) -> Result<VariationMode, String> {
    match s {
        "paper-normal" => Ok(VariationMode::PaperNormal),
        "skewed-iid" => Ok(VariationMode::SkewedIid),
        "hierarchical" => Ok(VariationMode::Hierarchical),
        other => Err(format!(
            "unknown mode `{other}` (expected paper-normal | skewed-iid | hierarchical)"
        )),
    }
}

fn parse_evaluation(s: &str) -> Result<Evaluation, String> {
    match s {
        "analytic" => Ok(Evaluation::Analytic),
        "mc" => Ok(Evaluation::MonteCarlo),
        other => Err(format!(
            "unknown evaluation `{other}` (expected analytic | mc)"
        )),
    }
}

/// Field accessors over a query object, each with a schema-level default.
struct Fields<'a>(&'a Value);

impl Fields<'_> {
    fn str_field(&self, key: &str) -> Result<Option<&str>, String> {
        match self.0.get(key) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(Some)
                .ok_or_else(|| format!("`{key}` must be a string")),
        }
    }

    fn node(&self) -> Result<TechNode, String> {
        let name = self
            .str_field("node")?
            .ok_or_else(|| "`node` is required (90nm | 45nm | 32nm | 22nm)".to_string())?;
        name.parse().map_err(|e| format!("{e}"))
    }

    fn mode(&self) -> Result<VariationMode, String> {
        match self.str_field("mode")? {
            None => Ok(VariationMode::PaperNormal),
            Some(s) => parse_mode(s),
        }
    }

    fn evaluation(&self) -> Result<Evaluation, String> {
        match self.str_field("evaluation")? {
            None => Ok(Evaluation::Analytic),
            Some(s) => parse_evaluation(s),
        }
    }

    fn vdd(&self, key: &str) -> Result<Volts, String> {
        let v = self
            .0
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("`{key}` is required (volts)"))?;
        if (0.3..=1.2).contains(&v) {
            Ok(Volts(v))
        } else {
            Err(format!(
                "`{key}` = {v} outside the calibrated 0.3..=1.2 V range"
            ))
        }
    }

    fn quantile(&self) -> Result<f64, String> {
        match self.0.get("q") {
            None => Ok(0.99),
            Some(v) => {
                let q = v.as_f64().ok_or("`q` must be a number")?;
                if q > 0.0 && q < 1.0 {
                    Ok(q)
                } else {
                    Err(format!("`q` = {q} outside (0, 1)"))
                }
            }
        }
    }

    fn unsigned(&self, key: &str, default: u64, max: u64) -> Result<u64, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => {
                let n = v
                    .as_u64()
                    .ok_or_else(|| format!("`{key}` must be a non-negative integer"))?;
                if n <= max {
                    Ok(n)
                } else {
                    Err(format!("`{key}` = {n} exceeds the cap of {max}"))
                }
            }
        }
    }
}

#[allow(clippy::cast_possible_truncation)]
fn parse_one(value: &Value) -> Result<Query, String> {
    let f = Fields(value);
    let kind = f.str_field("kind")?.ok_or_else(|| {
        "`kind` is required (margin | quantile | sweep | min_spares | dse)".to_string()
    })?;
    match kind {
        "margin" => Ok(Query::Margin {
            node: f.node()?,
            mode: f.mode()?,
            vdd: f.vdd("vdd")?,
            evaluation: f.evaluation()?,
            samples: f.unsigned("samples", DEFAULT_SAMPLES, 1_000_000)? as usize,
            seed: f.unsigned("seed", DEFAULT_SEED, u64::MAX - 1)?,
        }),
        "quantile" => Ok(Query::Quantile {
            node: f.node()?,
            mode: f.mode()?,
            vdd: f.vdd("vdd")?,
            q: f.quantile()?,
            spares: f.unsigned("spares", 0, MAX_SPARES)? as u32,
        }),
        "sweep" => {
            let steps = f.unsigned("steps", 16, MAX_SWEEP_STEPS)?;
            if steps < 2 {
                return Err(format!("`steps` = {steps} below the minimum of 2"));
            }
            let (vdd_start, vdd_stop) = (f.vdd("vdd_start")?, f.vdd("vdd_stop")?);
            if vdd_stop.get() < vdd_start.get() {
                return Err("`vdd_stop` below `vdd_start`".to_string());
            }
            Ok(Query::Sweep {
                node: f.node()?,
                mode: f.mode()?,
                vdd_start,
                vdd_stop,
                steps: steps as usize,
                q: f.quantile()?,
            })
        }
        "min_spares" => Ok(Query::MinSpares {
            node: f.node()?,
            mode: f.mode()?,
            vdd: f.vdd("vdd")?,
            max_spares: f.unsigned("max_spares", 128, MAX_SPARES)? as u32,
        }),
        "dse" => {
            let spares = match value.get("spares") {
                None => DEFAULT_SPARE_CANDIDATES.to_vec(),
                Some(v) => {
                    let items = v.as_arr().ok_or("`spares` must be an array of integers")?;
                    if items.is_empty() || items.len() > 64 {
                        return Err("`spares` must list 1..=64 candidates".to_string());
                    }
                    items
                        .iter()
                        .map(|item| {
                            item.as_u64()
                                .filter(|&n| n <= MAX_SPARES)
                                .map(|n| n as u32)
                                .ok_or_else(|| {
                                    "`spares` entries must be integers within the cap".to_string()
                                })
                        })
                        .collect::<Result<Vec<u32>, String>>()?
                }
            };
            Ok(Query::Dse {
                node: f.node()?,
                mode: f.mode()?,
                vdd: f.vdd("vdd")?,
                spares,
                evaluation: f.evaluation()?,
                samples: f.unsigned("samples", DEFAULT_SAMPLES, 1_000_000)? as usize,
                seed: f.unsigned("seed", DEFAULT_SEED, u64::MAX - 1)?,
            })
        }
        other => Err(format!(
            "unknown kind `{other}` (expected margin | quantile | sweep | min_spares | dse)"
        )),
    }
}

/// Parse a request body into its query batch: either a single query
/// object or `{"queries": [...]}` (at most `max_batch` entries).
///
/// # Errors
///
/// Returns a human-readable message naming the first invalid query.
pub fn parse_batch(body: &Value, max_batch: usize) -> Result<Vec<Query>, String> {
    let items: Vec<&Value> = match body.get("queries") {
        Some(list) => list
            .as_arr()
            .ok_or("`queries` must be an array")?
            .iter()
            .collect(),
        None => vec![body],
    };
    if items.is_empty() {
        return Err("empty query batch".to_string());
    }
    if items.len() > max_batch {
        return Err(format!(
            "batch of {} exceeds the per-request cap of {max_batch}",
            items.len()
        ));
    }
    items
        .iter()
        .enumerate()
        .map(|(i, item)| parse_one(item).map_err(|e| format!("query {i}: {e}")))
        .collect()
}

impl Query {
    /// Whether executing this query runs the Monte-Carlo fallback (and so
    /// must pass the server's work-admission gate).
    #[must_use]
    pub fn needs_mc(&self) -> bool {
        matches!(
            self,
            Query::Margin {
                evaluation: Evaluation::MonteCarlo,
                ..
            } | Query::Dse {
                evaluation: Evaluation::MonteCarlo,
                ..
            }
        )
    }

    /// Execute the query and render its result object.
    ///
    /// Infallible by construction for validated queries *except* for
    /// out-of-regime solves (e.g. a margin above the model's 200 mV cap),
    /// which surface as an in-band `"error"` field on the result object —
    /// never a transport failure.
    #[must_use]
    pub fn run(&self, exec: &Executor) -> String {
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_inner(exec)));
        match outcome {
            Ok(body) => body,
            // A solver assertion (outside the model's regime) must not
            // take down the worker; report it in-band on the result.
            Err(_) => json::obj(&[
                ("kind", json::str_val(self.kind_name())),
                ("error", json::str_val("query outside the model's regime")),
            ]),
        }
    }

    /// Wire name of this query's kind.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Query::Margin { .. } => "margin",
            Query::Quantile { .. } => "quantile",
            Query::Sweep { .. } => "sweep",
            Query::MinSpares { .. } => "min_spares",
            Query::Dse { .. } => "dse",
        }
    }

    fn run_inner(&self, exec: &Executor) -> String {
        match *self {
            Query::Margin {
                node,
                mode,
                vdd,
                evaluation,
                samples,
                seed,
            } => {
                let engine = paper_engine(node, mode);
                let sol = MarginStudy::new(engine)
                    .with_executor(*exec)
                    .with_evaluation(evaluation)
                    .solve(vdd, samples, seed);
                render_margin(node, mode, &sol)
            }
            Query::Quantile {
                node,
                mode,
                vdd,
                q,
                spares,
            } => {
                let engine = paper_engine(node, mode);
                let solver = ChipQuantileSolver::new(engine);
                let fo4 = solver.spares_quantile_fo4(vdd, spares, q);
                let ns = fo4 * engine.fo4_unit_ps(vdd) / 1000.0;
                json::obj(&[
                    ("kind", json::str_val("quantile")),
                    ("node", json::str_val(&node_name(node))),
                    ("mode", json::str_val(mode_name(mode))),
                    ("vdd", json::num(vdd.get())),
                    ("q", json::num(q)),
                    ("spares", json::num(f64::from(spares))),
                    ("fo4", json::num(fo4)),
                    ("ns", json::num(ns)),
                ])
            }
            Query::Sweep {
                node,
                mode,
                vdd_start,
                vdd_stop,
                steps,
                q,
            } => {
                let engine = paper_engine(node, mode);
                let solver = ChipQuantileSolver::new(engine);
                let span = vdd_stop.get() - vdd_start.get();
                #[allow(clippy::cast_precision_loss)]
                let denom = (steps - 1) as f64;
                let points: Vec<String> = (0..steps)
                    .map(|i| {
                        #[allow(clippy::cast_precision_loss)]
                        let vdd = Volts(vdd_start.get() + span * (i as f64) / denom);
                        let fo4 = solver.chip_quantile_fo4(vdd, q);
                        let ns = fo4 * engine.fo4_unit_ps(vdd) / 1000.0;
                        json::obj(&[
                            ("vdd", json::num(vdd.get())),
                            ("fo4", json::num(fo4)),
                            ("ns", json::num(ns)),
                        ])
                    })
                    .collect();
                json::obj(&[
                    ("kind", json::str_val("sweep")),
                    ("node", json::str_val(&node_name(node))),
                    ("mode", json::str_val(mode_name(mode))),
                    ("q", json::num(q)),
                    ("points", json::arr(&points)),
                ])
            }
            Query::MinSpares {
                node,
                mode,
                vdd,
                max_spares,
            } => {
                let engine = paper_engine(node, mode);
                let target = perf::baseline_q99_fo4_analytic(engine);
                let study = DuplicationStudy::new(engine);
                let mut fields = vec![
                    ("kind", json::str_val("min_spares")),
                    ("node", json::str_val(&node_name(node))),
                    ("mode", json::str_val(mode_name(mode))),
                    ("vdd", json::num(vdd.get())),
                    ("target_q99_fo4", json::num(target)),
                    ("max_spares", json::num(f64::from(max_spares))),
                ];
                match study.min_spares_for(vdd, target, max_spares) {
                    Ok(spares) => fields.push(("spares", json::num(f64::from(spares)))),
                    Err(e) => {
                        fields.push(("spares", "null".to_string()));
                        fields.push(("error", json::str_val(&format!("{e}"))));
                    }
                }
                json::obj(&fields)
            }
            Query::Dse {
                node,
                mode,
                vdd,
                ref spares,
                evaluation,
                samples,
                seed,
            } => {
                let engine = paper_engine(node, mode);
                let study = DseStudy::new(engine)
                    .with_executor(*exec)
                    .with_evaluation(evaluation);
                let choices = study.explore(vdd, spares, samples, seed);
                let best = DseStudy::best(&choices);
                json::obj(&[
                    ("kind", json::str_val("dse")),
                    ("node", json::str_val(&node_name(node))),
                    ("mode", json::str_val(mode_name(mode))),
                    ("vdd", json::num(vdd.get())),
                    (
                        "choices",
                        json::arr(&choices.iter().map(render_choice).collect::<Vec<_>>()),
                    ),
                    ("best", render_choice(&best)),
                ])
            }
        }
    }
}

/// Render a margin solution — the one serializer for server and CLI.
#[must_use]
pub fn render_margin(node: TechNode, mode: VariationMode, sol: &MarginSolution) -> String {
    json::obj(&[
        ("kind", json::str_val("margin")),
        ("node", json::str_val(&node_name(node))),
        ("mode", json::str_val(mode_name(mode))),
        ("vdd", json::num(sol.vdd.get())),
        ("margin", json::num(sol.margin.get())),
        ("target_ns", json::num(sol.target_ns)),
        ("achieved_ns", json::num(sol.achieved_ns)),
        ("power_overhead", json::num(sol.power_overhead)),
    ])
}

/// Render one (spares, margin, power) design choice.
#[must_use]
pub fn render_choice(choice: &DesignChoice) -> String {
    json::obj(&[
        ("spares", json::num(f64::from(choice.spares))),
        ("margin", json::num(choice.margin.get())),
        ("power_overhead", json::num(choice.power_overhead)),
    ])
}

/// Render a DSE exploration (choice ladder plus the cheapest pick) — the
/// serializer behind both `ntv plan --json` and the server's `dse` kind.
#[must_use]
pub fn render_dse(
    node: TechNode,
    mode: VariationMode,
    vdd: Volts,
    choices: &[DesignChoice],
) -> String {
    let best = DseStudy::best(choices);
    json::obj(&[
        ("kind", json::str_val("dse")),
        ("node", json::str_val(&node_name(node))),
        ("mode", json::str_val(mode_name(mode))),
        ("vdd", json::num(vdd.get())),
        (
            "choices",
            json::arr(&choices.iter().map(render_choice).collect::<Vec<_>>()),
        ),
        ("best", render_choice(&best)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn query(text: &str) -> Query {
        parse_one(&parse(text).expect("valid JSON")).expect("valid query")
    }

    #[test]
    fn defaults_fill_in() {
        let q = query(r#"{"kind":"quantile","node":"45nm","vdd":0.6}"#);
        assert_eq!(
            q,
            Query::Quantile {
                node: TechNode::Gp45,
                mode: VariationMode::PaperNormal,
                vdd: Volts(0.6),
                q: 0.99,
                spares: 0,
            }
        );
        assert!(!q.needs_mc());

        let m = query(r#"{"kind":"margin","node":"90nm","vdd":0.55,"evaluation":"mc"}"#);
        assert!(m.needs_mc());
    }

    #[test]
    fn invalid_queries_are_named() {
        let cases = [
            (r#"{"node":"45nm","vdd":0.6}"#, "kind"),
            (r#"{"kind":"margin","vdd":0.6}"#, "node"),
            (r#"{"kind":"margin","node":"45nm"}"#, "vdd"),
            (r#"{"kind":"margin","node":"45nm","vdd":9.0}"#, "0.3..=1.2"),
            (
                r#"{"kind":"quantile","node":"45nm","vdd":0.6,"q":1.5}"#,
                "(0, 1)",
            ),
            (r#"{"kind":"warp","node":"45nm","vdd":0.6}"#, "unknown kind"),
            (
                r#"{"kind":"sweep","node":"45nm","vdd_start":0.7,"vdd_stop":0.5}"#,
                "vdd_stop",
            ),
        ];
        for (text, needle) in cases {
            let err = parse_one(&parse(text).expect("valid JSON")).expect_err(text);
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn batch_accepts_single_and_list() {
        let single = parse(r#"{"kind":"quantile","node":"45nm","vdd":0.6}"#).expect("json");
        assert_eq!(parse_batch(&single, 8).expect("batch").len(), 1);

        let list = parse(
            r#"{"queries":[{"kind":"quantile","node":"45nm","vdd":0.6},
                           {"kind":"min_spares","node":"90nm","vdd":0.5}]}"#,
        )
        .expect("json");
        assert_eq!(parse_batch(&list, 8).expect("batch").len(), 2);
        assert!(parse_batch(&list, 1).is_err(), "cap enforced");
    }

    #[test]
    fn quantile_execution_is_byte_stable() {
        let q = query(r#"{"kind":"quantile","node":"90nm","vdd":0.6,"spares":2}"#);
        let exec = Executor::serial();
        let a = q.run(&exec);
        let b = q.run(&exec);
        assert_eq!(a, b);
        assert!(a.starts_with(r#"{"kind":"quantile","node":"90nm""#), "{a}");
        assert!(a.contains(r#""spares":2"#), "{a}");
    }

    #[test]
    fn min_spares_reports_exhaustion_in_band() {
        // One spare cannot absorb deep-NTV variation at 0.45 V in 32 nm;
        // the solver's error must arrive as a result field, not a failure.
        let q = query(r#"{"kind":"min_spares","node":"32nm","vdd":0.45,"max_spares":1}"#);
        let body = q.run(&Executor::serial());
        assert!(body.contains(r#""spares":null"#), "{body}");
        assert!(body.contains("error"), "{body}");
    }

    #[test]
    fn sweep_emits_the_requested_grid() {
        let q = query(r#"{"kind":"sweep","node":"45nm","vdd_start":0.5,"vdd_stop":0.6,"steps":3}"#);
        let body = q.run(&Executor::serial());
        let v = parse(&body).expect("result is valid JSON");
        let points = v.get("points").and_then(Value::as_arr).expect("points");
        assert_eq!(points.len(), 3);
        assert_eq!(points[1].get("vdd").and_then(Value::as_f64), Some(0.55));
    }
}
