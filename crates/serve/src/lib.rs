#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! `ntv-serve` — a high-throughput query service over the analytic
//! variation-analysis fast path.
//!
//! The offline experiment suite answers each question (a Table 2 margin,
//! a Fig 4 quantile, a Table 3 exploration) by rebuilding its world from
//! scratch. This crate keeps that world *resident*: a long-running HTTP
//! server whose queries ride the closed-form solvers of
//! [`ntv_core::quantile`] in microseconds, with three mechanisms making
//! the service safe to leave up under concurrent load:
//!
//! 1. **Request coalescing** — concurrent queries that need the same
//!    operating point attach to a single in-flight
//!    [`ntv_core::OpPointCache`] build (single-flight);
//! 2. **A bounded cache** — the process-wide operating-point cache takes
//!    an LRU bound, and because distributions are pure functions of their
//!    key, eviction never changes a single response byte;
//! 3. **Load shedding** — Monte-Carlo fallback work passes a fixed-size
//!    admission gate and is rejected with HTTP 429 when full, so analytic
//!    traffic stays fast no matter what clients ask for.
//!
//! Responses are byte-stable: the same query set yields byte-identical
//! bodies across runs, servers, and cache histories — the property the
//! double-run identity test and CI smoke `cmp` pin.
//!
//! The wire schema lives in [`wire`]; the `ntv` CLI's `--json` output
//! shares the same renderers, so piping `ntv margin --json` and curling
//! `/v1/query` produce identical result objects.
//!
//! # Quickstart
//!
//! ```no_run
//! use ntv_serve::{serve, ServeConfig};
//!
//! let handle = serve(&ServeConfig::default()).expect("bind");
//! println!("listening on {}", handle.addr());
//! // ... curl -d '{"kind":"quantile","node":"45nm","vdd":0.6}' <addr>/v1/query
//! handle.shutdown();
//! ```

pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod shed;
pub mod wire;

pub use client::{Connection, Response};
pub use server::{serve, ServeConfig, ServerHandle};
pub use shed::{McGate, McPermit};
pub use wire::Query;
