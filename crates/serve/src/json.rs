//! Minimal JSON support for the serve layer: a total recursive-descent
//! parser for request bodies and the byte-stable rendering helpers every
//! response goes through.
//!
//! The workspace is offline (no serde_json); the server's schema is small
//! and flat, so a ~150-line parser covers it. Rendering mirrors the
//! contract of `xtask`'s report writer: fixed key order decided by each
//! call site, compact layout (no decorative whitespace), floats through
//! Rust's shortest-roundtrip `Display` — deterministic for a given value,
//! which is what makes two runs of the same query set byte-identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Object keys are sorted (`BTreeMap`) — the serve
/// schema has no duplicate or order-sensitive keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, the schema's only numeric type).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` for absent keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array slice, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with an
    /// exact integral value in `u64` range.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        // Reject NaN, negatives, fractions and values beyond 2^53 (not
        // exactly representable, so a client could not have meant them).
        if (0.0..=9_007_199_254_740_992.0).contains(&x) && x.fract() == 0.0 {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(x as u64)
        } else {
            None
        }
    }
}

/// A parse failure, with a byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offending input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (rejecting trailing garbage).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, inputs nested deeper than 32
/// levels, or trailing non-whitespace.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting cap: the serve schema is two levels deep; 32 rejects adversarial
/// deeply nested bodies without recursing to a stack overflow.
const MAX_DEPTH: usize = 32;

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", char::from(byte))))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not meaningful in the serve
                            // schema; map unpaired ones to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input arrived as &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        let x: f64 = text.parse().map_err(|_| self.error("bad number"))?;
        if x.is_finite() {
            Ok(Value::Num(x))
        } else {
            Err(self.error("number out of range"))
        }
    }
}

/// Escape a string for embedding in a JSON document (quotes, backslashes,
/// control characters — the same minimal set the xtask report writer
/// guarantees).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a float as a byte-stable JSON number: Rust's shortest-roundtrip
/// `Display` for finite values, `null` otherwise (JSON has no NaN/Inf).
#[must_use]
pub fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Render a compact JSON object from pre-rendered `(key, value)` pairs in
/// the given order — the one place response key layout is decided.
#[must_use]
pub fn obj(fields: &[(&str, String)]) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(key), value);
    }
    out.push('}');
    out
}

/// Render a compact JSON array from pre-rendered items.
#[must_use]
pub fn arr(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

/// Render a JSON string value (quoted and escaped).
#[must_use]
pub fn str_val(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_serve_schema() {
        let v = parse(
            r#"{"queries":[{"kind":"margin","node":"45nm","vdd":0.6},
                 {"kind":"quantile","vdd":0.55,"q":0.99,"spares":2}]}"#,
        )
        .expect("valid");
        let queries = v.get("queries").and_then(Value::as_arr).expect("array");
        assert_eq!(queries.len(), 2);
        assert_eq!(
            queries[0].get("kind").and_then(Value::as_str),
            Some("margin")
        );
        assert_eq!(queries[1].get("q").and_then(Value::as_f64), Some(0.99));
        assert_eq!(queries[1].get("spares").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "nul", "1 2", "{\"a\":1}x"] {
            assert!(parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn u64_coercion_is_strict() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Str("3".into()).as_u64(), None);
    }

    #[test]
    fn rendering_is_compact_and_escaped() {
        let body = obj(&[
            ("kind", str_val("margin")),
            ("vdd", num(0.6)),
            ("note", str_val("a\"b")),
        ]);
        assert_eq!(body, r#"{"kind":"margin","vdd":0.6,"note":"a\"b"}"#);
        assert_eq!(arr(&[num(1.0), num(0.5)]), "[1,0.5]");
        assert_eq!(num(f64::NAN), "null");
    }

    #[test]
    fn roundtrip_is_stable() {
        // Two renders of the same data are byte-identical — the property
        // the response-identity check builds on.
        let a = obj(&[("x", num(3.470_000_000_000_001e-6))]);
        let b = obj(&[("x", num(3.470_000_000_000_001e-6))]);
        assert_eq!(a, b);
        // And parsing what we render recovers the exact float.
        let v = parse(&a).expect("valid");
        let x = v.get("x").and_then(Value::as_f64).expect("num");
        assert_eq!(x.to_bits(), 3.470_000_000_000_001e-6f64.to_bits());
    }
}
