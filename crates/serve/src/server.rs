//! The long-running query service: a threaded std-net HTTP server over
//! the analytic fast path.
//!
//! # Architecture
//!
//! A fixed pool of worker threads each `accept`s on a clone of one bound
//! listener (the kernel load-balances wakeups) and owns a connection at a
//! time, serving keep-alive request sequences until the client closes or
//! the idle read timeout fires. Workers execute queries on a *serial*
//! executor: request-level parallelism comes from the worker pool, and
//! keeping each query single-threaded makes service throughput degrade
//! linearly — never convoy — under load.
//!
//! The three perf mechanisms, and where they live:
//!
//! * **Coalescing** — concurrent queries needing the same
//!   `(node, mode, path length, vdd)` operating point attach to one
//!   in-flight build via [`OpPointCache::get_or_build`]'s single-flight
//!   cells; the server adds nothing on top, which is the point: the
//!   mechanism is shared with every offline study.
//! * **Bounded cache** — [`ServeConfig::cache_bound`] applies an LRU bound
//!   to the process-wide cache at startup. Distributions are pure
//!   functions of the key, so eviction can change *timing* but never
//!   *bytes* (pinned by the double-run identity test and the CI smoke
//!   job's `cmp`).
//! * **Load shedding** — requests whose batch contains a Monte-Carlo
//!   fallback query must take a [`McGate`] permit for the whole request
//!   and receive `429 Too Many Requests` when the pool is dry. Analytic
//!   queries are never shed.
//!
//! # Endpoints
//!
//! | route        | method | body                                        |
//! |--------------|--------|---------------------------------------------|
//! | `/v1/query`  | POST   | one query object, or `{"queries": [...]}`   |
//! | `/stats`     | GET    | cache + server counters (not byte-stable)   |
//! | `/healthz`   | GET    | `{"ok":true}`                               |
//!
//! `/v1/query` responses are `{"results":[...]}` in request order and are
//! byte-identical across runs for a fixed query set; `/stats` reflects
//! live counters and is explicitly excluded from that contract.

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ntv_core::{Executor, OpPointCache};

use crate::http::{read_request, write_response, Request, RequestError};
use crate::json::{self, Value};
use crate::shed::McGate;
use crate::wire;

/// Server configuration; `Default` is suitable for tests and local use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address. Port 0 picks a free port (see [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads — the concurrent-connection capacity.
    pub workers: usize,
    /// LRU bound applied to the process-wide operating-point cache at
    /// startup; `None` leaves it unbounded.
    pub cache_bound: Option<usize>,
    /// Concurrent Monte-Carlo request slots (0 sheds all MC work).
    pub mc_capacity: usize,
    /// Most queries accepted in one request.
    pub max_batch: usize,
    /// Idle keep-alive timeout before a worker reclaims the connection.
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            cache_bound: Some(1024),
            mc_capacity: 2,
            max_batch: 1024,
            idle_timeout: Duration::from_secs(5),
        }
    }
}

/// Cumulative request counters, alongside the cache's own stats.
#[derive(Debug, Default)]
struct ServerCounters {
    /// HTTP requests served (any status).
    requests: AtomicU64,
    /// Individual queries executed (batch entries).
    queries: AtomicU64,
}

/// Shared state every worker sees.
#[derive(Debug)]
struct Shared {
    gate: McGate,
    counters: ServerCounters,
    shutdown: AtomicBool,
    max_batch: usize,
}

/// A running server: worker threads plus the handle to stop them.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Bind and start serving on background threads.
///
/// # Errors
///
/// Propagates socket errors from binding or cloning the listener.
pub fn serve(config: &ServeConfig) -> std::io::Result<ServerHandle> {
    OpPointCache::global().set_bound(config.cache_bound);
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        gate: McGate::new(config.mc_capacity),
        counters: ServerCounters::default(),
        shutdown: AtomicBool::new(false),
        max_batch: config.max_batch,
    });
    let workers = (0..config.workers.max(1))
        .map(|i| {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            let idle = config.idle_timeout;
            std::thread::Builder::new()
                .name(format!("ntv-serve-{i}"))
                .spawn(move || worker_loop(&listener, &shared, idle))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    Ok(ServerHandle {
        addr,
        shared,
        workers,
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the workers, and join them.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Block on the worker threads — i.e. forever, unless the process is
    /// signalled. The foreground mode of `ntv serve`.
    pub fn wait(mut self) {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Each worker blocks in accept(); one self-connection per worker
        // wakes them all to observe the flag.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn worker_loop(listener: &TcpListener, shared: &Shared, idle: Duration) {
    let exec = Executor::serial();
    while !shared.shutdown.load(Ordering::SeqCst) {
        let Ok((stream, _)) = listener.accept() else {
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(idle));
        let _ = stream.set_nodelay(true);
        handle_connection(stream, shared, &exec);
    }
}

/// Serve one connection's keep-alive request sequence.
fn handle_connection(stream: TcpStream, shared: &Shared, exec: &Executor) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) | Err(RequestError::Io(_)) => return,
            Err(RequestError::TooLarge) => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                let body = error_body("request exceeds size caps");
                let _ = write_response(&mut writer, 413, &body, false);
                return;
            }
            Err(RequestError::Bad(reason)) => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                let body = error_body(&reason);
                let _ = write_response(&mut writer, 400, &body, false);
                return;
            }
        };
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (status, body) = route(&request, shared, exec);
        // Routed responses (including 404/405/429) are exactly framed, so
        // the connection stays usable; only transport-level errors above
        // force a close.
        let keep_alive = request.keep_alive;
        if write_response(&mut writer, status, &body, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

fn error_body(message: &str) -> String {
    json::obj(&[("error", json::str_val(message))])
}

/// Dispatch one request to its endpoint, returning `(status, body)`.
fn route(request: &Request, shared: &Shared, exec: &Executor) -> (u16, String) {
    match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/v1/query") => run_batch(&request.body, shared, exec),
        ("GET", "/healthz") => (200, json::obj(&[("ok", "true".to_string())])),
        ("GET", "/stats") => (200, render_stats(shared)),
        (_, "/v1/query" | "/healthz" | "/stats") => (405, error_body("method not allowed")),
        _ => (404, error_body("no such endpoint")),
    }
}

fn run_batch(body: &str, shared: &Shared, exec: &Executor) -> (u16, String) {
    let parsed = match json::parse(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&format!("{e}"))),
    };
    let queries = match wire::parse_batch(&parsed, shared.max_batch) {
        Ok(qs) => qs,
        Err(e) => return (400, error_body(&e)),
    };
    // Admission: a request with any Monte-Carlo work holds one permit for
    // its entire execution, bounding concurrent MC to the gate's capacity.
    let _permit = if queries.iter().any(wire::Query::needs_mc) {
        match shared.gate.admit() {
            Some(permit) => Some(permit),
            None => return (
                429,
                error_body(
                    "monte-carlo capacity exhausted; retry later or use evaluation \"analytic\"",
                ),
            ),
        }
    } else {
        None
    };
    shared
        .counters
        .queries
        .fetch_add(queries.len() as u64, Ordering::Relaxed);
    let results: Vec<String> = queries.iter().map(|q| q.run(exec)).collect();
    (200, json::obj(&[("results", json::arr(&results))]))
}

/// Render `/stats`: the cache counters plus the server's own.
fn render_stats(shared: &Shared) -> String {
    let cache = OpPointCache::global().stats();
    let bound = match OpPointCache::global().bound() {
        Some(b) => json::num(b as f64),
        None => "null".to_string(),
    };
    json::obj(&[
        (
            "cache",
            json::obj(&[
                ("hits", json::num(cache.hits as f64)),
                ("misses", json::num(cache.misses as f64)),
                ("evictions", json::num(cache.evictions as f64)),
                ("coalesced", json::num(cache.coalesced as f64)),
                ("resident", json::num(cache.resident as f64)),
                ("bound", bound),
            ]),
        ),
        (
            "server",
            json::obj(&[
                (
                    "requests",
                    json::num(shared.counters.requests.load(Ordering::Relaxed) as f64),
                ),
                (
                    "queries",
                    json::num(shared.counters.queries.load(Ordering::Relaxed) as f64),
                ),
                (
                    "mc_admitted",
                    json::num(shared.gate.admitted_total() as f64),
                ),
                ("mc_shed", json::num(shared.gate.shed_total() as f64)),
                ("mc_capacity", json::num(shared.gate.capacity() as f64)),
            ]),
        ),
    ])
}

/// Parse a stats body (for tests and the bench harness).
///
/// # Errors
///
/// Propagates JSON parse failures.
pub fn parse_stats(body: &str) -> Result<Value, json::ParseError> {
    json::parse(body)
}
