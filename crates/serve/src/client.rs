//! A minimal blocking HTTP client for the serve endpoints — just enough
//! for the integration tests, the load bench, and CI smoke scripting.
//! Not a general client: it speaks exactly the dialect `ntv serve` emits.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A keep-alive connection to a serve instance.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A response: status code and body bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (always JSON from this service).
    pub body: String,
}

impl Connection {
    /// Open a keep-alive connection.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn open(addr: SocketAddr) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { reader, writer })
    }

    /// Issue a request and read the full response.
    ///
    /// # Errors
    ///
    /// Propagates socket failures and malformed response framing.
    pub fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<Response> {
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nhost: ntv\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )?;
        self.writer.flush()?;

        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(bad("connection closed before response"));
        }
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;

        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(bad("truncated response headers"));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad("bad response content-length"))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body).map_err(|_| bad("response body not UTF-8"))?;
        Ok(Response { status, body })
    }

    /// POST a JSON body to `/v1/query`.
    ///
    /// # Errors
    ///
    /// Propagates socket failures and malformed response framing.
    pub fn query(&mut self, body: &str) -> std::io::Result<Response> {
        self.request("POST", "/v1/query", body)
    }
}

/// One-shot request on a fresh connection.
///
/// # Errors
///
/// Propagates connect and transport failures.
pub fn request_once(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<Response> {
    Connection::open(addr)?.request(method, path, body)
}
