//! Load-shedding for the Monte-Carlo fallback: a fixed pool of admission
//! permits.
//!
//! Analytic queries cost microseconds and are admitted unconditionally;
//! a Monte-Carlo fallback solve costs seconds of CPU, so unbounded
//! admission would let a handful of `evaluation: "mc"` requests starve
//! every analytic client behind them. The gate holds a fixed number of
//! permits; a request that needs MC work must take one for its whole
//! lifetime and is rejected with HTTP 429 when none is free — an explicit,
//! immediate signal the client can back off on, instead of an unbounded
//! queue that converts overload into timeout roulette.
//!
//! The counter discipline is compare-exchange on a single `AtomicUsize`:
//! acquisition never blocks and never underflows, and the RAII
//! [`McPermit`] makes release unconditional on every exit path (including
//! a panicking solver).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Admission gate for Monte-Carlo work. See the module docs.
#[derive(Debug)]
pub struct McGate {
    /// Permits currently free.
    free: AtomicUsize,
    /// Total pool size (for `/stats`).
    capacity: usize,
    /// Requests admitted through the gate, cumulative.
    admitted: AtomicU64,
    /// Requests rejected (shed), cumulative.
    shed: AtomicU64,
}

/// An admission permit; dropping it returns the slot to the pool.
#[derive(Debug)]
pub struct McPermit<'g> {
    gate: &'g McGate,
}

impl McGate {
    /// A gate with `capacity` concurrent MC slots. Zero is allowed and
    /// sheds every MC request — a pure-analytic service.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            free: AtomicUsize::new(capacity),
            capacity,
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Try to take a permit. `None` means the caller must shed (429).
    #[must_use]
    pub fn admit(&self) -> Option<McPermit<'_>> {
        // Racing seed only: a stale value is revalidated by the CAS below,
        // whose Acquire success edge carries the handshake; a stale zero
        // sheds, which overload permits anyway.
        // ntv:allow(atomic-ordering): seed load; the CAS revalidates with Acquire
        let mut free = self.free.load(Ordering::Relaxed);
        loop {
            if free == 0 {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            match self.free.compare_exchange_weak(
                free,
                free - 1,
                // Acquire pairs with the Release of a permit drop, so the
                // new holder observes the previous holder's completed work.
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    // The permit is constructed only after the CAS lands:
                    // there is no early return or panic between the
                    // decrement and the RAII value taking ownership of it,
                    // so every decrement has exactly one pending Drop.
                    self.admitted.fetch_add(1, Ordering::Relaxed);
                    return Some(McPermit { gate: self });
                }
                Err(seen) => free = seen,
            }
        }
    }

    /// Pool size the gate was built with.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests admitted so far.
    #[must_use]
    pub fn admitted_total(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests shed so far.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }
}

impl Drop for McPermit<'_> {
    fn drop(&mut self) {
        // The sole release site. Runs on normal scope exit, on every `?` /
        // early-return path, and during unwinding when a solver panics in
        // a worker thread, so the pool cannot leak slots.
        self.gate.free.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_bounds_concurrent_permits() {
        let gate = McGate::new(2);
        let a = gate.admit().expect("slot 1");
        let _b = gate.admit().expect("slot 2");
        assert!(gate.admit().is_none(), "third admission must shed");
        assert_eq!(gate.shed_total(), 1);
        drop(a);
        let _c = gate.admit().expect("freed slot is reusable");
        assert_eq!(gate.admitted_total(), 3);
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let gate = McGate::new(0);
        assert!(gate.admit().is_none());
        assert_eq!(gate.capacity(), 0);
    }

    /// Repeatedly leak permits into panicking handlers and assert the pool
    /// refills to full capacity every round — the RAII release must fire on
    /// the unwind path as reliably as on normal returns, with no slot decay
    /// over many panics.
    #[test]
    fn permit_pool_refills_after_repeated_handler_panics() {
        let gate = McGate::new(2);
        for round in 0..16 {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _held = gate.admit().expect("slot 1");
                let _also = gate.admit().expect("slot 2");
                assert!(gate.admit().is_none(), "pool exhausted mid-handler");
                panic!("handler blew up holding both permits");
            }));
            assert!(outcome.is_err(), "round {round}: handler must panic");
            // Both permits must be back: the whole pool is admittable again.
            let a = gate.admit();
            let b = gate.admit();
            assert!(
                a.is_some() && b.is_some(),
                "round {round}: pool did not refill after the unwind"
            );
        }
        assert_eq!(gate.shed_total(), 16, "one shed per exhausted round");
    }

    #[test]
    fn permits_survive_a_panicking_holder() {
        let gate = McGate::new(1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _permit = gate.admit().expect("slot");
            panic!("solver blew up");
        }));
        assert!(outcome.is_err());
        assert!(gate.admit().is_some(), "permit released by unwind");
    }
}
