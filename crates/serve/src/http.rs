//! A deliberately small HTTP/1.1 implementation: request parsing and
//! response framing for the serve front end.
//!
//! The workspace is offline (no hyper/tokio), and the service needs only
//! the slice of HTTP that batch JSON clients use: `GET`/`POST`, a
//! `Content-Length` body, keep-alive connections. Everything else —
//! chunked bodies, expect/continue, multipart — is rejected with a clear
//! status. Hard caps on the header block and body size bound per-request
//! memory before a single byte of JSON is parsed.

use std::io::{self, BufRead, Write};

/// Cap on the request line + headers (16 KiB — far above any sane client).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Cap on the request body (1 MiB — thousands of batched queries).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: enough structure for routing, nothing more.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request target path (query strings are not used by this service).
    pub target: String,
    /// Decoded body (empty when absent).
    pub body: String,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why a request could not be read. Each maps to one response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Malformed request line, header, or body framing → 400.
    Bad(String),
    /// Headers or body exceeded the hard caps → 413.
    TooLarge,
    /// Socket error or timeout; the connection is dropped silently.
    Io(String),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e.to_string())
    }
}

/// Read one request off a connection.
///
/// `Ok(None)` is a clean end-of-stream (the client closed between
/// requests — the normal end of a keep-alive session).
///
/// # Errors
///
/// See [`RequestError`] for the status each failure maps to.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<Request>, RequestError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m.to_string(), t.to_string(), v),
        _ => return Err(RequestError::Bad("malformed request line".to_string())),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Bad(format!("unsupported version {version}")));
    }
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";

    let mut content_length: usize = 0;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(RequestError::Bad("truncated headers".to_string()));
        }
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(RequestError::TooLarge);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(RequestError::Bad(format!("malformed header `{header}`")));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| RequestError::Bad("bad content-length".to_string()))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(RequestError::TooLarge);
                }
            }
            "transfer-encoding" => {
                // Chunked bodies are out of scope; refusing beats
                // misinterpreting the framing.
                return Err(RequestError::Bad(
                    "transfer-encoding is not supported; send content-length".to_string(),
                ));
            }
            "connection" => {
                let value = value.to_ascii_lowercase();
                if value.contains("close") {
                    keep_alive = false;
                } else if value.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    io::Read::read_exact(reader, &mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| RequestError::Bad("body is not valid UTF-8".to_string()))?;

    Ok(Some(Request {
        method,
        target,
        body,
        keep_alive,
    }))
}

/// Reason phrase for the statuses this service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Write a JSON response with exact `Content-Length` framing.
///
/// The body bytes pass through untouched — response byte-identity is
/// decided entirely by the caller's rendering.
///
/// # Errors
///
/// Propagates socket write failures (the connection is then dropped).
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n\r\n{body}",
        reason(status),
        body.len(),
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read(raw: &str) -> Result<Option<Request>, RequestError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_post_with_body() {
        let req = read("POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .expect("ok")
            .expect("some");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/query");
        assert_eq!(req.body, "{\"a\"");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_is_honoured() {
        let req = read("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("ok")
            .expect("some");
        assert!(!req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn clean_eof_is_none() {
        assert_eq!(read("").expect("ok"), None);
    }

    #[test]
    fn oversized_and_malformed_inputs_are_rejected() {
        assert!(matches!(read("GARBAGE\r\n\r\n"), Err(RequestError::Bad(_))));
        assert!(matches!(
            read("GET / HTTP/2\r\n\r\n"),
            Err(RequestError::Bad(_))
        ));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
            Err(RequestError::TooLarge)
        ));
        let huge_header = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "x".repeat(20_000));
        assert!(matches!(read(&huge_header), Err(RequestError::TooLarge)));
        assert!(matches!(
            read("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RequestError::Bad(_))
        ));
    }

    #[test]
    fn responses_are_exactly_framed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\ncontent-type: application/json\r\ncontent-length: 11\r\nconnection: keep-alive\r\n\r\n{\"ok\":true}"
        );
    }
}
