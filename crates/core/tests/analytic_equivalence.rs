//! Analytic-vs-Monte-Carlo equivalence suite.
//!
//! [`ChipQuantileSolver`] claims to compute the *exact* quantiles of the
//! same chip-delay distribution the Monte-Carlo engine samples. This suite
//! pins that claim across every variation mode, a coarse and a scaled
//! node, and the full voltage range of the paper's sweeps: the analytic
//! q50/q99 must sit within 3 bootstrap standard errors of a 50 000-sample
//! Monte-Carlo estimate — the strongest statement a finite sample can
//! certify, and tight enough to catch any unit slip, wrong variance
//! share, or quadrature mis-specification.

use ntv_core::engine::VariationMode;
use ntv_core::{ChipQuantileSolver, DatapathConfig, DatapathEngine, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_mc::{bootstrap, order, CounterRng, StreamRng};
use ntv_units::Volts;

const SAMPLES: usize = 50_000;
const RESAMPLES: usize = 200;

/// Monte-Carlo quantile estimate with a bootstrapped standard error.
fn mc_quantile(samples: &[f64], p: f64, rng: &mut StreamRng) -> (f64, f64) {
    let idx = (p * (samples.len() - 1) as f64).round() as usize;
    let ci = bootstrap::bootstrap_ci(samples, RESAMPLES, 0.95, rng, |v| {
        order::kth_smallest(v, idx)
    });
    // A 95% percentile interval spans ±1.96 SE around the estimate.
    (ci.estimate, ci.width() / 3.92)
}

fn check_mode_node_voltage(mode: VariationMode, node: TechNode, vdd: Volts, seed: u64) {
    let tech = TechModel::new(node);
    let engine = DatapathEngine::with_mode(&tech, DatapathConfig::paper_default(), mode);
    let solver = ChipQuantileSolver::new(&engine);

    let stream = CounterRng::new(seed, "equivalence");
    let samples = engine.sample_batch(vdd, &stream, 0..SAMPLES as u64, Executor::default());

    let mut boot = StreamRng::from_seed(seed ^ 0x5eed);
    for p in [0.5, 0.99] {
        let (mc, se) = mc_quantile(&samples, p, &mut boot);
        let analytic = solver.chip_quantile_fo4(vdd, p);
        assert!(
            (analytic - mc).abs() <= 3.0 * se,
            "{mode:?} {node:?} {vdd} q{:.0}: analytic {analytic} vs MC {mc} ± {se} (3σ)",
            p * 100.0
        );
    }
}

macro_rules! equivalence_case {
    ($name:ident, $mode:ident, $node:ident, $mv:literal, $seed:literal) => {
        #[test]
        fn $name() {
            check_mode_node_voltage(
                VariationMode::$mode,
                TechNode::$node,
                Volts(f64::from($mv) / 1000.0),
                $seed,
            );
        }
    };
}

// PaperNormal × {Gp90, PtmHp22} × {0.4, 0.55, 1.0} V
equivalence_case!(paper_normal_gp90_400mv, PaperNormal, Gp90, 400, 11);
equivalence_case!(paper_normal_gp90_550mv, PaperNormal, Gp90, 550, 12);
equivalence_case!(paper_normal_gp90_1000mv, PaperNormal, Gp90, 1000, 13);
equivalence_case!(paper_normal_ptm22_400mv, PaperNormal, PtmHp22, 400, 14);
equivalence_case!(paper_normal_ptm22_550mv, PaperNormal, PtmHp22, 550, 15);
equivalence_case!(paper_normal_ptm22_1000mv, PaperNormal, PtmHp22, 1000, 16);

// SkewedIid × {Gp90, PtmHp22} × {0.4, 0.55, 1.0} V
equivalence_case!(skewed_iid_gp90_400mv, SkewedIid, Gp90, 400, 21);
equivalence_case!(skewed_iid_gp90_550mv, SkewedIid, Gp90, 550, 22);
equivalence_case!(skewed_iid_gp90_1000mv, SkewedIid, Gp90, 1000, 23);
equivalence_case!(skewed_iid_ptm22_400mv, SkewedIid, PtmHp22, 400, 24);
equivalence_case!(skewed_iid_ptm22_550mv, SkewedIid, PtmHp22, 550, 25);
equivalence_case!(skewed_iid_ptm22_1000mv, SkewedIid, PtmHp22, 1000, 26);

// Hierarchical × {Gp90, PtmHp22} × {0.4, 0.55, 1.0} V
equivalence_case!(hierarchical_gp90_400mv, Hierarchical, Gp90, 400, 31);
equivalence_case!(hierarchical_gp90_550mv, Hierarchical, Gp90, 550, 32);
equivalence_case!(hierarchical_gp90_1000mv, Hierarchical, Gp90, 1000, 33);
equivalence_case!(hierarchical_ptm22_400mv, Hierarchical, PtmHp22, 400, 34);
equivalence_case!(hierarchical_ptm22_550mv, Hierarchical, PtmHp22, 550, 35);
equivalence_case!(hierarchical_ptm22_1000mv, Hierarchical, PtmHp22, 1000, 36);
