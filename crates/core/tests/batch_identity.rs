//! Bit-identity matrix for the SoA batch sampling kernels.
//!
//! The batch-first refactor's contract is that every batch kernel is a pure
//! loop interchange / invariant hoist over its scalar counterpart — never a
//! numerical change. This suite pins that contract end to end at the public
//! API: for every technology node × variation mode × voltage × batch size
//! (including 0, 1, and sizes that are not a multiple of any SIMD lane
//! width), the batched chip-delay draws must equal the per-index scalar
//! sampler bit for bit, under both the default scalar kernels and the
//! `portable-simd` lane-chunked ones (CI runs both configurations).

use ntv_core::engine::{PathDistribution, VariationMode};
use ntv_core::{DatapathConfig, DatapathEngine, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_mc::CounterRng;
use ntv_units::Volts;

const NODES: [TechNode; 4] = [
    TechNode::Gp90,
    TechNode::Gp45,
    TechNode::PtmHp32,
    TechNode::PtmHp22,
];
const MODES: [VariationMode; 3] = [
    VariationMode::PaperNormal,
    VariationMode::SkewedIid,
    VariationMode::Hierarchical,
];
// 0 = empty, 1 = single, 13/27 = not a multiple of the 8-wide erfc lane
// width (tail handling), 96 = several full chunks.
const SIZES: [usize; 5] = [0, 1, 13, 27, 96];

#[test]
fn batch_draws_match_scalar_sampler_across_the_full_matrix() {
    let stream = CounterRng::new(2012, "batch-identity");
    for node in NODES {
        let tech = TechModel::new(node);
        for mode in MODES {
            let engine = DatapathEngine::with_mode(&tech, DatapathConfig::paper_default(), mode);
            for vdd in [Volts(0.5), Volts(0.7), Volts(1.0)] {
                for n in SIZES {
                    let mut out = vec![0.0; n];
                    engine.sample_chip_delays_fo4_batch(vdd, &stream, 31, &mut out);
                    for (i, &o) in out.iter().enumerate() {
                        let scalar = engine.sample_chip_delay_fo4_at(vdd, &stream, 31 + i as u64);
                        assert_eq!(
                            o.to_bits(),
                            scalar.to_bits(),
                            "{node:?} {mode:?} {vdd} n={n} i={i}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn parallel_sample_batch_equals_serial_scalar_loop() {
    // The chunked executor path composes the batch kernel per worker; the
    // merged output must equal the serial per-index loop for any thread
    // count, including chunk boundaries that split mid-lane.
    let tech = TechModel::new(TechNode::Gp90);
    let stream = CounterRng::new(7, "batch-identity-par");
    for mode in MODES {
        let engine = DatapathEngine::with_mode(&tech, DatapathConfig::paper_default(), mode);
        let scalar: Vec<f64> = (0..333)
            .map(|i| engine.sample_chip_delay_fo4_at(Volts(0.55), &stream, i))
            .collect();
        for threads in [1, 2, 5, 8] {
            let batch = engine.sample_batch(Volts(0.55), &stream, 0..333, Executor::new(threads));
            assert_eq!(batch.len(), scalar.len());
            for (i, (a, b)) in batch.iter().zip(&scalar).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{mode:?} threads={threads} i={i}");
            }
        }
    }
}

#[test]
fn grid_build_matches_scalar_build_at_every_voltage() {
    // The voltage-grid batch build behind OpPointCache::prefetch must hand
    // out distributions bit-identical to scalar builds: survival queries
    // over the full clamp range agree exactly.
    let tech = TechModel::new(TechNode::PtmHp32);
    let vdds: Vec<Volts> = (0..9).map(|i| Volts(0.45 + 0.07 * f64::from(i))).collect();
    let batch = PathDistribution::build_grid(&tech, &vdds, 50);
    for (dist, &vdd) in batch.iter().zip(&vdds) {
        let scalar = PathDistribution::build(&tech, vdd, 50);
        assert_eq!(
            dist.mean_ps().to_bits(),
            scalar.mean_ps().to_bits(),
            "{vdd}"
        );
        assert_eq!(dist.std_ps().to_bits(), scalar.std_ps().to_bits(), "{vdd}");
        for g in [1e-9, 1e-6, 1e-3, 0.01, 0.5, 0.99, 1.0 - 1e-12] {
            assert_eq!(
                dist.quantile_by_survival(g).to_bits(),
                scalar.quantile_by_survival(g).to_bits(),
                "{vdd} g={g:e}"
            );
        }
    }
}
