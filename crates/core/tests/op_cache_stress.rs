//! Concurrency stress test for the operating-point cache.
//!
//! Several OS threads prefetch *overlapping* voltage grids into one cache
//! at once (each prefetch running its own parallel executor on top). The
//! two-level locking discipline must guarantee that every operating point
//! is built exactly once — every observer sees the same shared `Arc` — and
//! that cached values stay bit-identical to a fresh serial build.

use std::sync::Arc;

use ntv_core::engine::{PathDistribution, VariationMode};
use ntv_core::{Executor, OpPointCache};
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;

const PATH_LENGTH: usize = 50;
const THREADS: usize = 8;

fn grid() -> Vec<Volts> {
    (0..6).map(|i| Volts(0.50 + 0.03 * f64::from(i))).collect()
}

#[test]
fn concurrent_prefetches_build_each_point_exactly_once() {
    let tech = TechModel::new(TechNode::PtmHp32);
    let cache = Arc::new(OpPointCache::new());
    let volts = grid();

    // Each thread prefetches the full grid starting at its own rotation,
    // so every operating point is raced by all THREADS threads, then
    // collects the entry Arcs it observes.
    let per_thread: Vec<Vec<Arc<PathDistribution>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = Arc::clone(&cache);
                let tech = &tech;
                let volts = &volts;
                s.spawn(move || {
                    let rot = t % volts.len();
                    let mut rotated: Vec<Volts> = volts[rot..].to_vec();
                    rotated.extend_from_slice(&volts[..rot]);
                    cache.prefetch(
                        tech,
                        VariationMode::SkewedIid,
                        PATH_LENGTH,
                        &rotated,
                        Executor::new(1 + t % 3),
                    );
                    volts
                        .iter()
                        .map(|&v| {
                            cache.get_or_build(tech, VariationMode::SkewedIid, v, PATH_LENGTH)
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress thread panicked"))
            .collect()
    });

    // Exactly one fully built entry per grid point, no duplicates.
    assert_eq!(cache.len(), volts.len());

    // Every thread observed the same shared entry per operating point.
    let first = &per_thread[0];
    for observed in &per_thread[1..] {
        for (a, b) in first.iter().zip(observed) {
            assert!(
                Arc::ptr_eq(a, b),
                "racing builders produced distinct entries"
            );
        }
    }

    // Cached values are bit-identical to a fresh serial build.
    for (i, &vdd) in volts.iter().enumerate() {
        let fresh = PathDistribution::build(&tech, vdd, PATH_LENGTH);
        let cached = &first[i];
        assert_eq!(cached.mean_ps().to_bits(), fresh.mean_ps().to_bits());
        assert_eq!(cached.std_ps().to_bits(), fresh.std_ps().to_bits());
        for g in [1e-6, 1e-3, 0.01, 0.5, 0.99] {
            assert_eq!(
                cached.quantile_by_survival(g).to_bits(),
                fresh.quantile_by_survival(g).to_bits(),
                "quantile mismatch at vdd {vdd:?} survival {g}"
            );
        }
    }
}

#[test]
fn racing_get_or_build_on_one_point_yields_one_entry() {
    let tech = TechModel::new(TechNode::Gp45);
    let cache = Arc::new(OpPointCache::new());
    let vdd = Volts(0.62);

    let entries: Vec<Arc<PathDistribution>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let tech = &tech;
                s.spawn(move || {
                    cache.get_or_build(tech, VariationMode::PaperNormal, vdd, PATH_LENGTH)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stress thread panicked"))
            .collect()
    });

    assert_eq!(cache.len(), 1);
    for e in &entries[1..] {
        assert!(Arc::ptr_eq(&entries[0], e));
    }
}
