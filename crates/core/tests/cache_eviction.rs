//! Concurrency contract of the bounded [`OpPointCache`]: N threads racing
//! `get_or_build` over an overlapping voltage grid larger than the cache
//! bound must (a) build each *resident* entry exactly once — racers
//! coalesce onto the in-flight build instead of duplicating it — and
//! (b) return values bit-identical to an unbounded cache, no matter how
//! the eviction sequence interleaves.

use std::sync::Arc;

use ntv_core::engine::VariationMode;
use ntv_core::OpPointCache;
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;

const PATH_LENGTH: usize = 50;

/// The overlapping probe grid: more points than the bounded cache holds.
fn grid() -> Vec<Volts> {
    (0..12).map(|i| Volts(0.50 + 0.02 * f64::from(i))).collect()
}

/// Deterministic per-thread walk over the grid (a small LCG so threads
/// overlap on different schedules without sharing an iteration order).
fn walk(thread: u64, steps: usize, len: usize) -> Vec<usize> {
    let mut state = thread.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..steps)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 33) as usize % len
        })
        .collect()
}

#[test]
fn racing_threads_coalesce_onto_one_build_per_resident_entry() {
    let tech = TechModel::new(TechNode::Gp90);
    let cache = OpPointCache::new();
    let volts = grid();
    const THREADS: u64 = 8;
    const STEPS: usize = 64;

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = &cache;
            let tech = &tech;
            let volts = &volts;
            scope.spawn(move || {
                for idx in walk(t, STEPS, volts.len()) {
                    let _ = cache.get_or_build(
                        tech,
                        VariationMode::PaperNormal,
                        volts[idx],
                        PATH_LENGTH,
                    );
                }
            });
        }
    });

    let stats = cache.stats();
    // Unbounded: nothing is ever evicted, so "exactly once per resident
    // entry" means exactly one build per distinct operating point, with
    // every other lookup a hit or a coalesced wait.
    assert_eq!(stats.evictions, 0);
    assert_eq!(
        stats.misses,
        volts.len() as u64,
        "duplicate builds: {stats:?}"
    );
    assert_eq!(stats.resident, volts.len());
    assert_eq!(
        stats.hits + stats.coalesced + stats.misses,
        THREADS * STEPS as u64,
        "every lookup must be classified exactly once: {stats:?}"
    );
}

#[test]
fn bounded_cache_race_is_bit_identical_to_unbounded() {
    let tech = TechModel::new(TechNode::Gp90);
    let volts = grid();
    const BOUND: usize = 4;
    const THREADS: u64 = 8;
    const STEPS: usize = 96;

    // Reference values from an unbounded cache (itself pinned elsewhere to
    // equal fresh builds bit-for-bit).
    let reference = OpPointCache::new();
    let expected: Vec<_> = volts
        .iter()
        .map(|&v| reference.get_or_build(&tech, VariationMode::PaperNormal, v, PATH_LENGTH))
        .collect();

    let cache = OpPointCache::with_bound(BOUND);
    let mut worker_results: Vec<Vec<(usize, u64, u64)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = &cache;
                let tech = &tech;
                let volts = &volts;
                scope.spawn(move || {
                    walk(t, STEPS, volts.len())
                        .into_iter()
                        .map(|idx| {
                            let d = cache.get_or_build(
                                tech,
                                VariationMode::PaperNormal,
                                volts[idx],
                                PATH_LENGTH,
                            );
                            (idx, d.mean_ps().to_bits(), d.std_ps().to_bits())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            worker_results.push(handle.join().expect("race worker panicked"));
        }
    });

    for (idx, mean_bits, std_bits) in worker_results.into_iter().flatten() {
        assert_eq!(
            expected[idx].mean_ps().to_bits(),
            mean_bits,
            "vdd index {idx}"
        );
        assert_eq!(
            expected[idx].std_ps().to_bits(),
            std_bits,
            "vdd index {idx}"
        );
    }

    let stats = cache.stats();
    // The grid is three times the bound, so eviction must actually have
    // happened, rebuilds and all — the bit-identity above covered the
    // interesting interleavings.
    assert!(
        stats.evictions > 0,
        "grid must overflow the bound: {stats:?}"
    );
    assert!(
        stats.misses >= volts.len() as u64,
        "each point is built at least once: {stats:?}"
    );
    assert!(stats.resident <= BOUND, "bound violated: {stats:?}");
    assert_eq!(
        stats.hits + stats.coalesced + stats.misses,
        THREADS * STEPS as u64
    );
    // Drained in-flight builds: every map entry is built, so the resident
    // count equals the bound exactly after an overflowing workload.
    assert_eq!(stats.resident, BOUND);
}

/// Arc identity still holds under the bound: two immediate lookups of the
/// same point return the same allocation unless an eviction intervened.
#[test]
fn arc_identity_between_evictions() {
    let tech = TechModel::new(TechNode::Gp45);
    let cache = OpPointCache::with_bound(2);
    let a = cache.get_or_build(&tech, VariationMode::SkewedIid, Volts(0.57), PATH_LENGTH);
    let b = cache.get_or_build(&tech, VariationMode::SkewedIid, Volts(0.57), PATH_LENGTH);
    assert!(Arc::ptr_eq(&a, &b));
}
