//! Frequency margining (paper §4.3, Appendix E, Table 4).
//!
//! Instead of adding spares or millivolts, the clock period can simply be
//! stretched to cover the variation tail. Table 4 compares the *designed*
//! clock period `Tclk` (the ideally-scaled nominal design: baseline
//! fo4chipd × FO4(V)) with the *variation-aware* period `Tva-clk` (the q99
//! chip delay at V). Their ratio minus one is the throughput loss — the
//! same quantity as Fig 4's performance drop, here expressed in
//! nanoseconds. The paper's conclusion: at advanced nodes the required
//! margin approaches 20 %, and because the SIMD clock must stay an integer
//! multiple of the memory clock, frequency margining alone is unattractive.

use ntv_mc::CounterRng;
use ntv_units::{Hertz, Seconds, Volts};
use serde::{Deserialize, Serialize};

use crate::engine::DatapathEngine;
use crate::exec::Executor;
use crate::perf;

/// One row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyRow {
    /// Supply voltage.
    pub vdd: Volts,
    /// Designed clock period (ns): nominal-variation design scaled to `vdd`.
    pub t_clk_ns: f64,
    /// Variation-aware clock period (ns): q99 chip delay at `vdd`.
    pub t_va_clk_ns: f64,
    /// Throughput loss `t_va_clk / t_clk − 1`.
    pub perf_drop: f64,
}

impl FrequencyRow {
    /// The variation-aware SIMD clock expressed as a frequency.
    #[must_use]
    pub fn va_clock(&self) -> Hertz {
        Seconds::from_ns(self.t_va_clk_ns).frequency()
    }
}

/// Compute one Table 4 row.
#[must_use]
pub fn frequency_margining(
    engine: &DatapathEngine<'_>,
    vdd: Volts,
    samples: usize,
    seed: u64,
    exec: Executor,
) -> FrequencyRow {
    let base_fo4 = perf::baseline_q99_fo4(engine, samples, seed, exec);
    let t_clk_ns = base_fo4 * engine.tech().fo4_delay_ps(vdd) / 1000.0;
    let stream = CounterRng::new(seed, "freq-margin");
    let t_va_clk_ns = engine
        .chip_delay_distribution_par(vdd, samples, &stream, exec)
        .q99_ns();
    FrequencyRow {
        vdd,
        t_clk_ns,
        t_va_clk_ns,
        perf_drop: t_va_clk_ns / t_clk_ns - 1.0,
    }
}

/// The smallest SIMD clock period (ns) that is an integer multiple of the
/// memory clock period and still covers `t_va_clk_ns` (paper §4.3: the
/// SIMD datapath clock must be a multiple of the memory clock to avoid
/// cross-domain synchronizers).
///
/// # Panics
///
/// Panics if either period is not positive.
#[must_use]
pub fn memory_aligned_period_ns(t_va_clk_ns: f64, t_mem_ns: f64) -> f64 {
    assert!(
        t_va_clk_ns > 0.0 && t_mem_ns > 0.0,
        "periods must be positive"
    );
    let multiples = (t_va_clk_ns / t_mem_ns).ceil().max(1.0);
    multiples * t_mem_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use ntv_device::{TechModel, TechNode};

    const SAMPLES: usize = 2000;

    #[test]
    fn margin_grows_as_voltage_drops() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let r05 = frequency_margining(&engine, Volts(0.5), SAMPLES, 1, Executor::default());
        let r06 = frequency_margining(&engine, Volts(0.6), SAMPLES, 1, Executor::default());
        let r07 = frequency_margining(&engine, Volts(0.7), SAMPLES, 1, Executor::default());
        assert!(r05.perf_drop > r06.perf_drop && r06.perf_drop > r07.perf_drop);
        // Variation-aware clock is always the slower one.
        for r in [r05, r06, r07] {
            assert!(r.t_va_clk_ns > r.t_clk_ns);
        }
    }

    #[test]
    fn advanced_nodes_need_nearly_20_percent() {
        // Appendix E: "required delay margins reach almost 20%".
        let tech = TechModel::new(TechNode::PtmHp22);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let r = frequency_margining(&engine, Volts(0.5), SAMPLES, 2, Executor::default());
        assert!(r.perf_drop > 0.12 && r.perf_drop < 0.30, "{}", r.perf_drop);
    }

    #[test]
    fn period_scale_is_tens_of_ns_at_half_volt() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let r = frequency_margining(&engine, Volts(0.5), SAMPLES, 3, Executor::default());
        // ~50 FO4 x 441 ps = 22 ns design period.
        assert!(r.t_clk_ns > 18.0 && r.t_clk_ns < 28.0, "{}", r.t_clk_ns);
    }

    #[test]
    fn va_clock_inverts_the_period() {
        let row = FrequencyRow {
            vdd: Volts(0.5),
            t_clk_ns: 20.0,
            t_va_clk_ns: 25.0,
            perf_drop: 0.25,
        };
        let f = row.va_clock();
        assert!((f.get() - 4.0e7).abs() < 1e-3, "{f}");
        assert!((f.period().get() - 25.0e-9).abs() < 1e-20);
    }

    #[test]
    fn memory_alignment_rounds_up() {
        assert_eq!(memory_aligned_period_ns(9.1, 3.0), 12.0);
        assert_eq!(memory_aligned_period_ns(9.0, 3.0), 9.0);
        assert_eq!(memory_aligned_period_ns(0.5, 3.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn alignment_rejects_zero_period() {
        let _ = memory_aligned_period_ns(1.0, 0.0);
    }
}
