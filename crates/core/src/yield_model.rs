//! Timing yield: the fraction of fabricated chips that meet a clock
//! period at a given operating point.
//!
//! The paper's fixed statistic is the 99 % chip-delay point (a 99 % yield
//! target); this module generalizes it into full yield-vs-frequency
//! curves, which is what a design team actually sweeps when choosing the
//! shipping bin. Also provides the inverse query (the clock achieving a
//! yield target) and yield under structural duplication.

use ntv_mc::CounterRng;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::duplication::LaneDelayMatrix;
use crate::engine::DatapathEngine;
use crate::exec::Executor;

/// One point of a yield curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct YieldPoint {
    /// Clock period (ns).
    pub t_clk_ns: f64,
    /// Fraction of chips whose slowest used lane meets the period.
    pub timing_yield: f64,
}

/// Timing-yield queries for one engine.
#[derive(Debug, Clone)]
pub struct YieldStudy<'a> {
    engine: &'a DatapathEngine<'a>,
    exec: Executor,
}

impl<'a> YieldStudy<'a> {
    /// Study wrapping an engine.
    #[must_use]
    pub fn new(engine: &'a DatapathEngine<'a>) -> Self {
        Self {
            engine,
            exec: Executor::default(),
        }
    }

    /// Use an explicit executor (thread count) for the Monte-Carlo batches.
    /// Results are bit-identical for any choice.
    #[must_use]
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// Chip-delay samples (ns), `(seed, "yield", i)`-addressed.
    fn chip_delays_ns(&self, vdd: Volts, samples: usize, seed: u64) -> Vec<f64> {
        let stream = CounterRng::new(seed, "yield");
        let fo4 = self.engine.fo4_unit_ps(vdd);
        self.engine
            .sample_batch(vdd, &stream, 0..samples as u64, self.exec)
            .into_iter()
            .map(|d| d * fo4 / 1000.0)
            .collect()
    }

    /// Timing yield at `vdd` for a clock period, from `samples` chips.
    #[must_use]
    pub fn timing_yield(&self, vdd: Volts, t_clk_ns: f64, samples: usize, seed: u64) -> f64 {
        let ok = self
            .chip_delays_ns(vdd, samples, seed)
            .iter()
            .filter(|&&d| d <= t_clk_ns)
            .count();
        ok as f64 / samples as f64
    }

    /// A full yield-vs-clock curve over `grid` (periods in ns).
    #[must_use]
    pub fn yield_curve(
        &self,
        vdd: Volts,
        grid: &[f64],
        samples: usize,
        seed: u64,
    ) -> Vec<YieldPoint> {
        // One set of chip samples serves every grid point (common random
        // numbers make the curve monotone by construction).
        let delays_ns = self.chip_delays_ns(vdd, samples, seed);
        grid.iter()
            .map(|&t_clk_ns| YieldPoint {
                t_clk_ns,
                timing_yield: delays_ns.iter().filter(|&&d| d <= t_clk_ns).count() as f64
                    / samples as f64,
            })
            .collect()
    }

    /// The smallest clock period (ns) achieving `target` yield.
    ///
    /// # Panics
    ///
    /// Panics if `target` is outside `(0, 1]`.
    #[must_use]
    pub fn period_for_yield(&self, vdd: Volts, target: f64, samples: usize, seed: u64) -> f64 {
        assert!(
            target > 0.0 && target <= 1.0,
            "yield target must be in (0,1]"
        );
        let delays_ns = self.chip_delays_ns(vdd, samples, seed);
        ntv_mc::Quantiles::from_samples(delays_ns).quantile(target.min(1.0))
    }

    /// Yield of a duplicated system from a pre-sampled lane matrix.
    #[must_use]
    pub fn yield_with_spares(&self, matrix: &LaneDelayMatrix, spares: u32, t_clk_ns: f64) -> f64 {
        let lanes = self.engine.config().lanes;
        let dist = matrix.chip_delay_with_spares(lanes, spares);
        let t_clk_fo4 = t_clk_ns * 1000.0 / dist.fo4_unit_ps;
        let ok = dist
            .fo4_quantiles
            .as_sorted_slice()
            .iter()
            .filter(|&&d| d <= t_clk_fo4)
            .count();
        ok as f64 / dist.sample_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use crate::duplication::DuplicationStudy;
    use ntv_device::{TechModel, TechNode};

    const SAMPLES: usize = 2000;

    #[test]
    fn yield_is_monotone_in_clock_period() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = YieldStudy::new(&engine);
        let fo4_ns = engine.fo4_unit_ps(Volts(0.55)) / 1000.0;
        let grid: Vec<f64> = (50..60).map(|k| f64::from(k) * fo4_ns).collect();
        let curve = study.yield_curve(Volts(0.55), &grid, SAMPLES, 1);
        for w in curve.windows(2) {
            assert!(w[1].timing_yield >= w[0].timing_yield);
        }
        assert!(curve[0].timing_yield < 0.01, "50 FO4 clock fails everyone");
        assert!(curve.last().expect("points").timing_yield > 0.99);
    }

    #[test]
    fn q99_point_has_99_percent_yield() {
        let tech = TechModel::new(TechNode::Gp45);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = YieldStudy::new(&engine);
        let period = study.period_for_yield(Volts(0.6), 0.99, SAMPLES, 2);
        let y = study.timing_yield(Volts(0.6), period, SAMPLES, 2);
        assert!((y - 0.99).abs() < 0.005, "yield at q99 period: {y}");
    }

    #[test]
    fn spares_raise_yield_at_a_fixed_clock() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = YieldStudy::new(&engine);
        let dup = DuplicationStudy::new(&engine);
        let matrix = dup.sample_matrix(Volts(0.55), 16, SAMPLES, 3);
        // Clock at the unspared 90% point: ~90% yield without spares.
        let t_clk = study.period_for_yield(Volts(0.55), 0.90, SAMPLES, 3);
        let y0 = study.yield_with_spares(&matrix, 0, t_clk);
        let y8 = study.yield_with_spares(&matrix, 8, t_clk);
        let y16 = study.yield_with_spares(&matrix, 16, t_clk);
        assert!(y8 > y0, "{y8} vs {y0}");
        assert!(y16 >= y8);
    }

    #[test]
    #[should_panic(expected = "yield target")]
    fn invalid_target_rejected() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let _ = YieldStudy::new(&engine).period_for_yield(Volts(0.6), 0.0, 10, 1);
    }
}
