//! Combined duplication + voltage-margin design-space exploration
//! (paper §4.4, Table 3, Fig 8).
//!
//! For a 128-wide system at a given NTV operating point, each candidate
//! spare count α needs some residual voltage margin `Vm(α)` to reach the
//! target delay; the total power overhead `P_dup(α) + P_margin(Vm(α))` is
//! convex-ish in α, and the paper's headline example (45 nm @600 mV) finds
//! the optimum at (2 spares, 10 mV) ≈ 1.7 %, beating duplication-only
//! (26 spares, 4.3 %) and margining-only (17 mV, 2.4 %).

use ntv_mc::CounterRng;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::engine::{DatapathEngine, VariationMode};
use crate::exec::Executor;
use crate::overhead::DietSodaBudget;
use crate::perf;
use crate::quantile::{ChipQuantileSolver, Evaluation};

/// One row of Table 3: a (spares, margin) design choice and its cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignChoice {
    /// Spare lanes.
    pub spares: u32,
    /// Residual voltage margin required with that many spares.
    pub margin: Volts,
    /// Power overhead: duplication + margin (fraction of PE power).
    pub power_overhead: f64,
}

/// The combined design-space exploration for one engine.
#[derive(Debug, Clone)]
pub struct DseStudy<'a> {
    engine: &'a DatapathEngine<'a>,
    budget: DietSodaBudget,
    exec: Executor,
    evaluation: Evaluation,
}

impl<'a> DseStudy<'a> {
    /// Study with the paper's Diet SODA budget.
    #[must_use]
    pub fn new(engine: &'a DatapathEngine<'a>) -> Self {
        Self {
            engine,
            budget: DietSodaBudget::paper(),
            exec: Executor::default(),
            evaluation: Evaluation::default(),
        }
    }

    /// Use an explicit executor (thread count) for the Monte-Carlo batches.
    /// Results are bit-identical for any choice.
    #[must_use]
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// How q99 probes are evaluated: [`Evaluation::MonteCarlo`] (default,
    /// byte-identical to the historical outputs) or
    /// [`Evaluation::Analytic`] (exact order-statistic quantiles;
    /// `samples`/`seed` arguments are ignored).
    #[must_use]
    pub fn with_evaluation(mut self, evaluation: Evaluation) -> Self {
        self.evaluation = evaluation;
        self
    }

    /// q99 chip delay (ns) at an effective voltage with α spares, chip
    /// draws fixed by `seed` (common random numbers).
    #[must_use]
    pub fn q99_ns_with_spares(
        &self,
        vdd_effective: Volts,
        spares: u32,
        samples: usize,
        seed: u64,
    ) -> f64 {
        let lanes = self.engine.config().lanes;
        let physical = lanes + spares as usize;
        let fo4_ps = self.engine.tech().fo4_delay_ps(vdd_effective);
        if self.evaluation == Evaluation::Analytic {
            let solver = ChipQuantileSolver::new(self.engine);
            return solver.spares_quantile_fo4(vdd_effective, spares, 0.99) * fo4_ps / 1000.0;
        }
        // Chip `i` is `(seed, "dse-eval", i)`-addressed: common random
        // numbers across effective voltages, bit-identical for any thread
        // count. Warm the per-vdd cache (and, for grid-sampling modes, the
        // survival grid) before forking.
        let dist = self.engine.path_distribution(vdd_effective);
        if self.engine.mode() != VariationMode::PaperNormal {
            dist.warm_grid();
        }
        let stream = CounterRng::new(seed, "dse-eval");
        let mut worst_used: Vec<f64> = self.exec.map_indexed(samples as u64, |i| {
            let row = self
                .engine
                .sample_lane_delays_fo4_at(vdd_effective, physical, &stream, i);
            ntv_mc::order::kth_smallest(&row, lanes - 1)
        });
        worst_used.sort_by(f64::total_cmp);
        let q = ntv_mc::Quantiles::from_samples(worst_used);
        q.q99() * fo4_ps / 1000.0
    }

    /// Minimum voltage margin (to 0.1 mV) needed with α spares to meet
    /// `target_ns` at `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if 200 mV of margin still misses the target.
    #[must_use]
    pub fn margin_for_spares(
        &self,
        vdd: Volts,
        spares: u32,
        target_ns: f64,
        samples: usize,
        seed: u64,
    ) -> Volts {
        const TOLERANCE: Volts = Volts(0.1e-3);
        const MAX_MARGIN: Volts = Volts(0.2);
        if self.q99_ns_with_spares(vdd, spares, samples, seed) <= target_ns {
            return Volts::ZERO;
        }
        assert!(
            self.q99_ns_with_spares(vdd + MAX_MARGIN, spares, samples, seed) <= target_ns,
            "margin above {MAX_MARGIN} required — outside the model's regime"
        );
        let (mut lo, mut hi) = (Volts::ZERO, MAX_MARGIN);
        while hi - lo > TOLERANCE {
            let mid = 0.5 * (lo + hi);
            if self.q99_ns_with_spares(vdd + mid, spares, samples, seed) <= target_ns {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        hi
    }

    /// Explore the (spares, margin) trade-off at `vdd` for the given spare
    /// candidates (one Table 3).
    #[must_use]
    pub fn explore(
        &self,
        vdd: Volts,
        spare_candidates: &[u32],
        samples: usize,
        seed: u64,
    ) -> Vec<DesignChoice> {
        let base_fo4 = match self.evaluation {
            Evaluation::MonteCarlo => perf::baseline_q99_fo4(self.engine, samples, seed, self.exec),
            Evaluation::Analytic => perf::baseline_q99_fo4_analytic(self.engine),
        };
        let target_ns = base_fo4 * self.engine.tech().fo4_delay_ps(vdd) / 1000.0;
        spare_candidates
            .iter()
            .map(|&spares| {
                let margin = self.margin_for_spares(vdd, spares, target_ns, samples, seed);
                DesignChoice {
                    spares,
                    margin,
                    power_overhead: self.budget.combined_power_overhead(spares, vdd, margin),
                }
            })
            .collect()
    }

    /// The cheapest design choice among `choices`.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    #[must_use]
    pub fn best(choices: &[DesignChoice]) -> DesignChoice {
        *choices
            .iter()
            .min_by(|a, b| a.power_overhead.total_cmp(&b.power_overhead))
            // ntv:allow(panic-path): documented panic on an empty slice (see `# Panics`)
            .expect("at least one design choice")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use ntv_device::{TechModel, TechNode};
    use ntv_mc::StreamRng;

    const SAMPLES: usize = 1200;

    #[test]
    fn margin_shrinks_with_spares() {
        // Fig 8 / Table 3: more spares -> less residual margin needed.
        let tech = TechModel::new(TechNode::Gp45);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let dse = DseStudy::new(&engine);
        let rows = dse.explore(Volts(0.6), &[0, 2, 8, 26], SAMPLES, 1);
        for w in rows.windows(2) {
            assert!(
                w[1].margin <= w[0].margin + Volts(1e-4),
                "margin not decreasing: {rows:?}"
            );
        }
        // Margin-only row needs a real margin; many spares need (almost) none.
        assert!(rows[0].margin > Volts(5e-3));
        assert!(rows[3].margin < rows[0].margin * 0.5);
    }

    #[test]
    fn combination_beats_extremes_at_45nm_600mv() {
        // Table 3's headline: a small-spares + small-margin combination has
        // the lowest power overhead.
        let tech = TechModel::new(TechNode::Gp45);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let dse = DseStudy::new(&engine);
        let rows = dse.explore(Volts(0.6), &[0, 1, 2, 4, 8, 16, 26], SAMPLES, 2);
        let best = DseStudy::best(&rows);
        let margin_only = rows[0];
        let dup_only = rows.last().copied().expect("non-empty");
        assert!(best.power_overhead <= margin_only.power_overhead);
        assert!(best.power_overhead <= dup_only.power_overhead);
        // The optimum is an interior point: some spares, some margin.
        assert!(best.spares > 0 && best.spares < 26, "{best:?}");
        assert!(best.margin > Volts::ZERO);
    }

    #[test]
    fn q99_with_zero_spares_matches_plain_distribution_scale() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let dse = DseStudy::new(&engine);
        let via_dse = dse.q99_ns_with_spares(Volts(0.55), 0, SAMPLES, 3);
        let mut rng = StreamRng::from_seed(99);
        let direct = engine
            .chip_delay_distribution(Volts(0.55), SAMPLES, &mut rng)
            .q99_ns();
        assert!(
            (via_dse / direct - 1.0).abs() < 0.03,
            "{via_dse} vs {direct}"
        );
    }

    #[test]
    fn analytic_explore_matches_mc_design_point() {
        let tech = TechModel::new(TechNode::Gp45);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let candidates = [0u32, 2, 8, 26];
        let mc = DseStudy::new(&engine).explore(Volts(0.6), &candidates, 2400, 1);
        let study = DseStudy::new(&engine).with_evaluation(Evaluation::Analytic);
        let an = study.explore(Volts(0.6), &candidates, 0, 0);
        for (m, a) in mc.iter().zip(&an) {
            assert_eq!(m.spares, a.spares);
            assert!(
                (m.margin.get() - a.margin.get()).abs() < 3.0e-3,
                "spares {}: MC {} vs analytic {}",
                m.spares,
                m.margin,
                a.margin
            );
        }
        // Margins still shrink with spares on the analytic path.
        for w in an.windows(2) {
            assert!(w[1].margin <= w[0].margin);
        }
        // And the analytic path is exactly reproducible regardless of the
        // (ignored) sampling arguments.
        let again = study.explore(Volts(0.6), &candidates, 123, 456);
        for (x, y) in an.iter().zip(&again) {
            assert_eq!(x.margin.get().to_bits(), y.margin.get().to_bits());
        }
    }

    #[test]
    fn best_picks_minimum() {
        let choices = [
            DesignChoice {
                spares: 0,
                margin: Volts(0.017),
                power_overhead: 0.024,
            },
            DesignChoice {
                spares: 2,
                margin: Volts(0.010),
                power_overhead: 0.017,
            },
            DesignChoice {
                spares: 26,
                margin: Volts::ZERO,
                power_overhead: 0.043,
            },
        ];
        assert_eq!(DseStudy::best(&choices).spares, 2);
    }
}
