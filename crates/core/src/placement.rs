//! Spare placement: global vs local sparing (paper §4.1, Appendix D,
//! Fig 12).
//!
//! *Local* sparing groups lanes into clusters with dedicated spares (e.g.
//! Synctium's one spare per four lanes): simple routing, but a cluster with
//! more faults than spares cannot be repaired. *Global* sparing pools all
//! spares behind the XRAM crossbar and survives any failure pattern of up
//! to `spares` lanes. With per-lane failure probability `p`, both repair
//! probabilities are exact binomial expressions, computed here and checked
//! by Monte Carlo.

use ntv_mc::SampleStream;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::engine::DatapathEngine;

/// A spare-placement scheme for a `lanes`-wide array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SparePlacement {
    /// All spares pooled; any ≤ `spares` failures are repairable
    /// (requires crossbar bypass — Appendix D).
    Global {
        /// Total spare lanes.
        spares: u32,
    },
    /// Lanes split into clusters of `cluster_size`, each with its own
    /// `spares_per_cluster` spares; a cluster fails if it has more faulty
    /// lanes than local spares.
    Local {
        /// Lanes per cluster.
        cluster_size: u32,
        /// Spares dedicated to each cluster.
        spares_per_cluster: u32,
    },
}

impl SparePlacement {
    /// Total spares this scheme adds to a `lanes`-wide array.
    ///
    /// # Panics
    ///
    /// Panics for a local scheme whose cluster size does not divide `lanes`.
    #[must_use]
    pub fn total_spares(&self, lanes: u32) -> u32 {
        match *self {
            SparePlacement::Global { spares } => spares,
            SparePlacement::Local {
                cluster_size,
                spares_per_cluster,
            } => {
                assert!(
                    cluster_size > 0 && lanes.is_multiple_of(cluster_size),
                    "cluster size {cluster_size} must divide the lane count {lanes}"
                );
                lanes / cluster_size * spares_per_cluster
            }
        }
    }
}

/// Binomial CDF `P(X ≤ k)` for `X ~ Bin(n, p)`, by stable iterative pmf.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn binomial_cdf(n: u32, p: f64, k: u32) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if k >= n {
        return 1.0;
    }
    // Degenerate endpoints (p is already confined to [0, 1] above).
    if p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        return 0.0; // k < n and all trials fail.
    }
    let q = 1.0 - p;
    // pmf(0) = q^n computed in log space for tiny values.
    let mut pmf = (f64::from(n) * q.ln()).exp();
    let mut cdf = pmf;
    for i in 0..k {
        let i_f = f64::from(i);
        // ntv:allow(reduction-order): binomial pmf ratio recurrence — the product order is the definition
        pmf *= (f64::from(n) - i_f) / (i_f + 1.0) * (p / q);
        // ntv:allow(reduction-order): running CDF over the loop-carried pmf; cannot be split without materializing terms
        cdf += pmf;
    }
    cdf.min(1.0)
}

/// Probability that a `lanes`-wide array with this placement can be fully
/// repaired when each physical lane independently fails with probability
/// `p_fail`.
///
/// Failures are counted over *all* physical lanes (used + spare) of the
/// relevant pool, matching the test-time flow: every lane is screened and
/// the array needs `lanes` (or `cluster_size`) good ones per pool.
///
/// # Panics
///
/// Panics if `p_fail` is outside `[0, 1]`, or for a local scheme whose
/// cluster size does not divide `lanes`.
#[must_use]
pub fn repair_probability(placement: SparePlacement, lanes: u32, p_fail: f64) -> f64 {
    match placement {
        SparePlacement::Global { spares } => binomial_cdf(lanes + spares, p_fail, spares),
        SparePlacement::Local {
            cluster_size,
            spares_per_cluster,
        } => {
            assert!(
                cluster_size > 0 && lanes.is_multiple_of(cluster_size),
                "cluster size {cluster_size} must divide the lane count {lanes}"
            );
            let clusters = lanes / cluster_size;
            let per_cluster = binomial_cdf(
                cluster_size + spares_per_cluster,
                p_fail,
                spares_per_cluster,
            );
            per_cluster.powi(clusters as i32)
        }
    }
}

/// Monte-Carlo estimate of [`repair_probability`] (validation helper).
#[must_use]
pub fn mc_repair_probability<R: SampleStream + ?Sized>(
    placement: SparePlacement,
    lanes: u32,
    p_fail: f64,
    trials: usize,
    rng: &mut R,
) -> f64 {
    assert!((0.0..=1.0).contains(&p_fail), "probability out of range");
    let mut ok = 0usize;
    for _ in 0..trials {
        let repaired = match placement {
            SparePlacement::Global { spares } => {
                let failures = (0..lanes + spares)
                    .filter(|_| rng.uniform() < p_fail)
                    .count();
                failures <= spares as usize
            }
            SparePlacement::Local {
                cluster_size,
                spares_per_cluster,
            } => {
                let clusters = lanes / cluster_size;
                (0..clusters).all(|_| {
                    let failures = (0..cluster_size + spares_per_cluster)
                        .filter(|_| rng.uniform() < p_fail)
                        .count();
                    failures <= spares_per_cluster as usize
                })
            }
        };
        ok += usize::from(repaired);
    }
    ok as f64 / trials as f64
}

/// Per-lane timing-failure probability at `vdd` for a given clock period:
/// the fraction of lanes whose delay exceeds `t_clk_ns`.
#[must_use]
pub fn lane_failure_probability<R: SampleStream + ?Sized>(
    engine: &DatapathEngine<'_>,
    vdd: Volts,
    t_clk_ns: f64,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let fo4_ps = engine.tech().fo4_delay_ps(vdd);
    let t_clk_fo4 = t_clk_ns * 1000.0 / fo4_ps;
    let lanes = engine.config().lanes;
    let mut failing = 0usize;
    let mut total = 0usize;
    for _ in 0..samples {
        let row = engine.sample_lane_delays_fo4(vdd, lanes, rng);
        failing += row.iter().filter(|&&d| d > t_clk_fo4).count();
        total += lanes;
    }
    failing as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use ntv_device::{TechModel, TechNode};
    use ntv_mc::StreamRng;

    #[test]
    fn binomial_cdf_known_values() {
        // Bin(4, 0.5): P(X<=1) = (1+4)/16 = 0.3125.
        assert!((binomial_cdf(4, 0.5, 1) - 0.3125).abs() < 1e-12);
        assert_eq!(binomial_cdf(4, 0.5, 4), 1.0);
        assert_eq!(binomial_cdf(10, 0.0, 0), 1.0);
        assert_eq!(binomial_cdf(10, 1.0, 9), 0.0);
    }

    #[test]
    fn global_beats_local_with_equal_spares() {
        // Appendix D: one spare per 4-lane cluster cannot cover two faults
        // in one cluster; a global pool of the same 32 spares can.
        let local = SparePlacement::Local {
            cluster_size: 4,
            spares_per_cluster: 1,
        };
        let global = SparePlacement::Global { spares: 32 };
        assert_eq!(local.total_spares(128), global.total_spares(128));
        for p in [0.01, 0.05, 0.1, 0.2] {
            let pl = repair_probability(local, 128, p);
            let pg = repair_probability(global, 128, p);
            assert!(pg > pl, "p={p}: global {pg} vs local {pl}");
        }
    }

    #[test]
    fn analytic_matches_monte_carlo() {
        let mut rng = StreamRng::from_seed(8);
        for placement in [
            SparePlacement::Global { spares: 8 },
            SparePlacement::Local {
                cluster_size: 8,
                spares_per_cluster: 1,
            },
        ] {
            let analytic = repair_probability(placement, 64, 0.05);
            let mc = mc_repair_probability(placement, 64, 0.05, 40_000, &mut rng);
            assert!(
                (analytic - mc).abs() < 0.01,
                "{placement:?}: {analytic} vs {mc}"
            );
        }
    }

    #[test]
    fn repair_probability_extremes() {
        let g = SparePlacement::Global { spares: 4 };
        assert_eq!(repair_probability(g, 16, 0.0), 1.0);
        assert!(repair_probability(g, 16, 1.0) < 1e-9);
    }

    #[test]
    fn more_spares_help() {
        let mut prev = 0.0;
        for spares in [0u32, 2, 4, 8, 16] {
            let p = repair_probability(SparePlacement::Global { spares }, 128, 0.03);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn lane_failure_probability_behaves() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let mut rng = StreamRng::from_seed(15);
        // A generous clock fails almost never; a tight one often.
        let fo4_ns = tech.fo4_delay_ps(Volts(0.55)) / 1000.0;
        let loose = lane_failure_probability(&engine, Volts(0.55), 70.0 * fo4_ns, 200, &mut rng);
        let tight = lane_failure_probability(&engine, Volts(0.55), 51.0 * fo4_ns, 200, &mut rng);
        assert!(loose < 0.01, "loose {loose}");
        assert!(tight > 0.1, "tight {tight}");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_cluster_size_rejected() {
        let local = SparePlacement::Local {
            cluster_size: 5,
            spares_per_cluster: 1,
        };
        let _ = repair_probability(local, 128, 0.1);
    }
}
