//! Structural duplication: spare SIMD lanes (paper §4.1, Table 1, Fig 5).
//!
//! A system with α spares fabricates `128 + α` lanes, identifies the α
//! slowest at test time, power-gates them, and routes around them with the
//! XRAM crossbar. Its chip delay is therefore the **128-th smallest** of
//! `128 + α` lane delays. The required α is the smallest value whose 99 %
//! FO4 chip-delay point matches the baseline architecture at nominal
//! voltage.
//!
//! Implementation note: lane delays on a chip are conditionally i.i.d., so
//! one Monte-Carlo pass sampling `128 + α_max` lanes per chip yields the
//! distribution for *every* α ≤ α_max by order-statistic selection over a
//! prefix — and adding a spare can only lower each sample, so the q99 is
//! monotone in α and binary search is sound.

use ntv_mc::{order, CounterRng, Quantiles};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::engine::{ChipDelayDistribution, DatapathEngine, VariationMode};
use crate::exec::Executor;
use crate::overhead::DietSodaBudget;
use crate::perf;
use crate::quantile::{ChipQuantileSolver, Evaluation};

/// Lane-delay samples (FO4 units): one row per chip, `max_lanes` per row.
///
/// Row `i` holds conditionally i.i.d. lane delays for chip `i`; any prefix
/// is a valid sample of a narrower physical array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneDelayMatrix {
    vdd: Volts,
    fo4_unit_ps: f64,
    max_lanes: usize,
    rows: Vec<Vec<f64>>,
}

impl LaneDelayMatrix {
    /// Supply voltage the matrix was sampled at.
    #[must_use]
    pub fn vdd(&self) -> Volts {
        self.vdd
    }

    /// Number of chips sampled.
    #[must_use]
    pub fn chip_count(&self) -> usize {
        self.rows.len()
    }

    /// Lanes sampled per chip (the largest supported `lanes + spares`).
    #[must_use]
    pub fn max_lanes(&self) -> usize {
        self.max_lanes
    }

    /// Chip-delay distribution of a `lanes`-wide system with `spares`
    /// spare lanes: per chip, the `lanes`-th smallest of the first
    /// `lanes + spares` lane delays.
    ///
    /// # Panics
    ///
    /// Panics if `lanes + spares` exceeds the sampled width.
    #[must_use]
    pub fn chip_delay_with_spares(&self, lanes: usize, spares: u32) -> ChipDelayDistribution {
        let physical = lanes + spares as usize;
        assert!(
            physical <= self.max_lanes,
            "requested {physical} lanes but only {} were sampled",
            self.max_lanes
        );
        let data: Vec<f64> = self
            .rows
            .iter()
            .map(|row| order::kth_smallest(&row[..physical], lanes - 1))
            .collect();
        ChipDelayDistribution {
            vdd: self.vdd,
            fo4_unit_ps: self.fo4_unit_ps,
            fo4_quantiles: Quantiles::from_samples(data),
        }
    }
}

/// Error: the spare budget was exhausted without reaching the target.
///
/// Table 1 reports exactly this condition as ">128" at 0.50 V for the
/// scaled nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparesExceeded {
    /// The largest spare count that was tried.
    pub max_spares: u32,
    /// q99 (FO4) that the maximal configuration still achieves.
    pub achieved_q99_fo4: f64,
    /// The target q99 (FO4) that could not be reached.
    pub target_q99_fo4: f64,
}

impl std::fmt::Display for SparesExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "more than {} spares required: q99 {:.2} FO4 vs target {:.2} FO4",
            self.max_spares, self.achieved_q99_fo4, self.target_q99_fo4
        )
    }
}

impl std::error::Error for SparesExceeded {}

/// A solved duplication design point (one Table 1 cell).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpareSolution {
    /// Supply voltage.
    pub vdd: Volts,
    /// Required number of spare lanes.
    pub spares: u32,
    /// Achieved 99 % chip delay (FO4 units).
    pub q99_fo4: f64,
    /// Target (baseline nominal-voltage) 99 % chip delay (FO4 units).
    pub target_q99_fo4: f64,
    /// Area overhead (fraction of PE area).
    pub area_overhead: f64,
    /// Power overhead (fraction of PE power).
    pub power_overhead: f64,
}

/// The structural-duplication study for one engine.
#[derive(Debug, Clone)]
pub struct DuplicationStudy<'a> {
    engine: &'a DatapathEngine<'a>,
    budget: DietSodaBudget,
    exec: Executor,
    evaluation: Evaluation,
}

impl<'a> DuplicationStudy<'a> {
    /// Study with the paper's Diet SODA budget.
    #[must_use]
    pub fn new(engine: &'a DatapathEngine<'a>) -> Self {
        Self {
            engine,
            budget: DietSodaBudget::paper(),
            exec: Executor::default(),
            evaluation: Evaluation::default(),
        }
    }

    /// Study with a custom overhead budget.
    #[must_use]
    pub fn with_budget(engine: &'a DatapathEngine<'a>, budget: DietSodaBudget) -> Self {
        Self {
            engine,
            budget,
            exec: Executor::default(),
            evaluation: Evaluation::default(),
        }
    }

    /// Use an explicit executor (thread count) for the Monte-Carlo batches.
    /// Results are bit-identical for any choice.
    #[must_use]
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// How [`Self::solve`] evaluates q99: [`Evaluation::MonteCarlo`]
    /// (default, byte-identical to the historical outputs) or
    /// [`Evaluation::Analytic`] via [`Self::min_spares_for`]
    /// (`samples`/`seed` arguments are then ignored).
    #[must_use]
    pub fn with_evaluation(mut self, evaluation: Evaluation) -> Self {
        self.evaluation = evaluation;
        self
    }

    /// Sample a lane-delay matrix at `vdd` wide enough for `max_spares`.
    #[must_use]
    pub fn sample_matrix(
        &self,
        vdd: Volts,
        max_spares: u32,
        samples: usize,
        seed: u64,
    ) -> LaneDelayMatrix {
        let lanes = self.engine.config().lanes;
        let max_lanes = lanes + max_spares as usize;
        // Chip `i`'s lane delays are addressed as `(seed, label, i)`, so the
        // matrix is bit-identical for any thread count. Warm the per-vdd
        // distribution cache (and, for grid-sampling modes, the survival
        // grid) before forking.
        let dist = self.engine.path_distribution(vdd);
        if self.engine.mode() != VariationMode::PaperNormal {
            dist.warm_grid();
        }
        let stream = CounterRng::new(seed, "duplication-matrix");
        let rows: Vec<Vec<f64>> = self.exec.map_indexed(samples as u64, |i| {
            self.engine
                .sample_lane_delays_fo4_at(vdd, max_lanes, &stream, i)
        });
        LaneDelayMatrix {
            vdd,
            fo4_unit_ps: self.engine.tech().fo4_delay_ps(vdd),
            max_lanes,
            rows,
        }
    }

    /// Smallest α whose q99 (FO4) meets `target_q99_fo4`, by binary search
    /// over an already-sampled matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparesExceeded`] if even the matrix's full width misses the
    /// target.
    pub fn required_spares(
        &self,
        matrix: &LaneDelayMatrix,
        target_q99_fo4: f64,
    ) -> Result<u32, SparesExceeded> {
        let lanes = self.engine.config().lanes;
        let max_spares = (matrix.max_lanes() - lanes) as u32;
        let q99_at = |alpha: u32| matrix.chip_delay_with_spares(lanes, alpha).q99_fo4();

        if q99_at(0) <= target_q99_fo4 {
            return Ok(0);
        }
        let achieved = q99_at(max_spares);
        if achieved > target_q99_fo4 {
            return Err(SparesExceeded {
                max_spares,
                achieved_q99_fo4: achieved,
                target_q99_fo4,
            });
        }
        // Invariant: q99(lo) > target >= q99(hi).
        let (mut lo, mut hi) = (0u32, max_spares);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if q99_at(mid) <= target_q99_fo4 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }

    /// Smallest α whose *exact* q99 (FO4) meets `target_q99_fo4`, by binary
    /// search on the analytic order-statistic quantile — no sampling, no
    /// matrix. The q99 is strictly decreasing in α (an extra spare can only
    /// lower the retained order statistic), so the search invariant matches
    /// [`Self::required_spares`].
    ///
    /// # Errors
    ///
    /// Returns [`SparesExceeded`] if even `max_spares` misses the target.
    pub fn min_spares_for(
        &self,
        vdd: Volts,
        target_q99_fo4: f64,
        max_spares: u32,
    ) -> Result<u32, SparesExceeded> {
        let solver = ChipQuantileSolver::new(self.engine);
        let q99_at = |alpha: u32| solver.spares_quantile_fo4(vdd, alpha, 0.99);

        if q99_at(0) <= target_q99_fo4 {
            return Ok(0);
        }
        let achieved = q99_at(max_spares);
        if achieved > target_q99_fo4 {
            return Err(SparesExceeded {
                max_spares,
                achieved_q99_fo4: achieved,
                target_q99_fo4,
            });
        }
        // Invariant: q99(lo) > target >= q99(hi).
        let (mut lo, mut hi) = (0u32, max_spares);
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if q99_at(mid) <= target_q99_fo4 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }

    /// Solve one Table 1 cell: spares needed at `vdd` to match the nominal
    /// baseline, with area/power overheads.
    ///
    /// # Errors
    ///
    /// Returns [`SparesExceeded`] when `max_spares` is insufficient (the
    /// ">128" entries of Table 1).
    pub fn solve(
        &self,
        vdd: Volts,
        max_spares: u32,
        samples: usize,
        seed: u64,
    ) -> Result<SpareSolution, SparesExceeded> {
        if self.evaluation == Evaluation::Analytic {
            let target = perf::baseline_q99_fo4_analytic(self.engine);
            let spares = self.min_spares_for(vdd, target, max_spares)?;
            let q99 = ChipQuantileSolver::new(self.engine).spares_quantile_fo4(vdd, spares, 0.99);
            return Ok(SpareSolution {
                vdd,
                spares,
                q99_fo4: q99,
                target_q99_fo4: target,
                area_overhead: self.budget.duplication_area_overhead(spares),
                power_overhead: self.budget.duplication_power_overhead(spares),
            });
        }
        let target = perf::baseline_q99_fo4(self.engine, samples, seed, self.exec);
        let matrix = self.sample_matrix(vdd, max_spares, samples, seed);
        let spares = self.required_spares(&matrix, target)?;
        let q99 = matrix
            .chip_delay_with_spares(self.engine.config().lanes, spares)
            .q99_fo4();
        Ok(SpareSolution {
            vdd,
            spares,
            q99_fo4: q99,
            target_q99_fo4: target,
            area_overhead: self.budget.duplication_area_overhead(spares),
            power_overhead: self.budget.duplication_power_overhead(spares),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use ntv_device::{TechModel, TechNode};

    const SAMPLES: usize = 2500;

    fn study_engine(node: TechNode) -> TechModel {
        TechModel::new(node)
    }

    #[test]
    fn spares_shift_distribution_left_and_tighten_it() {
        // Fig 5: extra lanes shift delay distributions left and shrink them.
        let tech = study_engine(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = DuplicationStudy::new(&engine);
        let matrix = study.sample_matrix(Volts(0.55), 32, SAMPLES, 1);
        let d0 = matrix.chip_delay_with_spares(128, 0);
        let d6 = matrix.chip_delay_with_spares(128, 6);
        let d32 = matrix.chip_delay_with_spares(128, 32);
        assert!(d6.q99_fo4() < d0.q99_fo4());
        assert!(d32.q99_fo4() < d6.q99_fo4());
        let spread = |d: &ChipDelayDistribution| d.quantile_fo4(0.99) - d.quantile_fo4(0.01);
        assert!(spread(&d32) < spread(&d0));
    }

    #[test]
    fn required_spares_match_table1_90nm() {
        let tech = study_engine(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = DuplicationStudy::new(&engine);
        // Paper Table 1 (90 nm): 28 @0.50V, 6 @0.55V, 2 @0.60V, 1 @0.65/0.70V.
        let s055 = study
            .solve(Volts(0.55), 128, SAMPLES, 2)
            .expect("solvable")
            .spares;
        let s060 = study
            .solve(Volts(0.60), 128, SAMPLES, 2)
            .expect("solvable")
            .spares;
        let s050 = study
            .solve(Volts(0.50), 128, SAMPLES, 2)
            .expect("solvable")
            .spares;
        assert!((3..=14).contains(&s055), "0.55V: {s055} (paper 6)");
        assert!((1..=5).contains(&s060), "0.60V: {s060} (paper 2)");
        assert!((14..=56).contains(&s050), "0.50V: {s050} (paper 28)");
        assert!(s050 > s055 && s055 > s060);
    }

    #[test]
    fn scaled_nodes_exceed_budget_at_low_voltage() {
        // Table 1: >128 spares at 0.50 V for 45 nm and below.
        let tech = study_engine(TechNode::Gp45);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = DuplicationStudy::new(&engine);
        let err = study
            .solve(Volts(0.50), 128, 1500, 3)
            .expect_err(">128 expected");
        assert_eq!(err.max_spares, 128);
        assert!(err.achieved_q99_fo4 > err.target_q99_fo4);
        assert!(err.to_string().contains("more than 128 spares"));
    }

    #[test]
    fn zero_spares_needed_at_nominal() {
        let tech = study_engine(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = DuplicationStudy::new(&engine);
        let sol = study.solve(Volts(1.0), 16, 1500, 4).expect("solvable");
        // Same voltage as the baseline: at most a spare or two of MC noise.
        assert!(sol.spares <= 2, "{}", sol.spares);
    }

    #[test]
    fn solution_overheads_use_budget() {
        let tech = study_engine(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = DuplicationStudy::new(&engine);
        let sol = study.solve(Volts(0.55), 64, 1500, 5).expect("solvable");
        let b = DietSodaBudget::paper();
        assert_eq!(sol.area_overhead, b.duplication_area_overhead(sol.spares));
        assert_eq!(sol.power_overhead, b.duplication_power_overhead(sol.spares));
    }

    #[test]
    fn q99_is_monotone_in_spares() {
        let tech = study_engine(TechNode::PtmHp32);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = DuplicationStudy::new(&engine);
        let matrix = study.sample_matrix(Volts(0.6), 24, 1200, 6);
        let mut prev = f64::INFINITY;
        for alpha in [0u32, 1, 2, 4, 8, 16, 24] {
            let q = matrix.chip_delay_with_spares(128, alpha).q99_fo4();
            assert!(q <= prev, "alpha={alpha}: {q} > {prev}");
            prev = q;
        }
    }

    #[test]
    fn analytic_solve_matches_mc_spares() {
        let tech = study_engine(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let mc = DuplicationStudy::new(&engine)
            .solve(Volts(0.55), 128, 4000, 2)
            .expect("solvable")
            .spares;
        let study = DuplicationStudy::new(&engine).with_evaluation(Evaluation::Analytic);
        let an = study.solve(Volts(0.55), 128, 0, 0).expect("solvable");
        // Paper Table 1: 6 spares at 0.55 V in 90 nm; MC and analytic land
        // within each other's confidence band.
        assert!((3..=14).contains(&an.spares), "analytic {}", an.spares);
        assert!(
            an.spares.abs_diff(mc) <= 4,
            "analytic {} vs MC {mc}",
            an.spares
        );
        assert!(an.q99_fo4 <= an.target_q99_fo4);
        // One fewer spare must miss the target (minimality, exactly).
        if an.spares > 0 {
            let short = study
                .min_spares_for(Volts(0.55), an.target_q99_fo4, an.spares - 1)
                .expect_err("must be infeasible one spare short");
            assert!(short.achieved_q99_fo4 > short.target_q99_fo4);
        }
    }

    #[test]
    fn analytic_exceeds_budget_where_table1_says_so() {
        let tech = study_engine(TechNode::Gp45);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = DuplicationStudy::new(&engine).with_evaluation(Evaluation::Analytic);
        let err = study
            .solve(Volts(0.50), 128, 0, 0)
            .expect_err(">128 expected");
        assert_eq!(err.max_spares, 128);
        assert!(err.achieved_q99_fo4 > err.target_q99_fo4);
    }

    #[test]
    #[should_panic(expected = "were sampled")]
    fn matrix_width_is_enforced() {
        let tech = study_engine(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = DuplicationStudy::new(&engine);
        let matrix = study.sample_matrix(Volts(0.6), 4, 50, 7);
        let _ = matrix.chip_delay_with_spares(128, 8);
    }
}
