//! SIMD datapath configuration.

use serde::{Deserialize, Serialize};

/// Shape of the modelled SIMD datapath.
///
/// The paper's configuration (§3.2) is 128 lanes × 100 critical paths per
/// lane × 50 FO4 stages per path: a synthesis report for Diet SODA showed
/// ~50 true critical paths per lane, doubled to account for near-critical
/// paths that become critical under near-threshold variation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DatapathConfig {
    /// Number of SIMD lanes (datapath width).
    pub lanes: usize,
    /// Critical (and near-critical) paths per lane.
    pub paths_per_lane: usize,
    /// FO4 stages per critical path.
    pub path_length: usize,
}

impl DatapathConfig {
    /// The paper's 128 × 100 × 50 configuration.
    ///
    /// # Example
    ///
    /// ```
    /// let c = ntv_core::DatapathConfig::paper_default();
    /// assert_eq!(c.lanes, 128);
    /// assert_eq!(c.critical_path_count(), 12_800);
    /// ```
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            lanes: 128,
            paths_per_lane: 100,
            path_length: 50,
        }
    }

    /// A custom configuration.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(lanes: usize, paths_per_lane: usize, path_length: usize) -> Self {
        assert!(lanes > 0, "a datapath needs at least one lane");
        assert!(
            paths_per_lane > 0,
            "a lane needs at least one critical path"
        );
        assert!(path_length > 0, "a path needs at least one stage");
        Self {
            lanes,
            paths_per_lane,
            path_length,
        }
    }

    /// Same shape with a different lane count (used by width sweeps and by
    /// the duplication study, which widens the array by α spares).
    #[must_use]
    pub fn with_lanes(self, lanes: usize) -> Self {
        Self::new(lanes, self.paths_per_lane, self.path_length)
    }

    /// Total critical paths across the datapath.
    #[must_use]
    pub fn critical_path_count(&self) -> usize {
        self.lanes * self.paths_per_lane
    }
}

impl Default for DatapathConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_3_2() {
        let c = DatapathConfig::paper_default();
        assert_eq!((c.lanes, c.paths_per_lane, c.path_length), (128, 100, 50));
    }

    #[test]
    fn with_lanes_preserves_shape() {
        let c = DatapathConfig::paper_default().with_lanes(134);
        assert_eq!(c.lanes, 134);
        assert_eq!(c.paths_per_lane, 100);
        assert_eq!(c.path_length, 50);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = DatapathConfig::new(0, 100, 50);
    }

    #[test]
    #[should_panic(expected = "at least one critical path")]
    fn zero_paths_rejected() {
        let _ = DatapathConfig::new(128, 0, 50);
    }
}
