//! The fast Monte-Carlo chip-delay engine.
//!
//! The paper's architecture model (§3.2) treats every critical path as an
//! independent draw from the chain-of-50 cross-chip delay distribution
//! (Fig 1b): *"a chain of 50 FO4 inverters is used to emulate a critical
//! path"*, a lane is the slowest of its 100 paths and the chip the slowest
//! of its lanes. Three correlation/shape models are provided:
//!
//! * [`VariationMode::PaperNormal`] (default) — paths are i.i.d. **normal**
//!   with the chain distribution's exact mean and σ. This is the
//!   "distribution curves generated from Monte-Carlo data" methodology the
//!   paper describes, and it reproduces Table 1/2 and Fig 4 quantitatively
//!   (the paper's 22 nm performance drop of 18 % equals the normal-tail
//!   order-statistics prediction to within a point).
//! * [`VariationMode::SkewedIid`] — paths are i.i.d. draws from the *exact*
//!   unconditional mixture CDF `F(x) = E_sys[Φ((x − μ(sys))/σ(sys))]`,
//!   including the heavy right tail the exponential near-threshold delay
//!   law produces. Used by the tail-shape ablation bench: extreme
//!   quantiles of maxima are substantially more pessimistic than the
//!   normal fit suggests.
//! * [`VariationMode::Hierarchical`] — chip-global + per-lane regional
//!   systematic variation shared by a lane's paths, random variation per
//!   device. Correlated variation makes the slowest-lane tail less
//!   trimmable by spares; the correlation-structure ablation quantifies
//!   this.
//!
//! All engines precompute one [`PathDistribution`] per operating point
//! (Gauss–Hermite quadrature over the systematic draws of the conditional
//! CLT path moments; a 1024-point survival grid serves the skewed mode's
//! deep tail). FO4 units are defined as the paper defines them — the
//! simulated chain delay divided by the chain length (e.g. 22.05 ns / 50 =
//! 441 ps at 0.5 V in 90 nm), i.e. the distribution *mean* per stage.

use std::sync::{Arc, OnceLock};

use ntv_circuit::path_model::{PathModel, PathMoments};
use ntv_device::{ChipSample, TechModel};
#[cfg(test)]
use ntv_mc::StreamRng;
use ntv_mc::{normal, order, CounterRng, GaussHermite, Histogram, Quantiles, SampleStream};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::config::DatapathConfig;
use crate::exec::Executor;
use crate::op_cache::OpPointCache;

/// How process variation is correlated across the datapath, and what tail
/// shape path delays have.
///
/// `Ord` follows declaration order; it exists so the mode can key the
/// ordered maps of [`crate::op_cache::OpPointCache`] and carries no
/// semantic meaning.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum VariationMode {
    /// The paper's methodology: every critical path is an independent
    /// normal draw with the chain distribution's mean and σ.
    #[default]
    PaperNormal,
    /// Every path is an independent draw from the exact (right-skewed)
    /// unconditional chain-delay distribution.
    SkewedIid,
    /// Physical decomposition: chip-global + per-lane regional systematic
    /// variation shared by a lane's paths, random variation per device.
    Hierarchical,
}

/// The survival grid of a [`PathDistribution`] plus its constant-time
/// inverse-lookup acceleration structure, built lazily on first use.
#[derive(Debug, Clone)]
struct SurvivalGrid {
    /// Delay grid (ps), ascending.
    xs: Vec<f64>,
    /// Survival function `P(delay > x)` at each grid point.
    sf: Vec<f64>,
    /// `sf[i].ln()` precomputed, so the per-draw log-survival interpolation
    /// costs one `ln` (of the query target) instead of three.
    ln_sf: Vec<f64>,
    /// Bucketed inverse index over `ln g`: `hint[b]` is the partition point
    /// of `sf[i] > g` for the upper edge of bucket `b` — a lower bound for
    /// every `g` in the bucket, making inversion O(1) per draw.
    hint: Vec<u32>,
}

impl SurvivalGrid {
    /// Buckets of the inverse index. The grid's log-survival slope is at
    /// most ~0.24 per cell (12σ tail edge over a 20σ/1024 spacing), so with
    /// 4096 buckets over the ~708-wide `ln g` range (bucket width ~0.17) a
    /// lookup scans at most a couple of cells past its hint.
    const HINT: usize = 4096;
    /// Lower edge of the `ln g` bucket range; survival targets are floored
    /// at `f64::MIN_POSITIVE` by every caller.
    const LN_G_MIN: f64 = -708.396_418_532_264_1;

    /// Bucket index for a survival target `g ∈ (0, 1)`.
    fn bucket(g: f64) -> usize {
        let t = (g.ln() - Self::LN_G_MIN) * (Self::HINT as f64 / -Self::LN_G_MIN);
        // Negative t (g below the f64::MIN_POSITIVE floor) cannot occur for
        // clamped callers; clamp anyway so a stray subnormal stays in range.
        (t.max(0.0) as usize).min(Self::HINT - 1)
    }

    /// Partition point of the predicate `sf[i] > g`: the first index whose
    /// survival is `<= g`. Equals `sf.partition_point(|&s| s > g)` exactly
    /// — the hint only seeds the scan, and the backward leg absorbs the
    /// ulp-level `ln`/`exp` round-trip in the bucket edges — but runs in
    /// O(1) because a bucket spans at most a couple of grid cells.
    fn partition(&self, g: f64) -> usize {
        let mut i = self.hint[Self::bucket(g)] as usize;
        while i > 0 && self.sf[i - 1] <= g {
            i -= 1;
        }
        while i < self.sf.len() && self.sf[i] > g {
            i += 1;
        }
        i
    }
}

/// Precomputed unconditional path-delay distribution at one operating
/// point: exact mean/σ (all modes) plus a lazily built survival grid
/// (skewed/hierarchical draws and analytic tail queries).
#[derive(Debug, Clone)]
pub struct PathDistribution {
    mean_ps: f64,
    std_ps: f64,
    /// Grid extent: `min(μ − 8σ)` / `max(μ + 12σ)` over the components.
    lo_ps: f64,
    hi_ps: f64,
    /// Gauss–Hermite mixture components `(weight, mean_ps, std_ps)` over
    /// the systematic draws; retained so the survival grid can be built on
    /// demand instead of eagerly (the paper-normal mode never needs it).
    comps: Vec<(f64, f64, f64)>,
    grid: OnceLock<SurvivalGrid>,
}

impl PathDistribution {
    const GRID: usize = 1024;
    /// Gauss–Hermite order for the systematic-ΔVth dimension (shared with
    /// the analytic quantile solver so both integrate on the same grid).
    pub(crate) const GH_VTH: usize = 24;
    /// Gauss–Hermite order for the systematic current-factor dimension.
    pub(crate) const GH_K: usize = 12;

    /// Build the distribution for a `length`-stage path at `vdd`.
    ///
    /// The mixture moments are computed eagerly (cheap: one conditional
    /// CLT evaluation per Gauss–Hermite node); the 1024-point survival
    /// grid is deferred until a grid-backed query first needs it. Callers
    /// outside the operating-point cache should obtain distributions via
    /// [`crate::op_cache::OpPointCache`] (enforced by the
    /// `ntv::uncached-build` lint) so identical builds are shared
    /// process-wide.
    #[must_use]
    pub fn build(tech: &TechModel, vdd: Volts, length: usize) -> Self {
        let params = tech.params();
        let model = PathModel::new(tech, length);
        let gh_v = GaussHermite::new(Self::GH_VTH);
        let gh_k = GaussHermite::new(Self::GH_K);
        const INV_PI: f64 = 1.0 / std::f64::consts::PI;

        // Conditional moments at each systematic-Vth node; the systematic
        // current factor scales both moments by exp(−lk) exactly.
        let sqrt2 = std::f64::consts::SQRT_2;
        let comps: Vec<(f64, f64, f64)> = gh_v
            .nodes()
            .iter()
            .zip(gh_v.weights())
            .flat_map(|(&xv, &wv)| {
                let dv = sqrt2 * params.sigma_vth_systematic * xv;
                let m = model.conditional_moments(
                    vdd,
                    &ChipSample {
                        dvth: dv,
                        ln_k: 0.0,
                    },
                );
                gh_k.nodes()
                    .iter()
                    .zip(gh_k.weights())
                    .map(move |(&xk, &wk)| {
                        let k = (-(sqrt2 * params.sigma_k_systematic * xk)).exp();
                        (wv * wk * INV_PI, m.mean_ps * k, m.std_ps * k)
                    })
            })
            .collect();

        Self::from_comps(comps)
    }

    /// Build the distributions of a whole voltage grid in one pass through
    /// the batch kernels: each systematic-ΔVth node evaluates its
    /// conditional path moments across *all* voltages with
    /// [`PathModel::conditional_moments_grid`] (the interchanged
    /// Gauss–Hermite quadrature over the device voltage-grid kernel), and
    /// each voltage's mixture components are then assembled in the scalar
    /// order. Element `i` is **bit-identical** to
    /// `PathDistribution::build(tech, vdds[i], length)` (pinned by test);
    /// the win is arithmetic density — one fixed-stride kernel pass per
    /// quadrature node instead of `vdds.len()` interleaved scalar builds.
    #[must_use]
    pub fn build_grid(tech: &TechModel, vdds: &[Volts], length: usize) -> Vec<Self> {
        let params = tech.params();
        let model = PathModel::new(tech, length);
        let gh_v = GaussHermite::new(Self::GH_VTH);
        let gh_k = GaussHermite::new(Self::GH_K);
        const INV_PI: f64 = 1.0 / std::f64::consts::PI;
        let sqrt2 = std::f64::consts::SQRT_2;

        // Node-major: one voltage-grid moment pass per systematic-Vth node.
        let moments: Vec<Vec<PathMoments>> = gh_v
            .nodes()
            .iter()
            .map(|&xv| {
                let dv = sqrt2 * params.sigma_vth_systematic * xv;
                model.conditional_moments_grid(
                    vdds,
                    &ChipSample {
                        dvth: dv,
                        ln_k: 0.0,
                    },
                )
            })
            .collect();

        // Voltage-major: assemble each operating point's components in the
        // same (vth-node × k-node) order the scalar build uses.
        (0..vdds.len())
            .map(|vi| {
                let comps: Vec<(f64, f64, f64)> = moments
                    .iter()
                    .zip(gh_v.weights())
                    .flat_map(|(per_voltage, &wv)| {
                        let m = per_voltage[vi];
                        gh_k.nodes()
                            .iter()
                            .zip(gh_k.weights())
                            .map(move |(&xk, &wk)| {
                                let k = (-(sqrt2 * params.sigma_k_systematic * xk)).exp();
                                (wv * wk * INV_PI, m.mean_ps * k, m.std_ps * k)
                            })
                    })
                    .collect();
                Self::from_comps(comps)
            })
            .collect()
    }

    /// Shared tail of [`build`](Self::build) / [`build_grid`](Self::build_grid):
    /// unconditional moments and grid extent from the mixture components.
    fn from_comps(comps: Vec<(f64, f64, f64)>) -> Self {
        let mean_ps = ntv_mc::reduce::sum_ordered(comps.iter().map(|&(w, mu, _)| w * mu));
        let second =
            ntv_mc::reduce::sum_ordered(comps.iter().map(|&(w, mu, s)| w * (mu * mu + s * s)));
        let std_ps = (second - mean_ps * mean_ps).max(0.0).sqrt();
        let lo_ps = comps
            .iter()
            .map(|&(_, mu, s)| mu - 8.0 * s)
            .fold(f64::INFINITY, f64::min);
        let hi_ps = comps
            .iter()
            .map(|&(_, mu, s)| mu + 12.0 * s)
            .fold(f64::NEG_INFINITY, f64::max);

        Self {
            mean_ps,
            std_ps,
            lo_ps,
            hi_ps,
            comps,
            grid: OnceLock::new(), // ntv:allow(effect-escape): lazy grid is a pure function of the build inputs
        }
    }

    /// The lazily built survival grid. Deterministic: the grid is a pure
    /// function of the build inputs, so first-use timing and thread
    /// interleaving cannot change any value.
    ///
    /// The mixture-CDF accumulation is component-major (loop interchange
    /// over the 288 × 1024 term matrix): each component hoists its
    /// invariants once, evaluates its `erfc` arguments for the whole grid
    /// with [`normal::erfc_slice`], and folds into the survival vector
    /// with the ordered batch accumulators — every grid point still sums
    /// its components left to right, so the result is bit-identical to
    /// the point-major scalar formulation (pinned by test).
    fn grid(&self) -> &SurvivalGrid {
        // ntv:allow(effect-escape): first-use timing cannot change any grid value
        self.grid.get_or_init(|| {
            let sqrt2 = std::f64::consts::SQRT_2;
            let (lo, hi) = (self.lo_ps, self.hi_ps);
            let xs: Vec<f64> = (0..Self::GRID)
                .map(|i| lo + (hi - lo) * i as f64 / (Self::GRID - 1) as f64)
                .collect();
            let mut sf = vec![0.0; Self::GRID];
            let mut args = vec![0.0; Self::GRID];
            let mut row = vec![0.0; Self::GRID];
            for &(w, mu, s) in &self.comps {
                if s > 0.0 {
                    let w2 = w * 0.5;
                    let d = s * sqrt2;
                    for (a, &x) in args.iter_mut().zip(&xs) {
                        *a = (x - mu) / d;
                    }
                    normal::erfc_slice(&args, &mut row);
                    ntv_mc::reduce::axpy_ordered(&mut sf, w2, &row);
                } else {
                    for (r, &x) in row.iter_mut().zip(&xs) {
                        *r = if x < mu { w } else { 0.0 };
                    }
                    ntv_mc::reduce::add_assign_ordered(&mut sf, &row);
                }
            }
            let ln_sf: Vec<f64> = sf.iter().map(|&s| s.ln()).collect();
            // hint[b] = partition point of `sf[i] > g` at bucket b's upper
            // edge: a lower bound for every smaller g in the bucket.
            let hint: Vec<u32> = (0..SurvivalGrid::HINT)
                .map(|b| {
                    let ln_edge =
                        SurvivalGrid::LN_G_MIN * (1.0 - (b + 1) as f64 / SurvivalGrid::HINT as f64);
                    let edge = ln_edge.exp();
                    // ntv:allow(lossy-cast): partition_point ≤ GRID = 1024, far inside u32
                    sf.partition_point(|&s| s > edge) as u32
                })
                .collect();
            SurvivalGrid {
                xs,
                sf,
                ln_sf,
                hint,
            }
        })
    }

    /// Reference formulation of the survival grid as it stood before the
    /// component-major batch kernels: point-major, one scalar `erfc` per
    /// (point, component) term. Kept only to pin bit-exactness of the
    /// interchanged accumulation.
    #[cfg(test)]
    fn survival_sf_reference(&self) -> Vec<f64> {
        let sqrt2 = std::f64::consts::SQRT_2;
        let (lo, hi) = (self.lo_ps, self.hi_ps);
        (0..Self::GRID)
            .map(|i| lo + (hi - lo) * i as f64 / (Self::GRID - 1) as f64)
            .map(|x| {
                ntv_mc::reduce::sum_ordered(self.comps.iter().map(|&(w, mu, s)| {
                    if s > 0.0 {
                        w * 0.5 * normal::erfc((x - mu) / (s * sqrt2))
                    } else if x < mu {
                        w
                    } else {
                        0.0
                    }
                }))
            })
            .collect()
    }

    /// Force construction of the lazy survival grid (idempotent). Called
    /// once before forking parallel sampling loops so workers never
    /// contend on the one-time initialisation.
    pub fn warm_grid(&self) {
        let _ = self.grid();
    }

    /// Unconditional mean path delay (ps).
    #[must_use]
    pub fn mean_ps(&self) -> f64 {
        self.mean_ps
    }

    /// Unconditional path-delay standard deviation (ps), exact for the
    /// mixture (used by the normal fit of [`VariationMode::PaperNormal`]).
    #[must_use]
    pub fn std_ps(&self) -> f64 {
        self.std_ps
    }

    /// Survival `P(delay > x)` by linear interpolation on the grid.
    #[must_use]
    pub fn survival(&self, x: f64) -> f64 {
        let grid = self.grid();
        if x <= grid.xs[0] {
            return 1.0;
        }
        if x >= grid.xs[grid.xs.len() - 1] {
            return 0.0;
        }
        let i = grid.xs.partition_point(|&g| g <= x) - 1;
        let t = (x - grid.xs[i]) / (grid.xs[i + 1] - grid.xs[i]);
        grid.sf[i] * (1.0 - t) + grid.sf[i + 1] * t
    }

    /// Delay (ps) whose survival equals `g` (log-interpolated in the tail).
    ///
    /// O(1) per query: the bucketed inverse index finds the unique bracket
    /// of the monotone predicate `sf[i] > g` without a binary search, and
    /// the grid's log-survival values are precomputed, leaving a single
    /// `ln(g)` per call. The interpolant is bit-identical to the original
    /// binary-search-plus-4-`ln` formulation (pinned by test).
    #[must_use]
    pub fn quantile_by_survival(&self, g: f64) -> f64 {
        debug_assert!(g > 0.0 && g < 1.0);
        let grid = self.grid();
        if g >= grid.sf[0] {
            return grid.xs[0];
        }
        let last = grid.sf.len() - 1;
        if g <= grid.sf[last].max(f64::MIN_POSITIVE) && grid.sf[last] <= 0.0 {
            return grid.xs[last];
        }
        // Unique bracket (lo, hi = lo + 1) with sf[lo] > g >= sf[hi],
        // clamped to the final cell when g undershoots the whole grid —
        // exactly what the former binary search converged to.
        let pp = grid.partition(g);
        let lo = pp.min(last) - 1;
        let hi = lo + 1;
        let (ga, gb) = (grid.sf[lo], grid.sf[hi]);
        if gb <= 0.0 || ga <= gb {
            return grid.xs[hi];
        }
        // Interpolate in log-survival: near-linear for Gaussian-class tails.
        let t = (grid.ln_sf[lo] - g.ln()) / (grid.ln_sf[lo] - grid.ln_sf[hi]);
        grid.xs[lo] + (grid.xs[hi] - grid.xs[lo]) * t.clamp(0.0, 1.0)
    }

    /// Invert a whole slice of survival targets in place:
    /// `gs[i] <- quantile_by_survival(gs[i])`. The batched sampling
    /// kernels use this to turn a vector of order-statistic targets into
    /// delays without per-element call overhead; each element is the
    /// scalar inversion, so results are bit-identical to a per-element
    /// loop by construction.
    pub fn quantile_by_survival_batch(&self, gs: &mut [f64]) {
        for g in gs {
            *g = self.quantile_by_survival(*g);
        }
    }

    /// Reference implementation of [`Self::quantile_by_survival`] as it
    /// stood before the O(1) inverse index: full binary search and `ln`
    /// evaluated at query time. Kept only to pin bit-exactness.
    #[cfg(test)]
    fn quantile_by_survival_reference(&self, g: f64) -> f64 {
        debug_assert!(g > 0.0 && g < 1.0);
        let grid = self.grid();
        if g >= grid.sf[0] {
            return grid.xs[0];
        }
        let last = grid.sf.len() - 1;
        if g <= grid.sf[last].max(f64::MIN_POSITIVE) && grid.sf[last] <= 0.0 {
            return grid.xs[last];
        }
        // Binary search: sf is non-increasing.
        let (mut lo, mut hi) = (0usize, last);
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if grid.sf[mid] > g {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (ga, gb) = (grid.sf[lo], grid.sf[hi]);
        if gb <= 0.0 || ga <= gb {
            return grid.xs[hi];
        }
        let t = (ga.ln() - g.ln()) / (ga.ln() - gb.ln());
        grid.xs[lo] + (grid.xs[hi] - grid.xs[lo]) * t.clamp(0.0, 1.0)
    }

    /// Sample one path delay (ps).
    pub fn sample<R: SampleStream + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.uniform_open();
        self.quantile_by_survival((1.0 - u).max(f64::MIN_POSITIVE))
    }

    /// Sample the maximum of `n` i.i.d. path delays (ps) in O(1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn sample_max<R: SampleStream + ?Sized>(&self, n: usize, rng: &mut R) -> f64 {
        assert!(n > 0, "maximum of zero paths is undefined");
        let u = rng.uniform_open();
        self.quantile_by_survival(order::max_survival_target(u, n))
    }
}

/// Monte-Carlo distribution of the chip delay at one operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipDelayDistribution {
    /// Supply voltage this distribution was sampled at.
    pub vdd: Volts,
    /// The FO4 unit at `vdd` (ps): simulated chain delay ÷ chain length,
    /// the paper's definition (441 ps at 0.5 V in 90 nm).
    pub fo4_unit_ps: f64,
    /// Chip-delay samples in FO4 units, ready for quantile queries.
    pub fo4_quantiles: Quantiles,
}

impl ChipDelayDistribution {
    /// The paper's comparison statistic: the 99 % point in FO4 units
    /// ("fo4chipd").
    #[must_use]
    pub fn q99_fo4(&self) -> f64 {
        self.fo4_quantiles.q99()
    }

    /// The 99 % point in nanoseconds ("chipd").
    #[must_use]
    pub fn q99_ns(&self) -> f64 {
        self.q99_fo4() * self.fo4_unit_ps / 1000.0
    }

    /// Arbitrary quantile in FO4 units.
    #[must_use]
    pub fn quantile_fo4(&self, p: f64) -> f64 {
        self.fo4_quantiles.quantile(p)
    }

    /// Histogram of the FO4-unit samples (the "Occurrences" series of
    /// Figs 3/5/6).
    #[must_use]
    pub fn histogram(&self, bins: usize) -> Histogram {
        Histogram::from_samples(self.fo4_quantiles.as_sorted_slice(), bins)
    }

    /// Number of Monte-Carlo samples behind the distribution.
    #[must_use]
    pub fn sample_count(&self) -> usize {
        self.fo4_quantiles.len()
    }
}

/// Fast architecture-level Monte-Carlo engine for one technology model and
/// datapath shape.
///
/// # Example
///
/// ```
/// use ntv_core::{DatapathConfig, DatapathEngine};
/// use ntv_device::{TechModel, TechNode};
/// use ntv_mc::StreamRng;
/// use ntv_units::Volts;
///
/// let tech = TechModel::new(TechNode::Gp90);
/// let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
/// let mut rng = StreamRng::from_seed(1);
/// let dist = engine.chip_delay_distribution(Volts(0.55), 1_000, &mut rng);
/// // The slowest of 12,800 paths always exceeds the 50-FO4 ideal.
/// assert!(dist.fo4_quantiles.min() > 50.0);
/// ```
#[derive(Debug)]
pub struct DatapathEngine<'a> {
    tech: &'a TechModel,
    config: DatapathConfig,
    mode: VariationMode,
    path_model: PathModel<'a>,
    // Engines on a node's calibrated parameters share the process-wide
    // operating-point cache; custom-parameter engines get a private one
    // (the cache key does not encode DeviceParams).
    cache: Arc<OpPointCache>,
}

impl<'a> DatapathEngine<'a> {
    /// Engine for `tech` with the given datapath shape, in the paper's
    /// normal-fit i.i.d. variation mode.
    #[must_use]
    pub fn new(tech: &'a TechModel, config: DatapathConfig) -> Self {
        Self::with_mode(tech, config, VariationMode::PaperNormal)
    }

    /// Engine with an explicit [`VariationMode`].
    #[must_use]
    pub fn with_mode(tech: &'a TechModel, config: DatapathConfig, mode: VariationMode) -> Self {
        Self {
            tech,
            config,
            mode,
            path_model: PathModel::new(tech, config.path_length),
            cache: OpPointCache::shared_for(tech),
        }
    }

    /// The datapath shape.
    #[must_use]
    pub fn config(&self) -> &DatapathConfig {
        &self.config
    }

    /// The variation-correlation mode.
    #[must_use]
    pub fn mode(&self) -> VariationMode {
        self.mode
    }

    /// The technology model.
    #[must_use]
    pub fn tech(&self) -> &TechModel {
        self.tech
    }

    /// Conditional path moments for an explicit chip (exposed for
    /// validation tests and the hierarchical mode).
    #[must_use]
    pub fn path_moments(&self, vdd: Volts, chip: &ChipSample) -> PathMoments {
        self.path_model.conditional_moments(vdd, chip)
    }

    /// The precomputed unconditional path distribution at `vdd`
    /// (built on first use, then shared through the operating-point cache
    /// — process-wide for calibrated nodes, per-engine for custom
    /// parameter sets).
    #[must_use]
    pub fn path_distribution(&self, vdd: Volts) -> Arc<PathDistribution> {
        self.cache
            .get_or_build(self.tech, self.mode, vdd, self.config.path_length)
    }

    /// Pre-build the operating points of a voltage sweep in parallel on
    /// `exec`, so the sweep itself never pays a Gauss–Hermite build or
    /// survival-grid construction inside its timing loop.
    pub fn prefetch(&self, voltages: &[Volts], exec: Executor) {
        self.cache.prefetch(
            self.tech,
            self.mode,
            self.config.path_length,
            voltages,
            exec,
        );
    }

    /// Sample the delays (FO4 units) of `n_lanes` lanes on a fresh chip.
    ///
    /// Each lane delay is the maximum of `paths_per_lane` path delays.
    #[must_use]
    pub fn sample_lane_delays_fo4<R: SampleStream + ?Sized>(
        &self,
        vdd: Volts,
        n_lanes: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        let dist = self.path_distribution(vdd);
        let fo4 = dist.mean_ps() / self.config.path_length as f64;
        match self.mode {
            VariationMode::PaperNormal => (0..n_lanes)
                .map(|_| {
                    order::sample_max_normal(
                        rng,
                        self.config.paths_per_lane,
                        dist.mean_ps(),
                        dist.std_ps(),
                    ) / fo4
                })
                .collect(),
            VariationMode::SkewedIid => (0..n_lanes)
                .map(|_| dist.sample_max(self.config.paths_per_lane, rng) / fo4)
                .collect(),
            VariationMode::Hierarchical => {
                let chip = self.tech.sample_chip_global(rng);
                let m = self.path_moments(vdd, &chip);
                (0..n_lanes)
                    .map(|_| {
                        let region = self.tech.sample_region(rng);
                        let f = self.tech.region_delay_factor(vdd, &region);
                        order::sample_max_normal(
                            rng,
                            self.config.paths_per_lane,
                            m.mean_ps * f,
                            m.std_ps * f,
                        ) / fo4
                    })
                    .collect()
            }
        }
    }

    /// Sample one chip delay (FO4 units): the slowest lane of the
    /// datapath.
    #[must_use]
    pub fn sample_chip_delay_fo4<R: SampleStream + ?Sized>(&self, vdd: Volts, rng: &mut R) -> f64 {
        let dist = self.path_distribution(vdd);
        let fo4 = dist.mean_ps() / self.config.path_length as f64;
        match self.mode {
            // Max over lanes of max over paths == max over all paths.
            VariationMode::PaperNormal => {
                order::sample_max_normal(
                    rng,
                    self.config.critical_path_count(),
                    dist.mean_ps(),
                    dist.std_ps(),
                ) / fo4
            }
            VariationMode::SkewedIid => {
                dist.sample_max(self.config.critical_path_count(), rng) / fo4
            }
            VariationMode::Hierarchical => self
                .sample_lane_delays_fo4(vdd, self.config.lanes, rng)
                .into_iter()
                .fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Monte-Carlo chip-delay distribution at `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    #[must_use]
    pub fn chip_delay_distribution<R: SampleStream + ?Sized>(
        &self,
        vdd: Volts,
        samples: usize,
        rng: &mut R,
    ) -> ChipDelayDistribution {
        assert!(samples > 0, "need at least one Monte-Carlo sample");
        let data: Vec<f64> = (0..samples)
            .map(|_| self.sample_chip_delay_fo4(vdd, rng))
            .collect();
        ChipDelayDistribution {
            vdd,
            fo4_unit_ps: self.fo4_unit_ps(vdd),
            fo4_quantiles: Quantiles::from_samples(data),
        }
    }

    /// Sample chip delay number `index` (FO4 units) from a counter-based
    /// stream: a pure function of `(stream key, index)`, so any subset of
    /// indexes can be evaluated on any thread without changing any value.
    #[must_use]
    pub fn sample_chip_delay_fo4_at(&self, vdd: Volts, stream: &CounterRng, index: u64) -> f64 {
        let mut draws = stream.at(index);
        self.sample_chip_delay_fo4(vdd, &mut draws)
    }

    /// Index-addressed counterpart of [`Self::sample_lane_delays_fo4`]:
    /// lane delays of chip `index`, a pure function of `(stream key, index)`.
    #[must_use]
    pub fn sample_lane_delays_fo4_at(
        &self,
        vdd: Volts,
        n_lanes: usize,
        stream: &CounterRng,
        index: u64,
    ) -> Vec<f64> {
        let mut draws = stream.at(index);
        self.sample_lane_delays_fo4(vdd, n_lanes, &mut draws)
    }

    /// Sample `out.len()` consecutive chip delays (FO4 units) starting at
    /// stream index `first`: `out[i]` is chip `first + i`.
    ///
    /// This is the SoA kernel behind [`Self::sample_batch`]. It hoists the
    /// per-voltage distribution lookup out of the loop and, for the modes
    /// whose chip delay consumes exactly one uniform draw, splits the work
    /// into fixed-stride passes: a batched counter-RNG draw, an
    /// elementwise order-statistic target map, and a batched quantile
    /// inversion. Element `i` is bit-identical to
    /// [`Self::sample_chip_delay_fo4_at`]`(vdd, stream, first + i)`
    /// (pinned by the batch-identity matrix test).
    pub fn sample_chip_delays_fo4_batch(
        &self,
        vdd: Volts,
        stream: &CounterRng,
        first: u64,
        out: &mut [f64],
    ) {
        let dist = self.path_distribution(vdd);
        let fo4 = dist.mean_ps() / self.config.path_length as f64;
        let n = self.config.critical_path_count();
        match self.mode {
            // Max over lanes of max over paths == max over all paths.
            VariationMode::PaperNormal => {
                assert!(n > 0, "maximum of zero variables is undefined");
                let (mean, std_dev) = (dist.mean_ps(), dist.std_ps());
                assert!(std_dev >= 0.0, "standard deviation must be non-negative");
                if std_dev == 0.0 {
                    out.fill(mean / fo4);
                    return;
                }
                stream.uniform_open_batch(first, out);
                for o in out {
                    *o = (mean + std_dev * normal::quantile(order::max_cdf_target(*o, n))) / fo4;
                }
            }
            VariationMode::SkewedIid => {
                assert!(n > 0, "maximum of zero paths is undefined");
                stream.uniform_open_batch(first, out);
                for o in out.iter_mut() {
                    *o = order::max_survival_target(*o, n);
                }
                dist.quantile_by_survival_batch(out);
                for o in out {
                    *o /= fo4;
                }
            }
            // Hierarchical chips consume a variable number of draws in a
            // data-dependent order; keep the scalar per-chip path.
            VariationMode::Hierarchical => {
                for (i, o) in out.iter_mut().enumerate() {
                    let mut draws = stream.at(first + i as u64);
                    *o = self.sample_chip_delay_fo4(vdd, &mut draws);
                }
            }
        }
    }

    /// Chip-delay samples (FO4 units) for a contiguous index range,
    /// evaluated in parallel by `exec`. Output is in index order and
    /// bit-identical for any thread count.
    #[must_use]
    pub fn sample_batch(
        &self,
        vdd: Volts,
        stream: &CounterRng,
        range: std::ops::Range<u64>,
        exec: Executor,
    ) -> Vec<f64> {
        // Warm the per-vdd distribution cache once, outside the fork, so
        // workers never contend on (or double-build) it; modes that draw
        // through the survival grid need the grid itself warm too.
        let dist = self.path_distribution(vdd);
        if self.mode != VariationMode::PaperNormal {
            dist.warm_grid();
        }
        let start = range.start;
        exec.map_indexed_chunks(range.end - range.start, |s, len| {
            let mut out = vec![0.0; len as usize];
            self.sample_chip_delays_fo4_batch(vdd, stream, start + s, &mut out);
            out
        })
    }

    /// Monte-Carlo chip-delay distribution at `vdd` from a counter-based
    /// stream, evaluated in parallel by `exec`.
    ///
    /// Sample `i` is `(stream key, i)`-addressed, so the distribution is
    /// bit-identical for any thread count — the deterministic-parallel
    /// contract DESIGN.md §7 documents.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    #[must_use]
    pub fn chip_delay_distribution_par(
        &self,
        vdd: Volts,
        samples: usize,
        stream: &CounterRng,
        exec: Executor,
    ) -> ChipDelayDistribution {
        assert!(samples > 0, "need at least one Monte-Carlo sample");
        let data = self.sample_batch(vdd, stream, 0..samples as u64, exec);
        ChipDelayDistribution {
            vdd,
            fo4_unit_ps: self.fo4_unit_ps(vdd),
            fo4_quantiles: Quantiles::from_samples(data),
        }
    }

    /// Index-addressed, parallel counterpart of
    /// [`Self::path_delay_distribution`].
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    #[must_use]
    pub fn path_delay_distribution_par(
        &self,
        vdd: Volts,
        samples: usize,
        stream: &CounterRng,
        exec: Executor,
    ) -> ChipDelayDistribution {
        assert!(samples > 0, "need at least one Monte-Carlo sample");
        let dist = self.path_distribution(vdd);
        if self.mode != VariationMode::PaperNormal {
            dist.warm_grid();
        }
        let fo4 = dist.mean_ps() / self.config.path_length as f64;
        let data = exec.map_indexed(samples as u64, |i| {
            let mut draws = stream.at(i);
            match self.mode {
                VariationMode::SkewedIid | VariationMode::Hierarchical => {
                    dist.sample(&mut draws) / fo4
                }
                VariationMode::PaperNormal => draws.normal(dist.mean_ps(), dist.std_ps()) / fo4,
            }
        });
        ChipDelayDistribution {
            vdd,
            fo4_unit_ps: fo4,
            fo4_quantiles: Quantiles::from_samples(data),
        }
    }

    /// The FO4 unit at `vdd`: the simulated chain delay divided by the
    /// chain length (the paper's definition, e.g. 22.05 ns / 50 = 441 ps
    /// at 0.5 V in 90 nm).
    #[must_use]
    pub fn fo4_unit_ps(&self, vdd: Volts) -> f64 {
        self.path_distribution(vdd).mean_ps() / self.config.path_length as f64
    }

    /// Distribution of a *single critical path's* delay in FO4 units
    /// (the leftmost curve of Fig 3).
    #[must_use]
    pub fn path_delay_distribution<R: SampleStream + ?Sized>(
        &self,
        vdd: Volts,
        samples: usize,
        rng: &mut R,
    ) -> ChipDelayDistribution {
        assert!(samples > 0, "need at least one Monte-Carlo sample");
        let dist = self.path_distribution(vdd);
        let fo4 = dist.mean_ps() / self.config.path_length as f64;
        let data: Vec<f64> = (0..samples)
            .map(|_| match self.mode {
                VariationMode::SkewedIid | VariationMode::Hierarchical => dist.sample(rng) / fo4,
                VariationMode::PaperNormal => rng.normal(dist.mean_ps(), dist.std_ps()) / fo4,
            })
            .collect();
        ChipDelayDistribution {
            vdd,
            fo4_unit_ps: fo4,
            fo4_quantiles: Quantiles::from_samples(data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntv_device::TechNode;
    use ntv_mc::Summary;

    fn engine_default(tech: &TechModel) -> DatapathEngine<'_> {
        DatapathEngine::new(tech, DatapathConfig::paper_default())
    }

    #[test]
    fn path_distribution_matches_gate_level_chain() {
        // The precomputed CDF must agree with the exact gate-level chain
        // Monte Carlo (cross-chip) in mean, spread and upper tail.
        let tech = TechModel::new(TechNode::Gp90);
        let engine = engine_default(&tech);
        for vdd in [Volts(0.5), Volts(1.0)] {
            let dist = engine.path_distribution(vdd);
            let chain = ntv_circuit::chain::ChainMc::new(&tech, 50);
            let mut rng = StreamRng::from_seed(31);
            let mc: Vec<f64> = chain.distribution_ps(vdd, 6000, &mut rng);
            let s: Summary = mc.iter().copied().collect();
            assert!(
                (dist.mean_ps() / s.mean() - 1.0).abs() < 0.01,
                "{vdd}: mean {} vs {}",
                dist.mean_ps(),
                s.mean()
            );
            // Compare the 99% point via inverse survival.
            let q = ntv_mc::Quantiles::from_samples(mc);
            let q99_model = dist.quantile_by_survival(0.01);
            assert!(
                (q99_model / q.q99() - 1.0).abs() < 0.02,
                "{vdd}: q99 {} vs {}",
                q99_model,
                q.q99()
            );
        }
    }

    #[test]
    fn sample_max_matches_brute_force() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = engine_default(&tech);
        let dist = engine.path_distribution(Volts(0.55));
        let mut rng = StreamRng::from_seed(9);
        let fast: Summary = (0..20_000).map(|_| dist.sample_max(32, &mut rng)).collect();
        let slow: Summary = (0..20_000)
            .map(|_| {
                (0..32)
                    .map(|_| dist.sample(&mut rng))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        assert!((fast.mean() / slow.mean() - 1.0).abs() < 0.005);
        assert!((fast.std_dev() / slow.std_dev() - 1.0).abs() < 0.05);
    }

    #[test]
    fn survival_is_monotone_and_bounded() {
        let tech = TechModel::new(TechNode::PtmHp22);
        let engine = engine_default(&tech);
        let dist = engine.path_distribution(Volts(0.5));
        let mean = dist.mean_ps();
        let mut prev = 1.0;
        for i in 0..100 {
            let x = mean * (0.5 + 1.5 * f64::from(i) / 100.0);
            let s = dist.survival(x);
            assert!((0.0..=1.0).contains(&s));
            assert!(s <= prev + 1e-12);
            prev = s;
        }
        assert!((dist.survival(mean) - 0.5).abs() < 0.1);
    }

    #[test]
    fn wider_simd_is_slower() {
        // Fig 3: 128-wide@1V right of 1-wide@1V, right of a single path@1V.
        let tech = TechModel::new(TechNode::Gp90);
        let mut rng = StreamRng::from_seed(3);
        let one_path = DatapathEngine::new(&tech, DatapathConfig::new(1, 1, 50))
            .chip_delay_distribution(Volts(1.0), 2000, &mut rng);
        let one_lane = DatapathEngine::new(&tech, DatapathConfig::new(1, 100, 50))
            .chip_delay_distribution(Volts(1.0), 2000, &mut rng);
        let full = engine_default(&tech).chip_delay_distribution(Volts(1.0), 2000, &mut rng);
        assert!(one_path.fo4_quantiles.median() < one_lane.fo4_quantiles.median());
        assert!(one_lane.fo4_quantiles.median() < full.fo4_quantiles.median());
    }

    #[test]
    fn low_voltage_distributions_drift_right_in_fo4_units() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = engine_default(&tech);
        let mut rng = StreamRng::from_seed(4);
        let at_1v = engine.chip_delay_distribution(Volts(1.0), 2000, &mut rng);
        let at_055 = engine.chip_delay_distribution(Volts(0.55), 2000, &mut rng);
        let at_05 = engine.chip_delay_distribution(Volts(0.5), 2000, &mut rng);
        assert!(at_055.q99_fo4() > at_1v.q99_fo4());
        assert!(at_05.q99_fo4() > at_055.q99_fo4());
    }

    #[test]
    fn lane_sampling_matches_whole_chip_reduction() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = engine_default(&tech);
        let mut rng_a = StreamRng::from_seed(10);
        let mut rng_b = StreamRng::from_seed(20);
        let n = 3000;
        let via_lanes: Vec<f64> = (0..n)
            .map(|_| {
                let lanes = engine.sample_lane_delays_fo4(Volts(0.6), 128, &mut rng_a);
                lanes.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        let direct: Vec<f64> = (0..n)
            .map(|_| engine.sample_chip_delay_fo4(Volts(0.6), &mut rng_b))
            .collect();
        let qa = Quantiles::from_samples(via_lanes);
        let qb = Quantiles::from_samples(direct);
        for p in [0.1, 0.5, 0.9] {
            let (a, b) = (qa.quantile(p), qb.quantile(p));
            assert!((a / b - 1.0).abs() < 0.01, "p={p}: {a} vs {b}");
        }
    }

    #[test]
    fn hierarchical_mode_also_works() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::with_mode(
            &tech,
            DatapathConfig::paper_default(),
            VariationMode::Hierarchical,
        );
        let mut rng = StreamRng::from_seed(6);
        let d = engine.chip_delay_distribution(Volts(0.55), 800, &mut rng);
        assert!(d.q99_fo4() > 50.0);
        assert_eq!(engine.mode(), VariationMode::Hierarchical);
    }

    #[test]
    fn chip_delay_exceeds_ideal_path() {
        let tech = TechModel::new(TechNode::PtmHp22);
        let engine = engine_default(&tech);
        let mut rng = StreamRng::from_seed(5);
        let d = engine.chip_delay_distribution(Volts(0.5), 500, &mut rng);
        assert!(d.fo4_quantiles.min() > 50.0);
    }

    #[test]
    fn q99_ns_consistent_with_fo4() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = engine_default(&tech);
        let mut rng = StreamRng::from_seed(6);
        let d = engine.chip_delay_distribution(Volts(0.5), 500, &mut rng);
        assert!((d.q99_ns() - d.q99_fo4() * d.fo4_unit_ps / 1000.0).abs() < 1e-12);
        assert!(d.q99_ns() > 20.0 && d.q99_ns() < 30.0, "{}", d.q99_ns());
    }

    #[test]
    fn path_distribution_centres_near_50_fo4() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = engine_default(&tech);
        let mut rng = StreamRng::from_seed(7);
        let d = engine.path_delay_distribution(Volts(1.0), 3000, &mut rng);
        assert!((d.fo4_quantiles.median() / 50.0 - 1.0).abs() < 0.03);
    }

    #[test]
    fn counter_sampling_is_index_pure_and_thread_invariant() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = engine_default(&tech);
        let stream = ntv_mc::CounterRng::new(2012, "engine-test");
        // Pure function of (key, index): repeated evaluation is bitwise equal.
        let a = engine.sample_chip_delay_fo4_at(Volts(0.55), &stream, 7);
        let b = engine.sample_chip_delay_fo4_at(Volts(0.55), &stream, 7);
        assert_eq!(a.to_bits(), b.to_bits());
        // Batch output equals the per-index loop, for any thread count.
        let serial = engine.sample_batch(Volts(0.55), &stream, 0..500, Executor::serial());
        let par = engine.sample_batch(Volts(0.55), &stream, 0..500, Executor::new(8));
        assert!(serial
            .iter()
            .zip(&par)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(serial[7].to_bits(), a.to_bits());
    }

    #[test]
    fn counter_distribution_matches_stream_distribution_statistically() {
        // The counter-based and sequential samplers draw from the same
        // distribution; quantiles must agree to MC accuracy.
        let tech = TechModel::new(TechNode::Gp90);
        let engine = engine_default(&tech);
        let stream = ntv_mc::CounterRng::new(11, "engine-test");
        let ctr =
            engine.chip_delay_distribution_par(Volts(0.55), 4000, &stream, Executor::default());
        let mut rng = StreamRng::from_seed(12);
        let seq = engine.chip_delay_distribution(Volts(0.55), 4000, &mut rng);
        for p in [0.1, 0.5, 0.9, 0.99] {
            let (a, b) = (ctr.quantile_fo4(p), seq.quantile_fo4(p));
            assert!((a / b - 1.0).abs() < 0.02, "p={p}: {a} vs {b}");
        }
    }

    #[test]
    fn hierarchical_counter_sampling_is_thread_invariant() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::with_mode(
            &tech,
            DatapathConfig::paper_default(),
            VariationMode::Hierarchical,
        );
        let stream = ntv_mc::CounterRng::new(3, "engine-test");
        let serial =
            engine.chip_delay_distribution_par(Volts(0.6), 300, &stream, Executor::serial());
        let par = engine.chip_delay_distribution_par(Volts(0.6), 300, &stream, Executor::new(8));
        assert_eq!(serial, par);
    }

    #[test]
    fn parallel_path_distribution_is_thread_invariant() {
        let tech = TechModel::new(TechNode::Gp45);
        let engine = engine_default(&tech);
        let stream = ntv_mc::CounterRng::new(5, "engine-test");
        let serial =
            engine.path_delay_distribution_par(Volts(0.6), 2000, &stream, Executor::serial());
        let par = engine.path_delay_distribution_par(Volts(0.6), 2000, &stream, Executor::new(4));
        assert_eq!(serial, par);
        assert!((serial.fo4_quantiles.median() / 50.0 - 1.0).abs() < 0.05);
    }

    #[test]
    fn inverse_cdf_fast_path_is_bit_exact() {
        // The O(1) bucketed inverse index must reproduce the retired
        // binary-search interpolant bit for bit, across the entire clamp
        // range (f64::MIN_POSITIVE up to 1 − ε) and the survival targets
        // the samplers actually generate.
        let tech = TechModel::new(TechNode::Gp90);
        let engine = engine_default(&tech);
        for vdd in [Volts(0.5), Volts(1.0)] {
            let dist = engine.path_distribution(vdd);
            let check = |g: f64| {
                assert_eq!(
                    dist.quantile_by_survival(g).to_bits(),
                    dist.quantile_by_survival_reference(g).to_bits(),
                    "{vdd}: g={g:e}"
                );
            };
            check(f64::MIN_POSITIVE);
            check(1.0 - f64::EPSILON);
            for i in 0..4000_i32 {
                let t = f64::from(i) / 4000.0;
                let g = (f64::MIN_POSITIVE.ln() * (1.0 - t) - f64::EPSILON * t).exp();
                check(g.min(1.0 - f64::EPSILON));
            }
            let mut rng = StreamRng::from_seed(77);
            for _ in 0..4000 {
                let u = rng.uniform_open();
                check((1.0 - u).max(f64::MIN_POSITIVE));
                check(order::max_survival_target(u, 100));
                check(order::max_survival_target(u, 12_800));
            }
        }
    }

    #[test]
    fn sample_max_routes_through_shared_survival_target() {
        // PathDistribution::sample_max and the deduped helper must consume
        // one uniform draw and agree bitwise on the resulting quantile.
        let tech = TechModel::new(TechNode::Gp90);
        let engine = engine_default(&tech);
        let dist = engine.path_distribution(Volts(0.55));
        let mut a = StreamRng::from_seed(123);
        let mut b = StreamRng::from_seed(123);
        for &n in &[1usize, 100, 12_800] {
            let direct = dist.sample_max(n, &mut a);
            let manual = dist.quantile_by_survival(order::max_survival_target(b.uniform_open(), n));
            assert_eq!(direct.to_bits(), manual.to_bits(), "n={n}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let tech = TechModel::new(TechNode::Gp45);
        let engine = engine_default(&tech);
        let a = engine
            .chip_delay_distribution(Volts(0.6), 50, &mut StreamRng::from_seed(42))
            .q99_fo4();
        let b = engine
            .chip_delay_distribution(Volts(0.6), 50, &mut StreamRng::from_seed(42))
            .q99_fo4();
        assert_eq!(a, b);
    }

    /// The component-major `erfc_slice`/`axpy_ordered` survival-grid build
    /// must reproduce the retired point-major scalar accumulation bit for
    /// bit at every grid point.
    #[test]
    fn vectorized_survival_grid_is_bit_exact() {
        for node in [TechNode::Gp90, TechNode::PtmHp22] {
            let tech = TechModel::new(node);
            for vdd in [Volts(0.5), Volts(1.0)] {
                let dist = PathDistribution::build(&tech, vdd, 50);
                let reference = dist.survival_sf_reference();
                let grid = dist.grid();
                assert_eq!(grid.sf.len(), reference.len());
                for (i, (a, b)) in grid.sf.iter().zip(&reference).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{node:?} {vdd} grid point {i}");
                }
            }
        }
    }

    /// `build_grid` (voltage-grid batch build) must agree bitwise with
    /// per-voltage scalar builds — moments, extent, every mixture
    /// component, and the derived survival grid.
    #[test]
    fn grid_build_matches_scalar_builds_bitwise() {
        let tech = TechModel::new(TechNode::Gp45);
        for n in [0usize, 1, 7] {
            let vdds: Vec<Volts> = (0..n).map(|i| Volts(0.45 + 0.08 * i as f64)).collect();
            let batch = PathDistribution::build_grid(&tech, &vdds, 50);
            assert_eq!(batch.len(), n);
            for (dist, &vdd) in batch.iter().zip(&vdds) {
                let scalar = PathDistribution::build(&tech, vdd, 50);
                assert_eq!(
                    dist.mean_ps().to_bits(),
                    scalar.mean_ps().to_bits(),
                    "{vdd}"
                );
                assert_eq!(dist.std_ps().to_bits(), scalar.std_ps().to_bits(), "{vdd}");
                assert_eq!(dist.lo_ps.to_bits(), scalar.lo_ps.to_bits(), "{vdd}");
                assert_eq!(dist.hi_ps.to_bits(), scalar.hi_ps.to_bits(), "{vdd}");
                assert_eq!(dist.comps.len(), scalar.comps.len());
                for (a, b) in dist.comps.iter().zip(&scalar.comps) {
                    assert_eq!(a.0.to_bits(), b.0.to_bits(), "{vdd}");
                    assert_eq!(a.1.to_bits(), b.1.to_bits(), "{vdd}");
                    assert_eq!(a.2.to_bits(), b.2.to_bits(), "{vdd}");
                }
                for (a, b) in dist.grid().sf.iter().zip(&scalar.grid().sf) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{vdd}");
                }
            }
        }
    }

    /// The SoA chip-delay kernel must equal the per-index scalar sampler
    /// bitwise in every mode, including batch lengths of 0, 1, and sizes
    /// that are not a multiple of any lane width.
    #[test]
    fn batched_chip_delay_kernel_is_bit_exact_per_mode() {
        let tech = TechModel::new(TechNode::Gp90);
        let stream = ntv_mc::CounterRng::new(404, "engine-batch");
        for mode in [
            VariationMode::PaperNormal,
            VariationMode::SkewedIid,
            VariationMode::Hierarchical,
        ] {
            let engine = DatapathEngine::with_mode(&tech, DatapathConfig::paper_default(), mode);
            for first in [0u64, 1000] {
                for n in [0usize, 1, 13, 64] {
                    let mut out = vec![0.0; n];
                    engine.sample_chip_delays_fo4_batch(Volts(0.55), &stream, first, &mut out);
                    for (i, &o) in out.iter().enumerate() {
                        let scalar =
                            engine.sample_chip_delay_fo4_at(Volts(0.55), &stream, first + i as u64);
                        assert_eq!(
                            o.to_bits(),
                            scalar.to_bits(),
                            "{mode:?} first={first} i={i}"
                        );
                    }
                }
            }
        }
    }
}
