//! Process-wide operating-point cache for [`PathDistribution`] builds.
//!
//! Every sweep in the experiment suite probes the same handful of
//! `(node, mode, path length, vdd)` operating points — Table 1 and Table 2
//! alone revisit each voltage across four nodes, and the margining/DSE
//! bisections land on identical probe voltages across experiment modules.
//! Before this cache each [`crate::DatapathEngine`] owned a private map, so
//! fifteen experiment modules repeated identical 24×12 Gauss–Hermite
//! builds. [`OpPointCache`] shares them process-wide.
//!
//! # Keying and the custom-parameter escape hatch
//!
//! Entries are keyed by `(TechNode, VariationMode, path_length,
//! vdd.to_bits())`. The key deliberately does **not** encode the full
//! [`DeviceParams`] (hashing 14 floats per lookup would cost more than the
//! lookup); instead, [`OpPointCache::shared_for`] hands the global cache
//! only to engines whose parameters are exactly the node's calibrated set,
//! and gives every custom-parameter engine (σ-scaling ablations, what-if
//! studies) a private instance. [`OpPointCache::get_or_build`] re-asserts
//! this invariant on the global instance, so a mis-shared cache panics
//! rather than silently serving a wrong distribution.
//!
//! # Locking discipline
//!
//! Two-level: an `RwLock` guards only the key → cell map, and each cell is
//! an `Arc` whose `OnceLock` owns the one-time build. The map lock is
//! never held across a build, so concurrent builders of *different*
//! operating points proceed in parallel, while racing builders of the
//! *same* point block on that entry's `OnceLock` alone and observe a
//! single shared distribution — request coalescing falls out of the Arc
//! identity: any number of concurrent queries for one operating point
//! attach to the one in-flight build. Values are pure functions of the key
//! (plus the calibrated parameters the key implies), so cache hits are
//! bit-identical to fresh builds and the cache cannot perturb any
//! deterministic-replay contract.
//!
//! # Bounding and eviction
//!
//! A long-running service (`ntv-serve`) faces millions of *distinct*
//! operating points — every client-chosen voltage is its own key — so the
//! cache accepts an optional resident bound ([`OpPointCache::with_bound`]
//! / [`OpPointCache::set_bound`]). Eviction is least-recently-used on a
//! logical access clock (a monotone `u64` tick per lookup, never wall
//! time): when an insert pushes the resident count over the bound, the
//! built entries with the smallest last-use ticks are dropped. Three
//! invariants keep eviction invisible to results:
//!
//! * **Values are pure.** An evicted-and-rebuilt entry is bit-identical to
//!   the original (pinned by test), so responses cannot depend on cache
//!   history.
//! * **In-flight builds are never evicted.** A cell whose `OnceLock` is
//!   still empty has waiters parked on it; eviction skips unbuilt cells,
//!   so coalesced queries always observe the build they attached to (the
//!   resident count may transiently exceed the bound by the number of
//!   in-flight builds, and each landing build re-runs the sweep so the
//!   excess drains immediately).
//! * **Out-standing `Arc`s survive.** Eviction drops the map's reference
//!   only; a caller still holding a distribution keeps it alive.
//!
//! Hit/miss/evict/coalesced counters (plain relaxed atomics — they order
//! nothing) are exposed through [`OpPointCache::stats`] for the serve
//! layer's `/stats` endpoint and the load bench.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use ntv_device::{DeviceParams, TechModel, TechNode};
use ntv_units::Volts;

use crate::engine::{PathDistribution, VariationMode};
use crate::exec::Executor;

type Key = (TechNode, VariationMode, usize, u64);

/// Sentinel for "no resident bound" in the packed capacity word.
const UNBOUNDED: usize = usize::MAX;

/// One cache cell: the one-time build plus its last-use tick.
#[derive(Debug, Default)]
struct CacheEntry {
    /// The one-time build; racers of the same key park here.
    cell: OnceLock<Arc<PathDistribution>>,
    /// Logical access clock value of the most recent lookup.
    ///
    /// All accesses are `Relaxed`: the tick is advisory LRU metadata, read
    /// only under the map's write lock to pick an eviction victim. A store
    /// that races the sweep can at worst evict a just-touched entry early,
    /// and rebuilds are bit-identical, so no ordering can change a result.
    last_use: AtomicU64,
}

/// A point-in-time snapshot of the cache's behaviour counters.
///
/// Counters are cumulative since the cache was created; `resident` is the
/// current number of fully built entries (in-flight builds excluded).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that found an already-built entry.
    pub hits: u64,
    /// Lookups that built the entry themselves.
    pub misses: u64,
    /// Built entries dropped by the LRU bound.
    pub evictions: u64,
    /// Lookups that attached to another caller's in-flight build instead
    /// of racing it (single-flight coalescing).
    pub coalesced: u64,
    /// Fully built entries currently resident.
    pub resident: usize,
}

/// Shared cache of built [`PathDistribution`]s, one entry per operating
/// point. See the module docs for keying, locking and eviction discipline.
#[derive(Debug, Default)]
pub struct OpPointCache {
    entries: RwLock<BTreeMap<Key, Arc<CacheEntry>>>,
    /// Resident bound; [`UNBOUNDED`] disables eviction. Default unbounded:
    /// the experiment suite touches a few hundred points at most.
    ///
    /// `Relaxed` everywhere: the bound is a standalone configuration cell
    /// that publishes nothing else, and [`Self::set_bound`] documents that
    /// a change takes effect at the *next* insert — a sweep reading the
    /// old value is within contract.
    bound: AtomicUsize,
    /// Logical access clock: one tick per lookup, never wall time, so the
    /// eviction order is a pure function of the access sequence.
    ///
    /// `Relaxed` is enough for monotonicity: `fetch_add` on a single cell
    /// has a total modification order, so ticks never repeat or go
    /// backwards; nothing is published through the clock.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    coalesced: AtomicU64,
}

impl OpPointCache {
    /// An empty, unbounded private cache (for engines with non-calibrated
    /// parameters).
    #[must_use]
    pub fn new() -> Self {
        let cache = Self::default();
        cache.bound.store(UNBOUNDED, Ordering::Relaxed);
        cache
    }

    /// An empty cache bounded to `bound` resident operating points,
    /// evicted least-recently-used.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero — a cache that can hold nothing cannot
    /// satisfy the exactly-once build contract its waiters rely on.
    #[must_use]
    pub fn with_bound(bound: usize) -> Self {
        let cache = Self::new();
        cache.set_bound(Some(bound));
        cache
    }

    /// Install or clear the resident bound. `None` disables eviction;
    /// lowering the bound takes effect at the next insert (the cache does
    /// not shrink eagerly).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is `Some(0)`.
    pub fn set_bound(&self, bound: Option<usize>) {
        assert!(
            bound != Some(0),
            "OpPointCache bound must be at least 1: a cache that can hold \
             nothing cannot satisfy the exactly-once build contract"
        );
        self.bound
            .store(bound.unwrap_or(UNBOUNDED), Ordering::Relaxed);
    }

    /// The current resident bound, if any.
    #[must_use]
    pub fn bound(&self) -> Option<usize> {
        match self.bound.load(Ordering::Relaxed) {
            UNBOUNDED => None,
            n => Some(n),
        }
    }

    /// A point-in-time snapshot of the hit/miss/evict/coalesced counters
    /// and the resident entry count.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            resident: self.len(),
        }
    }

    /// The process-wide cache shared by every engine running a node's
    /// calibrated parameter set.
    #[must_use]
    pub fn global() -> &'static Arc<OpPointCache> {
        static GLOBAL: OnceLock<Arc<OpPointCache>> = OnceLock::new(); // ntv:allow(effect-escape): the one sanctioned process-global; entries are a pure function of the key
        GLOBAL.get_or_init(|| Arc::new(OpPointCache::new()))
    }

    /// The cache an engine over `tech` should use: the global instance when
    /// `tech` carries its node's calibrated parameters, a fresh private one
    /// otherwise (custom parameters are not part of the cache key).
    #[must_use]
    pub fn shared_for(tech: &TechModel) -> Arc<OpPointCache> {
        if *tech.params() == DeviceParams::for_node(tech.node()) {
            Arc::clone(Self::global())
        } else {
            Arc::new(Self::new())
        }
    }

    /// Assert the global-instance parameter invariant (see module docs).
    fn assert_calibrated(&self, tech: &TechModel) {
        assert!(
            !std::ptr::eq(self, Arc::as_ptr(Self::global()))
                || *tech.params() == DeviceParams::for_node(tech.node()),
            "global OpPointCache used with custom device parameters for {:?}",
            tech.node()
        );
    }

    /// Next logical clock tick (monotone across threads).
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Drop least-recently-used *built* entries until the resident count
    /// is back under the bound. Caller holds the map write lock; no build
    /// ever runs in here.
    fn evict_over_bound(&self, entries: &mut BTreeMap<Key, Arc<CacheEntry>>) {
        let bound = self.bound.load(Ordering::Relaxed);
        if bound == UNBOUNDED {
            return;
        }
        // In-flight (unbuilt) cells are pinned: waiters are parked on them.
        while entries.len() > bound {
            let victim = entries
                .iter()
                .filter(|(_, e)| e.cell.get().is_some())
                .min_by_key(|(key, e)| (e.last_use.load(Ordering::Relaxed), **key))
                .map(|(&key, _)| key);
            let Some(key) = victim else {
                // Everything over the bound is in-flight; the transient
                // excess drains as those builds land and later inserts
                // re-run eviction.
                return;
            };
            entries.remove(&key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The distribution for `(tech.node(), mode, path_length, vdd)`,
    /// building it exactly once per *residency*: concurrent callers of a
    /// resident key share one build (racers park on the entry's
    /// `OnceLock`), and only eviction can make a later call rebuild — to a
    /// bit-identical value, since the distribution is a pure function of
    /// the key.
    ///
    /// # Panics
    ///
    /// Panics if called on the global instance with a `tech` whose
    /// parameters differ from the node's calibrated set — such engines
    /// must use a private cache (see [`Self::shared_for`]).
    #[must_use]
    pub fn get_or_build(
        &self,
        tech: &TechModel,
        mode: VariationMode,
        vdd: Volts,
        path_length: usize,
    ) -> Arc<PathDistribution> {
        self.assert_calibrated(tech);
        let key = (tech.node(), mode, path_length, vdd.get().to_bits());
        let tick = self.tick();
        let entry = self
            .entries
            .read() // ntv:allow(effect-escape): map lock guards a pure memo; never held across a build
            // ntv:allow(panic-path): poisoned only if a writer panicked; propagating is correct
            .expect("op-point cache lock")
            .get(&key)
            .cloned();
        let entry = match entry {
            Some(entry) => entry,
            None => {
                let mut entries = self
                    .entries
                    .write() // ntv:allow(effect-escape): map lock guards a pure memo; never held across a build
                    // ntv:allow(panic-path): poisoned only if a writer panicked; propagating is correct
                    .expect("op-point cache lock");
                let len_before = entries.len();
                let entry = Arc::clone(entries.entry(key).or_default());
                if entries.len() > len_before {
                    self.evict_over_bound(&mut entries);
                }
                entry
            }
        };
        entry.last_use.store(tick, Ordering::Relaxed);
        let already_built = entry.cell.get().is_some();
        // Build outside both map locks; same-key racers park on this
        // entry's OnceLock only.
        let mut built_here = false;
        // ntv:allow(effect-escape): same-key racers park on a pure function of the key
        let dist = Arc::clone(entry.cell.get_or_init(|| {
            built_here = true;
            // ntv:allow(uncached-build): the cache's own build site — every other caller shares it
            Arc::new(PathDistribution::build(tech, vdd, path_length))
        }));
        let counter = if built_here {
            &self.misses
        } else if already_built {
            &self.hits
        } else {
            // The cell existed (or we raced its insert) and someone else's
            // build completed while we were parked: a coalesced query.
            &self.coalesced
        };
        counter.fetch_add(1, Ordering::Relaxed);
        if built_here {
            // A landed build may have been what an earlier insert's
            // eviction pass had to skip as in-flight; sweep again so the
            // resident count settles back under the bound without waiting
            // for the next insert.
            self.sweep_if_over_bound();
        }
        dist
    }

    /// Re-run eviction if the map has grown past the bound (entered after
    /// a build lands, when previously in-flight cells become evictable).
    fn sweep_if_over_bound(&self) {
        let bound = self.bound.load(Ordering::Relaxed);
        if bound == UNBOUNDED {
            return;
        }
        let over = self
            .entries
            .read() // ntv:allow(effect-escape): cheap size probe before taking the write lock
            // ntv:allow(panic-path): poisoned only if a writer panicked; propagating is correct
            .expect("op-point cache lock")
            .len()
            > bound;
        if over {
            let mut entries = self
                .entries
                .write() // ntv:allow(effect-escape): map lock guards a pure memo; never held across a build
                // ntv:allow(panic-path): poisoned only if a writer panicked; propagating is correct
                .expect("op-point cache lock");
            self.evict_over_bound(&mut entries);
        }
    }

    /// Pre-build a sweep's operating points, and for grid-sampling modes
    /// also their survival grids, so the sweep itself never pays a build.
    /// Idempotent; already-cached points cost a lookup.
    ///
    /// Unbuilt points go through [`PathDistribution::build_grid`] — the
    /// voltage-grid batch kernel — in `exec`-parallel contiguous chunks
    /// rather than one scalar build per voltage. Each built value is then
    /// installed through its entry's `OnceLock`, so racing prefetches and
    /// scalar [`Self::get_or_build`] calls still observe exactly one
    /// shared `Arc` per operating point (a raced duplicate build is
    /// dropped, never handed out), and cached values stay bit-identical
    /// to fresh scalar builds because `build_grid` is (pinned by test).
    ///
    /// On a bounded cache a grid wider than the bound is allowed but
    /// self-defeating — the tail of the grid evicts its head; the serve
    /// layer sizes prefetches under the bound.
    pub fn prefetch(
        &self,
        tech: &TechModel,
        mode: VariationMode,
        path_length: usize,
        voltages: &[Volts],
        exec: Executor,
    ) {
        self.assert_calibrated(tech);
        // Resolve every entry cell up front (one write-lock pass), keeping
        // only the voltages whose distribution is not yet built.
        let jobs: Vec<(Volts, Arc<CacheEntry>)> = {
            let mut entries = self
                .entries
                .write() // ntv:allow(effect-escape): map lock guards a pure memo; never held across a build
                // ntv:allow(panic-path): poisoned only if a writer panicked; propagating is correct
                .expect("op-point cache lock");
            let len_before = entries.len();
            let jobs = voltages
                .iter()
                .map(|&vdd| {
                    let key = (tech.node(), mode, path_length, vdd.get().to_bits());
                    let entry = Arc::clone(entries.entry(key).or_default());
                    entry.last_use.store(self.tick(), Ordering::Relaxed);
                    (vdd, entry)
                })
                .filter(|(_, entry)| entry.cell.get().is_none())
                .collect();
            if entries.len() > len_before {
                self.evict_over_bound(&mut entries);
            }
            jobs
        };

        let vdds: Vec<Volts> = jobs.iter().map(|&(vdd, _)| vdd).collect();
        let built = exec.map_indexed_chunks(vdds.len() as u64, |start, len| {
            let (start, len) = (start as usize, len as usize);
            PathDistribution::build_grid(tech, &vdds[start..start + len], path_length)
        });
        let warm = mode != VariationMode::PaperNormal;
        for ((_, entry), dist) in jobs.into_iter().zip(built) {
            // A racer may have beaten us to this cell; its value wins and
            // our duplicate is dropped, preserving Arc identity.
            let dist = entry.cell.get_or_init(move || Arc::new(dist)); // ntv:allow(effect-escape): first racer's value wins; all candidates are bit-identical
            if warm {
                dist.warm_grid();
            }
        }
        // Points that were already built (and skipped above) may still
        // have cold grids if they were first built by a PaperNormal user.
        if warm {
            for &vdd in voltages {
                self.get_or_build(tech, mode, vdd, path_length).warm_grid();
            }
        }
    }

    /// Number of cached operating points (fully built entries only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .read() // ntv:allow(effect-escape): read-only size probe of the memo map
            // ntv:allow(panic-path): poisoned only if a writer panicked; propagating is correct
            .expect("op-point cache lock")
            .values()
            .filter(|entry| entry.cell.get().is_some())
            .count()
    }

    /// Whether the cache holds no fully built entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use crate::engine::DatapathEngine;

    #[test]
    fn same_operating_point_is_shared_across_engines() {
        let tech = TechModel::new(TechNode::Gp90);
        let a = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let b = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let da = a.path_distribution(Volts(0.7125));
        let db = b.path_distribution(Volts(0.7125));
        assert!(Arc::ptr_eq(&da, &db), "engines must share built entries");
    }

    #[test]
    fn distinct_shapes_get_distinct_entries() {
        let tech = TechModel::new(TechNode::Gp45);
        let short = DatapathEngine::new(&tech, DatapathConfig::new(128, 100, 10));
        let long = DatapathEngine::new(&tech, DatapathConfig::new(128, 100, 50));
        let ds = short.path_distribution(Volts(0.8));
        let dl = long.path_distribution(Volts(0.8));
        assert!(!Arc::ptr_eq(&ds, &dl));
        assert!(dl.mean_ps() > ds.mean_ps());
    }

    #[test]
    fn custom_parameters_use_a_private_cache() {
        let defaults = TechModel::new(TechNode::Gp90);
        let scaled = TechModel::from_params(
            DeviceParams::builder(TechNode::Gp90)
                .sigma_scale(2.0)
                .build()
                .expect("valid params"),
        );
        assert!(Arc::ptr_eq(
            &OpPointCache::shared_for(&defaults),
            OpPointCache::global()
        ));
        assert!(!Arc::ptr_eq(
            &OpPointCache::shared_for(&scaled),
            OpPointCache::global()
        ));
        // And the private cache serves values reflecting the custom σ.
        let tech = TechModel::new(TechNode::Gp90);
        let base = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let wide = DatapathEngine::new(&scaled, DatapathConfig::paper_default());
        let d0 = base.path_distribution(Volts(0.6));
        let d2 = wide.path_distribution(Volts(0.6));
        assert!(d2.std_ps() > 1.5 * d0.std_ps());
    }

    #[test]
    fn global_cache_rejects_custom_parameters() {
        let scaled = TechModel::from_params(
            DeviceParams::builder(TechNode::Gp45)
                .sigma_scale(0.5)
                .build()
                .expect("valid params"),
        );
        let result = std::panic::catch_unwind(|| {
            OpPointCache::global().get_or_build(&scaled, VariationMode::PaperNormal, Volts(0.6), 50)
        });
        assert!(result.is_err(), "mis-shared global cache must panic");
    }

    #[test]
    fn cached_value_is_bit_identical_to_fresh_build() {
        let tech = TechModel::new(TechNode::PtmHp22);
        let cache = OpPointCache::new();
        let cached = cache.get_or_build(&tech, VariationMode::SkewedIid, Volts(0.55), 50);
        let fresh = PathDistribution::build(&tech, Volts(0.55), 50);
        assert_eq!(cached.mean_ps().to_bits(), fresh.mean_ps().to_bits());
        assert_eq!(cached.std_ps().to_bits(), fresh.std_ps().to_bits());
        for g in [1e-6, 1e-3, 0.01, 0.5, 0.99] {
            assert_eq!(
                cached.quantile_by_survival(g).to_bits(),
                fresh.quantile_by_survival(g).to_bits()
            );
        }
    }

    #[test]
    fn prefetch_builds_every_operating_point_once() {
        let tech = TechModel::new(TechNode::PtmHp32);
        let cache = OpPointCache::new();
        assert!(cache.is_empty());
        let volts = [Volts(0.5), Volts(0.55), Volts(0.6), Volts(0.65)];
        cache.prefetch(
            &tech,
            VariationMode::SkewedIid,
            50,
            &volts,
            Executor::new(4),
        );
        assert_eq!(cache.len(), volts.len());
        // Prefetched entries are returned, not rebuilt: pointer-equal.
        let d = cache.get_or_build(&tech, VariationMode::SkewedIid, Volts(0.55), 50);
        let d2 = cache.get_or_build(&tech, VariationMode::SkewedIid, Volts(0.55), 50);
        assert!(Arc::ptr_eq(&d, &d2));
        cache.prefetch(
            &tech,
            VariationMode::SkewedIid,
            50,
            &volts,
            Executor::serial(),
        );
        assert_eq!(cache.len(), volts.len());
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let tech = TechModel::new(TechNode::Gp90);
        let cache = OpPointCache::with_bound(2);
        let volts = [Volts(0.52), Volts(0.54), Volts(0.56)];
        let mode = VariationMode::PaperNormal;
        let _a = cache.get_or_build(&tech, mode, volts[0], 50);
        let _b = cache.get_or_build(&tech, mode, volts[1], 50);
        assert_eq!(cache.len(), 2);
        // Touch A so B becomes the LRU victim when C is inserted.
        let _a2 = cache.get_or_build(&tech, mode, volts[0], 50);
        let _c = cache.get_or_build(&tech, mode, volts[2], 50);
        assert_eq!(cache.len(), 2);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
        // B was evicted: rebuilding it is a miss that in turn evicts A
        // (tick 3, now the least recently used); C (tick 4) survives.
        let before = cache.stats().misses;
        let _b2 = cache.get_or_build(&tech, mode, volts[1], 50);
        assert_eq!(cache.stats().misses, before + 1);
        let hits_before = cache.stats().hits;
        let _c2 = cache.get_or_build(&tech, mode, volts[2], 50);
        assert_eq!(cache.stats().hits, hits_before + 1);
    }

    #[test]
    fn evicted_and_rebuilt_entries_are_bit_identical() {
        let tech = TechModel::new(TechNode::Gp45);
        let cache = OpPointCache::with_bound(1);
        let mode = VariationMode::SkewedIid;
        let first = cache.get_or_build(&tech, mode, Volts(0.58), 50);
        // Force eviction by inserting a second point, then rebuild.
        let _other = cache.get_or_build(&tech, mode, Volts(0.62), 50);
        let rebuilt = cache.get_or_build(&tech, mode, Volts(0.58), 50);
        assert!(
            !Arc::ptr_eq(&first, &rebuilt),
            "entry must have been evicted and rebuilt"
        );
        assert_eq!(first.mean_ps().to_bits(), rebuilt.mean_ps().to_bits());
        assert_eq!(first.std_ps().to_bits(), rebuilt.std_ps().to_bits());
        for g in [1e-6, 1e-3, 0.01, 0.5, 0.99] {
            assert_eq!(
                first.quantile_by_survival(g).to_bits(),
                rebuilt.quantile_by_survival(g).to_bits()
            );
        }
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let tech = TechModel::new(TechNode::PtmHp32);
        let cache = OpPointCache::new();
        assert_eq!(cache.stats(), CacheStats::default());
        let _ = cache.get_or_build(&tech, VariationMode::PaperNormal, Volts(0.6), 50);
        let _ = cache.get_or_build(&tech, VariationMode::PaperNormal, Volts(0.6), 50);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.resident, 1);
    }

    #[test]
    fn bound_is_validated_and_adjustable() {
        let cache = OpPointCache::new();
        assert_eq!(cache.bound(), None);
        cache.set_bound(Some(8));
        assert_eq!(cache.bound(), Some(8));
        cache.set_bound(None);
        assert_eq!(cache.bound(), None);
        let result = std::panic::catch_unwind(|| OpPointCache::with_bound(0));
        assert!(result.is_err(), "zero bound must be rejected");
    }
}
