//! Process-wide operating-point cache for [`PathDistribution`] builds.
//!
//! Every sweep in the experiment suite probes the same handful of
//! `(node, mode, path length, vdd)` operating points — Table 1 and Table 2
//! alone revisit each voltage across four nodes, and the margining/DSE
//! bisections land on identical probe voltages across experiment modules.
//! Before this cache each [`crate::DatapathEngine`] owned a private map, so
//! fifteen experiment modules repeated identical 24×12 Gauss–Hermite
//! builds. [`OpPointCache`] shares them process-wide.
//!
//! # Keying and the custom-parameter escape hatch
//!
//! Entries are keyed by `(TechNode, VariationMode, path_length,
//! vdd.to_bits())`. The key deliberately does **not** encode the full
//! [`DeviceParams`] (hashing 14 floats per lookup would cost more than the
//! lookup); instead, [`OpPointCache::shared_for`] hands the global cache
//! only to engines whose parameters are exactly the node's calibrated set,
//! and gives every custom-parameter engine (σ-scaling ablations, what-if
//! studies) a private instance. [`OpPointCache::get_or_build`] re-asserts
//! this invariant on the global instance, so a mis-shared cache panics
//! rather than silently serving a wrong distribution.
//!
//! # Locking discipline
//!
//! Two-level: an `RwLock` guards only the key → cell map, and each cell is
//! an `Arc<OnceLock<…>>` that owns the one-time build. The map lock is
//! never held across a build, so concurrent builders of *different*
//! operating points proceed in parallel, while racing builders of the
//! *same* point block on that entry's `OnceLock` alone and observe a
//! single shared distribution. Values are pure functions of the key (plus
//! the calibrated parameters the key implies), so cache hits are
//! bit-identical to fresh builds and the cache cannot perturb any
//! deterministic-replay contract.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use ntv_device::{DeviceParams, TechModel, TechNode};
use ntv_units::Volts;

use crate::engine::{PathDistribution, VariationMode};
use crate::exec::Executor;

type Key = (TechNode, VariationMode, usize, u64);

/// Shared cache of built [`PathDistribution`]s, one entry per operating
/// point. See the module docs for keying and locking discipline.
#[derive(Debug, Default)]
pub struct OpPointCache {
    entries: RwLock<BTreeMap<Key, Arc<OnceLock<Arc<PathDistribution>>>>>,
}

impl OpPointCache {
    /// An empty private cache (for engines with non-calibrated parameters).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache shared by every engine running a node's
    /// calibrated parameter set.
    #[must_use]
    pub fn global() -> &'static Arc<OpPointCache> {
        static GLOBAL: OnceLock<Arc<OpPointCache>> = OnceLock::new(); // ntv:allow(effect-escape): the one sanctioned process-global; entries are a pure function of the key
        GLOBAL.get_or_init(|| Arc::new(OpPointCache::new()))
    }

    /// The cache an engine over `tech` should use: the global instance when
    /// `tech` carries its node's calibrated parameters, a fresh private one
    /// otherwise (custom parameters are not part of the cache key).
    #[must_use]
    pub fn shared_for(tech: &TechModel) -> Arc<OpPointCache> {
        if *tech.params() == DeviceParams::for_node(tech.node()) {
            Arc::clone(Self::global())
        } else {
            Arc::new(Self::new())
        }
    }

    /// The distribution for `(tech.node(), mode, path_length, vdd)`,
    /// building it exactly once process-wide (per cache instance).
    ///
    /// # Panics
    ///
    /// Panics if called on the global instance with a `tech` whose
    /// parameters differ from the node's calibrated set — such engines
    /// must use a private cache (see [`Self::shared_for`]).
    #[must_use]
    pub fn get_or_build(
        &self,
        tech: &TechModel,
        mode: VariationMode,
        vdd: Volts,
        path_length: usize,
    ) -> Arc<PathDistribution> {
        assert!(
            !std::ptr::eq(self, Arc::as_ptr(Self::global()))
                || *tech.params() == DeviceParams::for_node(tech.node()),
            "global OpPointCache used with custom device parameters for {:?}",
            tech.node()
        );
        let key = (tech.node(), mode, path_length, vdd.get().to_bits());
        let cell = self
            .entries
            .read() // ntv:allow(effect-escape): map lock guards a pure memo; never held across a build
            // ntv:allow(panic-path): poisoned only if a writer panicked; propagating is correct
            .expect("op-point cache lock")
            .get(&key)
            .cloned();
        let cell = match cell {
            Some(cell) => cell,
            None => Arc::clone(
                self.entries
                    .write() // ntv:allow(effect-escape): map lock guards a pure memo; never held across a build
                    // ntv:allow(panic-path): poisoned only if a writer panicked; propagating is correct
                    .expect("op-point cache lock")
                    .entry(key)
                    .or_default(),
            ),
        };
        // Build outside both map locks; same-key racers park on this
        // entry's OnceLock only.
        // ntv:allow(uncached-build, effect-escape): the cache's own build site — every other caller shares it; same-key racers park on a pure function of the key
        Arc::clone(cell.get_or_init(|| Arc::new(PathDistribution::build(tech, vdd, path_length))))
    }

    /// Pre-build a sweep's operating points, and for grid-sampling modes
    /// also their survival grids, so the sweep itself never pays a build.
    /// Idempotent; already-cached points cost a lookup.
    ///
    /// Unbuilt points go through [`PathDistribution::build_grid`] — the
    /// voltage-grid batch kernel — in `exec`-parallel contiguous chunks
    /// rather than one scalar build per voltage. Each built value is then
    /// installed through its entry's `OnceLock`, so racing prefetches and
    /// scalar [`Self::get_or_build`] calls still observe exactly one
    /// shared `Arc` per operating point (a raced duplicate build is
    /// dropped, never handed out), and cached values stay bit-identical
    /// to fresh scalar builds because `build_grid` is (pinned by test).
    pub fn prefetch(
        &self,
        tech: &TechModel,
        mode: VariationMode,
        path_length: usize,
        voltages: &[Volts],
        exec: Executor,
    ) {
        assert!(
            !std::ptr::eq(self, Arc::as_ptr(Self::global()))
                || *tech.params() == DeviceParams::for_node(tech.node()),
            "global OpPointCache used with custom device parameters for {:?}",
            tech.node()
        );
        // Resolve every entry cell up front (one write-lock pass), keeping
        // only the voltages whose distribution is not yet built.
        // ntv:allow(effect-escape): per-entry cells resolved under one write pass; builds run outside
        let jobs: Vec<(Volts, Arc<OnceLock<Arc<PathDistribution>>>)> = {
            let mut entries = self
                .entries
                .write() // ntv:allow(effect-escape): map lock guards a pure memo; never held across a build
                // ntv:allow(panic-path): poisoned only if a writer panicked; propagating is correct
                .expect("op-point cache lock");
            voltages
                .iter()
                .map(|&vdd| {
                    let key = (tech.node(), mode, path_length, vdd.get().to_bits());
                    (vdd, Arc::clone(entries.entry(key).or_default()))
                })
                .filter(|(_, cell)| cell.get().is_none())
                .collect()
        };

        let vdds: Vec<Volts> = jobs.iter().map(|&(vdd, _)| vdd).collect();
        let built = exec.map_indexed_chunks(vdds.len() as u64, |start, len| {
            let (start, len) = (start as usize, len as usize);
            PathDistribution::build_grid(tech, &vdds[start..start + len], path_length)
        });
        let warm = mode != VariationMode::PaperNormal;
        for ((_, cell), dist) in jobs.into_iter().zip(built) {
            // A racer may have beaten us to this cell; its value wins and
            // our duplicate is dropped, preserving Arc identity.
            let dist = cell.get_or_init(move || Arc::new(dist)); // ntv:allow(effect-escape): first racer's value wins; all candidates are bit-identical
            if warm {
                dist.warm_grid();
            }
        }
        // Points that were already built (and skipped above) may still
        // have cold grids if they were first built by a PaperNormal user.
        if warm {
            for &vdd in voltages {
                self.get_or_build(tech, mode, vdd, path_length).warm_grid();
            }
        }
    }

    /// Number of cached operating points (fully built entries only).
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries
            .read() // ntv:allow(effect-escape): read-only size probe of the memo map
            // ntv:allow(panic-path): poisoned only if a writer panicked; propagating is correct
            .expect("op-point cache lock")
            .values()
            .filter(|cell| cell.get().is_some())
            .count()
    }

    /// Whether the cache holds no fully built entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use crate::engine::DatapathEngine;

    #[test]
    fn same_operating_point_is_shared_across_engines() {
        let tech = TechModel::new(TechNode::Gp90);
        let a = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let b = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let da = a.path_distribution(Volts(0.7125));
        let db = b.path_distribution(Volts(0.7125));
        assert!(Arc::ptr_eq(&da, &db), "engines must share built entries");
    }

    #[test]
    fn distinct_shapes_get_distinct_entries() {
        let tech = TechModel::new(TechNode::Gp45);
        let short = DatapathEngine::new(&tech, DatapathConfig::new(128, 100, 10));
        let long = DatapathEngine::new(&tech, DatapathConfig::new(128, 100, 50));
        let ds = short.path_distribution(Volts(0.8));
        let dl = long.path_distribution(Volts(0.8));
        assert!(!Arc::ptr_eq(&ds, &dl));
        assert!(dl.mean_ps() > ds.mean_ps());
    }

    #[test]
    fn custom_parameters_use_a_private_cache() {
        let defaults = TechModel::new(TechNode::Gp90);
        let scaled = TechModel::from_params(
            DeviceParams::builder(TechNode::Gp90)
                .sigma_scale(2.0)
                .build()
                .expect("valid params"),
        );
        assert!(Arc::ptr_eq(
            &OpPointCache::shared_for(&defaults),
            OpPointCache::global()
        ));
        assert!(!Arc::ptr_eq(
            &OpPointCache::shared_for(&scaled),
            OpPointCache::global()
        ));
        // And the private cache serves values reflecting the custom σ.
        let tech = TechModel::new(TechNode::Gp90);
        let base = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let wide = DatapathEngine::new(&scaled, DatapathConfig::paper_default());
        let d0 = base.path_distribution(Volts(0.6));
        let d2 = wide.path_distribution(Volts(0.6));
        assert!(d2.std_ps() > 1.5 * d0.std_ps());
    }

    #[test]
    fn global_cache_rejects_custom_parameters() {
        let scaled = TechModel::from_params(
            DeviceParams::builder(TechNode::Gp45)
                .sigma_scale(0.5)
                .build()
                .expect("valid params"),
        );
        let result = std::panic::catch_unwind(|| {
            OpPointCache::global().get_or_build(&scaled, VariationMode::PaperNormal, Volts(0.6), 50)
        });
        assert!(result.is_err(), "mis-shared global cache must panic");
    }

    #[test]
    fn cached_value_is_bit_identical_to_fresh_build() {
        let tech = TechModel::new(TechNode::PtmHp22);
        let cache = OpPointCache::new();
        let cached = cache.get_or_build(&tech, VariationMode::SkewedIid, Volts(0.55), 50);
        let fresh = PathDistribution::build(&tech, Volts(0.55), 50);
        assert_eq!(cached.mean_ps().to_bits(), fresh.mean_ps().to_bits());
        assert_eq!(cached.std_ps().to_bits(), fresh.std_ps().to_bits());
        for g in [1e-6, 1e-3, 0.01, 0.5, 0.99] {
            assert_eq!(
                cached.quantile_by_survival(g).to_bits(),
                fresh.quantile_by_survival(g).to_bits()
            );
        }
    }

    #[test]
    fn prefetch_builds_every_operating_point_once() {
        let tech = TechModel::new(TechNode::PtmHp32);
        let cache = OpPointCache::new();
        assert!(cache.is_empty());
        let volts = [Volts(0.5), Volts(0.55), Volts(0.6), Volts(0.65)];
        cache.prefetch(
            &tech,
            VariationMode::SkewedIid,
            50,
            &volts,
            Executor::new(4),
        );
        assert_eq!(cache.len(), volts.len());
        // Prefetched entries are returned, not rebuilt: pointer-equal.
        let d = cache.get_or_build(&tech, VariationMode::SkewedIid, Volts(0.55), 50);
        let d2 = cache.get_or_build(&tech, VariationMode::SkewedIid, Volts(0.55), 50);
        assert!(Arc::ptr_eq(&d, &d2));
        cache.prefetch(
            &tech,
            VariationMode::SkewedIid,
            50,
            &volts,
            Executor::serial(),
        );
        assert_eq!(cache.len(), volts.len());
    }
}
