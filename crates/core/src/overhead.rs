//! Diet SODA area/power budget for overhead accounting.
//!
//! The paper reports overheads "based on Diet SODA \[4\]" without printing
//! the underlying budget, but Tables 1–2 let us back-derive it:
//!
//! * **FU array area fraction 0.578** — Table 1 caps area overhead at
//!   ">57.8 %" for >128 spares (i.e. doubling the FU array) and lists
//!   2.6 % / 0.9 % / 0.4 % for 6 / 2 / 1 spares, all equal to
//!   `0.578·α/128`.
//! * **Duplication power = 9.1 %·(α/128) + 5.3 %·((1+α/128)² − 1)** — a
//!   linear routing term plus a quadratic SIMD-shuffle-network (crossbar)
//!   term; fits Table 1's 4.6 % @28, 1.0 % @6, 0.3 % @2 and the 25 % cap
//!   at α = 128.
//! * **NTV-domain power fraction 0.43** — every Table 2 entry matches
//!   `0.43·((1+Vm/V)² − 1)` to ≤0.2 pp: only the near-threshold voltage
//!   domain (SIMD datapath; ~43 % of PE power) pays the margin, the
//!   full-voltage memory system does not.

use ntv_units::Volts;
use serde::{Deserialize, Serialize};

/// Area/power budget of the Diet SODA processing element.
///
/// # Example
///
/// ```
/// use ntv_units::Volts;
///
/// let budget = ntv_core::DietSodaBudget::paper();
/// // Table 1, 90nm @0.55V: 6 spares -> 2.6% area, 1.0% power.
/// assert!((budget.duplication_area_overhead(6) - 0.026).abs() < 0.002);
/// assert!((budget.duplication_power_overhead(6) - 0.010).abs() < 0.002);
/// // Table 2, 90nm @0.50V: 5.8mV margin -> 1.0% power.
/// assert!((budget.margin_power_overhead(Volts(0.5), Volts(5.8e-3)) - 0.010).abs() < 0.002);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DietSodaBudget {
    /// Fraction of PE area occupied by the SIMD FU array.
    pub fu_area_fraction: f64,
    /// Power fraction of lane-proportional routing (linear in spares).
    pub routing_power_fraction: f64,
    /// Power fraction of the SIMD shuffle network (quadratic in width).
    pub ssn_power_fraction: f64,
    /// Fraction of PE power drawn by the near-threshold voltage domain.
    pub ntv_power_fraction: f64,
    /// Baseline lane count the fractions are normalized to.
    pub baseline_lanes: usize,
}

impl DietSodaBudget {
    /// The budget back-derived from the paper's Tables 1–2.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            fu_area_fraction: 0.578,
            routing_power_fraction: 0.091,
            ssn_power_fraction: 0.053,
            ntv_power_fraction: 0.43,
            baseline_lanes: 128,
        }
    }

    /// Area overhead of α spare lanes (fraction of PE area).
    #[must_use]
    pub fn duplication_area_overhead(&self, spares: u32) -> f64 {
        self.fu_area_fraction * f64::from(spares) / self.baseline_lanes as f64
    }

    /// Power overhead of α spare lanes (fraction of PE power).
    ///
    /// Spare FUs are power-gated at run time (they were identified faulty at
    /// test time), so the cost is enlarged routing (linear) plus the wider
    /// XRAM shuffle network operating at nominal voltage (quadratic).
    #[must_use]
    pub fn duplication_power_overhead(&self, spares: u32) -> f64 {
        let r = f64::from(spares) / self.baseline_lanes as f64;
        self.routing_power_fraction * r + self.ssn_power_fraction * ((1.0 + r).powi(2) - 1.0)
    }

    /// Power overhead of raising the NTV-domain supply from `vdd` to
    /// `vdd + margin` (fraction of PE power).
    ///
    /// # Panics
    ///
    /// Panics if `vdd <= 0` or `margin < 0`.
    #[must_use]
    pub fn margin_power_overhead(&self, vdd: Volts, margin: Volts) -> f64 {
        assert!(vdd > Volts::ZERO, "supply voltage must be positive");
        assert!(margin >= Volts::ZERO, "voltage margin cannot be negative");
        let ratio = (vdd + margin) / vdd;
        self.ntv_power_fraction * (ratio * ratio - 1.0)
    }

    /// Combined overhead of α spares plus a voltage margin (Table 3 rows).
    #[must_use]
    pub fn combined_power_overhead(&self, spares: u32, vdd: Volts, margin: Volts) -> f64 {
        self.duplication_power_overhead(spares) + self.margin_power_overhead(vdd, margin)
    }
}

impl Default for DietSodaBudget {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_area_entries_reproduce() {
        let b = DietSodaBudget::paper();
        // (spares, paper area overhead)
        for (s, want) in [(28, 0.126), (6, 0.026), (2, 0.009), (1, 0.004)] {
            let got = b.duplication_area_overhead(s);
            assert!((got - want).abs() < 0.002, "{s} spares: {got} vs {want}");
        }
        // >128 spares -> >57.8%.
        assert!((b.duplication_area_overhead(128) - 0.578).abs() < 1e-12);
    }

    #[test]
    fn table1_power_entries_reproduce() {
        let b = DietSodaBudget::paper();
        for (s, want) in [(28u32, 0.046), (6, 0.010), (2, 0.003), (1, 0.002)] {
            let got = b.duplication_power_overhead(s);
            assert!((got - want).abs() < 0.002, "{s} spares: {got} vs {want}");
        }
        // 128 spares -> ~25%.
        assert!((b.duplication_power_overhead(128) - 0.25).abs() < 0.01);
    }

    #[test]
    fn table2_power_entries_reproduce() {
        let b = DietSodaBudget::paper();
        // (vdd, margin mV, paper power overhead) across all four nodes.
        let cases = [
            (0.50, 5.8, 0.010),
            (0.50, 19.6, 0.033),
            (0.50, 12.1, 0.020),
            (0.50, 16.4, 0.028),
            (0.60, 2.9, 0.004),
            (0.70, 12.8, 0.015),
            (0.65, 8.9, 0.011),
        ];
        for (vdd, mv, want) in cases {
            let got = b.margin_power_overhead(Volts(vdd), Volts(mv / 1000.0));
            assert!(
                (got - want).abs() < 0.003,
                "{vdd}V +{mv}mV: {got} vs {want}"
            );
        }
    }

    #[test]
    fn overheads_are_monotone() {
        let b = DietSodaBudget::paper();
        for s in 1..200 {
            assert!(b.duplication_power_overhead(s) > b.duplication_power_overhead(s - 1));
            assert!(b.duplication_area_overhead(s) > b.duplication_area_overhead(s - 1));
        }
        assert!(
            b.margin_power_overhead(Volts(0.6), Volts(0.02))
                > b.margin_power_overhead(Volts(0.6), Volts(0.01))
        );
    }

    #[test]
    fn zero_mitigation_costs_nothing() {
        let b = DietSodaBudget::paper();
        assert_eq!(b.duplication_area_overhead(0), 0.0);
        assert_eq!(b.duplication_power_overhead(0), 0.0);
        assert_eq!(b.margin_power_overhead(Volts(0.6), Volts::ZERO), 0.0);
        assert_eq!(b.combined_power_overhead(0, Volts(0.6), Volts::ZERO), 0.0);
    }

    #[test]
    fn combined_is_sum() {
        let b = DietSodaBudget::paper();
        let got = b.combined_power_overhead(2, Volts(0.6), Volts(0.010));
        let want =
            b.duplication_power_overhead(2) + b.margin_power_overhead(Volts(0.6), Volts(0.010));
        assert!((got - want).abs() < 1e-12);
    }
}
