//! Performance drop at near-threshold voltages (Fig 4).
//!
//! The paper's definition (§3.2): with `fo4chipd` the 99 % point of the
//! FO4-normalized chip-delay distribution,
//!
//! ```text
//! drop(V) = (fo4chipd@V − fo4chipd@FV) / fo4chipd@FV
//! ```
//!
//! where FV is the node's nominal voltage. Because both operands are in FO4
//! units, the raw slowdown of low-voltage operation divides out and only
//! the *variation-induced* degradation remains.

use ntv_mc::CounterRng;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::engine::DatapathEngine;
use crate::exec::Executor;
use crate::quantile::ChipQuantileSolver;

/// One point of the Fig 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfDropPoint {
    /// Supply voltage.
    pub vdd: Volts,
    /// fo4chipd: 99 % chip delay in FO4 units at `vdd`.
    pub q99_fo4: f64,
    /// Variation-induced performance drop vs nominal (fraction).
    pub drop: f64,
}

/// The nominal-voltage baseline fo4chipd for `engine`.
#[must_use]
pub fn baseline_q99_fo4(
    engine: &DatapathEngine<'_>,
    samples: usize,
    seed: u64,
    exec: Executor,
) -> f64 {
    let stream = CounterRng::new(seed, "perf-baseline");
    engine
        .chip_delay_distribution_par(engine.tech().nominal_vdd(), samples, &stream, exec)
        .q99_fo4()
}

/// Analytic nominal-voltage baseline fo4chipd: the exact q99 from
/// [`ChipQuantileSolver`], noise-free and sample-count-independent. The
/// Monte-Carlo [`baseline_q99_fo4`] converges to this value.
#[must_use]
pub fn baseline_q99_fo4_analytic(engine: &DatapathEngine<'_>) -> f64 {
    ChipQuantileSolver::new(engine).q99_fo4(engine.tech().nominal_vdd())
}

/// Performance drop at a single voltage.
///
/// Common random numbers by construction: chip `i` of the NTV run is
/// addressed as `(seed, "perf-ntv", i)` regardless of voltage or thread
/// count, so repeated calls are bit-reproducible.
#[must_use]
pub fn performance_drop(
    engine: &DatapathEngine<'_>,
    vdd: Volts,
    samples: usize,
    seed: u64,
    exec: Executor,
) -> PerfDropPoint {
    let base = baseline_q99_fo4(engine, samples, seed, exec);
    let stream = CounterRng::new(seed, "perf-ntv");
    let q99 = engine
        .chip_delay_distribution_par(vdd, samples, &stream, exec)
        .q99_fo4();
    PerfDropPoint {
        vdd,
        q99_fo4: q99,
        drop: q99 / base - 1.0,
    }
}

/// Performance-drop sweep over several voltages (one Fig 4 curve).
///
/// The baseline is computed once; every voltage reuses the same
/// index-addressed chip draws (common random numbers), making the curve
/// smooth in `vdd`.
#[must_use]
pub fn performance_drop_sweep(
    engine: &DatapathEngine<'_>,
    voltages: &[Volts],
    samples: usize,
    seed: u64,
    exec: Executor,
) -> Vec<PerfDropPoint> {
    let base = baseline_q99_fo4(engine, samples, seed, exec);
    let stream = CounterRng::new(seed, "perf-ntv");
    voltages
        .iter()
        .map(|&vdd| {
            let q99 = engine
                .chip_delay_distribution_par(vdd, samples, &stream, exec)
                .q99_fo4();
            PerfDropPoint {
                vdd,
                q99_fo4: q99,
                drop: q99 / base - 1.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use ntv_device::{TechModel, TechNode};

    const SAMPLES: usize = 3000;

    #[test]
    fn drop_matches_fig4_90nm() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let exec = Executor::default();
        // Paper: 5% @0.5V, 2.5% @0.55V, 1.5% @0.6V.
        let d05 = performance_drop(&engine, Volts(0.50), SAMPLES, 1, exec).drop;
        let d055 = performance_drop(&engine, Volts(0.55), SAMPLES, 1, exec).drop;
        let d06 = performance_drop(&engine, Volts(0.60), SAMPLES, 1, exec).drop;
        assert!((0.03..0.08).contains(&d05), "0.50V: {d05}");
        assert!((0.015..0.045).contains(&d055), "0.55V: {d055}");
        assert!((0.008..0.03).contains(&d06), "0.60V: {d06}");
        assert!(d05 > d055 && d055 > d06);
    }

    #[test]
    fn drop_matches_fig4_22nm() {
        let tech = TechModel::new(TechNode::PtmHp22);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let d05 = performance_drop(&engine, Volts(0.50), SAMPLES, 2, Executor::default()).drop;
        // Paper: climbs to ~18-20% at 0.5 V.
        assert!((0.12..0.28).contains(&d05), "22nm 0.5V: {d05}");
    }

    #[test]
    fn drop_at_nominal_is_zero() {
        let tech = TechModel::new(TechNode::Gp45);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let d = performance_drop(&engine, Volts(1.0), SAMPLES, 3, Executor::default()).drop;
        // Same voltage, different random streams: only MC noise remains.
        assert!(d.abs() < 0.01, "drop at nominal: {d}");
    }

    #[test]
    fn sweep_is_monotone_decreasing_in_v() {
        let tech = TechModel::new(TechNode::PtmHp32);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let pts = performance_drop_sweep(
            &engine,
            &[Volts(0.5), Volts(0.55), Volts(0.6), Volts(0.65), Volts(0.7)],
            SAMPLES,
            4,
            Executor::default(),
        );
        for w in pts.windows(2) {
            assert!(w[0].drop > w[1].drop, "{:?}", pts);
        }
    }

    #[test]
    fn scaled_nodes_drop_more() {
        let samples = 2000;
        let drops: Vec<f64> = TechNode::ALL
            .iter()
            .map(|&n| {
                let tech = TechModel::new(n);
                let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
                performance_drop(&engine, Volts(0.5), samples, 5, Executor::default()).drop
            })
            .collect();
        // 90nm smallest, 22nm largest (Fig 4).
        assert!(
            drops[0] < drops[1] && drops[0] < drops[2] && drops[3] > drops[2],
            "{drops:?}"
        );
    }

    #[test]
    fn analytic_baseline_agrees_with_mc() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let mc = baseline_q99_fo4(&engine, 20_000, 7, Executor::default());
        let an = baseline_q99_fo4_analytic(&engine);
        assert!((mc / an - 1.0).abs() < 0.01, "mc {mc} analytic {an}");
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let serial = performance_drop(&engine, Volts(0.55), 1000, 6, Executor::serial());
        let par = performance_drop(&engine, Volts(0.55), 1000, 6, Executor::new(8));
        assert_eq!(serial.q99_fo4.to_bits(), par.q99_fo4.to_bits());
        assert_eq!(serial.drop.to_bits(), par.drop.to_bits());
    }
}
