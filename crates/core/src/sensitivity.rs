//! Variance decomposition: which variation source drives the chip delay?
//!
//! The device model carries four σ components — random ΔVth (RDF/LER),
//! random current factor, systematic ΔVth and systematic current factor.
//! This module answers "what fraction of the q99 excess comes from each?"
//! by **source freezing**: re-evaluating the chip-delay distribution with
//! one component zeroed at a time and attributing the q99 shift. The
//! paper's mitigation story depends on this decomposition — duplication
//! only trims what varies *between* lanes, margining compresses
//! everything.

use ntv_device::{DeviceParams, TechModel};
use ntv_mc::CounterRng;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::config::DatapathConfig;
use crate::engine::{DatapathEngine, VariationMode};
use crate::exec::Executor;

/// One variation source of the device model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VariationSource {
    /// Per-device random threshold variation (RDF + LER).
    RandomVth,
    /// Per-device random current-factor variation.
    RandomCurrentFactor,
    /// Per-chip systematic threshold variation.
    SystematicVth,
    /// Per-chip systematic current-factor variation.
    SystematicCurrentFactor,
}

impl VariationSource {
    /// All four sources.
    pub const ALL: [VariationSource; 4] = [
        VariationSource::RandomVth,
        VariationSource::RandomCurrentFactor,
        VariationSource::SystematicVth,
        VariationSource::SystematicCurrentFactor,
    ];

    /// Parameters with this source zeroed.
    #[must_use]
    pub fn frozen(self, params: &DeviceParams) -> DeviceParams {
        let mut p = *params;
        match self {
            VariationSource::RandomVth => p.sigma_vth_random = Volts::ZERO,
            VariationSource::RandomCurrentFactor => p.sigma_k_random = 0.0,
            VariationSource::SystematicVth => p.sigma_vth_systematic = Volts::ZERO,
            VariationSource::SystematicCurrentFactor => p.sigma_k_systematic = 0.0,
        }
        p
    }
}

impl std::fmt::Display for VariationSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            VariationSource::RandomVth => "random Vth (RDF/LER)",
            VariationSource::RandomCurrentFactor => "random current factor",
            VariationSource::SystematicVth => "systematic Vth",
            VariationSource::SystematicCurrentFactor => "systematic current factor",
        };
        f.write_str(s)
    }
}

/// One source's attribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceContribution {
    /// The frozen source.
    pub source: VariationSource,
    /// q99 excess (FO4 over the 50-FO4 ideal) with the source frozen.
    pub frozen_excess_fo4: f64,
    /// Share of the full-model q99 excess removed by freezing this source.
    pub share: f64,
}

/// Full decomposition at one operating point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensitivityReport {
    /// Operating voltage.
    pub vdd: Volts,
    /// q99 excess of the full model (FO4 above the ideal path).
    pub full_excess_fo4: f64,
    /// Per-source contributions, largest share first.
    pub contributions: Vec<SourceContribution>,
}

/// Decompose the q99 chip-delay excess at `vdd` by source freezing.
///
/// Shares are normalized freeze-deltas; with interacting nonlinear sources
/// they need not sum to exactly one, which is itself informative and
/// reported as-is.
#[must_use]
pub fn decompose(
    tech: &TechModel,
    config: DatapathConfig,
    vdd: Volts,
    samples: usize,
    seed: u64,
    exec: Executor,
) -> SensitivityReport {
    let ideal = config.path_length as f64;
    let q99_excess = |params: DeviceParams| -> f64 {
        let frozen_tech = TechModel::from_params(params);
        let engine = DatapathEngine::with_mode(&frozen_tech, config, VariationMode::PaperNormal);
        let stream = CounterRng::new(seed, "sensitivity");
        engine
            .chip_delay_distribution_par(vdd, samples, &stream, exec)
            .q99_fo4()
            - ideal
    };

    let full = q99_excess(*tech.params());
    let mut contributions: Vec<SourceContribution> = VariationSource::ALL
        .iter()
        .map(|&source| {
            let frozen = q99_excess(source.frozen(tech.params()));
            SourceContribution {
                source,
                frozen_excess_fo4: frozen,
                share: if full > 0.0 {
                    (full - frozen) / full
                } else {
                    0.0
                },
            }
        })
        .collect();
    contributions.sort_by(|a, b| b.share.total_cmp(&a.share));

    SensitivityReport {
        vdd,
        full_excess_fo4: full,
        contributions,
    }
}

impl std::fmt::Display for SensitivityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "q99 excess at {:.2}: {:.2} FO4; contribution by source:",
            self.vdd, self.full_excess_fo4
        )?;
        for c in &self.contributions {
            writeln!(
                f,
                "  {:<26} {:>5.1}%  (frozen excess {:.2} FO4)",
                c.source.to_string(),
                c.share * 100.0,
                c.frozen_excess_fo4
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntv_device::TechNode;
    use ntv_mc::StreamRng;

    #[test]
    fn freezing_everything_removes_the_excess() {
        let tech = TechModel::new(TechNode::Gp90);
        let mut p = *tech.params();
        p.sigma_vth_random = Volts::ZERO;
        p.sigma_k_random = 0.0;
        p.sigma_vth_systematic = Volts::ZERO;
        p.sigma_k_systematic = 0.0;
        let frozen = TechModel::from_params(p);
        let engine = DatapathEngine::new(&frozen, DatapathConfig::paper_default());
        let mut rng = StreamRng::from_seed(1);
        let q = engine
            .chip_delay_distribution(Volts(0.55), 500, &mut rng)
            .q99_fo4();
        // The mixture variance collapses to numerical dust when every
        // sigma is zero; allow for that cancellation noise.
        assert!((q - 50.0).abs() < 1e-3, "deterministic chip: {q}");
    }

    #[test]
    fn vth_sources_dominate_near_threshold() {
        // At 0.5 V the Vth sensitivity explodes, so the threshold-voltage
        // components (systematic + RDF/LER) carry the bulk of the
        // chip-delay excess, far ahead of the current-factor components.
        let tech = TechModel::new(TechNode::PtmHp22);
        let r = decompose(
            &tech,
            DatapathConfig::paper_default(),
            Volts(0.5),
            2_000,
            2,
            Executor::default(),
        );
        assert!(r.full_excess_fo4 > 2.0);
        let share = |src: VariationSource| {
            r.contributions
                .iter()
                .find(|c| c.source == src)
                .expect("present")
                .share
        };
        let vth = share(VariationSource::SystematicVth) + share(VariationSource::RandomVth);
        let k = share(VariationSource::SystematicCurrentFactor)
            + share(VariationSource::RandomCurrentFactor);
        assert!(vth > 2.0 * k.max(0.01), "vth {vth} vs k {k}\n{r}");
        assert!(matches!(
            r.contributions[0].source,
            VariationSource::SystematicVth | VariationSource::RandomVth
        ));
    }

    #[test]
    fn shares_are_ordered_and_plausible() {
        let tech = TechModel::new(TechNode::Gp90);
        let r = decompose(
            &tech,
            DatapathConfig::paper_default(),
            Volts(0.55),
            2_000,
            3,
            Executor::default(),
        );
        for w in r.contributions.windows(2) {
            assert!(w[0].share >= w[1].share);
        }
        for c in &r.contributions {
            assert!(c.share > -0.1 && c.share < 1.1, "{c:?}");
            assert!(c.frozen_excess_fo4 >= 0.0);
            assert!(c.frozen_excess_fo4 <= r.full_excess_fo4 + 0.05);
        }
    }

    #[test]
    fn display_lists_all_sources() {
        let tech = TechModel::new(TechNode::Gp45);
        let text = decompose(
            &tech,
            DatapathConfig::paper_default(),
            Volts(0.6),
            800,
            4,
            Executor::default(),
        )
        .to_string();
        for s in VariationSource::ALL {
            assert!(text.contains(&s.to_string()), "{text}");
        }
    }
}
