#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Tests assert exact golden values; strict float equality is the point there.
#![cfg_attr(test, allow(clippy::float_cmp))]

//! Architecture-level variation analysis for near-threshold wide SIMD
//! datapaths — the primary contribution of Seo et al. (DAC 2012).
//!
//! The model (paper §3.2): a SIMD datapath has `N` lanes; each lane contains
//! ~100 critical paths, each emulated by a chain of 50 FO4 inverters; the
//! lane delay is the slowest of its paths and the chip delay the slowest of
//! its lanes. Operated near threshold, the per-path spread widens and the
//! max-of-12 800 statistics push the 99 % chip-delay point ("fo4chipd")
//! right — that shift *is* the performance drop of Fig 4.
//!
//! Three simple mitigation techniques are then evaluated:
//!
//! * [`duplication`] — add α spare lanes, disable the α slowest at test
//!   time (Table 1, Fig 5),
//! * [`margining`] — raise the supply a few millivolts (Table 2, Fig 6),
//! * [`frequency`] — slow the clock to cover the variation (Table 4),
//!
//! plus their combination ([`dse`], Table 3), the power comparison
//! ([`compare`], Fig 7/8) and spare-placement analysis ([`placement`],
//! Appendix D). Overheads use the Diet SODA area/power budget
//! ([`overhead`]). Two extensions round out the menu: adaptive body bias
//! ([`body_bias`], the EVAL-style knob from the paper's related work) and
//! full timing-yield curves ([`yield_model`]).
//!
//! # Example
//!
//! ```
//! use ntv_core::{DatapathConfig, DatapathEngine};
//! use ntv_device::{TechModel, TechNode};
//! use ntv_mc::StreamRng;
//! use ntv_units::Volts;
//!
//! let tech = TechModel::new(TechNode::Gp90);
//! let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
//! let mut rng = StreamRng::from_seed(7);
//!
//! // 99% chip-delay point at nominal and at 0.5 V, in FO4 units.
//! let base = engine.chip_delay_distribution(Volts(1.0), 2_000, &mut rng).q99_fo4();
//! let ntv = engine.chip_delay_distribution(Volts(0.5), 2_000, &mut rng).q99_fo4();
//! let drop = ntv / base - 1.0;
//! // Fig 4: ~5% performance drop at 0.5 V in 90 nm.
//! assert!(drop > 0.02 && drop < 0.09);
//! ```

pub mod body_bias;
pub mod compare;
pub mod config;
pub mod dse;
pub mod duplication;
pub mod engine;
pub mod exec;
pub mod frequency;
pub mod margining;
pub mod op_cache;
pub mod overhead;
pub mod perf;
pub mod placement;
pub mod quantile;
pub mod sensitivity;
pub mod yield_model;

pub use config::DatapathConfig;
pub use engine::{ChipDelayDistribution, DatapathEngine};
pub use exec::Executor;
pub use op_cache::OpPointCache;
pub use overhead::DietSodaBudget;
pub use quantile::{ChipQuantileSolver, Evaluation};
