//! Deterministic parallel execution over sample-index ranges.
//!
//! Because every Monte-Carlo draw in the workspace is index-addressed
//! (sample *i* is a pure function of `(seed, stream label, i)` via
//! [`ntv_mc::CounterRng`]), parallelism cannot change results: the
//! [`Executor`] splits `0..n` into contiguous chunks, evaluates them on
//! scoped `std::thread`s, and concatenates the chunk outputs in index
//! order. The merged vector is bit-identical for **any** thread count —
//! determinism and parallelism are the same property.

use std::num::NonZeroUsize;

/// A deterministic fork-join executor over sample-index ranges.
///
/// Cheap to copy and to pass by value; holds no threads of its own (workers
/// are scoped to each [`Executor::map_indexed`] call).
///
/// # Example
///
/// ```
/// use ntv_core::Executor;
/// let serial = Executor::serial();
/// let parallel = Executor::new(8);
/// let f = |i: u64| (i as f64).sqrt();
/// assert_eq!(serial.map_indexed(1000, f), parallel.map_indexed(1000, f));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    /// One worker per available hardware thread.
    fn default() -> Self {
        Self::new(0)
    }
}

impl Executor {
    /// Executor with `threads` workers; `0` means "use all available
    /// hardware parallelism".
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism() // ntv:allow(ambient-clock, effect-escape): worker count only sizes chunks; results are identical for any count
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// Single-threaded executor (the reference ordering).
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Number of worker threads this executor uses.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evaluate `f(i)` for every `i in 0..n` and return the results in
    /// index order.
    ///
    /// `f` must be a pure function of its index for the output to be
    /// thread-count invariant — which is exactly the contract of the
    /// counter-based samplers. Chunks are contiguous index ranges, one per
    /// worker, merged in order, so the result is bit-identical to the
    /// serial loop regardless of `threads`.
    pub fn map_indexed<T, F>(&self, n: u64, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        // Not worth forking for tiny batches (thread spawn ≫ work).
        const MIN_CHUNK: u64 = 64;
        let workers = self
            .threads
            .min(usize::try_from(n.div_ceil(MIN_CHUNK)).unwrap_or(usize::MAX))
            .max(1);
        if workers == 1 {
            return (0..n).map(f).collect();
        }

        let workers_u64 = workers as u64;
        let base = n / workers_u64;
        let extra = n % workers_u64;
        // Worker w covers [start_w, start_w + len_w): the first `extra`
        // workers take one additional index.
        let mut starts = Vec::with_capacity(workers);
        let mut cursor = 0u64;
        for w in 0..workers_u64 {
            let len = base + u64::from(w < extra);
            starts.push((cursor, len));
            cursor += len;
        }

        let f = &f;
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        // ntv:allow(effect-escape): sanctioned fork-join root; pure fn per index, order-preserving merge
        std::thread::scope(|scope| {
            let handles: Vec<_> = starts
                .iter()
                .map(|&(start, len)| scope.spawn(move || (start..start + len).map(f).collect())) // ntv:allow(effect-escape): scoped worker over a disjoint index chunk
                .collect();
            for handle in handles {
                // ntv:allow(panic-path): re-raises a worker's own panic; join fails no other way
                chunks.push(handle.join().expect("executor worker panicked"));
            }
        });
        chunks.into_iter().flatten().collect()
    }

    /// Chunk-granular counterpart of [`Self::map_indexed`]: `f(start, len)`
    /// produces the outputs for the contiguous index range
    /// `start..start + len`, and the chunk vectors are concatenated in
    /// index order.
    ///
    /// Chunk boundaries are identical to `map_indexed`'s for every
    /// `(n, threads)` pair, so a batch kernel that is bit-identical to its
    /// per-index scalar form stays bit-identical here for any thread
    /// count. This is the entry point the SoA sampling kernels use: one
    /// `f` call per worker amortises per-sample overhead into fixed-stride
    /// array passes.
    ///
    /// # Panics
    ///
    /// Panics if a chunk returns a vector whose length is not `len`.
    pub fn map_indexed_chunks<T, F>(&self, n: u64, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64, u64) -> Vec<T> + Sync,
    {
        const MIN_CHUNK: u64 = 64;
        let workers = self
            .threads
            .min(usize::try_from(n.div_ceil(MIN_CHUNK)).unwrap_or(usize::MAX))
            .max(1);
        let check = |start: u64, len: u64, out: Vec<T>| {
            assert!(
                out.len() as u64 == len,
                "chunk [{start}, {}) returned {} outputs",
                start + len,
                out.len()
            );
            out
        };
        if workers == 1 {
            return check(0, n, f(0, n));
        }

        let workers_u64 = workers as u64;
        let base = n / workers_u64;
        let extra = n % workers_u64;
        let mut starts = Vec::with_capacity(workers);
        let mut cursor = 0u64;
        for w in 0..workers_u64 {
            let len = base + u64::from(w < extra);
            starts.push((cursor, len));
            cursor += len;
        }

        let f = &f;
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        // ntv:allow(effect-escape): sanctioned fork-join root; pure fn per chunk, order-preserving merge
        std::thread::scope(|scope| {
            let handles: Vec<_> = starts
                .iter()
                .map(|&(start, len)| scope.spawn(move || f(start, len))) // ntv:allow(effect-escape): scoped worker over a disjoint index chunk
                .collect();
            for (&(start, len), handle) in starts.iter().zip(handles) {
                // ntv:allow(panic-path): re-raises a worker's own panic; join fails no other way
                let out = handle.join().expect("executor worker panicked");
                chunks.push(check(start, len, out));
            }
        });
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(Executor::new(0).threads() >= 1);
        assert_eq!(Executor::new(3).threads(), 3);
        assert_eq!(Executor::serial().threads(), 1);
    }

    #[test]
    fn map_preserves_index_order() {
        let exec = Executor::new(4);
        let out = exec.map_indexed(1000, |i| i * 2);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn all_thread_counts_agree_bitwise() {
        let f = |i: u64| ((i as f64) * 0.1).sin();
        let reference = Executor::serial().map_indexed(5000, f);
        for threads in [2, 3, 8, 17] {
            let out = Executor::new(threads).map_indexed(5000, f);
            assert!(
                reference
                    .iter()
                    .zip(&out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn chunked_map_matches_per_index_map_for_all_thread_counts() {
        let f = |i: u64| ((i as f64) * 0.3).cos();
        let reference = Executor::serial().map_indexed(5000, f);
        for threads in [1, 2, 3, 8, 17] {
            let out = Executor::new(threads)
                .map_indexed_chunks(5000, |start, len| (start..start + len).map(f).collect());
            assert!(
                reference
                    .iter()
                    .zip(&out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads}"
            );
        }
        assert!(Executor::new(8)
            .map_indexed_chunks(0, |_, len| vec![0u64; len as usize])
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "returned 3 outputs")]
    fn chunked_map_rejects_wrong_chunk_length() {
        let _ = Executor::serial().map_indexed_chunks(5, |_, _| vec![0u64; 3]);
    }

    #[test]
    fn empty_and_tiny_ranges() {
        let exec = Executor::new(8);
        assert!(exec.map_indexed(0, |i| i).is_empty());
        assert_eq!(exec.map_indexed(1, |i| i), vec![0]);
        assert_eq!(exec.map_indexed(3, |i| i), vec![0, 1, 2]);
    }
}
