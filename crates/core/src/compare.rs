//! Technique comparison: duplication vs voltage margining (Fig 7).
//!
//! Both techniques reach the same target (nominal-level variation at the
//! NTV operating point); the question is which costs less power. The paper
//! finds duplication wins in the high-NTV band (0.60–0.70 V) where very few
//! spares suffice, while margining wins as technology scales and voltage
//! drops — a small ΔV buys an exponential delay reduction, whereas the
//! spare count explodes.

use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::duplication::DuplicationStudy;
use crate::engine::DatapathEngine;
use crate::exec::Executor;
use crate::margining::MarginStudy;
use crate::quantile::Evaluation;

/// Which mitigation technique a comparison favours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// Structural duplication (spare lanes).
    Duplication,
    /// Supply-voltage margining.
    VoltageMargining,
}

impl std::fmt::Display for Technique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Technique::Duplication => f.write_str("structural duplication"),
            Technique::VoltageMargining => f.write_str("voltage margining"),
        }
    }
}

/// One voltage point of a Fig 7 panel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparisonPoint {
    /// Supply voltage.
    pub vdd: Volts,
    /// Spares required, if within budget (`None` ⇒ Table 1's ">128").
    pub spares: Option<u32>,
    /// Duplication power overhead, if solvable.
    pub duplication_power: Option<f64>,
    /// Required voltage margin.
    pub margin: Volts,
    /// Margining power overhead.
    pub margining_power: f64,
}

impl ComparisonPoint {
    /// The cheaper technique at this point (margining wins ties and
    /// unsolvable duplication).
    #[must_use]
    pub fn preferred(&self) -> Technique {
        match self.duplication_power {
            Some(dup) if dup < self.margining_power => Technique::Duplication,
            _ => Technique::VoltageMargining,
        }
    }
}

/// Compare both techniques at one operating point (Monte-Carlo
/// evaluation, byte-identical to the historical outputs).
#[must_use]
pub fn compare_at(
    engine: &DatapathEngine<'_>,
    vdd: Volts,
    max_spares: u32,
    samples: usize,
    seed: u64,
    exec: Executor,
) -> ComparisonPoint {
    compare_at_with(
        engine,
        vdd,
        max_spares,
        samples,
        seed,
        exec,
        Evaluation::MonteCarlo,
    )
}

/// Compare both techniques at one operating point with an explicit
/// [`Evaluation`]; with [`Evaluation::Analytic`] the solves are exact and
/// `samples`/`seed` are ignored.
#[must_use]
pub fn compare_at_with(
    engine: &DatapathEngine<'_>,
    vdd: Volts,
    max_spares: u32,
    samples: usize,
    seed: u64,
    exec: Executor,
    evaluation: Evaluation,
) -> ComparisonPoint {
    let dup = DuplicationStudy::new(engine)
        .with_executor(exec)
        .with_evaluation(evaluation)
        .solve(vdd, max_spares, samples, seed);
    let margin = MarginStudy::new(engine)
        .with_executor(exec)
        .with_evaluation(evaluation)
        .solve(vdd, samples, seed);
    ComparisonPoint {
        vdd,
        spares: dup.as_ref().ok().map(|s| s.spares),
        duplication_power: dup.ok().map(|s| s.power_overhead),
        margin: margin.margin,
        margining_power: margin.power_overhead,
    }
}

/// One Fig 7 panel: comparison across a voltage sweep (Monte-Carlo
/// evaluation).
#[must_use]
pub fn compare_sweep(
    engine: &DatapathEngine<'_>,
    voltages: &[Volts],
    max_spares: u32,
    samples: usize,
    seed: u64,
    exec: Executor,
) -> Vec<ComparisonPoint> {
    voltages
        .iter()
        .map(|&v| compare_at(engine, v, max_spares, samples, seed, exec))
        .collect()
}

/// One Fig 7 panel with an explicit [`Evaluation`]. The sweep's operating
/// points are prefetched in parallel first, so even the analytic path
/// never pays a Gauss–Hermite build inside its solve loops.
#[must_use]
pub fn compare_sweep_with(
    engine: &DatapathEngine<'_>,
    voltages: &[Volts],
    max_spares: u32,
    samples: usize,
    seed: u64,
    exec: Executor,
    evaluation: Evaluation,
) -> Vec<ComparisonPoint> {
    engine.prefetch(voltages, exec);
    voltages
        .iter()
        .map(|&v| compare_at_with(engine, v, max_spares, samples, seed, exec, evaluation))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use ntv_device::{TechModel, TechNode};

    const SAMPLES: usize = 1500;

    #[test]
    fn duplication_wins_high_ntv_at_90nm() {
        // Fig 7(a): in 90 nm at 0.60-0.70 V one or two spares are cheaper
        // than any voltage margin.
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let p = compare_at(&engine, Volts(0.65), 128, SAMPLES, 1, Executor::default());
        assert_eq!(p.preferred(), Technique::Duplication, "{p:?}");
    }

    #[test]
    fn margining_wins_at_scaled_nodes_low_voltage() {
        // Fig 7(b)/§4.4: in 45 nm at 0.5-0.6 V margining is cheaper.
        let tech = TechModel::new(TechNode::Gp45);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let p = compare_at(&engine, Volts(0.55), 128, SAMPLES, 2, Executor::default());
        assert_eq!(p.preferred(), Technique::VoltageMargining, "{p:?}");
    }

    #[test]
    fn unsolvable_duplication_defers_to_margining() {
        let tech = TechModel::new(TechNode::PtmHp22);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let p = compare_at(&engine, Volts(0.50), 128, 1000, 3, Executor::default());
        assert!(p.duplication_power.is_none(), "{p:?}");
        assert_eq!(p.preferred(), Technique::VoltageMargining);
    }

    #[test]
    fn sweep_produces_one_point_per_voltage() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let pts = compare_sweep(
            &engine,
            &[Volts(0.6), Volts(0.65), Volts(0.7)],
            64,
            800,
            4,
            Executor::default(),
        );
        assert_eq!(pts.len(), 3);
        for (p, v) in pts.iter().zip([Volts(0.6), Volts(0.65), Volts(0.7)]) {
            assert_eq!(p.vdd, v);
        }
    }

    #[test]
    fn analytic_comparison_reaches_same_verdicts() {
        let tech90 = TechModel::new(TechNode::Gp90);
        let engine90 = DatapathEngine::new(&tech90, DatapathConfig::paper_default());
        let hi = compare_at_with(
            &engine90,
            Volts(0.65),
            128,
            0,
            0,
            Executor::default(),
            Evaluation::Analytic,
        );
        assert_eq!(hi.preferred(), Technique::Duplication, "{hi:?}");
        let tech45 = TechModel::new(TechNode::Gp45);
        let engine45 = DatapathEngine::new(&tech45, DatapathConfig::paper_default());
        let lo = compare_sweep_with(
            &engine45,
            &[Volts(0.55)],
            128,
            0,
            0,
            Executor::default(),
            Evaluation::Analytic,
        );
        assert_eq!(lo[0].preferred(), Technique::VoltageMargining, "{lo:?}");
    }

    #[test]
    fn display_names() {
        assert_eq!(Technique::Duplication.to_string(), "structural duplication");
        assert_eq!(Technique::VoltageMargining.to_string(), "voltage margining");
    }
}
