//! Adaptive body bias (ABB) as a fourth mitigation technique.
//!
//! The paper's related work (§5) points at EVAL [Sarangi et al., MICRO'08],
//! which trades variation-induced errors against power with techniques
//! like ABB/ASV. This module extends the paper's §4 menu with the ABB
//! option: a forward body bias lowers the effective threshold voltage of
//! the near-threshold domain, which — like a supply margin — speeds every
//! path up exponentially, but pays in sub-threshold **leakage**
//! (`I_off ∝ exp(ΔVth_bias/(n·φt))`) instead of switching power.
//!
//! The solver mirrors [`crate::margining`]: find the smallest threshold
//! reduction that brings the q99 chip delay back to the nominal-variation
//! target, then price it.

use ntv_device::{DeviceParams, TechModel};
use ntv_mc::{order, CounterRng, Quantiles};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::engine::DatapathEngine;
use crate::exec::Executor;
use crate::overhead::DietSodaBudget;
use crate::perf;

/// A solved body-bias design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BodyBiasSolution {
    /// NTV operating voltage.
    pub vdd: Volts,
    /// Required forward body bias expressed as a threshold reduction.
    pub vth_shift: Volts,
    /// Target chip delay (ns).
    pub target_ns: f64,
    /// Achieved q99 chip delay (ns).
    pub achieved_ns: f64,
    /// Leakage-driven power overhead (fraction of PE power).
    pub power_overhead: f64,
}

/// The adaptive-body-bias study for one engine.
///
/// # Example
///
/// ```
/// use ntv_core::body_bias::BodyBiasStudy;
/// use ntv_core::{DatapathConfig, DatapathEngine};
/// use ntv_device::{TechModel, TechNode};
/// use ntv_units::Volts;
///
/// let tech = TechModel::new(TechNode::Gp90);
/// let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
/// let sol = BodyBiasStudy::new(&engine).solve(Volts(0.6), 1_000, 1);
/// // A few millivolts of threshold reduction suffice at 90 nm.
/// assert!(sol.vth_shift > Volts::ZERO && sol.vth_shift < Volts(0.05));
/// ```
#[derive(Debug, Clone)]
pub struct BodyBiasStudy<'a> {
    engine: &'a DatapathEngine<'a>,
    budget: DietSodaBudget,
    exec: Executor,
    /// Fraction of NTV-domain power that is leakage at zero bias (sets the
    /// cost of exp-growing it). Diet SODA-class near-threshold logic runs
    /// around 15 % leakage share.
    leakage_share: f64,
}

impl<'a> BodyBiasStudy<'a> {
    /// Largest threshold shift considered.
    pub const MAX_SHIFT: Volts = Volts(0.1);

    /// Study with the paper budget and a 15 % NTV leakage share.
    #[must_use]
    pub fn new(engine: &'a DatapathEngine<'a>) -> Self {
        Self {
            engine,
            budget: DietSodaBudget::paper(),
            exec: Executor::default(),
            leakage_share: 0.15,
        }
    }

    /// Use an explicit executor (thread count) for the Monte-Carlo batches.
    /// Results are bit-identical for any choice.
    #[must_use]
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// Override the zero-bias leakage share of NTV-domain power.
    ///
    /// # Panics
    ///
    /// Panics if `share` is outside `(0, 1)`.
    #[must_use]
    pub fn with_leakage_share(mut self, share: f64) -> Self {
        assert!(share > 0.0 && share < 1.0, "leakage share must be in (0,1)");
        self.leakage_share = share;
        self
    }

    /// q99 chip delay (ns) at `vdd` with the threshold lowered by `shift`.
    ///
    /// Evaluated on a biased copy of the device model with common random
    /// numbers, exactly like the margining solver.
    #[must_use]
    pub fn q99_ns_with_bias(&self, vdd: Volts, shift: Volts, samples: usize, seed: u64) -> f64 {
        let biased = biased_tech(self.engine.tech(), shift);
        let config = *self.engine.config();
        // Unconditional normal fit of the biased path distribution, as in
        // VariationMode::PaperNormal (quadrature over systematic draws).
        // ntv:allow(uncached-build): each bias probe rebuilds DeviceParams, and the shift is not part of the cache key
        let dist = crate::engine::PathDistribution::build(&biased, vdd, config.path_length);
        let stream = CounterRng::new(seed, "abb-eval");
        let n = config.critical_path_count();
        let samples_ns: Vec<f64> = self.exec.map_indexed(samples as u64, |i| {
            let mut draws = stream.at(i);
            order::sample_max_normal(&mut draws, n, dist.mean_ps(), dist.std_ps()) / 1000.0
        });
        Quantiles::from_samples(samples_ns).q99()
    }

    /// Leakage-driven power overhead of a threshold reduction.
    ///
    /// NTV-domain leakage grows `exp(shift/(n·φt))`; weighted by the
    /// leakage share and the NTV-domain power fraction.
    #[must_use]
    pub fn power_overhead(&self, shift: Volts) -> f64 {
        let p = self.engine.tech().params();
        let growth = (shift / (p.slope_n * ntv_device::params::THERMAL_VOLTAGE)).exp();
        self.budget.ntv_power_fraction * self.leakage_share * (growth - 1.0)
    }

    /// Solve for the minimum threshold shift (to 0.1 mV) meeting the
    /// §4.2-style target delay at `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if [`Self::MAX_SHIFT`] cannot reach the target.
    #[must_use]
    pub fn solve(&self, vdd: Volts, samples: usize, seed: u64) -> BodyBiasSolution {
        const TOLERANCE: Volts = Volts(0.1e-3);
        let target_ns = {
            let base_fo4 = perf::baseline_q99_fo4(self.engine, samples, seed, self.exec);
            base_fo4 * self.engine.fo4_unit_ps(vdd) / 1000.0
        };
        if self.q99_ns_with_bias(vdd, Volts::ZERO, samples, seed) <= target_ns {
            return BodyBiasSolution {
                vdd,
                vth_shift: Volts::ZERO,
                target_ns,
                achieved_ns: self.q99_ns_with_bias(vdd, Volts::ZERO, samples, seed),
                power_overhead: 0.0,
            };
        }
        assert!(
            self.q99_ns_with_bias(vdd, Self::MAX_SHIFT, samples, seed) <= target_ns,
            "body bias beyond {} required — outside the model's regime",
            Self::MAX_SHIFT
        );
        let (mut lo, mut hi) = (Volts::ZERO, Self::MAX_SHIFT);
        while hi - lo > TOLERANCE {
            let mid = 0.5 * (lo + hi);
            if self.q99_ns_with_bias(vdd, mid, samples, seed) <= target_ns {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        BodyBiasSolution {
            vdd,
            vth_shift: hi,
            target_ns,
            achieved_ns: self.q99_ns_with_bias(vdd, hi, samples, seed),
            power_overhead: self.power_overhead(hi),
        }
    }
}

/// A copy of the technology model with the threshold lowered by `shift`
/// (forward body bias).
fn biased_tech(tech: &TechModel, shift: Volts) -> TechModel {
    let params = DeviceParams {
        vth0: tech.params().vth0 - shift,
        ..*tech.params()
    };
    TechModel::from_params(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use ntv_device::TechNode;

    const SAMPLES: usize = 1500;

    #[test]
    fn bias_speeds_the_chip_up() {
        let tech = TechModel::new(TechNode::Gp45);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = BodyBiasStudy::new(&engine);
        let d0 = study.q99_ns_with_bias(Volts(0.6), Volts::ZERO, SAMPLES, 1);
        let d20 = study.q99_ns_with_bias(Volts(0.6), Volts(0.020), SAMPLES, 1);
        assert!(d20 < d0, "{d20} vs {d0}");
    }

    #[test]
    fn solution_meets_target_at_minimal_shift() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = BodyBiasStudy::new(&engine);
        let sol = study.solve(Volts(0.55), SAMPLES, 2);
        assert!(sol.achieved_ns <= sol.target_ns);
        assert!(
            sol.vth_shift > Volts::ZERO && sol.vth_shift < Volts(0.03),
            "{}",
            sol.vth_shift
        );
        // Backing off misses the target.
        let back = study.q99_ns_with_bias(Volts(0.55), sol.vth_shift - Volts(0.3e-3), SAMPLES, 2);
        assert!(back > sol.target_ns);
    }

    #[test]
    fn shift_tracks_the_margin_solution_scale() {
        // A body-bias shift is worth roughly S(V)/ (dlnD/dV) supply
        // millivolts; both solvers should land in the same few-mV regime.
        let tech = TechModel::new(TechNode::PtmHp32);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let bias = BodyBiasStudy::new(&engine).solve(Volts(0.6), SAMPLES, 3);
        let margin = crate::margining::MarginStudy::new(&engine).solve(Volts(0.6), SAMPLES, 3);
        assert!(bias.vth_shift < 3.0 * margin.margin + Volts(5e-3));
        assert!(bias.vth_shift > 0.2 * margin.margin);
    }

    #[test]
    fn leakage_overhead_grows_exponentially() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = BodyBiasStudy::new(&engine);
        let p10 = study.power_overhead(Volts(0.010));
        let p40 = study.power_overhead(Volts(0.040));
        assert!(p40 > 3.0 * p10, "{p40} vs {p10}");
        assert_eq!(study.power_overhead(Volts::ZERO), 0.0);
    }

    #[test]
    fn custom_leakage_share_scales_cost() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let cheap = BodyBiasStudy::new(&engine).with_leakage_share(0.05);
        let dear = BodyBiasStudy::new(&engine).with_leakage_share(0.40);
        assert!(dear.power_overhead(Volts(0.02)) > 5.0 * cheap.power_overhead(Volts(0.02)));
    }
}
