//! Exact chip-delay quantiles — the analytic fast path for voltage sweeps.
//!
//! Every headline number in the paper (Tables 1–4, Figs 7–11) is a q99
//! chip-delay statistic swept over voltage × node × mitigation knob, and
//! the margining/DSE solvers bisect on that statistic at every probe
//! voltage. Monte-Carlo estimation inside a bisection loop multiplies
//! `samples × probes` chip draws per sweep point; but the chip delay is a
//! *maximum of exchangeable path delays*, so its CDF is available in
//! closed form and the quantile the bisection needs can be evaluated
//! exactly, noise-free, in microseconds:
//!
//! * **PaperNormal** — all `N = lanes × paths` path delays are i.i.d.
//!   `N(μ, σ²)`, so `F_chip(x) = Φ((x−μ)/σ)^N` and the q-quantile is the
//!   closed form `μ + σ·Φ⁻¹(q^{1/N})` (log-space root via
//!   [`order::max_cdf_target`] — the same target the sampler draws through,
//!   so analytic and Monte-Carlo agree in distribution by construction).
//! * **SkewedIid** — paths are i.i.d. with the Gauss–Hermite mixture CDF
//!   tabulated by [`PathDistribution`]; the quantile is one inverse-survival
//!   lookup at `1 − q^{1/N}` ([`order::max_survival_target`]).
//! * **Hierarchical** — paths are conditionally independent given the
//!   chip-global draw `g` and each lane's regional draw. Integrating the
//!   conditional normal-max CDF over both with Gauss–Hermite quadrature
//!   gives
//!   `F_chip(x) = E_g[ (E_f[ Φ((x − μ_g f)/(σ_g f))^paths ])^lanes ]`,
//!   inverted by deterministic bisection.
//!
//! The same machinery yields the distribution of the chip delay *with α
//! spare lanes* (the `lanes`-th smallest of `lanes + α` i.i.d. lane
//! delays): a binomial order-statistic tail over the lane CDF, evaluated
//! in log space so deep-tail lane probabilities do not underflow.
//!
//! Monte-Carlo stays the right tool where the *empirical sample paths*
//! are the product — histograms (Figs 3, 5, 6), yield curves, and any
//! statistic of a finite-sample estimator. Studies therefore default to
//! [`Evaluation::MonteCarlo`] (byte-identical to the pre-solver outputs)
//! and opt into [`Evaluation::Analytic`] explicitly.

use serde::{Deserialize, Serialize};
use std::f64::consts::SQRT_2;

use ntv_device::ChipSample;
use ntv_mc::{normal, order, GaussHermite};
use ntv_units::Volts;

use crate::engine::{DatapathEngine, PathDistribution, VariationMode};

/// How a study evaluates the chip-delay quantile its search loop probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Evaluation {
    /// Counter-addressed Monte-Carlo sampling — the default, byte-identical
    /// to the historical outputs, and required wherever the empirical
    /// sample paths themselves are reported.
    #[default]
    MonteCarlo,
    /// Exact quantiles from [`ChipQuantileSolver`] — noise-free and orders
    /// of magnitude faster inside bisection loops.
    Analytic,
}

/// Exact quantile evaluator for the chip-delay order statistics of one
/// [`DatapathEngine`]. See the module docs for the per-mode closed forms.
#[derive(Debug, Clone, Copy)]
pub struct ChipQuantileSolver<'e, 't> {
    engine: &'e DatapathEngine<'t>,
}

/// Relative bisection tolerance for CDF inversion: ~1e-12 leaves the
/// result within a few ulps of the true quantile while keeping the
/// iteration count bounded and deterministic.
const INVERT_REL_TOL: f64 = 1e-12;

/// Gauss–Hermite order for the regional (per-lane) log-normal delay
/// factor; matches the 16-point rule `PathModel` uses for conditional
/// moments.
const GH_REGION: usize = 16;

impl<'e, 't> ChipQuantileSolver<'e, 't> {
    /// A solver borrowing `engine`'s operating-point cache and shape.
    #[must_use]
    pub fn new(engine: &'e DatapathEngine<'t>) -> Self {
        Self { engine }
    }

    /// Exact p-quantile of the chip delay (slowest lane) in picoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the open interval (0, 1).
    #[must_use]
    pub fn chip_quantile_ps(&self, vdd: Volts, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");
        let config = self.engine.config();
        let n = config.critical_path_count();
        match self.engine.mode() {
            VariationMode::PaperNormal => {
                let dist = self.engine.path_distribution(vdd);
                // Closed form: max of N i.i.d. normals.
                dist.mean_ps() + dist.std_ps() * normal::quantile(order::max_cdf_target(p, n))
            }
            VariationMode::SkewedIid => {
                let dist = self.engine.path_distribution(vdd);
                // One inverse-survival lookup — the same interpolant the
                // sampler draws through, evaluated at the fixed target.
                dist.quantile_by_survival(order::max_survival_target(p, n))
            }
            VariationMode::Hierarchical => {
                let mix = self.hier_mixture(vdd);
                let paths = config.paths_per_lane as f64;
                let lanes = config.lanes as f64;
                let (lo, hi) = mix.bracket();
                invert_monotone_cdf(p, lo, hi, |x| mix.chip_cdf(x, paths, lanes))
            }
        }
    }

    /// Exact p-quantile of the chip delay in FO4 units (the paper's
    /// "fo4chipd" axis — path-distribution mean over the stage count).
    #[must_use]
    pub fn chip_quantile_fo4(&self, vdd: Volts, p: f64) -> f64 {
        self.chip_quantile_ps(vdd, p) / self.engine.fo4_unit_ps(vdd)
    }

    /// Exact p-quantile of the chip delay in nanoseconds.
    #[must_use]
    pub fn chip_quantile_ns(&self, vdd: Volts, p: f64) -> f64 {
        self.chip_quantile_ps(vdd, p) / 1_000.0
    }

    /// The 99 % chip-delay point in FO4 units (the paper's headline
    /// statistic).
    #[must_use]
    pub fn q99_fo4(&self, vdd: Volts) -> f64 {
        self.chip_quantile_fo4(vdd, 0.99)
    }

    /// The 99 % chip-delay point in nanoseconds.
    #[must_use]
    pub fn q99_ns(&self, vdd: Volts) -> f64 {
        self.chip_quantile_ns(vdd, 0.99)
    }

    /// Exact p-quantile (ps) of the chip delay *with spares*: the
    /// `lanes`-th smallest of `lanes + spares` lane delays (the α slowest
    /// lanes are disabled at test time, §4.1).
    ///
    /// The order-statistic CDF is the binomial tail
    /// `P(at least `lanes` of `lanes+spares` lane delays ≤ x)`, with the
    /// lane CDF `F_path(x)^paths` evaluated per mode (conditionally, under
    /// the quadrature, for `Hierarchical`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside the open interval (0, 1).
    #[must_use]
    pub fn spares_quantile_ps(&self, vdd: Volts, spares: u32, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1), got {p}");
        if spares == 0 {
            // Identical distribution; use the direct (often closed-form)
            // chip quantile.
            return self.chip_quantile_ps(vdd, p);
        }
        let config = self.engine.config();
        let lanes = config.lanes;
        let physical = lanes + spares as usize;
        let paths = config.paths_per_lane as f64;
        match self.engine.mode() {
            VariationMode::PaperNormal => {
                let dist = self.engine.path_distribution(vdd);
                let (mu, s) = (dist.mean_ps(), dist.std_ps());
                let (lo, hi) = (mu - 8.0 * s, mu + 12.0 * s);
                let tail = BinomialTail::new(physical, lanes);
                invert_monotone_cdf(p, lo, hi, |x| {
                    let (pl, sl) = lane_split(ln_normal_cdf((x - mu) / s), paths);
                    tail.eval(pl, sl)
                })
            }
            VariationMode::SkewedIid => {
                let dist = self.engine.path_distribution(vdd);
                let (lo, hi) = skewed_bracket(&dist);
                let tail = BinomialTail::new(physical, lanes);
                invert_monotone_cdf(p, lo, hi, |x| {
                    let (pl, sl) = lane_split((-dist.survival(x)).ln_1p(), paths);
                    tail.eval(pl, sl)
                })
            }
            VariationMode::Hierarchical => {
                let mix = self.hier_mixture(vdd);
                let (lo, hi) = mix.bracket();
                let tail = BinomialTail::new(physical, lanes);
                invert_monotone_cdf(p, lo, hi, |x| mix.spares_cdf(x, paths, &tail))
            }
        }
    }

    /// Exact p-quantile of the chip delay with spares, in FO4 units.
    #[must_use]
    pub fn spares_quantile_fo4(&self, vdd: Volts, spares: u32, p: f64) -> f64 {
        self.spares_quantile_ps(vdd, spares, p) / self.engine.fo4_unit_ps(vdd)
    }

    /// The hierarchical conditional mixture at `vdd`: chip-global
    /// components `(weight, μ_g ps, σ_g ps)` over the Gauss–Hermite grid of
    /// `(ΔVth_g, ln k_g)` draws, and regional factors `(weight, f)` over
    /// the log-normal lane delay factor `exp(S·ΔVth_r − ln k_r)`.
    ///
    /// Variance shares mirror `sample_chip_global` / `sample_region`:
    /// chip-global σ scales by `√(1 − lane_fraction)`, regional by
    /// `√lane_fraction`.
    fn hier_mixture(&self, vdd: Volts) -> HierMixture {
        let params = self.engine.tech().params();
        let global_share = (1.0 - params.lane_fraction).sqrt();
        let region_share = params.lane_fraction.sqrt();

        let gh_v = GaussHermite::new(PathDistribution::GH_VTH);
        let gh_k = GaussHermite::new(PathDistribution::GH_K);
        const INV_PI: f64 = 1.0 / std::f64::consts::PI;
        let sigma_vg = params.sigma_vth_systematic * global_share;
        let sigma_kg = params.sigma_k_systematic * global_share;
        let comps: Vec<(f64, f64, f64)> = gh_v
            .nodes()
            .iter()
            .zip(gh_v.weights())
            .flat_map(|(&xv, &wv)| {
                let dv = sigma_vg * (SQRT_2 * xv);
                let m = self.engine.path_moments(
                    vdd,
                    &ChipSample {
                        dvth: dv,
                        ln_k: 0.0,
                    },
                );
                gh_k.nodes()
                    .iter()
                    .zip(gh_k.weights())
                    .map(move |(&xk, &wk)| {
                        let k = (-(SQRT_2 * sigma_kg * xk)).exp();
                        (wv * wk * INV_PI, m.mean_ps * k, m.std_ps * k)
                    })
            })
            .collect();

        // ln f = S(vdd)·ΔVth_r − ln k_r is a sum of independent centred
        // normals, hence normal with the combined variance.
        let s = self.engine.tech().delay_vth_sensitivity(vdd);
        let sv = s * (params.sigma_vth_systematic.get() * region_share);
        let sk = params.sigma_k_systematic * region_share;
        let s_f = (sv * sv + sk * sk).sqrt();
        const INV_SQRT_PI: f64 = 0.564_189_583_547_756_3;
        let gh_f = GaussHermite::new(GH_REGION);
        let factors: Vec<(f64, f64)> = gh_f
            .nodes()
            .iter()
            .zip(gh_f.weights())
            .map(|(&xf, &wf)| (wf * INV_SQRT_PI, (SQRT_2 * s_f * xf).exp()))
            .collect();

        HierMixture { comps, factors }
    }
}

/// Conditional mixture for the hierarchical chip-delay CDF: chip-global
/// path-moment components × regional log-normal delay factors.
struct HierMixture {
    /// `(weight, μ ps, σ ps)` per chip-global Gauss–Hermite node pair.
    comps: Vec<(f64, f64, f64)>,
    /// `(weight, f)` per regional Gauss–Hermite node.
    factors: Vec<(f64, f64)>,
}

impl HierMixture {
    /// Initial bisection bracket covering the mixture's support out to the
    /// same ±8σ/+12σ extent the survival grid uses, stretched by the
    /// regional factor range.
    fn bracket(&self) -> (f64, f64) {
        let f_min = self
            .factors
            .iter()
            .map(|&(_, f)| f)
            .fold(f64::INFINITY, f64::min);
        let f_max = self
            .factors
            .iter()
            .map(|&(_, f)| f)
            .fold(f64::NEG_INFINITY, f64::max);
        let lo = self
            .comps
            .iter()
            .map(|&(_, mu, s)| (mu - 8.0 * s) * f_min)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .comps
            .iter()
            .map(|&(_, mu, s)| (mu + 12.0 * s) * f_max)
            .fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    }

    /// Lane-delay CDF and survival given chip-global component `(μ, σ)`:
    /// `E_f[Φ((x − μf)/(σf))^paths]`, with the survival side accumulated
    /// through `expm1` so it keeps relative precision when the CDF is
    /// within an ulp of 1.
    ///
    /// Batch form: the 16 regional `erfc` arguments are evaluated into a
    /// fixed-stride array and pushed through [`normal::erfc_slice`] in one
    /// pass; the weighted fold then consumes the precomputed values in the
    /// same node order with the same per-term operations, so the result is
    /// bit-identical to the scalar per-node formulation (pinned by test).
    fn lane_cdf_sf(&self, x: f64, mu: f64, s: f64, paths: f64) -> (f64, f64) {
        assert_eq!(
            self.factors.len(),
            GH_REGION,
            "regional quadrature order mismatch"
        );
        let mut args = [0.0; GH_REGION];
        let mut erfcs = [0.0; GH_REGION];
        for (a, &(_, f)) in args.iter_mut().zip(&self.factors) {
            *a = ((x - mu * f) / (s * f)) / SQRT_2;
        }
        normal::erfc_slice(&args, &mut erfcs);
        let (cdf, sf) =
            ntv_mc::reduce::sum2_ordered(self.factors.iter().zip(&erfcs).map(|(&(wf, _), &e)| {
                let ln_phi = (-(0.5 * e)).ln_1p();
                let (pl, sl) = lane_split(ln_phi, paths);
                (wf * pl, wf * sl)
            }));
        (cdf.clamp(0.0, 1.0), sf.clamp(0.0, 1.0))
    }

    /// Scalar reference of [`Self::lane_cdf_sf`] as it stood before the
    /// batch `erfc` pass. Kept only to pin bit-exactness.
    #[cfg(test)]
    fn lane_cdf_sf_reference(&self, x: f64, mu: f64, s: f64, paths: f64) -> (f64, f64) {
        let (cdf, sf) = ntv_mc::reduce::sum2_ordered(self.factors.iter().map(|&(wf, f)| {
            let ln_phi = ln_normal_cdf((x - mu * f) / (s * f));
            let (pl, sl) = lane_split(ln_phi, paths);
            (wf * pl, wf * sl)
        }));
        (cdf.clamp(0.0, 1.0), sf.clamp(0.0, 1.0))
    }

    /// Chip-delay CDF: `E_g[(lane CDF | g)^lanes]`.
    fn chip_cdf(&self, x: f64, paths: f64, lanes: f64) -> f64 {
        let total = ntv_mc::reduce::sum_ordered(self.comps.iter().map(|&(w, mu, s)| {
            let (cdf, _) = self.lane_cdf_sf(x, mu, s, paths);
            w * cdf.powf(lanes)
        }));
        total.clamp(0.0, 1.0)
    }

    /// CDF of the `lanes`-th smallest of the physical lane delays:
    /// `E_g[binomial tail of the conditional lane CDF]` (lanes are
    /// conditionally i.i.d. given the chip-global draw). `tail` carries
    /// the precomputed `(physical, lanes)` coefficient table.
    fn spares_cdf(&self, x: f64, paths: f64, tail: &BinomialTail) -> f64 {
        let total = ntv_mc::reduce::sum_ordered(self.comps.iter().map(|&(w, mu, s)| {
            let (cdf, sf) = self.lane_cdf_sf(x, mu, s, paths);
            w * tail.eval(cdf, sf)
        }));
        total.clamp(0.0, 1.0)
    }
}

/// `ln Φ(z)` computed through the survival side so it keeps full relative
/// precision for large positive `z`, where `Φ(z).ln()` would round to −0.
fn ln_normal_cdf(z: f64) -> f64 {
    // Φ(z) = 1 − Q(z) with Q(z) = erfc(z/√2)/2 ∈ [0, 1].
    (-(0.5 * normal::erfc(z / SQRT_2))).ln_1p()
}

/// Lane-delay CDF and survival from the log path CDF: `p = F_path^paths`
/// and its complement, each computed at its own stable end
/// (`exp` / `−expm1`).
fn lane_split(ln_f_path: f64, paths: f64) -> (f64, f64) {
    let ln_p = paths * ln_f_path;
    (ln_p.exp(), -ln_p.exp_m1())
}

/// Survival-grid bisection bracket: the grid extent itself.
fn skewed_bracket(dist: &PathDistribution) -> (f64, f64) {
    (
        dist.mean_ps() - 8.0 * dist.std_ps(),
        dist.mean_ps() + 12.0 * dist.std_ps(),
    )
}

/// The binomial order-statistic tail `P(at least k of m ≤ x)` with its
/// log-coefficient table `ln C(m, j)`, `j = k..=m`, precomputed once per
/// solve. The bisection loop evaluates the tail at ~200 probe points (×
/// 288 mixture components in hierarchical mode); materializing the
/// coefficient recurrence hoists an O(m) log-space recurrence out of
/// every probe while keeping each [`eval`](Self::eval) bit-identical to
/// the retired recompute-per-call formulation (pinned by test).
struct BinomialTail {
    m: usize,
    k: usize,
    /// `ln_c[j - k] = ln C(m, j)`, built by the same ratio recurrence the
    /// scalar code ran inline: `ln C(m, k) = Σ ln((m−k+i)/i)` then
    /// `C(m, j+1) = C(m, j)·(m−j)/(j+1)`.
    ln_c: Vec<f64>,
}

impl BinomialTail {
    /// Precompute the coefficient table for rank `k` of `m`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `k` is outside `1..=m`.
    fn new(m: usize, k: usize) -> Self {
        debug_assert!(k >= 1 && k <= m, "order statistic rank out of range");
        let mut ln_c = 0.0;
        for i in 1..=k {
            // ntv:allow(reduction-order): ln C(m,k) ratio recurrence — terms are defined by the running value, not reorderable
            ln_c += ((m - k + i) as f64 / i as f64).ln();
        }
        let mut table = Vec::with_capacity(m - k + 1);
        for j in k..=m {
            table.push(ln_c);
            if j < m {
                // ntv:allow(reduction-order): binomial-coefficient ratio recurrence, order is the definition
                ln_c += ((m - j) as f64 / (j + 1) as f64).ln();
            }
        }
        Self { m, k, ln_c: table }
    }

    /// `Σ_{j=k}^{m} C(m,j) pʲ s^{m−j}` accumulated in log space, for
    /// i.i.d. events with probability `p` (survival `s = 1 − p` passed
    /// separately so each side keeps its own precision).
    fn eval(&self, p: f64, s: f64) -> f64 {
        if s <= 0.0 {
            return 1.0; // every lane is ≤ x almost surely
        }
        if p <= 0.0 {
            return 0.0;
        }
        let (ln_p, ln_s) = (p.ln(), s.ln());
        let mut total = 0.0;
        for (idx, &ln_c) in self.ln_c.iter().enumerate() {
            let j = self.k + idx;
            // ntv:allow(reduction-order): log-space tail terms span ~600 decades; the left-to-right fold is the pinned reference order
            total += (ln_c + j as f64 * ln_p + (self.m - j) as f64 * ln_s).exp();
        }
        total.min(1.0)
    }
}

/// Invert a monotone CDF by deterministic bisection: the smallest `x` (to
/// relative tolerance [`INVERT_REL_TOL`]) with `cdf(x) ≥ p`.
///
/// The initial bracket is expanded geometrically if it does not straddle
/// `p` (defensive — the analytic brackets cover all practical quantiles).
fn invert_monotone_cdf(p: f64, mut lo: f64, mut hi: f64, cdf: impl Fn(f64) -> f64) -> f64 {
    debug_assert!(lo < hi, "empty bisection bracket");
    let mut width = hi - lo;
    let mut guard = 0;
    while cdf(hi) < p && guard < 64 {
        // ntv:allow(reduction-order): geometric bracket expansion, not a reduction — each step doubles the stride
        hi += width;
        width *= 2.0;
        guard += 1;
    }
    let mut width = hi - lo;
    while cdf(lo) >= p && guard < 128 {
        lo -= width;
        width *= 2.0;
        guard += 1;
    }
    for _ in 0..200 {
        if hi - lo <= INVERT_REL_TOL * hi.abs().max(1.0) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if cdf(mid) >= p {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use ntv_device::{TechModel, TechNode};

    fn solver_quantiles(mode: VariationMode, vdd: Volts) -> (f64, f64) {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::with_mode(&tech, DatapathConfig::paper_default(), mode);
        let solver = ChipQuantileSolver::new(&engine);
        (
            solver.chip_quantile_ps(vdd, 0.5),
            solver.chip_quantile_ps(vdd, 0.99),
        )
    }

    #[test]
    fn quantiles_are_ordered_and_finite() {
        for mode in [
            VariationMode::PaperNormal,
            VariationMode::SkewedIid,
            VariationMode::Hierarchical,
        ] {
            for vdd in [Volts(0.5), Volts(1.0)] {
                let (q50, q99) = solver_quantiles(mode, vdd);
                assert!(q50.is_finite() && q99.is_finite(), "{mode:?} {vdd}");
                assert!(q99 > q50, "{mode:?} {vdd}: q99 {q99} <= q50 {q50}");
            }
        }
    }

    #[test]
    fn paper_normal_matches_closed_form() {
        let tech = TechModel::new(TechNode::Gp45);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let solver = ChipQuantileSolver::new(&engine);
        let dist = engine.path_distribution(Volts(0.6));
        let n = engine.config().critical_path_count();
        let q = solver.chip_quantile_ps(Volts(0.6), 0.99);
        let expect =
            dist.mean_ps() + dist.std_ps() * normal::quantile(order::max_cdf_target(0.99, n));
        assert_eq!(q.to_bits(), expect.to_bits());
    }

    #[test]
    fn chip_quantile_is_monotone_in_p_and_n() {
        let tech = TechModel::new(TechNode::PtmHp22);
        for mode in [
            VariationMode::PaperNormal,
            VariationMode::SkewedIid,
            VariationMode::Hierarchical,
        ] {
            let wide = DatapathEngine::with_mode(&tech, DatapathConfig::paper_default(), mode);
            let narrow = DatapathEngine::with_mode(&tech, DatapathConfig::new(8, 100, 50), mode);
            let ws = ChipQuantileSolver::new(&wide);
            let ns = ChipQuantileSolver::new(&narrow);
            let vdd = Volts(0.55);
            assert!(ws.chip_quantile_ps(vdd, 0.99) > ws.chip_quantile_ps(vdd, 0.5));
            // More parallel paths push the max right.
            assert!(
                ws.chip_quantile_ps(vdd, 0.5) > ns.chip_quantile_ps(vdd, 0.5),
                "{mode:?}"
            );
        }
    }

    #[test]
    fn spares_quantile_decreases_with_spares() {
        let tech = TechModel::new(TechNode::Gp45);
        for mode in [
            VariationMode::PaperNormal,
            VariationMode::SkewedIid,
            VariationMode::Hierarchical,
        ] {
            let engine = DatapathEngine::with_mode(&tech, DatapathConfig::paper_default(), mode);
            let solver = ChipQuantileSolver::new(&engine);
            let vdd = Volts(0.6);
            let mut prev = f64::INFINITY;
            for spares in [0u32, 2, 8, 26] {
                let q = solver.spares_quantile_ps(vdd, spares, 0.99);
                assert!(q.is_finite());
                assert!(q < prev, "{mode:?} spares {spares}: {q} !< {prev}");
                prev = q;
            }
        }
    }

    #[test]
    fn zero_spares_equals_chip_quantile() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let solver = ChipQuantileSolver::new(&engine);
        assert_eq!(
            solver.spares_quantile_ps(Volts(0.5), 0, 0.99).to_bits(),
            solver.chip_quantile_ps(Volts(0.5), 0.99).to_bits()
        );
    }

    #[test]
    fn one_lane_spares_tail_matches_power_form() {
        // With one physical lane the binomial tail degenerates to the lane
        // CDF itself, so the spares path must agree with the chip path.
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::with_mode(
            &tech,
            DatapathConfig::new(1, 100, 50),
            VariationMode::PaperNormal,
        );
        let solver = ChipQuantileSolver::new(&engine);
        let dist = engine.path_distribution(Volts(0.7));
        let direct = solver.chip_quantile_ps(Volts(0.7), 0.9);
        // Invert the spares CDF machinery at spares = 1, lanes = 1: the
        // median of min(2 lanes) sits strictly below the 1-lane quantile.
        let min2 = solver.spares_quantile_ps(Volts(0.7), 1, 0.9);
        assert!(min2 < direct);
        assert!(min2 > dist.mean_ps() - 8.0 * dist.std_ps());
    }

    /// The retired recompute-per-call formulation: coefficient recurrence
    /// interleaved with the tail accumulation. Kept only to pin that the
    /// precomputed [`BinomialTail`] table reproduces it bit for bit.
    fn binomial_tail_legacy(m: usize, k: usize, p: f64, s: f64) -> f64 {
        if s <= 0.0 {
            return 1.0;
        }
        if p <= 0.0 {
            return 0.0;
        }
        let (ln_p, ln_s) = (p.ln(), s.ln());
        let mut ln_c = 0.0;
        for i in 1..=k {
            ln_c += ((m - k + i) as f64 / i as f64).ln();
        }
        let mut total = 0.0;
        for j in k..=m {
            total += (ln_c + j as f64 * ln_p + (m - j) as f64 * ln_s).exp();
            if j < m {
                ln_c += ((m - j) as f64 / (j + 1) as f64).ln();
            }
        }
        total.min(1.0)
    }

    #[test]
    fn binomial_tail_matches_direct_sum() {
        // Small case checked against the literal binomial sum.
        let (m, k, p) = (6usize, 4usize, 0.3f64);
        let s = 1.0 - p;
        let mut direct = 0.0;
        for j in k..=m {
            let c: f64 = (1..=m).map(|i| i as f64).product::<f64>()
                / ((1..=j).map(|i| i as f64).product::<f64>()
                    * (1..=(m - j)).map(|i| i as f64).product::<f64>());
            direct += c * p.powi(j as i32) * s.powi((m - j) as i32);
        }
        let fast = BinomialTail::new(m, k).eval(p, s);
        assert!((fast - direct).abs() < 1e-14, "{fast} vs {direct}");
    }

    #[test]
    fn binomial_tail_edges() {
        assert_eq!(BinomialTail::new(128, 128).eval(0.0, 1.0), 0.0);
        assert_eq!(BinomialTail::new(128, 128).eval(1.0, 0.0), 1.0);
        // k = m reduces to p^m in log space.
        let t = BinomialTail::new(100, 100).eval(0.999, 0.001);
        assert!((t - 0.999f64.powi(100)).abs() < 1e-12);
    }

    #[test]
    fn binomial_tail_table_is_bit_identical_to_legacy_recurrence() {
        for &(m, k) in &[(1usize, 1usize), (66, 64), (128, 100), (300, 299)] {
            let tail = BinomialTail::new(m, k);
            for &p in &[1e-300, 1e-12, 0.3, 0.5, 0.999, 1.0 - 1e-15] {
                let s = 1.0 - p;
                assert_eq!(
                    tail.eval(p, s).to_bits(),
                    binomial_tail_legacy(m, k, p, s).to_bits(),
                    "m={m} k={k} p={p}"
                );
            }
        }
    }

    #[test]
    fn batched_lane_cdf_matches_scalar_reference_bitwise() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::with_mode(
            &tech,
            DatapathConfig::paper_default(),
            VariationMode::Hierarchical,
        );
        let solver = ChipQuantileSolver::new(&engine);
        let mix = solver.hier_mixture(Volts(0.55));
        let (lo, hi) = mix.bracket();
        for i in 0..50 {
            let x = lo + (hi - lo) * f64::from(i) / 49.0;
            for &(_, mu, s) in mix.comps.iter().step_by(37) {
                let batch = mix.lane_cdf_sf(x, mu, s, 100.0);
                let scalar = mix.lane_cdf_sf_reference(x, mu, s, 100.0);
                assert_eq!(batch.0.to_bits(), scalar.0.to_bits(), "cdf at x={x}");
                assert_eq!(batch.1.to_bits(), scalar.1.to_bits(), "sf at x={x}");
            }
        }
    }

    #[test]
    fn ln_normal_cdf_keeps_tail_precision() {
        // Deep upper tail: ln Φ(8) ≈ −Q(8); the naive ln(Φ) rounds to 0.
        let q = 0.5 * normal::erfc(8.0 / SQRT_2);
        let l = ln_normal_cdf(8.0);
        assert!(l < 0.0, "must stay strictly negative: {l}");
        assert!((l + q).abs() < 1e-3 * q);
        // Deep lower tail → −∞ rather than NaN.
        assert_eq!(ln_normal_cdf(-60.0), f64::NEG_INFINITY);
    }

    #[test]
    fn invert_monotone_cdf_recovers_normal_quantile() {
        let q = invert_monotone_cdf(0.99, -6.0, 6.0, normal::cdf);
        assert!((q - normal::quantile(0.99)).abs() < 1e-9);
        // Bracket expansion: start with a bracket that misses the target.
        let q2 = invert_monotone_cdf(0.99, -0.1, 0.1, normal::cdf);
        assert!((q2 - normal::quantile(0.99)).abs() < 1e-9);
    }
}
