//! Voltage margining (paper §4.2, Table 2, Fig 6).
//!
//! Near threshold, delay falls exponentially with supply voltage, so a few
//! extra millivolts can absorb the variation-induced tail. The paper's
//! procedure:
//!
//! 1. compute `fo4chipd` (q99, FO4 units) at the NTV operating point and at
//!    nominal voltage,
//! 2. scale the NTV chip delay by their ratio — i.e. set the **target
//!    delay** to what the chip *would* achieve at NTV if its relative
//!    variation were no worse than at nominal:
//!    `target_ns = fo4chipd@FV × FO4(VNTV)`,
//! 3. raise the supply in fine steps until the q99 chip delay (ns) at
//!    `V + Vm` meets the target.
//!
//! Step 3 uses common random numbers (the chip draws do not depend on
//! voltage), which makes q99(V + Vm) strictly decreasing in `Vm`
//! sample-by-sample and lets us bisect to 0.1 mV — the paper quotes margins
//! like "5.78 mV" at exactly this granularity.

use ntv_mc::CounterRng;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::engine::DatapathEngine;
use crate::exec::Executor;
use crate::overhead::DietSodaBudget;
use crate::perf;
use crate::quantile::{ChipQuantileSolver, Evaluation};

/// A solved voltage-margin design point (one Table 2 cell).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarginSolution {
    /// NTV operating voltage.
    pub vdd: Volts,
    /// Required margin; final supply is `vdd + margin`.
    pub margin: Volts,
    /// Target chip delay (ns) — nominal-level variation at NTV speed.
    pub target_ns: f64,
    /// Achieved q99 chip delay (ns) at `vdd + margin`.
    pub achieved_ns: f64,
    /// Power overhead of the margin (fraction of PE power).
    pub power_overhead: f64,
}

/// The voltage-margining study for one engine.
#[derive(Debug, Clone)]
pub struct MarginStudy<'a> {
    engine: &'a DatapathEngine<'a>,
    budget: DietSodaBudget,
    exec: Executor,
    evaluation: Evaluation,
}

impl<'a> MarginStudy<'a> {
    /// Largest margin the solver will consider.
    pub const MAX_MARGIN: Volts = Volts(0.2);

    /// Study with the paper's Diet SODA budget.
    #[must_use]
    pub fn new(engine: &'a DatapathEngine<'a>) -> Self {
        Self {
            engine,
            budget: DietSodaBudget::paper(),
            exec: Executor::default(),
            evaluation: Evaluation::default(),
        }
    }

    /// Study with a custom overhead budget.
    #[must_use]
    pub fn with_budget(engine: &'a DatapathEngine<'a>, budget: DietSodaBudget) -> Self {
        Self {
            engine,
            budget,
            exec: Executor::default(),
            evaluation: Evaluation::default(),
        }
    }

    /// Use an explicit executor (thread count) for the Monte-Carlo batches.
    /// Results are bit-identical for any choice.
    #[must_use]
    pub fn with_executor(mut self, exec: Executor) -> Self {
        self.exec = exec;
        self
    }

    /// How the q99 probes inside the solve loop are evaluated. The default
    /// ([`Evaluation::MonteCarlo`]) reproduces the historical outputs
    /// byte-for-byte; [`Evaluation::Analytic`] replaces every probe with
    /// the exact order-statistic quantile (`samples`/`seed` arguments are
    /// then ignored) and makes voltage sweeps noise-free and fast.
    #[must_use]
    pub fn with_evaluation(mut self, evaluation: Evaluation) -> Self {
        self.evaluation = evaluation;
        self
    }

    /// The target chip delay (ns) for NTV operation at `vdd`:
    /// `fo4chipd@FV × FO4(vdd)`.
    #[must_use]
    pub fn target_delay_ns(&self, vdd: Volts, samples: usize, seed: u64) -> f64 {
        let base_fo4 = match self.evaluation {
            Evaluation::MonteCarlo => perf::baseline_q99_fo4(self.engine, samples, seed, self.exec),
            Evaluation::Analytic => perf::baseline_q99_fo4_analytic(self.engine),
        };
        base_fo4 * self.engine.tech().fo4_delay_ps(vdd) / 1000.0
    }

    /// q99 chip delay (ns) at an effective supply voltage, with chip `i`
    /// addressed as `(seed, "margin-eval", i)` — common random numbers
    /// across voltages by construction.
    #[must_use]
    pub fn q99_ns_at(&self, vdd_effective: Volts, samples: usize, seed: u64) -> f64 {
        match self.evaluation {
            Evaluation::MonteCarlo => {
                let stream = CounterRng::new(seed, "margin-eval");
                self.engine
                    .chip_delay_distribution_par(vdd_effective, samples, &stream, self.exec)
                    .q99_ns()
            }
            Evaluation::Analytic => ChipQuantileSolver::new(self.engine).q99_ns(vdd_effective),
        }
    }

    /// Solve one Table 2 cell: the minimum margin at `vdd`, to 0.1 mV.
    ///
    /// # Panics
    ///
    /// Panics if even [`Self::MAX_MARGIN`] (200 mV) cannot reach the target,
    /// which does not occur for any calibrated node in the studied range.
    #[must_use]
    pub fn solve(&self, vdd: Volts, samples: usize, seed: u64) -> MarginSolution {
        const TOLERANCE: Volts = Volts(0.1e-3);
        let target_ns = self.target_delay_ns(vdd, samples, seed);

        // Every probe is a pure function of (seed, voltage), so values
        // computed during the search are reused instead of re-evaluated.
        let q0 = self.q99_ns_at(vdd, samples, seed);
        if q0 <= target_ns {
            return MarginSolution {
                vdd,
                margin: Volts::ZERO,
                target_ns,
                achieved_ns: q0,
                power_overhead: 0.0,
            };
        }
        let q_max = self.q99_ns_at(vdd + Self::MAX_MARGIN, samples, seed);
        assert!(
            q_max <= target_ns,
            "voltage margin above {} required at {vdd} — outside the model's regime",
            Self::MAX_MARGIN
        );

        // Invariant: q99(vdd+lo) > target >= q99(vdd+hi) = achieved.
        let (mut lo, mut hi) = (Volts::ZERO, Self::MAX_MARGIN);
        let mut achieved = q_max;
        while hi - lo > TOLERANCE {
            let mid = 0.5 * (lo + hi);
            let q_mid = self.q99_ns_at(vdd + mid, samples, seed);
            if q_mid <= target_ns {
                hi = mid;
                achieved = q_mid;
            } else {
                lo = mid;
            }
        }
        MarginSolution {
            vdd,
            margin: hi,
            target_ns,
            achieved_ns: achieved,
            power_overhead: self.budget.margin_power_overhead(vdd, hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatapathConfig;
    use ntv_device::{TechModel, TechNode};

    const SAMPLES: usize = 2000;

    #[test]
    fn margins_match_table2_90nm() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let study = MarginStudy::new(&engine);
        // Paper: 5.8 mV @0.50V, 2.9 mV @0.60V, 1.7 mV @0.70V.
        let m050 = study.solve(Volts(0.50), SAMPLES, 1).margin.get() * 1000.0;
        let m060 = study.solve(Volts(0.60), SAMPLES, 1).margin.get() * 1000.0;
        let m070 = study.solve(Volts(0.70), SAMPLES, 1).margin.get() * 1000.0;
        assert!((2.0..=10.0).contains(&m050), "0.50V: {m050} mV (paper 5.8)");
        assert!((1.0..=6.0).contains(&m060), "0.60V: {m060} mV (paper 2.9)");
        assert!((0.5..=4.0).contains(&m070), "0.70V: {m070} mV (paper 1.7)");
        assert!(m050 > m060 && m060 > m070);
    }

    #[test]
    fn margins_larger_for_scaled_nodes() {
        // Table 2: 45 nm needs ~3x the 90 nm margin at the same voltage.
        let samples = 1500;
        let tech90 = TechModel::new(TechNode::Gp90);
        let engine90 = DatapathEngine::new(&tech90, DatapathConfig::paper_default());
        let m90 = MarginStudy::new(&engine90)
            .solve(Volts(0.55), samples, 2)
            .margin;
        let tech45 = TechModel::new(TechNode::Gp45);
        let engine45 = DatapathEngine::new(&tech45, DatapathConfig::paper_default());
        let m45 = MarginStudy::new(&engine45)
            .solve(Volts(0.55), samples, 2)
            .margin;
        assert!(m45 > 2.0 * m90, "45nm {m45} vs 90nm {m90}");
    }

    #[test]
    fn achieved_delay_meets_target() {
        let tech = TechModel::new(TechNode::PtmHp32);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let sol = MarginStudy::new(&engine).solve(Volts(0.6), SAMPLES, 3);
        assert!(sol.achieved_ns <= sol.target_ns);
        // 0.1 mV resolution: backing off the margin must miss the target.
        let study = MarginStudy::new(&engine);
        let back = study.q99_ns_at(sol.vdd + sol.margin - Volts(0.2e-3), SAMPLES, 3);
        assert!(back > sol.target_ns);
    }

    #[test]
    fn zero_margin_at_nominal() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let sol = MarginStudy::new(&engine).solve(Volts(1.0), SAMPLES, 4);
        // At the baseline voltage the target is met by construction
        // (same distribution up to MC noise).
        assert!(sol.margin < Volts(2e-3), "{}", sol.margin);
    }

    #[test]
    fn analytic_solve_matches_mc_and_is_noise_free() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let mc = MarginStudy::new(&engine).solve(Volts(0.50), 4000, 1);
        let study = MarginStudy::new(&engine).with_evaluation(Evaluation::Analytic);
        let an = study.solve(Volts(0.50), 4000, 1);
        // Same design point up to MC noise on the 4k-sample estimate.
        assert!(
            (an.margin.get() - mc.margin.get()).abs() < 2.0e-3,
            "analytic {} vs MC {}",
            an.margin,
            mc.margin
        );
        // Noise-free: the analytic margin is exactly tight at 0.1 mV.
        assert!(an.achieved_ns <= an.target_ns);
        let back = study.q99_ns_at(an.vdd + an.margin - Volts(0.2e-3), 0, 0);
        assert!(back > an.target_ns);
        // samples/seed are ignored on the analytic path.
        let again = study.solve(Volts(0.50), 17, 99);
        assert_eq!(again.margin.get().to_bits(), an.margin.get().to_bits());
        assert_eq!(again.achieved_ns.to_bits(), an.achieved_ns.to_bits());
    }

    #[test]
    fn power_overhead_tracks_budget() {
        let tech = TechModel::new(TechNode::PtmHp22);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let sol = MarginStudy::new(&engine).solve(Volts(0.55), 1500, 5);
        let expect = DietSodaBudget::paper().margin_power_overhead(Volts(0.55), sol.margin);
        assert!((sol.power_overhead - expect).abs() < 1e-12);
        // Table 2 scale: a couple of percent.
        assert!(sol.power_overhead > 0.001 && sol.power_overhead < 0.08);
    }
}
