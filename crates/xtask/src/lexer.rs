//! A minimal Rust lexer for the lint pass.
//!
//! The offline build environment has no `syn`, so the lint rules run over a
//! hand-rolled token stream instead of a full AST. The lexer understands
//! exactly as much Rust as the rules need to avoid false positives:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments, captured
//!   separately so waiver comments (`// ntv:allow(..): ..`) can be matched;
//! * string, raw-string, byte-string and char literals (so `"thread_rng"`
//!   inside a message is not a violation) and the char-vs-lifetime split;
//! * identifiers, numeric literals (including `1.0e6` and `0..n` without
//!   swallowing the range operator), and single-character punctuation.
//!
//! Everything else — the actual pattern matching — lives in `rules.rs`.

/// One lexed token with its source position (1-based line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// The kinds of token the lint rules distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String / char / numeric literal. Numeric literals carry their source
    /// text (the dataflow layer needs to tell `1.0` from `1`, and to match
    /// `.0` field projections); string/char literals carry an empty string —
    /// their content is deliberately discarded so message text can never
    /// trip a rule.
    Literal(String),
}

impl Token {
    /// The identifier text, if this token is an identifier.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The literal source text, if this token is a (numeric) literal.
    #[must_use]
    pub fn literal(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Literal(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is a numeric literal with float shape: a decimal
    /// point, an exponent, or an explicit `f32`/`f64` suffix.
    #[must_use]
    pub fn is_float_literal(&self) -> bool {
        let Some(text) = self.literal() else {
            return false;
        };
        let Some(first) = text.chars().next() else {
            return false;
        };
        if !first.is_ascii_digit() {
            return false;
        }
        if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
            return false;
        }
        // An integer suffix settles the type even though `usize`/`isize`
        // contain the letter `e` (the exponent check below must not see it).
        const INT_SUFFIXES: [&str; 12] = [
            "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        ];
        if INT_SUFFIXES.iter().any(|s| text.ends_with(s)) {
            return false;
        }
        text.contains('.')
            || text.contains('e')
            || text.contains('E')
            || text.ends_with("f32")
            || text.ends_with("f64")
    }

    /// Whether this token is the punctuation character `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A comment with its source line (the line the comment *starts* on).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment text including its `//` / `/*` markers.
    pub text: String,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All non-comment tokens, in source order.
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lex `source` into tokens and comments.
///
/// The lexer is total: malformed input (e.g. an unterminated string) never
/// panics, it simply ends the current token at end-of-file. That matters
/// because the lint pass must be able to run over arbitrary in-progress code.
#[must_use]
pub fn lex(source: &str) -> LexedFile {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: LexedFile::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: LexedFile,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Advance one char, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> LexedFile {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                'r' | 'b' if self.starts_raw_or_byte_literal() => self.raw_or_byte_literal(),
                '\'' => self.char_or_lifetime(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = match self.bump() {
                        Some(c) => c,
                        None => break,
                    };
                    self.out.tokens.push(Token {
                        kind: TokenKind::Punct(c),
                        line,
                    });
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment { line, text });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment { line, text });
    }

    fn string_literal(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Literal(String::new()),
            line,
        });
    }

    /// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br"`, or `br#`?
    fn starts_raw_or_byte_literal(&self) -> bool {
        matches!(
            (self.peek(0), self.peek(1), self.peek(2)),
            (Some('r'), Some('"' | '#'), _)
                | (Some('b'), Some('"' | '\''), _)
                | (Some('b'), Some('r'), Some('"' | '#'))
        )
    }

    fn raw_or_byte_literal(&mut self) {
        let line = self.line;
        // Consume the prefix letters.
        while matches!(self.peek(0), Some('r' | 'b')) {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            // Byte char literal b'x'.
            self.bump();
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
        } else {
            // Raw (byte) string: count leading #, match them at the close.
            let mut hashes = 0usize;
            while self.peek(0) == Some('#') {
                hashes += 1;
                self.bump();
            }
            if self.peek(0) != Some('"') {
                // `r#ident` — a raw identifier, not a raw string.
                self.ident();
                return;
            }
            self.bump(); // opening quote
            'outer: while let Some(c) = self.bump() {
                if c == '"' {
                    for i in 0..hashes {
                        if self.peek(i) != Some('#') {
                            continue 'outer;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Literal(String::new()),
            line,
        });
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && after != Some('\'');
        self.bump(); // the quote
        if is_lifetime {
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            // Lifetimes carry no lint signal; drop them.
        } else {
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.out.tokens.push(Token {
                kind: TokenKind::Literal(String::new()),
                line,
            });
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        self.out.tokens.push(Token {
            kind: TokenKind::Ident(text),
            line,
        });
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        // Digits plus underscores, type suffixes (`1u64`), hex (`0xff`), and
        // exponents (`1e-6`). A `.` joins the number only when followed by a
        // digit, so `0..n` and `x.iter()` keep their punctuation.
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                // `1e-6` / `1E+9`: pull the sign in with the exponent.
                let took_exponent = (c == 'e' || c == 'E')
                    && matches!(self.peek(1), Some('+' | '-'))
                    && matches!(self.peek(2), Some(d) if d.is_ascii_digit());
                self.bump();
                if took_exponent {
                    self.bump();
                }
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                self.bump();
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.tokens.push(Token {
            kind: TokenKind::Literal(text),
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_owned))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r#"
            // thread_rng in a comment
            /* Instant::now in a block /* nested */ comment */
            let x = "thread_rng in a string";
            let r#type = 1;
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
        // Raw identifiers survive as identifiers.
        assert!(ids.contains(&"type".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"unwrap() inside"#; after"###;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"after".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x } let c = 'y'; done";
        let ids = idents(src);
        assert!(ids.contains(&"done".to_string()));
        assert!(!ids.contains(&"y".to_string()));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = lex("0..n; 1.0e6; 1e-6; x.unwrap()");
        let ids: Vec<_> = toks.tokens.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(ids, vec!["n", "x", "unwrap"]);
        // `0..n` must produce two dot puncts.
        let dots = toks.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 3, "{:?}", toks.tokens);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let out = lex("let a = 1; // ntv:allow(unwrap): trailing\n// standalone\nlet b = 2;");
        assert_eq!(out.comments.len(), 2);
        assert_eq!(out.comments[0].line, 1);
        assert!(out.comments[0].text.contains("ntv:allow"));
        assert_eq!(out.comments[1].line, 2);
    }
}
