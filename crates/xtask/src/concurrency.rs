//! Concurrency-soundness analysis: lock-order graph, atomic-ordering
//! classification, and blocking-under-lock detection.
//!
//! The serve stack plus the bounded operating-point cache hold the
//! workspace's densest concentration of `Mutex`/`RwLock`/`Atomic*` sites,
//! and the existing semantic rules reason about hold *regions* and
//! *effects* — never about acquisition order or memory ordering. This
//! layer closes that gap with three rules, all built on the
//! [`graph`](crate::graph) symbol table / confidence-tiered call graph and
//! the [`effects`](crate::effects) seed scan:
//!
//! * **`ntv::lock-order-cycle`** — every recognised acquisition is
//!   resolved to a *lock class* `(container, field-or-static path)` (e.g.
//!   `OpPointCache.entries`, `ntv_core::pair.REGISTRY`). A second class
//!   acquired inside a hold region — directly or through a confident call
//!   into a transitively-acquiring callee — adds an order edge with a
//!   witness `(fn, line)`. Any cycle in the resulting workspace-wide
//!   order graph is an ABBA deadlock and is denied with the full witness
//!   chain.
//! * **`ntv::atomic-ordering`** — every `Atomic*` operation site is
//!   classified by the `Ordering` arguments it carries. An all-`Relaxed`
//!   op is denied when its class participates in a cross-thread
//!   handshake: the same class is accessed with stronger orderings
//!   elsewhere (a lock-free publish/consume pair), or a fn touching it
//!   also touches a `Condvar`/`Barrier`/`fence`. Pure counters (classes
//!   that are `Relaxed` everywhere and nowhere near a handshake) stay
//!   clean by construction.
//! * **`ntv::blocking-under-lock`** — calls that can park the thread
//!   (`accept`, buffered reads, channel `recv`, `Condvar::wait`, thread
//!   `join`, io writes) and the effect layer's direct `io` seeds are
//!   blocking sites; blocking-ness propagates to callers over confident
//!   edges. A blocking site — or a confident call into a transitively
//!   blocking callee — inside a hold region is denied: precisely the bug
//!   shape that collapses a service p99.
//!
//! Like every other layer, the analysis is **name-shaped and
//! deterministic**: classes are resolved from receiver chains without type
//! inference (documented over/under-approximations: a field path reached
//! through differently-named locals unifies on the path; the same static
//! referenced from another file does not), symbols are visited in
//! ascending id order, and the `--report concurrency` inventory
//! (`ntv-concurrency/1`) is byte-identical across runs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::effects::{self, Effects};
use crate::graph::{self, Graph, SemFile};
use crate::json;
use crate::lexer::Token;
use crate::parser;
use crate::resolve::{Symbol, SymbolId};
use crate::rules::{Hit, RuleId};

/// Atomic methods whose argument list carries a
/// `std::sync::atomic::Ordering`. The `Ordering` ident in the balanced
/// argument span is what distinguishes `AtomicUsize::load` from
/// `io::Read::read`-adjacent names — no type inference needed.
const ATOMIC_OPS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "load",
    "store",
    "swap",
];

/// The five `Ordering` variants, sorted.
const ORDERINGS: &[&str] = &["AcqRel", "Acquire", "Relaxed", "Release", "SeqCst"];

/// Method/path calls that can park the calling thread. `read`/`write` and
/// `join` need extra shape checks (see `scan_blocking`), so they are not
/// listed here.
const BLOCKING_CALLS: &[&str] = &[
    "accept",
    "connect",
    "flush",
    "park",
    "park_timeout",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_deadline",
    "recv_timeout",
    "sleep",
    "wait",
    "wait_timeout",
    "wait_while",
    "write_all",
    "write_fmt",
];

/// Types whose mere mention in a fn body marks it as handshake-adjacent.
const HANDSHAKE_TYPES: &[&str] = &["Barrier", "Condvar"];

/// Method calls that mark a fn as handshake-adjacent.
const HANDSHAKE_METHODS: &[&str] = &[
    "notify_all",
    "notify_one",
    "wait",
    "wait_timeout",
    "wait_while",
];

/// One witnessed lock-order edge `from -> to` in the order graph.
struct OrderEdge {
    /// Symbol holding `from` when `to` was acquired.
    sym: SymbolId,
    /// Line of the second acquisition (or of the call that leads to it).
    line: u32,
    /// Confident callee the second acquisition happens through, if any.
    via: Option<SymbolId>,
}

/// One lock acquisition resolved to its class.
struct Acq {
    /// Index into the class table.
    class: usize,
    /// Index into `graph.acquisitions(sym)` (for hold-region lookup).
    idx: usize,
    line: u32,
    tok: usize,
}

/// One atomic operation site.
struct AtomicOp {
    sym: SymbolId,
    line: u32,
    op: String,
    /// Distinct `Ordering` idents in the argument list, sorted.
    orderings: Vec<String>,
    /// Every `Ordering` argument is `Relaxed`. A CAS with an `Acquire`
    /// success ordering and a `Relaxed` failure ordering is *not*
    /// all-relaxed and is never denied.
    relaxed_only: bool,
}

/// Everything known about one atomic class.
struct AtomicClass {
    ops: Vec<AtomicOp>,
    /// First fn touching this atomic that also touches a
    /// `Condvar`/`Barrier`/`fence` (handshake proximity), if any.
    handshake_via: Option<SymbolId>,
}

/// A direct potentially-blocking site inside a symbol body.
struct BlockSite {
    line: u32,
    /// Token index for hold-region containment; `None` for effect-seed
    /// sites, which are tested by line span instead.
    tok: Option<usize>,
    /// What was found, for messages.
    what: String,
}

/// The complete concurrency analysis result: raw rule hits (file-index
/// keyed, like every other semantic pass) plus the rendered
/// `ntv-concurrency/1` report.
pub struct Concurrency {
    hits: Vec<(usize, Hit)>,
    report: String,
}

impl Concurrency {
    /// Run the full analysis over one graph's worth of files.
    ///
    /// `eff` must be the effect facts for the same `graph`/`files` pair —
    /// its direct `io` seeds double as blocking sites.
    #[must_use]
    #[allow(clippy::too_many_lines)] // one deterministic pipeline, stage-commented
    pub fn analyze(graph: &Graph, files: &[SemFile], eff: &Effects) -> Concurrency {
        let syms = &graph.table.symbols;
        let n = syms.len();

        // Innermost-span ownership (nested fns own their tokens), shared
        // by the atomic and blocking scans.
        let mut file_spans: Vec<Vec<(SymbolId, (usize, usize))>> = vec![Vec::new(); files.len()];
        for (id, sym) in syms.iter().enumerate() {
            if let Some(span) = sym.body {
                file_spans[sym.file].push((id, span));
            }
        }

        // ---- lock classes and per-symbol acquisitions ----
        let mut kinds: BTreeMap<String, &'static str> = BTreeMap::new();
        let mut raw: Vec<Vec<(String, usize)>> = (0..n).map(|_| Vec::new()).collect();
        for (id, sym) in syms.iter().enumerate() {
            if sym.body.is_none() {
                continue;
            }
            let tokens = files[sym.file].tokens;
            for (k, a) in graph.acquisitions(id).iter().enumerate() {
                let kind = match tokens[a.tok].ident() {
                    Some("lock") => "mutex",
                    _ => "rwlock",
                };
                let class = classify_chain(&receiver_chain(tokens, a.tok), sym);
                kinds.entry(class.clone()).or_insert(kind);
                raw[id].push((class, k));
            }
        }
        let classes: Vec<(String, &'static str)> = kinds.into_iter().collect();
        let cid: BTreeMap<&str, usize> = classes
            .iter()
            .enumerate()
            .map(|(i, (name, _))| (name.as_str(), i))
            .collect();
        let acqs: Vec<Vec<Acq>> = (0..n)
            .map(|id| {
                raw[id]
                    .iter()
                    .map(|(class, k)| {
                        let a = &graph.acquisitions(id)[*k];
                        Acq {
                            class: cid[class.as_str()],
                            idx: *k,
                            line: a.line,
                            tok: a.tok,
                        }
                    })
                    .collect()
            })
            .collect();

        // ---- confident call edges (the only ones facts travel over) ----
        let conf: Vec<Vec<SymbolId>> = (0..n)
            .map(|id| {
                let mut out: Vec<SymbolId> = graph
                    .calls(id)
                    .iter()
                    .filter(|c| c.confident)
                    .flat_map(|c| c.candidates.iter().copied())
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();

        // ---- transitive acquire-sets, fixed-pointed over conf edges ----
        let mut trans_acq: Vec<BTreeSet<usize>> = (0..n)
            .map(|id| acqs[id].iter().map(|a| a.class).collect())
            .collect();
        loop {
            let mut changed = false;
            for id in 0..n {
                for &t in &conf[id] {
                    if t == id {
                        continue;
                    }
                    let add: Vec<usize> = trans_acq[t]
                        .iter()
                        .copied()
                        .filter(|c| !trans_acq[id].contains(c))
                        .collect();
                    if !add.is_empty() {
                        trans_acq[id].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // ---- order edges from hold regions ----
        let mut order: BTreeMap<(usize, usize), OrderEdge> = BTreeMap::new();
        for (id, sym) in syms.iter().enumerate() {
            let Some(span) = sym.body else { continue };
            if acqs[id].is_empty() {
                continue;
            }
            let tokens = files[sym.file].tokens;
            for held in &acqs[id] {
                let region = graph::hold_region(tokens, span, &graph.acquisitions(id)[held.idx]);
                // Token-ordered events, so the first witness per edge wins
                // deterministically.
                let mut events: Vec<(usize, usize, u32, Option<SymbolId>)> = Vec::new();
                for other in &acqs[id] {
                    if other.class != held.class && (region.start..region.end).contains(&other.tok)
                    {
                        events.push((other.tok, other.class, other.line, None));
                    }
                }
                for call in graph.calls(id) {
                    if !call.confident || !(region.start..region.end).contains(&call.site.tok) {
                        continue;
                    }
                    for &t in &call.candidates {
                        for &c in &trans_acq[t] {
                            if c != held.class {
                                events.push((call.site.tok, c, call.site.line, Some(t)));
                            }
                        }
                    }
                }
                events.sort_by_key(|&(tok, class, _, _)| (tok, class));
                for (_, to, line, via) in events {
                    order
                        .entry((held.class, to))
                        .or_insert(OrderEdge { sym: id, line, via });
                }
            }
        }

        let mut hits: Vec<(usize, Hit)> = Vec::new();
        cycle_hits(&classes, &order, syms, &mut hits);

        // ---- atomic operation sites, classified by Ordering ----
        let mut atomics: BTreeMap<String, AtomicClass> = BTreeMap::new();
        for (id, sym) in syms.iter().enumerate() {
            let Some(span) = sym.body else { continue };
            let tokens = files[sym.file].tokens;
            let spans = &file_spans[sym.file];
            let marker = handshake_marker(tokens, span);
            for i in span.0..span.1.min(tokens.len()) {
                if owner(spans, i) != Some(id) {
                    continue;
                }
                let Some(op) = scan_atomic_op(tokens, i) else {
                    continue;
                };
                let class = classify_chain(&receiver_chain(tokens, i), sym);
                let entry = atomics.entry(class).or_insert(AtomicClass {
                    ops: Vec::new(),
                    handshake_via: None,
                });
                entry.ops.push(AtomicOp {
                    sym: id,
                    line: tokens[i].line,
                    op: op.0,
                    orderings: op.1,
                    relaxed_only: op.2,
                });
                if marker && entry.handshake_via.is_none() {
                    entry.handshake_via = Some(id);
                }
            }
        }
        for (class, ac) in &atomics {
            let mixed =
                ac.ops.iter().any(|o| o.relaxed_only) && ac.ops.iter().any(|o| !o.relaxed_only);
            for op in &ac.ops {
                if !op.relaxed_only {
                    continue;
                }
                let reason = if mixed {
                    "is accessed with stronger orderings elsewhere".to_string()
                } else if let Some(h) = ac.handshake_via {
                    format!(
                        "synchronises via a `Condvar`/`fence` handshake in `{}`",
                        syms[h].fq
                    )
                } else {
                    continue; // pure counter: Relaxed everywhere, no handshake
                };
                hits.push((
                    syms[op.sym].file,
                    Hit {
                        rule: RuleId::AtomicOrdering,
                        line: op.line,
                        message: format!(
                            "`Relaxed`-only `{}` on atomic `{class}`, which {reason}",
                            op.op
                        ),
                    },
                ));
            }
        }

        // ---- blocking sites and propagation ----
        let mut sites: Vec<Vec<BlockSite>> = (0..n).map(|_| Vec::new()).collect();
        for (id, sym) in syms.iter().enumerate() {
            let Some(span) = sym.body else { continue };
            let tokens = files[sym.file].tokens;
            let spans = &file_spans[sym.file];
            for i in span.0..span.1.min(tokens.len()) {
                if owner(spans, i) != Some(id) {
                    continue;
                }
                if let Some(what) = scan_blocking(tokens, i) {
                    sites[id].push(BlockSite {
                        line: tokens[i].line,
                        tok: Some(i),
                        what,
                    });
                }
            }
            for seed in &eff.seeds[id] {
                if seed.mask & effects::IO != 0 {
                    sites[id].push(BlockSite {
                        line: seed.line,
                        tok: None,
                        what: seed.what.clone(),
                    });
                }
            }
        }
        let mut trans_block: Vec<bool> = sites.iter().map(|s| !s.is_empty()).collect();
        loop {
            let mut changed = false;
            for id in 0..n {
                if trans_block[id] {
                    continue;
                }
                if conf[id].iter().any(|&t| trans_block[t]) {
                    trans_block[id] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (id, sym) in syms.iter().enumerate() {
            let Some(span) = sym.body else { continue };
            if acqs[id].is_empty() {
                continue;
            }
            let tokens = files[sym.file].tokens;
            for held in &acqs[id] {
                let region = graph::hold_region(tokens, span, &graph.acquisitions(id)[held.idx]);
                if region.end <= region.start {
                    continue;
                }
                let lo = tokens.get(region.start).map_or(u32::MAX, |t| t.line);
                let hi = tokens
                    .get(region.end.min(tokens.len()).saturating_sub(1))
                    .map_or(0, |t| t.line);
                for site in &sites[id] {
                    let inside = match site.tok {
                        Some(tok) => (region.start..region.end).contains(&tok),
                        None => site.line >= lo && site.line <= hi,
                    };
                    if inside {
                        hits.push((
                            sym.file,
                            Hit {
                                rule: RuleId::BlockingUnderLock,
                                line: site.line,
                                message: format!(
                                    "blocking {} in `{}` while a `{}` guard is held",
                                    site.what, sym.fq, classes[held.class].0
                                ),
                            },
                        ));
                    }
                }
                for call in graph.calls(id) {
                    if !call.confident || !(region.start..region.end).contains(&call.site.tok) {
                        continue;
                    }
                    if let Some(&t) = call.candidates.iter().find(|&&t| trans_block[t]) {
                        hits.push((
                            sym.file,
                            Hit {
                                rule: RuleId::BlockingUnderLock,
                                line: call.site.line,
                                message: format!(
                                    "`{}` guard held in `{}` across call into potentially \
                                     blocking `{}`",
                                    classes[held.class].0, sym.fq, syms[t].fq
                                ),
                            },
                        ));
                    }
                }
            }
        }

        hits.sort_by(|a, b| {
            (a.0, a.1.rule, a.1.line, a.1.message.as_str()).cmp(&(
                b.0,
                b.1.rule,
                b.1.line,
                b.1.message.as_str(),
            ))
        });
        hits.dedup_by(|a, b| a.0 == b.0 && a.1.rule == b.1.rule && a.1.line == b.1.line);

        let report = render_report(files, syms, &classes, &acqs, &order, &atomics);
        Concurrency { hits, report }
    }

    /// The raw hits, (file index, hit)-keyed like every semantic pass.
    #[must_use]
    pub fn into_hits(self) -> Vec<(usize, Hit)> {
        self.hits
    }

    /// The rendered `ntv-concurrency/1` report (byte-identical across
    /// runs over the same inputs).
    #[must_use]
    pub fn report(&self) -> &str {
        &self.report
    }
}

/// Innermost-span token ownership: nested fns own their tokens.
fn owner(spans: &[(SymbolId, (usize, usize))], tok: usize) -> Option<SymbolId> {
    spans
        .iter()
        .filter(|(_, (a, b))| (*a..*b).contains(&tok))
        .max_by_key(|(_, (a, _))| *a)
        .map(|&(o, _)| o)
}

/// Walk the receiver chain backwards from the method ident at `m`,
/// returning it root-first: `self.gate.free.load(..)` with `m` at `load`
/// yields `["self", "gate", "free"]`. A call segment contributes its name
/// (`OpPointCache::global().stats(..)` yields `["global()"]`); anything
/// unrecognisable truncates the chain at that point.
fn receiver_chain(tokens: &[Token], m: usize) -> Vec<String> {
    let mut rev: Vec<String> = Vec::new();
    let mut dot = match m.checked_sub(1) {
        Some(d) if tokens[d].is_punct('.') => d,
        _ => {
            return rev;
        }
    };
    'walk: while let Some(end) = dot.checked_sub(1) {
        if let Some(seg) = tokens[end].ident() {
            rev.push(seg.to_string());
            match end.checked_sub(1) {
                Some(p) if tokens[p].is_punct('.') => dot = p,
                _ => break,
            }
        } else if tokens[end].is_punct(')') {
            // A call segment: skip backwards over the balanced `(..)` and
            // take the name before it.
            let mut depth = 0i64;
            let mut k = end;
            loop {
                if tokens[k].is_punct(')') {
                    depth += 1;
                } else if tokens[k].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                let Some(prev) = k.checked_sub(1) else {
                    break 'walk;
                };
                k = prev;
            }
            let Some(seg) = k.checked_sub(1).and_then(|p| tokens[p].ident()) else {
                break;
            };
            rev.push(format!("{seg}()"));
            match k.checked_sub(2) {
                Some(p) if tokens[p].is_punct('.') => dot = p,
                _ => break,
            }
        } else {
            break;
        }
    }
    rev.reverse();
    rev
}

/// SCREAMING_CASE identifies a `static` (module-scoped) lock or atomic.
fn is_screaming(s: &str) -> bool {
    s.chars().any(|c| c.is_ascii_uppercase())
        && s.chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// The module prefix of a symbol's fully-qualified name (everything
/// before the optional `::Type` and the `::name` tail).
fn module_of(sym: &Symbol) -> String {
    let tail = sym.name.len() + 2 + sym.impl_ty.as_ref().map_or(0, |t| t.len() + 2);
    sym.fq[..sym.fq.len().saturating_sub(tail)].to_string()
}

/// Resolve a receiver chain to its lock/atomic class name.
///
/// Identity is `(container, field-or-static path)`: a SCREAMING static is
/// scoped to the using module; otherwise the leading receiver ident
/// (`self`, a local, a param) is stripped and the remaining field path is
/// scoped to the enclosing impl type (or module for free fns), so
/// `self.entries` and `cache.entries` in `OpPointCache` methods both
/// resolve to `OpPointCache.entries`.
fn classify_chain(chain: &[String], sym: &Symbol) -> String {
    let module = module_of(sym);
    if chain.is_empty() {
        return format!("{module}.<expr>");
    }
    if is_screaming(&chain[0]) {
        return format!("{module}.{}", chain.join("."));
    }
    let container = sym.impl_ty.clone().unwrap_or(module);
    let path = if chain.len() > 1 { &chain[1..] } else { chain };
    format!("{container}.{}", path.join("."))
}

/// Does this fn body mention a `Condvar`/`Barrier`, a `fence(..)`, or a
/// `.wait(..)`/`.notify_*(..)` call — i.e. is it handshake-adjacent?
fn handshake_marker(tokens: &[Token], span: (usize, usize)) -> bool {
    for i in span.0..span.1.min(tokens.len()) {
        let Some(id) = tokens[i].ident() else {
            continue;
        };
        if HANDSHAKE_TYPES.contains(&id) {
            return true;
        }
        if id == "fence" && tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            return true;
        }
        if HANDSHAKE_METHODS.contains(&id)
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            return true;
        }
    }
    false
}

/// If token `i` is an atomic operation (`.op(..)` whose balanced argument
/// span names at least one `Ordering` variant), return
/// `(op, sorted distinct orderings, all-Relaxed?)`.
fn scan_atomic_op(tokens: &[Token], i: usize) -> Option<(String, Vec<String>, bool)> {
    let name = tokens[i].ident()?;
    if !ATOMIC_OPS.contains(&name) {
        return None;
    }
    if i == 0 || !tokens[i - 1].is_punct('.') {
        return None;
    }
    if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let end = parser::skip_balanced(tokens, i + 1);
    let mut ords: Vec<&str> = Vec::new();
    for tok in &tokens[(i + 2)..end.saturating_sub(1)] {
        if let Some(o) = tok.ident() {
            if ORDERINGS.contains(&o) {
                ords.push(o);
            }
        }
    }
    if ords.is_empty() {
        return None; // `.load(..)` et al. without an Ordering is not atomic
    }
    let relaxed_only = ords.iter().all(|&o| o == "Relaxed");
    let mut sorted: Vec<String> = ords.iter().map(|s| (*s).to_string()).collect();
    sorted.sort();
    sorted.dedup();
    Some((name.to_string(), sorted, relaxed_only))
}

/// If token `i` is a call that can park the thread, return its display
/// form. Shape checks: `fn name(` definitions are skipped; `.read(..)` /
/// `.write(..)` only count with a non-empty argument list (empty is a
/// lock acquisition); `join` only counts with an empty one (slice
/// `.join(", ")` takes a separator).
fn scan_blocking(tokens: &[Token], i: usize) -> Option<String> {
    let name = tokens[i].ident()?;
    let open = i + 1;
    if !tokens.get(open).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    if i > 0 && tokens[i - 1].ident() == Some("fn") {
        return None;
    }
    let empty = tokens.get(open + 1).is_some_and(|t| t.is_punct(')'));
    let blocking = match name {
        "read" | "write" => i > 0 && tokens[i - 1].is_punct('.') && !empty,
        "join" => empty,
        _ => BLOCKING_CALLS.contains(&name),
    };
    blocking.then(|| format!("`.{name}(..)`"))
}

/// Find every cycle in the order graph and emit one diagnostic per cycle,
/// anchored at the first edge's witness. Each cycle is discovered exactly
/// once: a BFS from class `s` restricted to classes `>= s` finds the
/// shortest cycle whose minimum class is `s`.
fn cycle_hits(
    classes: &[(String, &'static str)],
    order: &BTreeMap<(usize, usize), OrderEdge>,
    syms: &[Symbol],
    hits: &mut Vec<(usize, Hit)>,
) {
    let nc = classes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nc];
    for &(a, b) in order.keys() {
        adj[a].push(b);
    }
    for s in 0..nc {
        let mut parent: Vec<Option<usize>> = vec![None; nc];
        let mut seen = vec![false; nc];
        seen[s] = true;
        let mut queue = VecDeque::from([s]);
        let mut closing: Option<usize> = None;
        'bfs: while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if v == s {
                    closing = Some(u);
                    break 'bfs;
                }
                if v > s && !seen[v] {
                    seen[v] = true;
                    parent[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        let Some(mut u) = closing else { continue };
        let mut nodes = vec![u];
        while let Some(p) = parent[u] {
            nodes.push(p);
            u = p;
        }
        nodes.reverse(); // [s, .., closing]
        let mut msg = format!("`{}`", classes[nodes[0]].0);
        for w in 0..nodes.len() {
            let from = nodes[w];
            let to = nodes[(w + 1) % nodes.len()];
            let e = &order[&(from, to)];
            let via = e
                .via
                .map_or(String::new(), |t| format!(", via `{}`", syms[t].fq));
            msg.push_str(&format!(
                " -> `{}` (acquired in `{}` line {}{via})",
                classes[to].0, syms[e.sym].fq, e.line
            ));
        }
        let e0 = &order[&(nodes[0], nodes[1 % nodes.len()])];
        hits.push((
            syms[e0.sym].file,
            Hit {
                rule: RuleId::LockOrderCycle,
                line: e0.line,
                message: format!("lock-order cycle: {msg}"),
            },
        ));
    }
}

/// Render the `ntv-concurrency/1` inventory: every lock class with its
/// acquisition sites, every order edge with its witness, every atomic
/// class with its per-op orderings and handshake flag. Sorted at every
/// level, so the output is byte-identical across runs.
fn render_report(
    files: &[SemFile],
    syms: &[Symbol],
    classes: &[(String, &'static str)],
    acqs: &[Vec<Acq>],
    order: &BTreeMap<(usize, usize), OrderEdge>,
    atomics: &BTreeMap<String, AtomicClass>,
) -> String {
    let rel = |fi: usize| files[fi].rel.to_string_lossy().replace('\\', "/");
    let lock_items: Vec<String> = classes
        .iter()
        .enumerate()
        .map(|(c, (name, kind))| {
            let mut sites: Vec<String> = Vec::new();
            for (id, sym) in syms.iter().enumerate() {
                for a in &acqs[id] {
                    if a.class == c {
                        sites.push(format!(
                            "{{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                            json::escape(&sym.fq),
                            json::escape(&rel(sym.file)),
                            a.line
                        ));
                    }
                }
            }
            format!(
                "{{\"class\": \"{}\", \"kind\": \"{kind}\", \"acquisitions\": [{}]}}",
                json::escape(name),
                sites.join(", ")
            )
        })
        .collect();
    let order_items: Vec<String> = order
        .iter()
        .map(|(&(a, b), e)| {
            let via = e.via.map_or(String::new(), |t| {
                format!(", \"via\": \"{}\"", json::escape(&syms[t].fq))
            });
            format!(
                "{{\"from\": \"{}\", \"to\": \"{}\", \"fn\": \"{}\", \"file\": \"{}\", \
                 \"line\": {}{via}}}",
                json::escape(&classes[a].0),
                json::escape(&classes[b].0),
                json::escape(&syms[e.sym].fq),
                json::escape(&rel(syms[e.sym].file)),
                e.line
            )
        })
        .collect();
    let atomic_items: Vec<String> = atomics
        .iter()
        .map(|(class, ac)| {
            let mixed =
                ac.ops.iter().any(|o| o.relaxed_only) && ac.ops.iter().any(|o| !o.relaxed_only);
            let handshake = mixed || ac.handshake_via.is_some();
            let mut union: Vec<String> = ac
                .ops
                .iter()
                .flat_map(|o| o.orderings.iter().cloned())
                .collect();
            union.sort();
            union.dedup();
            let ops: Vec<String> = ac
                .ops
                .iter()
                .map(|o| {
                    format!(
                        "{{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \"op\": \"{}\", \
                         \"orderings\": {}}}",
                        json::escape(&syms[o.sym].fq),
                        json::escape(&rel(syms[o.sym].file)),
                        o.line,
                        o.op,
                        json::string_array(&o.orderings)
                    )
                })
                .collect();
            format!(
                "{{\"class\": \"{}\", \"orderings\": {}, \"handshake\": {handshake}, \
                 \"ops\": [{}]}}",
                json::escape(class),
                json::string_array(&union),
                ops.join(", ")
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"ntv-concurrency/1\",\n  \"locks\": {},\n  \"order\": {},\n  \
         \"atomics\": {}\n}}\n",
        json::array(&lock_items, 4, 2),
        json::array(&order_items, 4, 2),
        json::array(&atomic_items, 4, 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use std::path::Path;

    fn analyze(inputs: &[(&str, &str)]) -> (Vec<(usize, Hit)>, String) {
        let lexed: Vec<_> = inputs.iter().map(|(_, s)| lex(s)).collect();
        let parsed: Vec<_> = lexed.iter().map(parse).collect();
        let sem: Vec<SemFile> = inputs
            .iter()
            .enumerate()
            .map(|(i, (rel, _))| SemFile {
                rel: Path::new(*rel),
                tokens: &lexed[i].tokens,
                parsed: &parsed[i],
                test_ranges: &[],
            })
            .collect();
        let g = Graph::build(&sem);
        let eff = Effects::collect(&g, &sem);
        let conc = Concurrency::analyze(&g, &sem, &eff);
        let report = conc.report().to_string();
        (conc.into_hits(), report)
    }

    fn rules_of(hits: &[(usize, Hit)]) -> Vec<RuleId> {
        hits.iter().map(|(_, h)| h.rule).collect()
    }

    const CYCLE_SRC: &str = "
use std::sync::Mutex;
static REGISTRY: Mutex<Vec<u64>> = Mutex::new(Vec::new());
static JOURNAL: Mutex<Vec<u64>> = Mutex::new(Vec::new());
pub fn record(v: u64) {
    let mut reg = REGISTRY.lock().expect(\"registry\");
    let mut jl = JOURNAL.lock().expect(\"journal\");
    reg.push(v);
    jl.push(v);
}
pub fn replay() -> usize {
    let jl = JOURNAL.lock().expect(\"journal\");
    let reg = REGISTRY.lock().expect(\"registry\");
    jl.len() + reg.len()
}
";

    #[test]
    fn opposite_order_acquisitions_form_a_cycle() {
        let (hits, _) = analyze(&[("crates/core/src/pair.rs", CYCLE_SRC)]);
        assert_eq!(rules_of(&hits), vec![RuleId::LockOrderCycle], "{hits:?}");
        let (_, hit) = &hits[0];
        // Anchored at the minimum class's first edge: JOURNAL -> REGISTRY
        // is witnessed by `replay`'s REGISTRY acquisition on line 13.
        assert_eq!(hit.line, 13);
        assert!(hit.message.contains("ntv_core::pair.JOURNAL"), "{hit:?}");
        assert!(hit.message.contains("ntv_core::pair.REGISTRY"), "{hit:?}");
        assert!(hit.message.contains("ntv_core::pair::record"), "{hit:?}");
        assert!(hit.message.contains("ntv_core::pair::replay"), "{hit:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = CYCLE_SRC.replace(
            "let jl = JOURNAL.lock().expect(\"journal\");\n    let reg = REGISTRY.lock().expect(\"registry\");",
            "let reg = REGISTRY.lock().expect(\"registry\");\n    let jl = JOURNAL.lock().expect(\"journal\");",
        );
        let (hits, report) = analyze(&[("crates/core/src/pair.rs", &src)]);
        assert!(hits.is_empty(), "{hits:?}");
        // The consistent edge is still inventoried.
        assert!(
            report.contains("\"from\": \"ntv_core::pair.REGISTRY\""),
            "{report}"
        );
    }

    #[test]
    fn cross_file_opposite_order_cycles_only_when_analyzed_together() {
        let a = "
use std::sync::Mutex;
pub struct SplitPair { pub left: Mutex<u64>, pub right: Mutex<u64> }
impl SplitPair {
    pub fn lr(&self) -> u64 {
        let l = self.left.lock().expect(\"left\");
        let r = self.right.lock().expect(\"right\");
        *l + *r
    }
}
";
        let b = "
use crate::split_a::SplitPair;
impl SplitPair {
    pub fn rl(&self) -> u64 {
        let r = self.right.lock().expect(\"right\");
        let l = self.left.lock().expect(\"left\");
        *l + *r
    }
}
";
        let (alone_a, _) = analyze(&[("crates/core/src/split_a.rs", a)]);
        let (alone_b, _) = analyze(&[("crates/core/src/split_b.rs", b)]);
        assert!(alone_a.is_empty(), "{alone_a:?}");
        assert!(alone_b.is_empty(), "{alone_b:?}");
        let (together, _) = analyze(&[
            ("crates/core/src/split_a.rs", a),
            ("crates/core/src/split_b.rs", b),
        ]);
        assert_eq!(
            rules_of(&together),
            vec![RuleId::LockOrderCycle],
            "{together:?}"
        );
        assert!(together[0].1.message.contains("SplitPair.left"));
        assert!(together[0].1.message.contains("SplitPair.right"));
    }

    #[test]
    fn mixed_ordering_class_denies_relaxed_but_not_cas_failure() {
        let src = "
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
pub struct Flag { ready: AtomicBool, hits: AtomicU64 }
impl Flag {
    pub fn publish(&self) { self.ready.store(true, Ordering::Relaxed); }
    pub fn consume(&self) -> bool { self.ready.load(Ordering::Acquire) }
    pub fn try_claim(&self) -> bool {
        self.ready.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok()
    }
    pub fn count(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }
    pub fn total(&self) -> u64 { self.hits.load(Ordering::Relaxed) }
}
";
        let (hits, report) = analyze(&[("crates/core/src/flag.rs", src)]);
        // Only the all-Relaxed store on the mixed class fires; the CAS's
        // Relaxed *failure* ordering and the all-Relaxed counter stay
        // clean.
        assert_eq!(rules_of(&hits), vec![RuleId::AtomicOrdering], "{hits:?}");
        assert_eq!(hits[0].1.line, 5);
        assert!(hits[0].1.message.contains("Flag.ready"), "{hits:?}");
        assert!(
            report.contains(
                "\"class\": \"Flag.hits\", \"orderings\": [\"Relaxed\"], \"handshake\": false"
            ),
            "{report}"
        );
    }

    #[test]
    fn fence_proximity_denies_relaxed_ops() {
        let src = "
use std::sync::atomic::{fence, AtomicU64, Ordering};
pub struct Seq { head: AtomicU64 }
impl Seq {
    pub fn bump(&self) {
        fence(Ordering::Release);
        self.head.fetch_add(1, Ordering::Relaxed);
    }
}
";
        let (hits, _) = analyze(&[("crates/core/src/seq.rs", src)]);
        assert_eq!(rules_of(&hits), vec![RuleId::AtomicOrdering], "{hits:?}");
        assert_eq!(hits[0].1.line, 7);
        assert!(hits[0].1.message.contains("Seq::bump"), "{hits:?}");
    }

    #[test]
    fn blocking_inside_guard_fires_and_outside_stays_clean() {
        let src = "
use std::sync::Mutex;
static LOG: Mutex<Vec<String>> = Mutex::new(Vec::new());
pub fn drain(rx: &std::sync::mpsc::Receiver<String>) {
    let mut log = LOG.lock().expect(\"log\");
    let item = rx.recv().expect(\"sender alive\");
    log.push(item);
}
pub fn drain_ok(rx: &std::sync::mpsc::Receiver<String>) {
    let item = rx.recv().expect(\"sender alive\");
    let mut log = LOG.lock().expect(\"log\");
    log.push(item);
}
";
        let (hits, _) = analyze(&[("crates/core/src/q.rs", src)]);
        assert_eq!(rules_of(&hits), vec![RuleId::BlockingUnderLock], "{hits:?}");
        assert_eq!(hits[0].1.line, 6);
        assert!(hits[0].1.message.contains("recv"), "{hits:?}");
    }

    #[test]
    fn transitive_blocking_through_confident_call_fires() {
        let src = "
use std::sync::mpsc::Receiver;
use std::sync::Mutex;
static STATE: Mutex<u64> = Mutex::new(0);
pub fn tick(rx: &Receiver<u64>) -> u64 {
    let mut state = STATE.lock().expect(\"state\");
    *state += pump(rx);
    *state
}
fn pump(rx: &Receiver<u64>) -> u64 { rx.recv().unwrap_or(0) }
";
        let (hits, _) = analyze(&[("crates/core/src/t.rs", src)]);
        assert_eq!(rules_of(&hits), vec![RuleId::BlockingUnderLock], "{hits:?}");
        assert_eq!(hits[0].1.line, 7);
        assert!(hits[0].1.message.contains("pump"), "{hits:?}");
    }

    #[test]
    fn receiver_chains_unify_self_and_local_receivers() {
        let src = "
use std::sync::RwLock;
pub struct Cache { entries: RwLock<u64> }
impl Cache {
    pub fn read_len(&self) -> u64 { *self.entries.read().expect(\"lock\") }
    pub fn write_zero(cache: &Cache) { *cache.entries.write().expect(\"lock\") = 0; }
}
";
        let (hits, report) = analyze(&[("crates/core/src/c.rs", src)]);
        assert!(hits.is_empty(), "{hits:?}");
        // Both acquisitions land on one class despite different receivers.
        assert!(
            report.contains("\"class\": \"Cache.entries\", \"kind\": \"rwlock\""),
            "{report}"
        );
        assert_eq!(report.matches("\"class\": ").count(), 1, "{report}");
        assert_eq!(report.matches("\"fn\": ").count(), 2, "{report}");
    }

    #[test]
    fn report_is_deterministic_and_shaped() {
        let (_, report) = analyze(&[("crates/core/src/pair.rs", CYCLE_SRC)]);
        assert!(
            report.starts_with("{\n  \"schema\": \"ntv-concurrency/1\","),
            "{report}"
        );
        assert!(report.contains("\"locks\": ["), "{report}");
        assert!(report.contains("\"kind\": \"mutex\""), "{report}");
        assert!(report.contains("\"order\": ["), "{report}");
        assert!(report.ends_with("\"atomics\": []\n}\n"), "{report}");
        let (_, again) = analyze(&[("crates/core/src/pair.rs", CYCLE_SRC)]);
        assert_eq!(report, again);
    }
}
