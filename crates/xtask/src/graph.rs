//! Workspace call graph and the reachability-powered semantic rules.
//!
//! Built on the [`parser`](crate::parser) declaration extraction plus
//! [`resolve`](crate::resolve) name resolution, this module answers the
//! question the per-file rules cannot: *is this panicking operation
//! reachable from a public API?* Three analyses run over the graph:
//!
//! * **`ntv::panic-path`** — documented-invariant panic forms (`.expect(..)`,
//!   message-carrying `unreachable!(..)`) and slice indexing by a
//!   caller-supplied parameter, flagged only when the enclosing function is
//!   reachable from a `pub` function of a Library-class file. Bare
//!   `unwrap()` and the `panic!` family stay with the always-on
//!   `ntv::unwrap` / `ntv::panic` rules — this rule covers the forms those
//!   deliberately allow, once they sit on a public path.
//! * **`ntv::lock-discipline`** — `RwLock`/`Mutex` guards (recognized by the
//!   workspace idiom `.read()/.write()/.lock()` + `.unwrap()/.expect(..)`)
//!   held across calls into functions that themselves (transitively)
//!   acquire a lock, across a second direct acquisition, or across the
//!   Gauss–Hermite build path (`PathDistribution::build`); and
//!   `OnceLock::get_or_init` closures that call back into lock-acquiring
//!   code. This is exactly the discipline `ntv_core::op_cache` documents:
//!   the map lock is never held across a build, racers park per-entry.
//! * Reachability itself, reused by the engine for dead-waiver analysis.
//!
//! The graph is deterministic: files arrive sorted by path, symbols are
//! numbered in (file, line) order, and every worklist is processed in
//! ascending id order, so two runs emit byte-identical diagnostics.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::Token;
use crate::parser::{self, CallSite, ParsedFile};
use crate::resolve::{FileInput, SymbolId, SymbolTable};
use crate::rules::{Hit, RuleId};

/// One file's inputs to the semantic pass (Library-class files only — the
/// rules police library internals; bench/harness consumers cannot change
/// library-internal reachability).
#[derive(Debug, Clone, Copy)]
pub struct SemFile<'a> {
    /// Workspace-relative path (classification already done by the engine).
    pub rel: &'a Path,
    /// The file's full token stream.
    pub tokens: &'a [Token],
    /// Extracted declarations.
    pub parsed: &'a ParsedFile,
    /// Inclusive `#[cfg(test)]` line ranges (test fns are not graph nodes).
    pub test_ranges: &'a [(u32, u32)],
}

/// A panicking operation found inside a function body.
#[derive(Debug, Clone)]
enum PanicOp {
    /// `.expect(..)` method call.
    Expect,
    /// `unreachable!(..)` with a message (argument-less is `ntv::panic`).
    UnreachableMsg,
    /// Slice/array indexing whose index uses the named fn parameter raw.
    ParamIndex(String),
}

/// A recognized lock acquisition (`.read()/.write()/.lock()` followed by
/// `.unwrap()/.expect(..)`). Shared with the [`concurrency`](crate::concurrency)
/// pass, which classifies acquisitions into lock classes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Acquisition {
    /// Token index of the `read`/`write`/`lock` identifier.
    pub(crate) tok: usize,
    /// Token index just past the `.unwrap()/.expect(..)` suffix.
    pub(crate) chain_end: usize,
    /// 1-based line of the acquisition.
    pub(crate) line: u32,
}

/// The token span during which a guard is considered held.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HoldRegion {
    pub(crate) start: usize,
    pub(crate) end: usize,
    /// `OnceLock::get_or_init` closures only check lock-acquiring callees;
    /// build-under-lock inside the per-entry cell is the sanctioned pattern.
    pub(crate) once_cell: bool,
}

/// One resolved call site inside a symbol's body.
pub struct Call {
    /// The call as parsed (name, qualifier, token/line position).
    pub site: CallSite,
    /// Every workspace symbol the call may target (over-approximate).
    pub candidates: Vec<SymbolId>,
    /// Whether resolution was confident. The precision-sensitive analyses
    /// (lock discipline, effect propagation for the readiness report) only
    /// follow `candidates` when this is set; over-approximate fallbacks go
    /// into `edges` for reachability and widen the effect lattice instead.
    pub confident: bool,
}

/// The analyzed call graph plus per-symbol facts.
pub struct Graph {
    /// Symbol table (public so the engine can display roots).
    pub table: SymbolTable,
    /// Over-approximate callees per symbol (ascending, deduplicated).
    edges: Vec<Vec<SymbolId>>,
    /// Resolved call list per symbol, with token positions.
    calls: Vec<Vec<Call>>,
    /// Per-symbol panic operations (line, op).
    panic_ops: Vec<Vec<(u32, PanicOp)>>,
    /// Per-symbol lock acquisitions.
    acquisitions: Vec<Vec<Acquisition>>,
    /// Per-symbol `get_or_init` closure spans.
    once_regions: Vec<Vec<(usize, usize)>>,
    /// Witness public root per symbol (`usize::MAX` = unreachable).
    witness: Vec<SymbolId>,
    /// Symbol (transitively) acquires a lock.
    trans_lock: Vec<bool>,
    /// Symbol (transitively) reaches `PathDistribution::build`.
    reaches_build: Vec<bool>,
}

const INDEX_PREV_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "dyn", "in", "as", "return", "break", "move", "box", "loop", "while",
    "if", "else", "match", "unsafe", "const", "static", "where", "impl", "for", "fn", "use", "pub",
    "struct", "enum", "trait", "type", "mod", "crate",
];

impl Graph {
    /// Build the graph over `files` (already sorted by path).
    #[must_use]
    pub fn build(files: &[SemFile]) -> Graph {
        let inputs: Vec<FileInput<'_>> = files
            .iter()
            .enumerate()
            .map(|(i, f)| (i, f.rel, f.parsed, f.test_ranges))
            .collect();
        let table = SymbolTable::build(&inputs);
        let n = table.symbols.len();

        // Innermost-span ownership per file: (symbol, body span), so calls
        // inside a nested fn are attributed to the nested fn only.
        let mut file_spans: Vec<Vec<(SymbolId, (usize, usize))>> = vec![Vec::new(); files.len()];
        for (id, sym) in table.symbols.iter().enumerate() {
            if let Some(span) = sym.body {
                file_spans[sym.file].push((id, span));
            }
        }
        let owner = |file: usize, tok: usize| -> Option<SymbolId> {
            file_spans[file]
                .iter()
                .filter(|(_, (a, b))| (*a..*b).contains(&tok))
                .max_by_key(|(_, (a, _))| *a)
                .map(|&(id, _)| id)
        };

        let mut edges: Vec<Vec<SymbolId>> = vec![Vec::new(); n];
        let mut edges_conf: Vec<Vec<SymbolId>> = vec![Vec::new(); n];
        let mut calls: Vec<Vec<Call>> = (0..n).map(|_| Vec::new()).collect();
        let mut panic_ops: Vec<Vec<(u32, PanicOp)>> = vec![Vec::new(); n];
        let mut acquisitions: Vec<Vec<Acquisition>> = vec![Vec::new(); n];
        let mut once_regions: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];

        for (id, sym) in table.symbols.iter().enumerate() {
            let Some(span) = sym.body else { continue };
            let file = &files[sym.file];
            let impl_ty = sym.impl_ty.as_deref();
            for call in parser::calls_in(file.tokens, span) {
                if owner(sym.file, call.tok) != Some(id) {
                    continue; // belongs to a nested fn
                }
                let (mut all, conf) = table.resolve_with_confidence(&call, impl_ty);
                all.retain(|&t| t != id); // self-recursion adds nothing
                for &t in &all {
                    edges[id].push(t);
                    if conf {
                        edges_conf[id].push(t);
                    }
                }
                calls[id].push(Call {
                    site: call,
                    candidates: all,
                    confident: conf,
                });
            }
            edges[id].sort_unstable();
            edges[id].dedup();
            edges_conf[id].sort_unstable();
            edges_conf[id].dedup();

            let params: BTreeSet<String> = file.parsed.fns[sym.sig]
                .params
                .iter()
                .flat_map(|p| {
                    p.name
                        .split(|c: char| !c.is_alphanumeric() && c != '_')
                        .filter(|s| !s.is_empty() && *s != "_")
                        .map(str::to_owned)
                        .collect::<Vec<_>>()
                })
                .collect();
            panic_ops[id] = scan_panic_ops(file.tokens, span, &params, |tok| {
                owner(sym.file, tok) == Some(id)
            });
            acquisitions[id] = scan_acquisitions(file.tokens, span);
            once_regions[id] = scan_once_regions(file.tokens, span);
        }

        // Reachability from public roots, first root (lowest id) wins as
        // the reported witness. Roots processed ascending → deterministic.
        let mut witness = vec![usize::MAX; n];
        for root in table.public_roots() {
            if witness[root] != usize::MAX {
                continue;
            }
            let mut queue = vec![root];
            witness[root] = root;
            while let Some(s) = queue.pop() {
                for &t in &edges[s] {
                    if witness[t] == usize::MAX {
                        witness[t] = root;
                        queue.push(t);
                    }
                }
            }
        }

        // Reverse propagation: "transitively acquires a lock" and
        // "transitively reaches PathDistribution::build".
        let direct_lock: Vec<bool> = (0..n).map(|id| !acquisitions[id].is_empty()).collect();
        let is_build: Vec<bool> = table
            .symbols
            .iter()
            .map(|s| s.name == "build" && s.impl_ty.as_deref() == Some("PathDistribution"))
            .collect();
        let trans_lock = propagate_callers(&edges_conf, &direct_lock);
        let reaches_build = propagate_callers(&edges_conf, &is_build);

        Graph {
            table,
            edges,
            calls,
            panic_ops,
            acquisitions,
            once_regions,
            witness,
            trans_lock,
            reaches_build,
        }
    }

    /// Is `sym` reachable from any public root?
    #[must_use]
    pub fn reachable(&self, sym: SymbolId) -> bool {
        self.witness[sym] != usize::MAX
    }

    /// The witness public root that makes `sym` reachable, if any (the
    /// lowest-id public function with a call path to `sym`).
    #[must_use]
    pub fn witness_root(&self, sym: SymbolId) -> Option<SymbolId> {
        (self.witness[sym] != usize::MAX).then(|| self.witness[sym])
    }

    /// Forward closure: every symbol reachable from `roots` (including the
    /// roots themselves), ascending — deterministic for report generation.
    #[must_use]
    pub fn reach_from(&self, roots: &[SymbolId]) -> Vec<SymbolId> {
        let mut seen = vec![false; self.table.symbols.len()];
        let mut queue: Vec<SymbolId> = roots.to_vec();
        for &r in roots {
            seen[r] = true;
        }
        while let Some(s) = queue.pop() {
            for &t in &self.edges[s] {
                if !seen[t] {
                    seen[t] = true;
                    queue.push(t);
                }
            }
        }
        (0..seen.len()).filter(|&i| seen[i]).collect()
    }

    /// All `ntv::panic-path` hits, as (file index, hit), in symbol order.
    #[must_use]
    pub fn panic_path_hits(&self) -> Vec<(usize, Hit)> {
        let mut out = Vec::new();
        for (id, sym) in self.table.symbols.iter().enumerate() {
            if self.witness[id] == usize::MAX {
                continue;
            }
            let root = &self.table.symbols[self.witness[id]].fq;
            for (line, op) in &self.panic_ops[id] {
                let what = match op {
                    PanicOp::Expect => "`.expect(..)`".to_string(),
                    PanicOp::UnreachableMsg => "`unreachable!(..)`".to_string(),
                    PanicOp::ParamIndex(p) => {
                        format!("slice indexing by caller-supplied `{p}`")
                    }
                };
                out.push((
                    sym.file,
                    Hit {
                        rule: RuleId::PanicPath,
                        line: *line,
                        message: format!(
                            "{what} in `{}` is reachable from public API `{root}`",
                            sym.fq
                        ),
                    },
                ));
            }
        }
        out
    }

    /// All `ntv::lock-discipline` hits, as (file index, hit).
    #[must_use]
    pub fn lock_discipline_hits(&self, files: &[SemFile]) -> Vec<(usize, Hit)> {
        let mut out = Vec::new();
        for (id, sym) in self.table.symbols.iter().enumerate() {
            let Some(span) = sym.body else { continue };
            let tokens = files[sym.file].tokens;
            let mut regions: Vec<HoldRegion> = self.acquisitions[id]
                .iter()
                .map(|a| hold_region(tokens, span, a))
                .collect();
            regions.extend(
                self.once_regions[id]
                    .iter()
                    .map(|&(start, end)| HoldRegion {
                        start,
                        end,
                        once_cell: true,
                    }),
            );
            for region in &regions {
                // A second direct acquisition while a guard is held.
                for other in &self.acquisitions[id] {
                    if (region.start..region.end).contains(&other.tok) {
                        out.push((
                            sym.file,
                            Hit {
                                rule: RuleId::LockDiscipline,
                                line: other.line,
                                message: format!(
                                    "second lock acquired in `{}` while a guard is held",
                                    sym.fq
                                ),
                            },
                        ));
                    }
                }
                for call in &self.calls[id] {
                    if !(region.start..region.end).contains(&call.site.tok) || !call.confident {
                        continue;
                    }
                    if let Some(&t) = call.candidates.iter().find(|&&t| self.trans_lock[t]) {
                        out.push((
                            sym.file,
                            Hit {
                                rule: RuleId::LockDiscipline,
                                line: call.site.line,
                                message: format!(
                                    "lock guard held in `{}` across call into \
                                     lock-acquiring `{}`",
                                    sym.fq, self.table.symbols[t].fq
                                ),
                            },
                        ));
                    } else if !region.once_cell {
                        if let Some(&t) = call.candidates.iter().find(|&&t| self.reaches_build[t]) {
                            out.push((
                                sym.file,
                                Hit {
                                    rule: RuleId::LockDiscipline,
                                    line: call.site.line,
                                    message: format!(
                                        "lock guard held in `{}` across Gauss–Hermite \
                                         build path `{}`",
                                        sym.fq, self.table.symbols[t].fq
                                    ),
                                },
                            ));
                        }
                    }
                }
            }
        }
        out.sort_by(|a, b| {
            (a.0, a.1.line, a.1.message.as_str()).cmp(&(b.0, b.1.line, b.1.message.as_str()))
        });
        out.dedup_by(|a, b| a.0 == b.0 && a.1.line == b.1.line && a.1.message == b.1.message);
        out
    }

    /// Direct callees of `sym` (for tests and future rules).
    #[must_use]
    pub fn callees(&self, sym: SymbolId) -> &[SymbolId] {
        &self.edges[sym]
    }

    /// Resolved call sites inside `sym`'s body, in body order (the effect
    /// layer's input for confidence-filtered propagation).
    #[must_use]
    pub fn calls(&self, sym: SymbolId) -> &[Call] {
        &self.calls[sym]
    }

    /// Lines of recognized lock acquisitions in `sym`'s body — `sync`
    /// effect seeds the token scan cannot see (an acquisition through a
    /// field never names the lock type).
    #[must_use]
    pub(crate) fn acquisition_lines(&self, sym: SymbolId) -> Vec<u32> {
        self.acquisitions[sym].iter().map(|a| a.line).collect()
    }

    /// Recognized lock acquisitions inside `sym`'s body, in token order —
    /// the raw input of the [`concurrency`](crate::concurrency) lock-class
    /// and order-graph analysis.
    #[must_use]
    pub(crate) fn acquisitions(&self, sym: SymbolId) -> &[Acquisition] {
        &self.acquisitions[sym]
    }
}

/// Reverse-propagate `seed` up the call graph: a symbol is marked if it is
/// seeded or calls (transitively) a marked symbol. Fixed-point iteration in
/// ascending id order; the graph is small (hundreds of nodes).
fn propagate_callers(edges: &[Vec<SymbolId>], seed: &[bool]) -> Vec<bool> {
    let mut marked = seed.to_vec();
    loop {
        let mut changed = false;
        for id in 0..edges.len() {
            if marked[id] {
                continue;
            }
            if edges[id].iter().any(|&t| marked[t]) {
                marked[id] = true;
                changed = true;
            }
        }
        if !changed {
            return marked;
        }
    }
}

/// Scan a body span for panic operations, keeping only tokens owned by the
/// symbol itself (`own` filters out nested fns).
fn scan_panic_ops(
    tokens: &[Token],
    span: (usize, usize),
    params: &BTreeSet<String>,
    own: impl Fn(usize) -> bool,
) -> Vec<(u32, PanicOp)> {
    let mut out = Vec::new();
    for i in span.0..span.1.min(tokens.len()) {
        if !own(i) {
            continue;
        }
        let t = &tokens[i];
        if let Some(id) = t.ident() {
            match id {
                "expect"
                    if i > 0
                        && tokens[i - 1].is_punct('.')
                        && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    out.push((t.line, PanicOp::Expect));
                }
                "unreachable"
                    if tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
                        && tokens.get(i + 2).is_some_and(|n| n.is_punct('('))
                        && !tokens.get(i + 3).is_some_and(|n| n.is_punct(')')) =>
                {
                    out.push((t.line, PanicOp::UnreachableMsg));
                }
                _ => {}
            }
            continue;
        }
        if !t.is_punct('[') {
            continue;
        }
        // Expression-position indexing: the token before the `[` must be an
        // expression tail (identifier that is not a keyword, or a closing
        // bracket) — type positions (`&[f64]`), attributes (`#[..]`) and
        // array literals (`= [0; 8]`) all fail this test.
        let Some(prev) = i.checked_sub(1).and_then(|p| tokens.get(p)) else {
            continue;
        };
        let is_expr_tail = match prev.ident() {
            Some(id) => !INDEX_PREV_KEYWORDS.contains(&id),
            None => prev.is_punct(')') || prev.is_punct(']'),
        };
        if !is_expr_tail {
            continue;
        }
        let end = parser::skip_balanced(tokens, i);
        // Flag when a caller-supplied parameter is used raw at the top
        // level of the index expression — not routed through a method call
        // (`v.index()` is the sanctioned bounded-accessor shape) and not
        // an argument of a nested call (`sf[Self::bucket(g)]` delegates
        // the bounding to `bucket`).
        let mut depth = 0i64;
        let mut raw_param = None;
        for j in i + 1..end.saturating_sub(1) {
            let tj = &tokens[j];
            if tj.is_punct('(') || tj.is_punct('[') || tj.is_punct('{') {
                depth += 1;
                continue;
            }
            if tj.is_punct(')') || tj.is_punct(']') || tj.is_punct('}') {
                depth -= 1;
                continue;
            }
            if depth != 0 {
                continue;
            }
            let Some(id) = tj.ident() else { continue };
            if !params.contains(id) {
                continue;
            }
            if tokens
                .get(j + 1)
                .is_some_and(|n| n.is_punct('.') || n.is_punct('('))
            {
                continue;
            }
            raw_param = Some(id.to_owned());
            break;
        }
        if let Some(p) = raw_param {
            out.push((t.line, PanicOp::ParamIndex(p)));
        }
    }
    out
}

/// Scan a body span for lock acquisitions: `.read()`, `.write()` or
/// `.lock()` (no arguments — `io::Read::read(&mut buf)` never matches)
/// immediately followed by `.unwrap()` or `.expect(..)`.
fn scan_acquisitions(tokens: &[Token], span: (usize, usize)) -> Vec<Acquisition> {
    let mut out = Vec::new();
    for i in span.0..span.1.min(tokens.len()) {
        let Some(id) = tokens[i].ident() else {
            continue;
        };
        if !matches!(id, "read" | "write" | "lock") {
            continue;
        }
        if !(i > 0 && tokens[i - 1].is_punct('.')) {
            continue;
        }
        if !(tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct(')')))
        {
            continue;
        }
        let after_call = i + 3;
        if !tokens.get(after_call).is_some_and(|t| t.is_punct('.')) {
            continue;
        }
        let m = after_call + 1;
        if !matches!(
            tokens.get(m).and_then(Token::ident),
            Some("unwrap" | "expect")
        ) {
            continue;
        }
        if !tokens.get(m + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let chain_end = parser::skip_balanced(tokens, m + 1);
        out.push(Acquisition {
            tok: i,
            chain_end,
            line: tokens[i].line,
        });
    }
    out
}

/// Spans of `.get_or_init(..)` argument lists (OnceLock closures).
fn scan_once_regions(tokens: &[Token], span: (usize, usize)) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in span.0..span.1.min(tokens.len()) {
        if tokens[i].ident() == Some("get_or_init")
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            out.push((i + 1, parser::skip_balanced(tokens, i + 1)));
        }
    }
    out
}

/// Compute the hold region of an acquisition.
///
/// A *bound* guard (`let g = x.lock().expect("..");` — the binding is the
/// guard itself) is held to the end of its enclosing block, or to an
/// explicit `drop(g)`. A *temporary* guard (the chain continues, or the
/// acquisition sits inside a larger expression) is held to the end of the
/// enclosing statement — Rust temporaries drop at the statement's semicolon.
pub(crate) fn hold_region(tokens: &[Token], span: (usize, usize), acq: &Acquisition) -> HoldRegion {
    // Statement start: nearest `;`, `{` or `}` before the acquisition.
    let mut s = acq.tok;
    while s > span.0 {
        if tokens[s - 1].is_punct(';') || tokens[s - 1].is_punct('{') || tokens[s - 1].is_punct('}')
        {
            break;
        }
        s -= 1;
    }
    let b = if tokens.get(s).and_then(Token::ident) == Some("let") {
        // `let g = ..` or `let mut g = ..` — the binding follows the
        // optional `mut`.
        if tokens.get(s + 1).and_then(Token::ident) == Some("mut") {
            s + 2
        } else {
            s + 1
        }
    } else {
        usize::MAX
    };
    let binding = if b != usize::MAX && tokens.get(b + 1).is_some_and(|t| t.is_punct('=')) {
        tokens.get(b).and_then(Token::ident)
    } else {
        None
    };
    let bound = binding.is_some() && tokens.get(acq.chain_end).is_some_and(|t| t.is_punct(';'));

    let mut depth: i64 = 0;
    let mut j = acq.chain_end;
    let limit = span.1.min(tokens.len());
    while j < limit {
        let t = &tokens[j];
        if bound {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                if depth == 0 {
                    break; // end of the enclosing block
                }
                depth -= 1;
            } else if t.ident() == Some("drop")
                && tokens.get(j + 1).is_some_and(|n| n.is_punct('('))
                && tokens.get(j + 2).and_then(Token::ident) == binding
                && tokens.get(j + 3).is_some_and(|n| n.is_punct(')'))
            {
                break; // explicit drop ends the hold
            }
        } else {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                break; // end of the enclosing statement
            }
        }
        j += 1;
    }
    HoldRegion {
        start: acq.chain_end,
        end: j,
        once_cell: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use std::path::PathBuf;

    type FileHits = Vec<(usize, Hit)>;

    fn analyze_one(src: &str) -> (Graph, FileHits, FileHits) {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let rel = PathBuf::from("crates/core/src/x.rs");
        let files = [SemFile {
            rel: &rel,
            tokens: &lexed.tokens,
            parsed: &parsed,
            test_ranges: &[],
        }];
        let graph = Graph::build(&files);
        let pp = graph.panic_path_hits();
        let ld = graph.lock_discipline_hits(&files);
        (graph, pp, ld)
    }

    #[test]
    fn expect_in_private_helper_reachable_from_pub_api_is_flagged() {
        let src = "
pub fn api(xs: &[f64]) -> f64 { tail(xs) }
fn tail(xs: &[f64]) -> f64 { *xs.last().expect(\"non-empty\") }
fn dead(xs: &[f64]) -> f64 { *xs.first().expect(\"never called\") }
";
        let (graph, pp, _) = analyze_one(src);
        assert_eq!(pp.len(), 1, "{pp:?}");
        assert_eq!(pp[0].1.line, 3);
        assert!(
            pp[0].1.message.contains("ntv_core::x::api"),
            "{}",
            pp[0].1.message
        );
        // `dead` is not reachable from any public root.
        let dead = graph
            .table
            .symbols
            .iter()
            .position(|s| s.name == "dead")
            .expect("symbol exists");
        assert!(!graph.reachable(dead));
    }

    #[test]
    fn param_indexing_is_flagged_but_bounded_accessors_are_not() {
        let src = "
pub fn pick(xs: &[f64], i: usize) -> f64 { xs[i] }
pub fn masked(xs: &[f64; 8], r: Reg) -> f64 { xs[r.index()] }
pub fn local(xs: &[f64]) -> f64 { let k = 0; xs[k] }
";
        let (_, pp, _) = analyze_one(src);
        assert_eq!(pp.len(), 1, "{pp:?}");
        assert_eq!(pp[0].1.line, 2);
        assert!(pp[0].1.message.contains('i'), "{}", pp[0].1.message);
    }

    #[test]
    fn messaged_unreachable_is_flagged_when_reachable() {
        let src =
            "pub fn f(n: usize) -> usize { match n { 0 => 1, _ => unreachable!(\"n is 0\") } }";
        let (_, pp, _) = analyze_one(src);
        assert_eq!(pp.len(), 1, "{pp:?}");
        // Argument-less unreachable!() stays with ntv::panic.
        let (_, pp2, _) = analyze_one("pub fn f() { unreachable!() }");
        assert!(pp2.is_empty(), "{pp2:?}");
    }

    #[test]
    fn guard_held_across_lock_acquiring_call_is_flagged() {
        let src = "
pub struct C { m: RwLock<Vec<f64>> }
impl C {
    pub fn total(&self) -> f64 {
        let guard = self.m.read().expect(\"lock\");
        self.recount(&guard)
    }
    fn recount(&self, xs: &[f64]) -> f64 {
        self.m.read().expect(\"lock\");
        xs.len() as f64
    }
}
";
        let (_, _, ld) = analyze_one(src);
        assert_eq!(ld.len(), 1, "{ld:?}");
        assert_eq!(ld[0].1.line, 6);
        assert!(ld[0].1.message.contains("recount"), "{}", ld[0].1.message);
    }

    #[test]
    fn statement_scoped_temporaries_do_not_hold_across_later_calls() {
        // The op_cache idiom: read the map under a temporary guard, then
        // build outside any lock.
        let src = "
pub struct C { m: RwLock<BTreeMap<u64, f64>> }
impl C {
    pub fn get(&self, k: u64) -> f64 {
        let hit = self.m.read().expect(\"lock\").get(&k).copied();
        match hit { Some(v) => v, None => self.build_slow(k) }
    }
    fn build_slow(&self, k: u64) -> f64 {
        let v = k as f64;
        *self.m.write().expect(\"lock\").entry(k).or_insert(v)
    }
}
";
        let (_, _, ld) = analyze_one(src);
        assert!(ld.is_empty(), "{ld:?}");
    }

    #[test]
    fn explicit_drop_ends_the_hold_region() {
        let src = "
pub struct C { m: RwLock<Vec<f64>> }
impl C {
    pub fn relock(&self) -> usize {
        let g = self.m.read().expect(\"lock\");
        let n = g.len();
        drop(g);
        self.count_again(n)
    }
    fn count_again(&self, n: usize) -> usize {
        self.m.read().expect(\"lock\");
        n
    }
}
";
        let (_, _, ld) = analyze_one(src);
        assert!(ld.is_empty(), "{ld:?}");
    }

    #[test]
    fn cross_file_reachability_connects_modules() {
        let entry_src = "pub fn entry(t: f64) -> f64 { helper::risky(t) }";
        let helper_src = "pub(crate) fn risky(t: f64) -> f64 { t.sqrt().partial_cmp(&t).map(|_| t).expect(\"finite\") }";
        let entry_lex = lex(entry_src);
        let helper_lex = lex(helper_src);
        let entry_parsed = parse(&entry_lex);
        let helper_parsed = parse(&helper_lex);
        let entry_rel = PathBuf::from("crates/core/src/entry.rs");
        let helper_rel = PathBuf::from("crates/core/src/helper.rs");
        let files = [
            SemFile {
                rel: &entry_rel,
                tokens: &entry_lex.tokens,
                parsed: &entry_parsed,
                test_ranges: &[],
            },
            SemFile {
                rel: &helper_rel,
                tokens: &helper_lex.tokens,
                parsed: &helper_parsed,
                test_ranges: &[],
            },
        ];
        let graph = Graph::build(&files);
        let pp = graph.panic_path_hits();
        assert_eq!(pp.len(), 1, "{pp:?}");
        assert_eq!(pp[0].0, 1, "finding lands in helper.rs");
        assert!(
            pp[0].1.message.contains("ntv_core::entry::entry"),
            "witness root names the public entry: {}",
            pp[0].1.message
        );
        // Linting helper.rs alone: `risky` is pub(crate), not a root.
        let alone = [files[1]];
        let graph_alone = Graph::build(&alone);
        assert!(graph_alone.panic_path_hits().is_empty());
    }
}
