//! Expression-level numeric dataflow over the declaration parser's output.
//!
//! The lint pass so far reasons about *names* (token rules) and *edges*
//! (the call graph). This layer reasons about *values*: per-function
//! def-use facts — which bindings are floats, which carry `ntv-units`
//! newtypes, which token spans are loop bodies — assembled by a single
//! forward scan over the body token stream. Three rules and one report
//! consume the facts:
//!
//! * **`ntv::reduction-order`** — sequential non-associative f64
//!   accumulation (`+=` / `*=` on a float binding inside a loop, `.sum()`,
//!   a float-seeded `.fold(..)`) in a function reachable from a public
//!   Library API. Every flagged site is a place where SIMD lane reordering
//!   would change the result bit pattern, which is exactly what the
//!   deterministic executor forbids. Stride updates (`width *= 2.0` — a
//!   lone-literal right-hand side) are not accumulations and are skipped;
//!   min/max folds seeded from `f64::INFINITY` are order-free and pass;
//!   calls into `ntv_mc::reduce` are the sanctioned fixed-order shape.
//! * **`ntv::lossy-cast`** — truncating/rounding `as` casts: float → int,
//!   `f64 as f32`, and width-narrowing casts of length/count values. A
//!   cast is *guarded* (not flagged) when the value is provably bounded in
//!   the same function: a `.min(..)` / `.clamp(..)` directly on the cast
//!   chain, a clamp inside the operand, or a later rebind of the cast's
//!   `let` binding through `.min(..)` / `.clamp(..)`.
//! * **`ntv::unit-escape`** — a `.0` projection of an `ntv-units` newtype
//!   returned from a `pub` fn as a bare float, the dataflow extension of
//!   the signature-level `ntv::bare-unit` rule. Only *escapes* are flagged
//!   — a projection that feeds arithmetic produces a new (documented,
//!   scale-suffixed) quantity and is the intended use of `.0`.
//! * **`--report batch-readiness`** — a byte-identical JSON worklist of
//!   the scalar hot path: every function reachable from a public
//!   `sample_*` root, with its reduction sites classified order-sensitive
//!   vs order-free. This is the literal task list for the vectorization
//!   PR: a function with zero order-sensitive reductions can be
//!   vectorized blindly; the rest name the exact lines that must move to
//!   `ntv_mc::reduce` first.
//!
//! Like the rest of the pass, the analysis is name-shaped and total: no
//! type inference, just deterministic scans that over-approximate in the
//! direction each rule can afford (reduction/cast facts err toward
//! flagging with a waiver escape hatch; unit facts err toward silence so
//! the rule never fires on a non-unit tuple field).

use std::collections::BTreeSet;

use crate::graph::{Graph, SemFile};
use crate::json::escape as json_escape;
use crate::lexer::Token;
use crate::parser::{self, FnSig, ParsedFile};
use crate::resolve::SymbolId;
use crate::rules::{Hit, RuleId};

/// The `ntv-units` newtype idents whose `.0` projection is tracked.
const UNIT_TYPES: &[&str] = &["Volts", "Seconds", "Hertz", "Watts", "Kelvin"];

/// Integer cast targets (a float operand makes the cast lossy).
const INT_TARGETS: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// Narrow integer targets: a length/count operand makes the cast lossy.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Method names whose result is a length/count (`usize`-shaped).
const LEN_SOURCES: &[&str] = &["len", "partition_point", "count"];

/// Method names that mark an expression as float-valued.
const FLOAT_METHODS: &[&str] = &[
    "powi", "powf", "sqrt", "exp", "ln", "floor", "ceil", "round", "trunc", "exp_m1", "ln_1p",
    "hypot", "mul_add", "recip", "erfc",
];

/// The sanctioned fixed-order reduction helpers in `ntv_mc::reduce`.
const ORDER_FREE_REDUCERS: &[&str] = &["sum_ordered", "sum2_ordered", "sum_compensated"];

/// One reduction site inside a function body.
#[derive(Debug, Clone)]
pub struct ReductionSite {
    /// 1-based source line.
    pub line: u32,
    /// What shape of reduction this is (for the message / report).
    pub kind: ReductionKind,
}

/// The reduction shapes the scan distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReductionKind {
    /// `x += ..` / `x *= ..` on a float binding inside a loop body.
    LoopAccumulate,
    /// `.sum()` / `.sum::<f64>()` terminal.
    IterSum,
    /// `.fold(<float literal>, ..)` terminal.
    FloatFold,
    /// A call into `ntv_mc::reduce` — order-free, report-only.
    OrderFree,
}

impl ReductionKind {
    /// Report classification: does lane reordering change the result?
    #[must_use]
    pub fn order_sensitive(self) -> bool {
        !matches!(self, ReductionKind::OrderFree)
    }

    /// Short label used in diagnostics and the JSON report.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ReductionKind::LoopAccumulate => "loop-accumulate",
            ReductionKind::IterSum => "iter-sum",
            ReductionKind::FloatFold => "float-fold",
            ReductionKind::OrderFree => "ordered-helper",
        }
    }
}

/// Per-function dataflow facts from one forward scan of the body.
#[derive(Debug, Default)]
struct FnFacts {
    /// Bindings (params + lets) known to hold f64/f32 values.
    floats: BTreeSet<String>,
    /// Bindings known to hold an `ntv-units` newtype.
    units: BTreeSet<String>,
    /// Bindings produced by a bare `let y = x.0;` unit projection.
    escaped: BTreeSet<String>,
    /// Token spans (half-open) of `for`/`while`/`loop` bodies.
    loops: Vec<(usize, usize)>,
}

/// Is `range` of `tokens` float-valued, given the known float bindings?
fn is_floaty(tokens: &[Token], range: (usize, usize), floats: &BTreeSet<String>) -> bool {
    (range.0..range.1.min(tokens.len())).any(|i| {
        let t = &tokens[i];
        if t.is_float_literal() {
            return true;
        }
        match t.ident() {
            Some("f64" | "f32") => true,
            Some(m) if FLOAT_METHODS.contains(&m) => i > 0 && tokens[i - 1].is_punct('.'),
            Some(id) => floats.contains(id),
            None => false,
        }
    })
}

/// Token index just past the end of the statement containing `i`: the
/// first `;` at or below the statement's brace depth, or the `}` that
/// closes the surrounding block.
fn stmt_end(tokens: &[Token], span: (usize, usize), i: usize) -> usize {
    let mut depth = 0i64;
    let mut j = i;
    let limit = span.1.min(tokens.len());
    while j < limit {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        } else if t.is_punct(';') && depth <= 0 {
            return j;
        }
        j += 1;
    }
    j
}

/// Start of the statement containing `i`: the token after the nearest
/// `;` / `{` / `}` at or before `i`.
fn stmt_start(tokens: &[Token], span: (usize, usize), i: usize) -> usize {
    let mut s = i;
    while s > span.0 + 1 {
        let p = &tokens[s - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        s -= 1;
    }
    s
}

/// Collect per-function facts: float/unit bindings, escapes, loop bodies.
/// One forward pass — Rust's def-before-use makes that sufficient for the
/// straight-line `let` chains this layer cares about.
fn collect_facts(tokens: &[Token], sig: &FnSig) -> FnFacts {
    let mut facts = FnFacts::default();
    for p in &sig.params {
        // Scalar floats only: a slice/Vec of floats is not itself a float
        // value (its `.len()` is a usize, its name cannot be `+=`'d).
        if (p.ty.contains("f64") || p.ty.contains("f32"))
            && !p.ty.contains('[')
            && !p.ty.contains("Vec")
        {
            for name in p
                .name
                .split(|c: char| !c.is_alphanumeric() && c != '_')
                .filter(|s| !s.is_empty() && *s != "_" && *s != "mut" && *s != "ref")
            {
                facts.floats.insert(name.to_owned());
            }
        }
        if UNIT_TYPES.iter().any(|u| p.ty.contains(u)) && !p.ty.contains('[') {
            facts.units.insert(p.name.clone());
        }
    }
    let Some(span) = sig.body else { return facts };
    let limit = span.1.min(tokens.len());
    let mut i = span.0;
    while i < limit {
        let t = &tokens[i];
        match t.ident() {
            // Loop body spans. `for` must head a `pat in iter {` form so
            // `impl Trait for Type {` inside a body never matches.
            Some(kw @ ("for" | "while" | "loop")) => {
                if let Some(body) = loop_body(tokens, limit, i, kw) {
                    facts.loops.push(body);
                }
            }
            Some("let") => {
                classify_let(tokens, span, i, &mut facts);
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// From a `for`/`while`/`loop` keyword at `i`, the token span of the loop
/// body block, if this is a loop header.
fn loop_body(tokens: &[Token], limit: usize, i: usize, kw: &str) -> Option<(usize, usize)> {
    let mut depth = 0i64;
    let mut saw_in = kw != "for"; // `for` requires `pat in iter`
    let mut j = i + 1;
    while j < limit {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.ident() == Some("in") {
            saw_in = true;
        } else if depth == 0 && t.is_punct('{') {
            if !saw_in {
                return None; // `impl .. for Type {`
            }
            return Some((j, parser::skip_balanced(tokens, j)));
        } else if t.is_punct(';') || t.is_punct('}') {
            return None; // ran off the statement without a body
        }
        j += 1;
    }
    None
}

/// Classify the `let` statement starting at token `i` (the `let` ident):
/// record float/unit bindings and bare `x.0` escapes.
fn classify_let(tokens: &[Token], span: (usize, usize), i: usize, facts: &mut FnFacts) {
    let end = stmt_end(tokens, span, i);
    // Split the statement at the top-level `=` (if any).
    let mut depth = 0i64;
    let mut eq = None;
    let mut colon = None;
    for j in i + 1..end {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') || t.is_punct('>') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('=') && eq.is_none() {
            // `==` / `=>` never appear at a let's top level; `<=`-style
            // compound tokens arrive as two puncts but sit inside the
            // initializer, after `eq` is already set.
            eq = Some(j);
            break;
        } else if depth == 0 && t.is_punct(':') && colon.is_none() {
            let next_colon = tokens.get(j + 1).is_some_and(|n| n.is_punct(':'));
            let prev_colon = j > 0 && tokens[j - 1].is_punct(':');
            if !next_colon && !prev_colon {
                colon = Some(j); // a type annotation, not a `::` path
            }
        }
    }
    let names_end = colon.or(eq).unwrap_or(end);
    let names: Vec<&str> = tokens[i + 1..names_end]
        .iter()
        .filter_map(Token::ident)
        .filter(|s| !matches!(*s, "mut" | "ref"))
        .collect();
    if names.is_empty() {
        return;
    }

    // Annotated type wins.
    if let (Some(c), Some(stop)) = (colon, eq.or(Some(end))) {
        let has = |needle: &str| tokens[c..stop].iter().any(|t| t.ident() == Some(needle));
        if has("f64") || has("f32") {
            for n in &names {
                facts.floats.insert((*n).to_owned());
            }
        }
        if UNIT_TYPES.iter().any(|u| has(u)) {
            for n in &names {
                facts.units.insert((*n).to_owned());
            }
        }
    }
    let Some(eq) = eq else { return };

    // Bare escape: `let y = x.0;` where `x` is a unit binding.
    if names.len() == 1 && end - eq == 4 {
        if let (Some(src), true, Some("0")) = (
            tokens[eq + 1].ident(),
            tokens[eq + 2].is_punct('.'),
            tokens[eq + 3].literal(),
        ) {
            if facts.units.contains(src) {
                facts.escaped.insert(names[0].to_owned());
                return;
            }
        }
    }

    // Initializer-shape classification (no annotation needed).
    let init = (eq + 1, end);
    if colon.is_none() {
        if is_floaty(tokens, init, &facts.floats) {
            for n in &names {
                facts.floats.insert((*n).to_owned());
            }
        }
        // Unit constructor `Volts(..)` / propagation `let v = vdd;`.
        let ctor = tokens[init.0..init.1.min(tokens.len())]
            .windows(2)
            .any(|w| w[0].ident().is_some_and(|id| UNIT_TYPES.contains(&id)) && w[1].is_punct('('));
        let propagated = init.1 - init.0 == 1
            && tokens[init.0]
                .ident()
                .is_some_and(|id| facts.units.contains(id));
        if names.len() == 1 && (ctor || propagated) {
            facts.units.insert(names[0].to_owned());
        }
    }
}

/// Scan one function body for reduction sites. `own` filters out tokens
/// owned by a nested fn.
fn reduction_sites(
    tokens: &[Token],
    sig: &FnSig,
    facts: &FnFacts,
    own: impl Fn(usize) -> bool,
) -> Vec<ReductionSite> {
    let mut out = Vec::new();
    let Some(span) = sig.body else { return out };
    let limit = span.1.min(tokens.len());
    for i in span.0..limit {
        if !own(i) {
            continue;
        }
        let t = &tokens[i];
        if let Some(id) = t.ident() {
            if ORDER_FREE_REDUCERS.contains(&id)
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                out.push(ReductionSite {
                    line: t.line,
                    kind: ReductionKind::OrderFree,
                });
                continue;
            }
            if id == "sum" && i > 0 && tokens[i - 1].is_punct('.') {
                if let Some(kind) = classify_sum(tokens, span, sig, i) {
                    out.push(ReductionSite { line: t.line, kind });
                }
                continue;
            }
            if id == "fold"
                && i > 0
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
                && tokens.get(i + 2).is_some_and(Token::is_float_literal)
            {
                out.push(ReductionSite {
                    line: t.line,
                    kind: ReductionKind::FloatFold,
                });
                continue;
            }
            // `acc += term` / `acc *= factor` on a float binding in a loop.
            if facts.floats.contains(id)
                && !(i > 0 && tokens[i - 1].is_punct('.'))
                && facts.loops.iter().any(|&(a, b)| (a..b).contains(&i))
            {
                let compound = matches!(
                    (tokens.get(i + 1), tokens.get(i + 2)),
                    (Some(op), Some(e)) if (op.is_punct('+') || op.is_punct('*')) && e.is_punct('=')
                );
                if compound && !lone_literal_rhs(tokens, span, i + 3) {
                    out.push(ReductionSite {
                        line: t.line,
                        kind: ReductionKind::LoopAccumulate,
                    });
                }
            }
        }
    }
    out
}

/// Is the right-hand side starting at `rhs` a lone literal (`width *= 2.0`
/// — a stride update, not an accumulation)?
fn lone_literal_rhs(tokens: &[Token], span: (usize, usize), rhs: usize) -> bool {
    let end = stmt_end(tokens, span, rhs);
    end == rhs + 1 && tokens.get(rhs).is_some_and(|t| t.literal().is_some())
}

/// Classify a `.sum` at token `i`: `IterSum` when it is a float reduction,
/// `None` when the element type cannot be shown float (an integer sum is
/// exact and order-free).
fn classify_sum(
    tokens: &[Token],
    span: (usize, usize),
    sig: &FnSig,
    i: usize,
) -> Option<ReductionKind> {
    // Turbofish `.sum::<f64>()` is explicit.
    if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
    {
        let close = (i + 3..span.1.min(tokens.len()))
            .find(|&j| tokens[j].is_punct('('))
            .unwrap_or(i + 3);
        let floatish = tokens[i + 3..close]
            .iter()
            .any(|t| matches!(t.ident(), Some("f64" | "f32")));
        return floatish.then_some(ReductionKind::IterSum);
    }
    if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    // Bare `.sum()`: float when the enclosing `let` is annotated f64, or
    // the statement is the fn's tail/return and the fn returns f64.
    let s = stmt_start(tokens, span, i);
    if tokens.get(s).and_then(Token::ident) == Some("let") {
        let end = stmt_end(tokens, span, i);
        let floatish = tokens[s..end.min(tokens.len())]
            .iter()
            .take_while(|t| !t.is_punct('='))
            .any(|t| matches!(t.ident(), Some("f64" | "f32")));
        return floatish.then_some(ReductionKind::IterSum);
    }
    let ret_float = sig
        .ret
        .as_deref()
        .is_some_and(|r| r.contains("f64") || r.contains("f32"));
    if !ret_float {
        return None;
    }
    let is_return = tokens.get(s).and_then(Token::ident) == Some("return");
    let end = stmt_end(tokens, span, i);
    let is_tail = tokens.get(end).is_some_and(|t| t.is_punct('}'));
    (is_return || is_tail).then_some(ReductionKind::IterSum)
}

/// One lossy-cast site (pre-guard-analysis).
struct CastSite {
    line: u32,
    /// Why the cast is lossy (used in the message).
    what: &'static str,
    guarded: bool,
}

/// Scan one function body for lossy `as` casts with guard analysis.
fn cast_sites(tokens: &[Token], sig: &FnSig, facts: &FnFacts) -> Vec<CastSite> {
    let mut out = Vec::new();
    let Some(span) = sig.body else { return out };
    let limit = span.1.min(tokens.len());
    for i in span.0..limit {
        if tokens[i].ident() != Some("as") {
            continue;
        }
        let Some(target) = tokens.get(i + 1).and_then(Token::ident) else {
            continue;
        };
        let operand = operand_span(tokens, span, i);
        let lenish = tokens[operand.0..operand.1.min(tokens.len())]
            .iter()
            .enumerate()
            .any(|(k, t)| {
                t.ident().is_some_and(|id| LEN_SOURCES.contains(&id))
                    && (operand.0 + k > 0 && tokens[operand.0 + k - 1].is_punct('.'))
            });
        // A length/count-producing chain is usize-shaped whatever its
        // receiver held, so it pre-empts the float classification.
        let floaty = !lenish && operand_is_floaty(tokens, operand, &facts.floats);
        let what = if INT_TARGETS.contains(&target) && floaty {
            "float value cast to integer truncates"
        } else if NARROW_TARGETS.contains(&target) && lenish {
            "length/count narrowed to a smaller integer wraps"
        } else if target == "f32" && floaty {
            "f64 narrowed to f32 loses precision"
        } else {
            continue;
        };
        let guarded = cast_is_guarded(tokens, span, sig, i, operand);
        out.push(CastSite {
            line: tokens[i].line,
            what,
            guarded,
        });
    }
    out
}

/// Float classification for a cast operand: like [`is_floaty`], but only
/// the *surface* of the postfix chain counts — tokens inside call/index
/// argument groups describe other values (`self.hint[Self::bucket(g)]` is
/// an integer element however float `g` is). The leading group of a
/// parenthesized operand (`(x * 10.0) as usize`) is the value itself and
/// is included whole.
fn operand_is_floaty(tokens: &[Token], operand: (usize, usize), floats: &BTreeSet<String>) -> bool {
    let (a, b) = (operand.0, operand.1.min(tokens.len()));
    if a >= b {
        return false;
    }
    if tokens[a].is_punct('(') {
        let close = parser::skip_balanced(tokens, a);
        if is_floaty(tokens, (a, close.min(b)), floats) {
            return true;
        }
        // The rest of the chain after the leading group, surface-only.
        return surface_floaty(tokens, (close, b), floats);
    }
    surface_floaty(tokens, (a, b), floats)
}

/// [`is_floaty`] restricted to depth-0 tokens of `range`.
fn surface_floaty(tokens: &[Token], range: (usize, usize), floats: &BTreeSet<String>) -> bool {
    let mut depth = 0i64;
    for j in range.0..range.1.min(tokens.len()) {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
            continue;
        }
        if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            continue;
        }
        if depth > 0 {
            continue;
        }
        if is_floaty(tokens, (j, j + 1), floats) {
            return true;
        }
    }
    false
}

/// The operand token span of an `as` at token `i`: walk the postfix chain
/// backwards (idents, literals, `.`-chains, balanced `()`/`[]` groups).
fn operand_span(tokens: &[Token], span: (usize, usize), i: usize) -> (usize, usize) {
    let mut s = i;
    loop {
        if s <= span.0 + 1 {
            break;
        }
        let p = &tokens[s - 1];
        if p.is_punct(')') || p.is_punct(']') {
            // Balanced group: walk back to its opener.
            let mut depth = 0i64;
            let mut j = s - 1;
            loop {
                let t = &tokens[j];
                if t.is_punct(')') || t.is_punct(']') {
                    depth += 1;
                } else if t.is_punct('(') || t.is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == span.0 {
                    break;
                }
                j -= 1;
            }
            s = j;
            continue;
        }
        if p.ident().is_some() || p.literal().is_some() {
            s -= 1;
            continue;
        }
        if p.is_punct('.') || p.is_punct(':') {
            s -= 1;
            continue;
        }
        break;
    }
    (s, i)
}

/// Guard analysis for a lossy cast at token `i` with `operand` span.
fn cast_is_guarded(
    tokens: &[Token],
    span: (usize, usize),
    sig: &FnSig,
    i: usize,
    operand: (usize, usize),
) -> bool {
    let limit = span.1.min(tokens.len());
    let clampish = |id: Option<&str>| matches!(id, Some("min" | "clamp"));
    // (1) Clamp inside the operand itself: `x.clamp(0.0, 255.0) as u8`.
    for k in operand.0..operand.1 {
        if clampish(tokens[k].ident()) && k > 0 && tokens[k - 1].is_punct('.') {
            return true;
        }
    }
    // (2) Clamp applied to the cast chain: `(t as usize).min(N)` /
    //     `t as usize % n` — skip closing parens after the target type.
    let mut j = i + 2; // token after the target type
    while j < limit && tokens[j].is_punct(')') {
        j += 1;
    }
    if j + 1 < limit && tokens[j].is_punct('.') && clampish(tokens[j + 1].ident()) {
        return true;
    }
    if j < limit && tokens[j].is_punct('%') {
        return true;
    }
    // (3) The cast's `let` binding is later clamped or rebound through a
    //     clamp: `let idx = .. as usize; let idx = idx.min(len - 1);`.
    let s = stmt_start(tokens, span, i);
    let mut names = tokens[s..operand.0.max(s)].iter();
    if names.next().and_then(Token::ident) != Some("let") {
        return false;
    }
    let Some(bind) = tokens[s + 1..operand.0]
        .iter()
        .filter_map(Token::ident)
        .find(|id| !matches!(*id, "mut" | "ref"))
    else {
        return false;
    };
    let end = stmt_end(tokens, span, i);
    let body_limit = sig.body.map_or(limit, |(_, b)| b.min(tokens.len()));
    let mut k = end;
    while k + 2 < body_limit {
        if tokens[k].ident() == Some(bind)
            && tokens[k + 1].is_punct('.')
            && clampish(tokens[k + 2].ident())
        {
            return true;
        }
        k += 1;
    }
    false
}

/// Unit-escape sites in one function: `return x.0;`-shaped exits of `pub`
/// fns (tail expression or `return` statement that is exactly a projection
/// of a unit binding, an escaped binding, or a tuple of those).
fn escape_sites(tokens: &[Token], sig: &FnSig, facts: &FnFacts) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    if !sig.is_pub {
        return out;
    }
    let ret_bare = sig
        .ret
        .as_deref()
        .is_some_and(|r| r.contains("f64") && !UNIT_TYPES.iter().any(|u| r.contains(u)));
    if !ret_bare {
        return out;
    }
    let Some(span) = sig.body else { return out };
    let limit = span.1.min(tokens.len());
    // `return <expr> ;` statements.
    for i in span.0..limit {
        if tokens[i].ident() == Some("return") {
            let end = stmt_end(tokens, span, i);
            if let Some(name) = escaping_expr(tokens, (i + 1, end), facts) {
                out.push((tokens[i].line, name));
            }
        }
    }
    // The body tail expression: tokens after the last top-level `;`/`{`.
    let close = limit.saturating_sub(1);
    if close > span.0 {
        let mut s = close;
        let mut depth = 0i64;
        while s > span.0 + 1 {
            let p = &tokens[s - 1];
            if p.is_punct(')') || p.is_punct(']') || p.is_punct('}') {
                depth += 1;
            } else if p.is_punct('(') || p.is_punct('[') || p.is_punct('{') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if depth == 0 && p.is_punct(';') {
                break;
            }
            s -= 1;
        }
        if let Some(name) = escaping_expr(tokens, (s, close), facts) {
            out.push((tokens[s].line, name));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Does `range` consist exactly of a bare unit escape: `x.0`, an escaped
/// ident, or a parenthesized tuple of those? Returns the escaping binding.
fn escaping_expr(tokens: &[Token], range: (usize, usize), facts: &FnFacts) -> Option<String> {
    let (a, b) = (range.0, range.1.min(tokens.len()));
    if a >= b {
        return None;
    }
    // Strip one level of parens (tuple or grouping).
    if tokens[a].is_punct('(') && parser::skip_balanced(tokens, a) == b {
        // Split on top-level commas; every element must escape.
        let mut depth = 0i64;
        let mut start = a + 1;
        let mut first = None;
        for j in a + 1..b - 1 {
            let t = &tokens[j];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct(',') {
                let name = escaping_expr(tokens, (start, j), facts)?;
                first.get_or_insert(name);
                start = j + 1;
            }
        }
        if start >= b - 1 {
            return None; // empty tuple / trailing comma only
        }
        let name = escaping_expr(tokens, (start, b - 1), facts)?;
        return Some(first.unwrap_or(name));
    }
    match b - a {
        1 => {
            let id = tokens[a].ident()?;
            facts.escaped.contains(id).then(|| id.to_owned())
        }
        3 => {
            let id = tokens[a].ident()?;
            (facts.units.contains(id)
                && tokens[a + 1].is_punct('.')
                && tokens[a + 2].literal() == Some("0"))
            .then(|| id.to_owned())
        }
        _ => None,
    }
}

/// Per-file pass: `ntv::lossy-cast` and `ntv::unit-escape` hits for one
/// parsed file. Policy (class, test regions, waivers) is applied by the
/// engine.
#[must_use]
pub fn file_hits(tokens: &[Token], parsed: &ParsedFile) -> Vec<Hit> {
    let mut out = Vec::new();
    for sig in &parsed.fns {
        let facts = collect_facts(tokens, sig);
        for c in cast_sites(tokens, sig, &facts) {
            if c.guarded {
                continue;
            }
            out.push(Hit {
                rule: RuleId::LossyCast,
                line: c.line,
                message: format!(
                    "{} and the value is not `.min(..)`/`.clamp(..)`-bounded in `{}`",
                    c.what, sig.name
                ),
            });
        }
        for (line, bind) in escape_sites(tokens, sig, &facts) {
            out.push(Hit {
                rule: RuleId::UnitEscape,
                line,
                message: format!(
                    "unit newtype `{bind}` leaves public fn `{}` as a bare float \
                     via `.0` projection",
                    sig.name
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.line, a.rule.name()).cmp(&(b.line, b.rule.name())));
    out
}

/// Graph pass: `ntv::reduction-order` hits — reduction sites inside
/// functions reachable from a public Library root, as (file index, hit).
#[must_use]
pub fn reduction_hits(graph: &Graph, files: &[SemFile]) -> Vec<(usize, Hit)> {
    let mut out = Vec::new();
    for (id, sites) in symbol_reductions(graph, files) {
        let Some(root) = graph.witness_root(id) else {
            continue;
        };
        let sym = &graph.table.symbols[id];
        let root_fq = &graph.table.symbols[root].fq;
        for site in sites {
            if !site.kind.order_sensitive() {
                continue;
            }
            out.push((
                sym.file,
                Hit {
                    rule: RuleId::ReductionOrder,
                    line: site.line,
                    message: format!(
                        "order-sensitive f64 reduction ({}) in `{}` reachable from \
                         public API `{root_fq}`; vectorization would change the \
                         result — use `ntv_mc::reduce`",
                        site.kind.label(),
                        sym.fq
                    ),
                },
            ));
        }
    }
    out
}

/// Reduction sites per symbol, in symbol-id order (the shared scan behind
/// both the rule and the report).
fn symbol_reductions(graph: &Graph, files: &[SemFile]) -> Vec<(SymbolId, Vec<ReductionSite>)> {
    // Innermost-span ownership, mirroring `Graph::build`.
    let mut file_spans: Vec<Vec<(SymbolId, (usize, usize))>> = vec![Vec::new(); files.len()];
    for (id, sym) in graph.table.symbols.iter().enumerate() {
        if let Some(span) = sym.body {
            file_spans[sym.file].push((id, span));
        }
    }
    let mut out = Vec::new();
    for (id, sym) in graph.table.symbols.iter().enumerate() {
        if sym.body.is_none() {
            continue;
        }
        let file = &files[sym.file];
        let sig = &file.parsed.fns[sym.sig];
        let facts = collect_facts(file.tokens, sig);
        let spans = &file_spans[sym.file];
        let own = |tok: usize| {
            spans
                .iter()
                .filter(|(_, (a, b))| (*a..*b).contains(&tok))
                .max_by_key(|(_, (a, _))| *a)
                .map(|&(o, _)| o)
                == Some(id)
        };
        let sites = reduction_sites(file.tokens, sig, &facts, own);
        if !sites.is_empty() {
            out.push((id, sites));
        }
    }
    out
}

/// The `--report batch-readiness` JSON: every function reachable from a
/// public `sample_*` root, with reduction sites classified. Deterministic
/// — symbols arrive path-sorted and every list is emitted in sorted order
/// — so two consecutive runs are byte-identical.
///
/// `waived` holds, parallel to `files`, the line numbers covered by a
/// `reduction-order` waiver (a waiver covers its own line and the next).
/// Each site reports a `status`: `"migrated"` for order-free accumulation
/// (the batch `*_ordered` helpers), `"waived"` for an order-sensitive
/// fold whose sequential order is the pinned definition (a documented
/// waiver), `"sensitive"` for an unmigrated, unwaived fold — the actual
/// worklist. `batch_ready` is true iff a function has no `"sensitive"`
/// site.
#[must_use]
pub fn batch_readiness_report(
    graph: &Graph,
    files: &[SemFile],
    waived: &[std::collections::BTreeSet<u32>],
) -> String {
    assert_eq!(
        files.len(),
        waived.len(),
        "waiver sets must parallel the file list"
    );
    let roots: Vec<SymbolId> = (0..graph.table.symbols.len())
        .filter(|&id| {
            let s = &graph.table.symbols[id];
            s.is_pub && s.name.starts_with("sample")
        })
        .collect();
    let reached = graph.reach_from(&roots);
    let reductions: std::collections::BTreeMap<SymbolId, Vec<ReductionSite>> =
        symbol_reductions(graph, files).into_iter().collect();

    let mut root_fqs: Vec<&str> = roots
        .iter()
        .map(|&id| graph.table.symbols[id].fq.as_str())
        .collect();
    root_fqs.sort_unstable();

    let mut entries: Vec<(String, String)> = Vec::new();
    for &id in &reached {
        let sym = &graph.table.symbols[id];
        let rel = files[sym.file].rel.to_string_lossy().replace('\\', "/");
        let sites = reductions.get(&id).map_or(&[][..], Vec::as_slice);
        let status = |s: &ReductionSite| {
            if !s.kind.order_sensitive() {
                "migrated"
            } else if waived[sym.file].contains(&s.line) {
                "waived"
            } else {
                "sensitive"
            }
        };
        let mut sites_json = String::new();
        for (k, s) in sites.iter().enumerate() {
            if k > 0 {
                sites_json.push(',');
            }
            sites_json.push_str(&format!(
                "{{\"line\":{},\"kind\":\"{}\",\"status\":\"{}\"}}",
                s.line,
                s.kind.label(),
                status(s)
            ));
        }
        let ready = sites.iter().all(|s| status(s) != "sensitive");
        entries.push((
            sym.fq.clone(),
            format!(
                "{{\"fn\":\"{}\",\"file\":\"{}\",\"line\":{},\"batch_ready\":{},\
                 \"reductions\":[{}]}}",
                json_escape(&sym.fq),
                json_escape(&rel),
                sym.line,
                ready,
                sites_json
            ),
        ));
    }
    entries.sort();

    let root_items: Vec<String> = root_fqs
        .iter()
        .map(|fq| format!("\"{}\"", json_escape(fq)))
        .collect();
    let entry_items: Vec<String> = entries.into_iter().map(|(_, entry)| entry).collect();
    format!(
        "{{\n  \"schema\": \"ntv-batch-readiness/2\",\n  \"roots\": {},\n  \
         \"functions\": {}\n}}\n",
        crate::json::array(&root_items, 4, 2),
        crate::json::array(&entry_items, 4, 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use std::path::PathBuf;

    fn facts_of(src: &str) -> (Vec<Token>, ParsedFile) {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        (lexed.tokens, parsed)
    }

    fn one_graph(src: &str) -> Vec<(usize, Hit)> {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let rel = PathBuf::from("crates/core/src/x.rs");
        let files = [SemFile {
            rel: &rel,
            tokens: &lexed.tokens,
            parsed: &parsed,
            test_ranges: &[],
        }];
        let graph = Graph::build(&files);
        reduction_hits(&graph, &files)
    }

    #[test]
    fn loop_accumulation_reachable_from_pub_is_flagged() {
        let hits = one_graph(
            "pub fn total(xs: &[f64]) -> f64 {\n    let mut acc = 0.0;\n    for &x in xs { acc += x; }\n    acc\n}",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1.line, 3);
        assert!(hits[0].1.message.contains("loop-accumulate"));
    }

    #[test]
    fn unreachable_private_accumulation_is_not_flagged() {
        let hits = one_graph(
            "fn helper(xs: &[f64]) -> f64 {\n    let mut acc = 0.0;\n    for &x in xs { acc += x; }\n    acc\n}",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn stride_updates_and_int_counters_pass() {
        let hits = one_graph(
            "pub fn probe(xs: &[f64]) -> f64 {\n    let mut width = 1.0;\n    let mut n = 0usize;\n    for _ in xs { width *= 2.0; n += 1; }\n    width + n as f64\n}",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn iter_sum_and_float_fold_are_flagged_min_fold_passes() {
        let hits = one_graph(
            "pub fn s(xs: &[f64]) -> f64 { xs.iter().sum() }\npub fn t(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\npub fn f(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |a, b| a + b) }\npub fn m(xs: &[f64]) -> f64 { xs.iter().copied().fold(f64::INFINITY, f64::min) }",
        );
        let lines: Vec<u32> = hits.iter().map(|h| h.1.line).collect();
        assert_eq!(lines, vec![1, 2, 3], "{hits:?}");
    }

    #[test]
    fn integer_sum_is_not_flagged() {
        let hits = one_graph(
            "pub fn n(xs: &[u32]) -> u32 { xs.iter().sum() }\npub fn m(xs: &[u64]) -> u64 { xs.iter().sum::<u64>() }",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn ordered_helper_calls_pass_and_report_as_order_free() {
        let src = "pub fn total(xs: &[f64]) -> f64 { sum_ordered(xs.iter().copied()) }";
        let hits = one_graph(src);
        assert!(hits.is_empty(), "{hits:?}");
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let rel = PathBuf::from("crates/core/src/x.rs");
        let files = [SemFile {
            rel: &rel,
            tokens: &lexed.tokens,
            parsed: &parsed,
            test_ranges: &[],
        }];
        let graph = Graph::build(&files);
        let sites = symbol_reductions(&graph, &files);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].1[0].kind, ReductionKind::OrderFree);
    }

    #[test]
    fn unguarded_float_to_int_cast_is_flagged_guarded_passes() {
        let (tokens, parsed) = facts_of(
            "fn bin(x: f64) -> usize { (x * 10.0) as usize }\nfn ok(x: f64) -> usize { ((x * 10.0) as usize).min(9) }\nfn ok2(x: f64, n: usize) -> usize { let i = (x * 10.0) as usize; i.min(n - 1) }\nfn ok3(x: f64) -> u8 { x.clamp(0.0, 255.0) as u8 }",
        );
        let hits = file_hits(&tokens, &parsed);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[0].rule, RuleId::LossyCast);
    }

    #[test]
    fn narrow_len_cast_flagged_widening_passes() {
        let (tokens, parsed) = facts_of(
            "fn narrow(xs: &[f64]) -> u32 { xs.len() as u32 }\nfn widen(n: u32) -> f64 { n as f64 }\nfn wide_len(xs: &[f64]) -> u64 { xs.len() as u64 }",
        );
        let hits = file_hits(&tokens, &parsed);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("narrowed"));
    }

    #[test]
    fn float_index_argument_does_not_make_an_int_cast_lossy() {
        // `hint[bucket(g)]` is a u32 element; float `g` inside the index
        // expression must not classify the widening cast as float→int.
        let (tokens, parsed) =
            facts_of("fn seed(hint: &[u32], g: f64) -> usize { hint[bucket(g)] as usize }");
        let hits = file_hits(&tokens, &parsed);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn f64_to_f32_is_flagged() {
        let (tokens, parsed) = facts_of("fn shrink(x: f64) -> f32 { x as f32 }");
        let hits = file_hits(&tokens, &parsed);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("f32"));
    }

    #[test]
    fn unit_escape_tail_and_return_are_flagged() {
        let (tokens, parsed) = facts_of(
            "pub fn leak(v: Volts) -> f64 { v.0 }\npub fn leak2(v: Volts) -> f64 { let raw = v.0; return raw; }\npub fn pair(v: Volts, t: Seconds) -> (f64, f64) { (v.0, t.0) }",
        );
        let hits = file_hits(&tokens, &parsed);
        assert_eq!(hits.len(), 3, "{hits:?}");
        assert!(hits.iter().all(|h| h.rule == RuleId::UnitEscape));
    }

    #[test]
    fn derived_quantities_and_private_fns_pass() {
        let (tokens, parsed) = facts_of(
            "pub fn scaled_ps(t: Seconds) -> f64 { t.0 * 1e12 }\nfn private(v: Volts) -> f64 { v.0 }\npub fn typed(v: Volts) -> Volts { v }\npub fn tuple_index(pair: (f64, f64)) -> f64 { pair.0 }",
        );
        let hits = file_hits(&tokens, &parsed);
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn batch_readiness_is_deterministic_and_classifies() {
        let src = "pub fn sample_thing(xs: &[f64]) -> f64 { per_sample(xs) }\nfn per_sample(xs: &[f64]) -> f64 { let mut a = 0.0; for &x in xs { a += x; } a }\npub fn unrelated() -> f64 { 0.0 }";
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let rel = PathBuf::from("crates/core/src/x.rs");
        let files = [SemFile {
            rel: &rel,
            tokens: &lexed.tokens,
            parsed: &parsed,
            test_ranges: &[],
        }];
        let graph = Graph::build(&files);
        let none = [std::collections::BTreeSet::new()];
        let a = batch_readiness_report(&graph, &files, &none);
        let b = batch_readiness_report(&graph, &files, &none);
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"ntv-batch-readiness/2\""), "{a}");
        assert!(a.contains("sample_thing"), "{a}");
        assert!(a.contains("per_sample"), "{a}");
        assert!(!a.contains("unrelated"), "{a}");
        assert!(a.contains("\"status\":\"sensitive\""), "{a}");
        assert!(a.contains("\"batch_ready\":false"), "{a}");

        // The same fold under a reduction-order waiver reports as waived,
        // not sensitive, and no longer blocks batch readiness.
        let waived = [std::collections::BTreeSet::from([2u32])];
        let w = batch_readiness_report(&graph, &files, &waived);
        assert!(w.contains("\"status\":\"waived\""), "{w}");
        assert!(!w.contains("\"status\":\"sensitive\""), "{w}");
        assert!(!w.contains("\"batch_ready\":false"), "{w}");
    }

    #[test]
    fn batch_readiness_reports_ordered_helpers_as_migrated() {
        let src = "pub fn sample_sum(xs: &[f64]) -> f64 { sum_ordered(xs.iter().copied()) }";
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let rel = PathBuf::from("crates/core/src/x.rs");
        let files = [SemFile {
            rel: &rel,
            tokens: &lexed.tokens,
            parsed: &parsed,
            test_ranges: &[],
        }];
        let graph = Graph::build(&files);
        let report = batch_readiness_report(&graph, &files, &[std::collections::BTreeSet::new()]);
        assert!(report.contains("\"status\":\"migrated\""), "{report}");
        assert!(report.contains("\"batch_ready\":true"), "{report}");
    }
}
