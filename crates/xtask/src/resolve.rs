//! Symbol table and cross-crate path resolution for the semantic lint layer.
//!
//! The workspace is offline (no `syn`, no rustc metadata), so resolution is
//! name-shaped rather than type-checked, and deliberately **over-approximate
//! in a sound direction** for reachability analysis:
//!
//! * a method call `.m(..)` resolves to *every* workspace method named `m`
//!   (receiver types are unknown at token level);
//! * a qualified call `A::m(..)` resolves to methods of impl type `A` when
//!   any exist, then to functions declared in a module named `A`, then falls
//!   back to every symbol named `m`;
//! * a free call `m(..)` resolves to every free function named `m`;
//! * calls into `std` / vendored crates resolve to nothing and drop out.
//!
//! Over-approximation can only *add* edges to the call graph, so a panic
//! site deemed reachable might in truth be dead — the waiver mechanism
//! absorbs that — but a truly reachable site is never missed through
//! resolution (function values passed without parentheses are the one
//! documented under-approximation, see [`parser::calls_in`]).
//!
//! [`parser::calls_in`]: crate::parser::calls_in

use std::collections::BTreeMap;
use std::path::Path;

use crate::parser::{CallSite, ParsedFile};

/// Index into [`SymbolTable::symbols`].
pub type SymbolId = usize;

/// One function declaration somewhere in the analyzed file set.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Index of the declaring file in the analysis input order.
    pub file: usize,
    /// Function name.
    pub name: String,
    /// Self type when declared inside an `impl` block.
    pub impl_ty: Option<String>,
    /// `pub` exactly (not `pub(crate)` / `pub(super)`).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token span in the declaring file's token stream, if any.
    pub body: Option<(usize, usize)>,
    /// Index of this symbol's signature in its file's `ParsedFile::fns`.
    pub sig: usize,
    /// Fully qualified display path, e.g.
    /// `ntv_core::op_cache::OpPointCache::get_or_build`.
    pub fq: String,
}

/// All function symbols of an analysis run, with name and module indices.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every symbol, ordered by (file index, source line) — the input file
    /// list is sorted by path, so symbol ids are path-deterministic.
    pub symbols: Vec<Symbol>,
    /// name → symbol ids (ascending).
    by_name: BTreeMap<String, Vec<SymbolId>>,
    /// module segment (e.g. `op_cache`) → file indices claiming it.
    module_files: BTreeMap<String, Vec<usize>>,
}

/// The module display path of a workspace-relative file:
/// `crates/core/src/op_cache.rs` → `["ntv_core", "op_cache"]`.
#[must_use]
pub fn module_path(rel: &Path) -> Vec<String> {
    let p = rel.to_string_lossy().replace('\\', "/");
    let mut segs: Vec<&str> = p.trim_end_matches(".rs").split('/').collect();
    // `crates/<dir>/src/<mod>` → crate ident + module; root `src/<mod>`
    // is the top-level crate. Anything else (tests, fixtures) keeps its
    // path segments as pseudo-modules so display stays unambiguous.
    let crate_ident = if segs.first() == Some(&"crates") && segs.len() >= 2 {
        let dir = segs[1];
        segs.drain(..2);
        match dir {
            "xtask" => "xtask".to_string(),
            other => format!("ntv_{other}"),
        }
    } else {
        "ntv_simd".to_string()
    };
    if segs.first() == Some(&"src") {
        segs.remove(0);
    }
    let mut out = vec![crate_ident];
    for s in segs {
        if s == "lib" || s == "mod" || s == "main" {
            continue;
        }
        out.push(s.to_string());
    }
    out
}

/// One file's parse products handed to the symbol table:
/// (file index, workspace-relative path, parsed declarations, test regions).
pub type FileInput<'a> = (usize, &'a Path, &'a ParsedFile, &'a [(u32, u32)]);

impl SymbolTable {
    /// Build the table from parsed files (same order as the analysis input).
    /// Functions starting inside `#[cfg(test)]` regions are excluded: test
    /// symbols are neither roots nor carriers of library findings.
    #[must_use]
    pub fn build(files: &[FileInput<'_>]) -> Self {
        let mut table = SymbolTable::default();
        for &(file, rel, parsed, test_ranges) in files {
            let module = module_path(rel);
            for (sig, f) in parsed.fns.iter().enumerate() {
                if test_ranges.iter().any(|&(a, b)| (a..=b).contains(&f.line)) {
                    continue;
                }
                let mut fq = module.join("::");
                if let Some(ty) = &f.in_impl {
                    fq.push_str("::");
                    fq.push_str(ty);
                }
                fq.push_str("::");
                fq.push_str(&f.name);
                let id = table.symbols.len();
                table.symbols.push(Symbol {
                    file,
                    name: f.name.clone(),
                    impl_ty: f.in_impl.clone(),
                    is_pub: f.is_pub,
                    line: f.line,
                    body: f.body,
                    sig,
                    fq,
                });
                table.by_name.entry(f.name.clone()).or_default().push(id);
            }
            if let Some(stem) = module.last() {
                table
                    .module_files
                    .entry(stem.clone())
                    .or_default()
                    .push(file);
            }
        }
        table
    }

    /// Resolve a call site to candidate symbols (ascending, deduplicated).
    ///
    /// `enclosing_impl` is the impl type of the calling function, used to
    /// substitute `Self::..` qualifiers.
    #[must_use]
    pub fn resolve(&self, call: &CallSite, enclosing_impl: Option<&str>) -> Vec<SymbolId> {
        self.resolve_with_confidence(call, enclosing_impl).0
    }

    /// [`resolve`](Self::resolve), additionally reporting whether the
    /// resolution is *confident*: a type- or module-qualified match, or a
    /// name unique in the workspace. Over-approximate (non-confident) edges
    /// — a method name with many impls, an unknown qualifier like
    /// `Arc::new` — are sound for reachability (they only add paths) but
    /// would drown precision-sensitive analyses like lock discipline in
    /// false positives, so those consume confident edges only.
    #[must_use]
    pub fn resolve_with_confidence(
        &self,
        call: &CallSite,
        enclosing_impl: Option<&str>,
    ) -> (Vec<SymbolId>, bool) {
        let Some(named) = self.by_name.get(&call.name) else {
            return (Vec::new(), true);
        };
        if call.is_method {
            // Any workspace method of this name; receiver types are unknown
            // at token level, so this is only confident when unambiguous.
            let methods: Vec<SymbolId> = named
                .iter()
                .copied()
                .filter(|&id| self.symbols[id].impl_ty.is_some())
                .collect();
            let confident = methods.len() == 1;
            return (methods, confident);
        }
        if let Some(q) = &call.qualifier {
            let q = if q == "Self" {
                enclosing_impl.unwrap_or("Self")
            } else {
                q.as_str()
            };
            let of_type: Vec<SymbolId> = named
                .iter()
                .copied()
                .filter(|&id| self.symbols[id].impl_ty.as_deref() == Some(q))
                .collect();
            if !of_type.is_empty() {
                return (of_type, true);
            }
            if let Some(files) = self.module_files.get(q) {
                let in_module: Vec<SymbolId> = named
                    .iter()
                    .copied()
                    .filter(|&id| files.contains(&self.symbols[id].file))
                    .collect();
                if !in_module.is_empty() {
                    return (in_module, true);
                }
            }
            // Unknown qualifier (std path, re-export): fall back to every
            // symbol of this name — over-approximate, never miss.
            return (named.clone(), false);
        }
        // Free call: free functions of this name (unambiguous when unique).
        let free: Vec<SymbolId> = named
            .iter()
            .copied()
            .filter(|&id| self.symbols[id].impl_ty.is_none())
            .collect();
        let confident = free.len() == 1;
        (free, confident)
    }

    /// Symbol ids of public functions, ascending — the reachability roots.
    #[must_use]
    pub fn public_roots(&self) -> Vec<SymbolId> {
        (0..self.symbols.len())
            .filter(|&id| self.symbols[id].is_pub)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    #[test]
    fn module_paths_follow_workspace_layout() {
        let m = |p: &str| module_path(Path::new(p)).join("::");
        assert_eq!(m("crates/core/src/op_cache.rs"), "ntv_core::op_cache");
        assert_eq!(m("crates/mc/src/lib.rs"), "ntv_mc");
        assert_eq!(m("src/lib.rs"), "ntv_simd");
        assert_eq!(
            m("crates/xtask/tests/fixtures/library/graph_helper.rs"),
            "xtask::tests::fixtures::library::graph_helper"
        );
    }

    #[test]
    fn resolution_prefers_type_then_module_then_name() {
        let a = parse(&lex(
            "pub struct Cache;\nimpl Cache {\n    pub fn get(&self) -> u32 { 1 }\n}\npub fn free_get() -> u32 { get() }\nfn get() -> u32 { 2 }",
        ));
        let b = parse(&lex("pub fn risky() -> u32 { 3 }"));
        let empty: &[(u32, u32)] = &[];
        let table = SymbolTable::build(&[
            (0, Path::new("crates/core/src/cache.rs"), &a, empty),
            (1, Path::new("crates/core/src/helper.rs"), &b, empty),
        ]);
        assert_eq!(table.symbols.len(), 4);

        let call = |name: &str, qualifier: Option<&str>, is_method: bool| CallSite {
            name: name.to_string(),
            qualifier: qualifier.map(str::to_owned),
            is_method,
            line: 1,
            tok: 0,
        };
        // Method call: every method of that name, no free fns.
        let m = table.resolve(&call("get", None, true), None);
        assert_eq!(m.len(), 1);
        assert_eq!(table.symbols[m[0]].impl_ty.as_deref(), Some("Cache"));
        // Qualified by impl type.
        let t = table.resolve(&call("get", Some("Cache"), false), None);
        assert_eq!(t, m);
        // Qualified by module stem.
        let by_mod = table.resolve(&call("risky", Some("helper"), false), None);
        assert_eq!(by_mod.len(), 1);
        assert_eq!(table.symbols[by_mod[0]].fq, "ntv_core::helper::risky");
        // Free call: the free fn only.
        let f = table.resolve(&call("get", None, false), None);
        assert_eq!(f.len(), 1);
        assert!(table.symbols[f[0]].impl_ty.is_none());
        // Self:: substitutes the enclosing impl type.
        let s = table.resolve(&call("get", Some("Self"), false), Some("Cache"));
        assert_eq!(s, m);
        // Unknown names resolve to nothing.
        assert!(table.resolve(&call("sqrt", None, true), None).is_empty());
    }

    #[test]
    fn test_region_symbols_are_excluded() {
        let p = parse(&lex(
            "pub fn real() {}\nmod tests {\n    pub fn fake() {}\n}",
        ));
        let ranges = [(2u32, 4u32)];
        let table = SymbolTable::build(&[(0, Path::new("crates/mc/src/x.rs"), &p, &ranges)]);
        assert_eq!(table.symbols.len(), 1);
        assert_eq!(table.symbols[0].name, "real");
    }
}
