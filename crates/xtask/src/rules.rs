//! Lint rules: domain invariants of the Monte-Carlo workspace, expressed as
//! token-stream patterns.
//!
//! Three families, mirroring the repo's correctness contract:
//!
//! * **Determinism** — every figure is a Monte-Carlo statistic, so all
//!   randomness must flow through `ntv_mc::rng` labelled seed streams and no
//!   result-producing path may depend on wall-clock time, OS entropy,
//!   environment variables, or hash-map iteration order.
//! * **Float totality** — order statistics must be NaN-safe:
//!   `partial_cmp(..).unwrap()` is a latent panic on the exact inputs
//!   (NaN-bearing samples) the pipeline must reject gracefully; use
//!   `f64::total_cmp` or an explicit NaN-rejecting constructor.
//! * **Panic hygiene** — library crates must not contain bare `unwrap()` or
//!   `panic!`-family macros; propagate errors or use `expect` with a
//!   documented invariant.
//! * **Unit safety** — public library APIs must not pass physical quantities
//!   (volts, seconds, hertz, watts, kelvin) as bare `f64`; use the
//!   `ntv-units` newtypes so the compiler rejects a voltage where a time is
//!   expected. This family is signature-aware: it runs on the
//!   [`parser`](crate::parser) extraction, not the raw token stream.

use crate::lexer::Token;
use crate::parser::ParsedFile;

/// Identity of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// OS-entropy randomness: `thread_rng`, `from_entropy`.
    ThreadRng,
    /// Direct stateful-generator use (`SmallRng`, `rand::rngs`) outside
    /// `ntv_mc::rng` — library code must draw through the index-addressed
    /// counter streams so sample *i* never depends on draw history.
    StatefulRng,
    /// Wall-clock reads: `Instant::now`, `SystemTime::now`.
    WallClock,
    /// Environment reads: `env::var` / `env::vars` / `env::var_os`.
    EnvRead,
    /// `HashMap` / `HashSet` in result-producing code (iteration order is
    /// nondeterministic with the default RandomState hasher).
    HashContainer,
    /// `partial_cmp(..).unwrap()` / `.expect(..)` float orderings.
    PartialCmpUnwrap,
    /// Bare `.unwrap()` in library code.
    Unwrap,
    /// `panic!` / `todo!` / `unimplemented!` (and argument-less
    /// `unreachable!()`) in library code.
    Panic,
    /// Bare `f64` (or f64 tuple) carrying a physical unit in a public
    /// library signature — use the `ntv-units` newtypes instead.
    BareUnit,
    /// Direct `PathDistribution::build` outside the operating-point cache —
    /// identical Gauss–Hermite builds must be shared via
    /// `ntv_core::OpPointCache` (`get_or_build` / `prefetch`).
    UncachedBuild,
    /// Malformed `ntv:allow(..)` waiver comment (missing rule or reason).
    BadWaiver,
    /// Panicking operation (`.expect(..)`, message-carrying
    /// `unreachable!(..)`, slice indexing by a caller-supplied parameter)
    /// reachable from a public Library-class API — found by the
    /// [`graph`](crate::graph) call-graph pass, not token scanning.
    PanicPath,
    /// Lock guard held across a call into lock-acquiring code, a second
    /// acquisition, or the Gauss–Hermite build path — the discipline that
    /// keeps `ntv_core::op_cache` deadlock-free and build-outside-lock.
    LockDiscipline,
    /// Sequential non-associative f64 accumulation (`+=`/`*=` in a loop,
    /// `.sum()`, a float-seeded `.fold(..)`) in Library code reachable from
    /// a public API — exactly where SIMD lane reordering would change the
    /// result bit pattern. Found by the [`dataflow`](crate::dataflow) pass
    /// over the call graph.
    ReductionOrder,
    /// Truncating/rounding `as` cast (`f64 as usize`, `f64 as f32`, a
    /// width-narrowing integer cast on a length/count) whose operand is not
    /// provably bounds-guarded (`.min(..)` / `.clamp(..)`) in the same
    /// function.
    LossyCast,
    /// A `.0` projection of an `ntv-units` newtype that flows back out of a
    /// public fn as a bare float — the dataflow extension of the
    /// signature-level `bare-unit` rule.
    UnitEscape,
    /// An `io` effect (`println!`, `std::fs`, `std::io`) reachable from a
    /// public Library-class fn — found by the [`effects`](crate::effects)
    /// lattice over the call graph, not token scanning.
    HiddenIo,
    /// A `clock`/`env` effect (`Instant::now`, `available_parallelism`,
    /// `std::env`) reaching a sampling or solver path, where determinism
    /// across replicas is a documented invariant.
    AmbientClock,
    /// A `thread`/`sync`/`global` effect (spawns, locks, `static` state)
    /// reachable from the public API of a crate the WASM split must keep
    /// pure (ntv-units, ntv-device, ntv-circuit, ntv-mc-math) or from the
    /// waived `Executor`/`OpPointCache` roots in ntv-core.
    EffectEscape,
    /// A cycle in the workspace lock-order graph: two lock classes each
    /// acquirable while the other is held (possibly through confident call
    /// edges), i.e. a latent ABBA deadlock — found by the
    /// [`concurrency`](crate::concurrency) pass.
    LockOrderCycle,
    /// An all-`Relaxed` atomic operation on an atomic that participates in
    /// a cross-thread handshake (mixed-ordering publication, `Condvar`, or
    /// an explicit `fence`); pure counters stay `Relaxed` without a waiver.
    AtomicOrdering,
    /// A call that can transitively block (socket/file I/O, `Condvar::wait`,
    /// channel `recv`, `join`, `sleep`) while a lock guard is live — the
    /// bug shape that convoys every other thread behind one slow caller.
    BlockingUnderLock,
    /// An `ntv:allow(..)` waiver that suppresses zero findings (reported
    /// only under `xtask lint --check-waivers`, so waivers cannot rot).
    DeadWaiver,
}

impl RuleId {
    /// Every rule, in diagnostic-name order.
    pub const ALL: &'static [RuleId] = &[
        RuleId::ThreadRng,
        RuleId::StatefulRng,
        RuleId::WallClock,
        RuleId::EnvRead,
        RuleId::HashContainer,
        RuleId::PartialCmpUnwrap,
        RuleId::Unwrap,
        RuleId::Panic,
        RuleId::BareUnit,
        RuleId::UncachedBuild,
        RuleId::BadWaiver,
        RuleId::PanicPath,
        RuleId::LockDiscipline,
        RuleId::ReductionOrder,
        RuleId::LossyCast,
        RuleId::UnitEscape,
        RuleId::HiddenIo,
        RuleId::AmbientClock,
        RuleId::EffectEscape,
        RuleId::LockOrderCycle,
        RuleId::AtomicOrdering,
        RuleId::BlockingUnderLock,
        RuleId::DeadWaiver,
    ];

    /// Full diagnostic name, e.g. `ntv::unwrap`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RuleId::ThreadRng => "ntv::thread-rng",
            RuleId::StatefulRng => "ntv::stateful-rng",
            RuleId::WallClock => "ntv::wall-clock",
            RuleId::EnvRead => "ntv::env-read",
            RuleId::HashContainer => "ntv::hash-container",
            RuleId::PartialCmpUnwrap => "ntv::partial-cmp-unwrap",
            RuleId::Unwrap => "ntv::unwrap",
            RuleId::Panic => "ntv::panic",
            RuleId::BareUnit => "ntv::bare-unit",
            RuleId::UncachedBuild => "ntv::uncached-build",
            RuleId::BadWaiver => "ntv::bad-waiver",
            RuleId::PanicPath => "ntv::panic-path",
            RuleId::LockDiscipline => "ntv::lock-discipline",
            RuleId::ReductionOrder => "ntv::reduction-order",
            RuleId::LossyCast => "ntv::lossy-cast",
            RuleId::UnitEscape => "ntv::unit-escape",
            RuleId::HiddenIo => "ntv::hidden-io",
            RuleId::AmbientClock => "ntv::ambient-clock",
            RuleId::EffectEscape => "ntv::effect-escape",
            RuleId::LockOrderCycle => "ntv::lock-order-cycle",
            RuleId::AtomicOrdering => "ntv::atomic-ordering",
            RuleId::BlockingUnderLock => "ntv::blocking-under-lock",
            RuleId::DeadWaiver => "ntv::dead-waiver",
        }
    }

    /// Short name accepted inside `ntv:allow(..)` waivers.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            RuleId::ThreadRng => "thread-rng",
            RuleId::StatefulRng => "stateful-rng",
            RuleId::WallClock => "wall-clock",
            RuleId::EnvRead => "env-read",
            RuleId::HashContainer => "hash-container",
            RuleId::PartialCmpUnwrap => "partial-cmp-unwrap",
            RuleId::Unwrap => "unwrap",
            RuleId::Panic => "panic",
            RuleId::BareUnit => "bare-unit",
            RuleId::UncachedBuild => "uncached-build",
            RuleId::BadWaiver => "bad-waiver",
            RuleId::PanicPath => "panic-path",
            RuleId::LockDiscipline => "lock-discipline",
            RuleId::ReductionOrder => "reduction-order",
            RuleId::LossyCast => "lossy-cast",
            RuleId::UnitEscape => "unit-escape",
            RuleId::HiddenIo => "hidden-io",
            RuleId::AmbientClock => "ambient-clock",
            RuleId::EffectEscape => "effect-escape",
            RuleId::LockOrderCycle => "lock-order-cycle",
            RuleId::AtomicOrdering => "atomic-ordering",
            RuleId::BlockingUnderLock => "blocking-under-lock",
            RuleId::DeadWaiver => "dead-waiver",
        }
    }

    /// Resolve a waiver name (`unwrap` or `ntv::unwrap`) to a rule.
    #[must_use]
    pub fn from_waiver_name(name: &str) -> Option<RuleId> {
        let name = name.trim().trim_start_matches("ntv::");
        RuleId::ALL.iter().copied().find(|r| r.short_name() == name)
    }

    /// One-line explanation shown with each diagnostic.
    #[must_use]
    pub fn help(self) -> &'static str {
        match self {
            RuleId::ThreadRng => {
                "all randomness must flow through `ntv_mc::rng::StreamRng` \
                 labelled seed streams; OS entropy breaks bit-reproducibility"
            }
            RuleId::StatefulRng => {
                "draw through `ntv_mc::CounterRng` index-addressed streams \
                 (or the `SampleStream` trait); only `ntv_mc::rng` may wrap \
                 a stateful generator, because sequential draw history \
                 breaks thread-count invariance"
            }
            RuleId::WallClock => {
                "wall-clock reads make results run-dependent; take time spans \
                 as parameters or move the timing into `crates/bench`"
            }
            RuleId::EnvRead => {
                "environment reads make library results host-dependent; pass \
                 configuration explicitly through `DatapathConfig` or function \
                 arguments"
            }
            RuleId::HashContainer => {
                "HashMap/HashSet iteration order is randomized per process; \
                 use BTreeMap/BTreeSet or sort before iterating into results"
            }
            RuleId::PartialCmpUnwrap => {
                "panics on NaN; order floats with `f64::total_cmp`, or reject \
                 NaN at the boundary and document it"
            }
            RuleId::Unwrap => {
                "propagate with `?`, or use `expect(\"<why this cannot \
                 fail>\")` to document the invariant"
            }
            RuleId::Panic => {
                "library code must return `Result`; reserve panics for \
                 documented invariants via `expect`/`assert!` with a message"
            }
            RuleId::BareUnit => {
                "physical quantities in public signatures must use the \
                 `ntv-units` newtypes (`Volts`, `Seconds`, `Hertz`, `Watts`, \
                 `Kelvin`) so unit mix-ups fail to compile; scale-suffixed \
                 names (`_ps`, `_mv`, `_fo4`, ...) stay `f64` by convention"
            }
            RuleId::UncachedBuild => {
                "obtain path distributions through `ntv_core::OpPointCache` \
                 (`get_or_build`, or `DatapathEngine::path_distribution` / \
                 `prefetch`) so identical Gauss–Hermite builds are shared \
                 process-wide; direct `PathDistribution::build` repeats the \
                 quadrature per call site"
            }
            RuleId::BadWaiver => {
                "waivers must name a rule and give a reason: \
                 `// ntv:allow(<rule>): <reason>`"
            }
            RuleId::PanicPath => {
                "this panic is reachable from a public API, so a malformed \
                 input can abort a full Monte-Carlo sweep mid-grid; return \
                 `Result`, bound the index through an accessor, or waive \
                 with the invariant that makes the panic unreachable"
            }
            RuleId::LockDiscipline => {
                "never hold a map lock across a build or another \
                 acquisition: take the guard in a statement-scoped \
                 temporary, clone the per-entry `Arc<OnceLock>`, and build \
                 outside the lock (the `ntv_core::op_cache` pattern)"
            }
            RuleId::ReductionOrder => {
                "float addition is not associative, so this sequential \
                 accumulation pins a summation order that SIMD lane \
                 reordering would silently change; route it through \
                 `ntv_mc::reduce` (`sum_ordered` / `sum_compensated`), or \
                 waive with the invariant that fixes the order"
            }
            RuleId::LossyCast => {
                "this `as` cast silently truncates or rounds; clamp the \
                 value first (`.min(..)` / `.clamp(..)` in the same \
                 function), convert through a checked path, or waive with \
                 the invariant that bounds the operand"
            }
            RuleId::UnitEscape => {
                "the `.0` projection strips the `ntv-units` newtype before \
                 the value leaves a public fn, reopening the unit-mix-up \
                 hole the newtype closed; return the newtype, or convert \
                 through a named accessor at the boundary"
            }
            RuleId::HiddenIo => {
                "this I/O operation is reachable from a public library fn, \
                 so library consumers (and the future WASM build) inherit a \
                 hidden stdout/filesystem dependency; return the data and \
                 let the caller print, or move the printing into the bin \
                 harness"
            }
            RuleId::AmbientClock => {
                "a wall-clock or environment read reaches a sampling/solver \
                 path, so identical queries stop being byte-identical \
                 across replicas; pass the value in as a parameter, or \
                 waive with the invariant that keeps results independent \
                 of it"
            }
            RuleId::EffectEscape => {
                "threads, locks, or process-global state are reachable from \
                 the public API of a crate the no-std/WASM split must keep \
                 pure; move the effect behind `ntv_core` (the sanctioned \
                 `Executor`/`OpPointCache` roots carry waivers stating \
                 their invariant), or gate it behind a feature"
            }
            RuleId::LockOrderCycle => {
                "two lock classes can each be acquired while the other is \
                 held, so two threads taking them in opposite orders \
                 deadlock; pick one global order (document it where the \
                 first lock lives), or drop the inner guard before taking \
                 the outer"
            }
            RuleId::AtomicOrdering => {
                "this atomic takes part in a cross-thread handshake (it is \
                 written with stronger orderings elsewhere, or sits next to \
                 a `Condvar`/`fence`), so a fully `Relaxed` operation can \
                 observe torn protocol state; use `Acquire`/`Release` on \
                 the handshake edges, or waive with the invariant that \
                 makes `Relaxed` sufficient"
            }
            RuleId::BlockingUnderLock => {
                "a call that can block (socket/file I/O, `Condvar::wait`, \
                 channel `recv`, `join`, `sleep`) runs while a lock guard \
                 is live, so one slow peer stalls every thread behind the \
                 lock; drop the guard first, or move the blocking call out \
                 of the critical section (the `op_cache` build-outside-lock \
                 pattern)"
            }
            RuleId::DeadWaiver => {
                "this waiver suppresses no finding — the code it excused \
                 was fixed or moved; delete the comment so the waiver \
                 inventory stays honest"
            }
        }
    }
}

/// A raw rule hit before policy (severity, waivers) is applied.
#[derive(Debug, Clone)]
pub struct Hit {
    /// The violated rule.
    pub rule: RuleId,
    /// 1-based source line of the violation.
    pub line: u32,
    /// What was found, e.g. ``bare `unwrap()` ``.
    pub message: String,
}

/// Scan a token stream for every rule violation, regardless of file class —
/// filtering by class/policy/waiver happens in `engine`.
#[must_use]
pub fn scan(tokens: &[Token]) -> Vec<Hit> {
    let mut hits = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        let Some(ident) = tok.ident() else { continue };
        match ident {
            "thread_rng" | "from_entropy" => hits.push(Hit {
                rule: RuleId::ThreadRng,
                line: tok.line,
                message: format!("OS-entropy randomness via `{ident}`"),
            }),
            "SmallRng" => hits.push(Hit {
                rule: RuleId::StatefulRng,
                line: tok.line,
                message: "stateful generator `SmallRng` outside `ntv_mc::rng`".to_string(),
            }),
            "rand" if path_call(tokens, i, "rngs") => hits.push(Hit {
                rule: RuleId::StatefulRng,
                line: tok.line,
                message: "stateful generator via `rand::rngs`".to_string(),
            }),
            "Instant" | "SystemTime" if path_call(tokens, i, "now") => hits.push(Hit {
                rule: RuleId::WallClock,
                line: tok.line,
                message: format!("wall-clock read via `{ident}::now`"),
            }),
            "env" if env_read(tokens, i).is_some() => {
                let what = env_read(tokens, i).unwrap_or("var");
                hits.push(Hit {
                    rule: RuleId::EnvRead,
                    line: tok.line,
                    message: format!("environment read via `env::{what}`"),
                });
            }
            "HashMap" | "HashSet" => hits.push(Hit {
                rule: RuleId::HashContainer,
                line: tok.line,
                message: format!("`{ident}` has nondeterministic iteration order"),
            }),
            "partial_cmp" => {
                if let Some(method) = partial_cmp_then_unwrap(tokens, i) {
                    hits.push(Hit {
                        rule: RuleId::PartialCmpUnwrap,
                        line: tok.line,
                        message: format!("`partial_cmp(..).{method}(..)` panics on NaN"),
                    });
                }
            }
            "unwrap" if is_method_call(tokens, i) => hits.push(Hit {
                rule: RuleId::Unwrap,
                line: tok.line,
                message: "bare `unwrap()`".to_string(),
            }),
            "panic" | "todo" | "unimplemented" if is_macro_invocation(tokens, i) => {
                hits.push(Hit {
                    rule: RuleId::Panic,
                    line: tok.line,
                    message: format!("`{ident}!` in library code"),
                });
            }
            "PathDistribution" if path_call(tokens, i, "build") => hits.push(Hit {
                rule: RuleId::UncachedBuild,
                line: tok.line,
                message: "direct `PathDistribution::build` outside the operating-point cache"
                    .to_string(),
            }),
            "unreachable" if is_macro_invocation(tokens, i) && macro_args_empty(tokens, i) => {
                hits.push(Hit {
                    rule: RuleId::Panic,
                    line: tok.line,
                    message: "argument-less `unreachable!()` (document the invariant)".to_string(),
                });
            }
            _ => {}
        }
    }
    hits
}

/// Scan extracted declarations for the signature-aware `ntv::bare-unit`
/// family. Only *public* functions are policed (and methods only when their
/// self type is not a private struct of the same file): the rule protects
/// the API surface other crates consume.
#[must_use]
pub fn scan_signatures(parsed: &ParsedFile) -> Vec<Hit> {
    let mut hits = Vec::new();
    for f in &parsed.fns {
        if !f.is_pub {
            continue;
        }
        if let Some(self_ty) = &f.in_impl {
            if parsed.struct_is_pub(self_ty) == Some(false) {
                continue;
            }
        }
        for p in &f.params {
            if is_bare_f64(&p.ty) && has_unit_segment(&p.name) && !has_scale_segment(&p.name) {
                hits.push(Hit {
                    rule: RuleId::BareUnit,
                    line: p.line,
                    message: format!(
                        "parameter `{}: {}` of public fn `{}` carries a physical unit as bare f64",
                        p.name, p.ty, f.name
                    ),
                });
            }
        }
        if let Some(ret) = &f.ret {
            if is_bare_f64(ret)
                && !has_scale_segment(&f.name)
                && (has_unit_segment(&f.name) || doc_names_unit(&f.doc).is_some())
            {
                let why = if has_unit_segment(&f.name) {
                    "its name".to_string()
                } else {
                    // Checked by the condition above.
                    let unit = doc_names_unit(&f.doc).unwrap_or("a unit");
                    format!("its doc (\"in {unit}\")")
                };
                hits.push(Hit {
                    rule: RuleId::BareUnit,
                    line: f.line,
                    message: format!(
                        "public fn `{}` returns `{ret}` but {why} names a physical unit",
                        f.name
                    ),
                });
            }
        }
    }
    hits
}

/// `f64` itself, or a tuple type containing only `f64` fields.
fn is_bare_f64(ty: &str) -> bool {
    if ty == "f64" {
        return true;
    }
    ty.strip_prefix('(')
        .and_then(|t| t.strip_suffix(')'))
        .is_some_and(|inner| {
            let mut any = false;
            for field in inner.split(',').filter(|f| !f.is_empty()) {
                if field != "f64" {
                    return false;
                }
                any = true;
            }
            any
        })
}

/// Snake-case segments that *are* a physical quantity: a parameter named
/// `vdd` or `half_life_seconds` holds volts/seconds and must be typed so.
const UNIT_SEGMENTS: &[&str] = &[
    "vdd", "vth", "volt", "volts", "voltage", "kelvin", "hertz", "hz", "watt", "watts", "seconds",
    "secs",
];

/// Scale-suffix segments exempting a name: by workspace convention these are
/// plain numbers in a *stated* scale (`t_clk_ns`, `margin_mv`,
/// `fo4_unit_ps`) and the SI-base newtypes would force silent rescaling.
const SCALE_SEGMENTS: &[&str] = &[
    "ps", "ns", "us", "ms", "fs", "fj", "pj", "nj", "mv", "uv", "ghz", "mhz", "khz", "mw", "uw",
    "fo4", "pct",
];

fn segments(name: &str) -> impl Iterator<Item = String> + '_ {
    name.split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(str::to_lowercase)
}

fn has_unit_segment(name: &str) -> bool {
    segments(name).any(|s| UNIT_SEGMENTS.contains(&s.as_str()))
}

fn has_scale_segment(name: &str) -> bool {
    segments(name).any(|s| SCALE_SEGMENTS.contains(&s.as_str()))
}

/// Does the doc comment explicitly state the value's unit (`... in volts`)?
/// Restricted to the `in <unit>` phrase so prose that merely *mentions*
/// voltage (e.g. "at the given supply") does not flag dimensionless returns.
fn doc_names_unit(doc: &str) -> Option<&'static str> {
    let doc = doc.to_lowercase();
    ["volts", "seconds", "hertz", "watts", "kelvin"]
        .into_iter()
        .find(|unit| doc.contains(&format!("in {unit}")))
}

/// Is token `i` followed by `::name`?
fn path_call(tokens: &[Token], i: usize, name: &str) -> bool {
    matches!(
        (tokens.get(i + 1), tokens.get(i + 2), tokens.get(i + 3)),
        (Some(a), Some(b), Some(c))
            if a.is_punct(':') && b.is_punct(':') && c.ident() == Some(name)
    )
}

/// `env::{var, vars, var_os, vars_os}` starting at the `env` token.
fn env_read(tokens: &[Token], i: usize) -> Option<&'static str> {
    ["var", "vars", "var_os", "vars_os"]
        .into_iter()
        .find(|name| path_call(tokens, i, name))
}

/// `.unwrap()` — a method call, not an `fn unwrap` definition or a path.
fn is_method_call(tokens: &[Token], i: usize) -> bool {
    let preceded_by_dot = i > 0 && tokens[i - 1].is_punct('.');
    let called = matches!(
        (tokens.get(i + 1), tokens.get(i + 2)),
        (Some(a), Some(b)) if a.is_punct('(') && b.is_punct(')')
    );
    preceded_by_dot && called
}

/// `name!(..)` / `name! {..}` — and not a `macro_rules!` definition head.
fn is_macro_invocation(tokens: &[Token], i: usize) -> bool {
    let banged = matches!(tokens.get(i + 1), Some(t) if t.is_punct('!'));
    let defines = i > 0 && tokens[i - 1].ident().is_some_and(|s| s == "macro_rules");
    banged && !defines
}

/// For a macro invocation at `i`: is the delimited argument list empty?
fn macro_args_empty(tokens: &[Token], i: usize) -> bool {
    matches!(
        (tokens.get(i + 2), tokens.get(i + 3)),
        (Some(a), Some(b))
            if (a.is_punct('(') && b.is_punct(')'))
                || (a.is_punct('[') && b.is_punct(']'))
                || (a.is_punct('{') && b.is_punct('}'))
    )
}

/// From `partial_cmp` at index `i`: skip the balanced call parentheses, then
/// report `Some("unwrap" | "expect")` if that is the next method called.
fn partial_cmp_then_unwrap(tokens: &[Token], i: usize) -> Option<&'static str> {
    let open = i + 1;
    if !tokens.get(open)?.is_punct('(') {
        return None; // `f64::partial_cmp` passed as a function value
    }
    let mut depth = 0usize;
    let mut j = open;
    loop {
        let t = tokens.get(j)?;
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    if !tokens.get(j + 1)?.is_punct('.') {
        return None;
    }
    match tokens.get(j + 2)?.ident()? {
        "unwrap" => Some("unwrap"),
        "expect" => Some("expect"),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn rules_hit(src: &str) -> Vec<RuleId> {
        let mut v: Vec<RuleId> = scan(&lex(src).tokens).into_iter().map(|h| h.rule).collect();
        v.dedup();
        v
    }

    #[test]
    fn detects_thread_rng_and_entropy() {
        assert_eq!(
            rules_hit("let mut r = rand::thread_rng();"),
            vec![RuleId::ThreadRng]
        );
        assert_eq!(
            rules_hit("let r = SmallRng::from_entropy();"),
            vec![RuleId::StatefulRng, RuleId::ThreadRng]
        );
    }

    #[test]
    fn detects_stateful_generators() {
        assert_eq!(
            rules_hit("use rand::rngs::SmallRng;"),
            vec![RuleId::StatefulRng]
        );
        assert_eq!(
            rules_hit("let r = SmallRng::seed_from_u64(7);"),
            vec![RuleId::StatefulRng]
        );
        // The sanctioned entry points don't mention the generator at all.
        assert!(rules_hit("let s = CounterRng::new(seed, \"label\");").is_empty());
        assert!(rules_hit("use rand::Rng;").is_empty());
    }

    #[test]
    fn detects_wall_clock_but_not_duration() {
        assert_eq!(
            rules_hit("let t0 = Instant::now();"),
            vec![RuleId::WallClock]
        );
        assert_eq!(
            rules_hit("let t = SystemTime::now();"),
            vec![RuleId::WallClock]
        );
        assert!(rules_hit("let d = Duration::from_secs(1);").is_empty());
        assert!(rules_hit("use std::time::Instant;").is_empty());
    }

    #[test]
    fn detects_env_reads() {
        assert_eq!(
            rules_hit("let v = std::env::var(\"SEED\");"),
            vec![RuleId::EnvRead]
        );
        assert!(rules_hit("let v = env!(\"CARGO_MANIFEST_DIR\");").is_empty());
    }

    #[test]
    fn detects_hash_containers() {
        assert_eq!(
            rules_hit("use std::collections::HashMap;"),
            vec![RuleId::HashContainer]
        );
        assert!(rules_hit("use std::collections::BTreeMap;").is_empty());
    }

    #[test]
    fn detects_partial_cmp_unwrap_and_expect() {
        assert_eq!(
            rules_hit("v.sort_by(|a, b| a.partial_cmp(b).unwrap());"),
            vec![RuleId::PartialCmpUnwrap, RuleId::Unwrap]
        );
        assert_eq!(
            rules_hit("let o = x.partial_cmp(&y).expect(\"no NaN\");"),
            vec![RuleId::PartialCmpUnwrap]
        );
        assert!(rules_hit("v.sort_by(f64::total_cmp);").is_empty());
        assert!(rules_hit("let f = f64::partial_cmp;").is_empty());
    }

    #[test]
    fn detects_bare_unwrap_only_as_method() {
        assert_eq!(rules_hit("let x = y.unwrap();"), vec![RuleId::Unwrap]);
        assert!(rules_hit("fn unwrap(self) -> T { self.0 }").is_empty());
        assert!(rules_hit("let x = y.unwrap_or(0);").is_empty());
        assert!(rules_hit("let x = y.expect(\"invariant\");").is_empty());
    }

    #[test]
    fn detects_panic_family() {
        assert_eq!(rules_hit("panic!(\"boom\");"), vec![RuleId::Panic]);
        assert_eq!(rules_hit("todo!()"), vec![RuleId::Panic]);
        assert_eq!(rules_hit("unimplemented!()"), vec![RuleId::Panic]);
        assert_eq!(rules_hit("unreachable!()"), vec![RuleId::Panic]);
        // Documented unreachable and assert! with a message are allowed.
        assert!(rules_hit("unreachable!(\"k < n by loop bound\")").is_empty());
        assert!(rules_hit("assert!(n > 0, \"empty\");").is_empty());
    }

    #[test]
    fn macro_definitions_are_not_invocations() {
        assert!(rules_hit("macro_rules! panic { () => {} }").is_empty());
    }

    #[test]
    fn detects_uncached_distribution_builds() {
        assert_eq!(
            rules_hit("let d = PathDistribution::build(&tech, vdd, n);"),
            vec![RuleId::UncachedBuild]
        );
        assert_eq!(
            rules_hit("let d = crate::engine::PathDistribution::build(&tech, vdd, n);"),
            vec![RuleId::UncachedBuild]
        );
        // The sanctioned accessors never name the constructor.
        assert!(rules_hit("let d = engine.path_distribution(vdd);").is_empty());
        assert!(rules_hit("let d = cache.get_or_build(&tech, vdd, n);").is_empty());
        // Mentioning the type without calling `::build` is fine.
        assert!(rules_hit("fn f(d: &PathDistribution) -> f64 { d.mean_ps() }").is_empty());
    }

    fn sig_hits(src: &str) -> Vec<Hit> {
        scan_signatures(&crate::parser::parse(&lex(src)))
    }

    #[test]
    fn bare_unit_flags_unit_named_f64_params_on_public_fns() {
        let hits = sig_hits("pub fn delay(vdd: f64, n: usize) -> f64 { 0.0 }");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RuleId::BareUnit);
        assert!(hits[0].message.contains("vdd"), "{}", hits[0].message);
        // Private and crate-restricted functions are not API surface.
        assert!(sig_hits("fn delay(vdd: f64) -> f64 { 0.0 }").is_empty());
        assert!(sig_hits("pub(crate) fn delay(vdd: f64) -> f64 { 0.0 }").is_empty());
    }

    #[test]
    fn bare_unit_flags_unit_named_returns_and_doc_units() {
        assert_eq!(sig_hits("pub fn nominal_vdd() -> f64 { 0.9 }").len(), 1);
        let doc = "/// Critical-path period, in seconds.\npub fn period() -> f64 { 1e-9 }";
        assert_eq!(sig_hits(doc).len(), 1);
        // Prose mentioning a quantity without stating the unit is fine.
        let prose =
            "/// Yield at the given supply voltage point.\npub fn yield_at() -> f64 { 0.9 }";
        assert!(sig_hits(prose).is_empty());
    }

    #[test]
    fn bare_unit_exempts_scale_suffixed_names_and_newtypes() {
        assert!(sig_hits("pub fn fo4_unit_ps(vdd_mv: f64) -> f64 { 441.0 }").is_empty());
        assert!(sig_hits("pub fn target_delay_ns() -> f64 { 22.0 }").is_empty());
        assert!(sig_hits("pub fn delay(vdd: Volts) -> Seconds { Seconds(0.0) }").is_empty());
        // Slices/containers of f64 are aggregates, not a single quantity.
        assert!(sig_hits("pub fn vdd_grid() -> Vec<f64> { vec![] }").is_empty());
    }

    #[test]
    fn bare_unit_flags_f64_tuples_and_private_impl_methods_pass() {
        assert_eq!(
            sig_hits("pub fn vdd_bounds() -> (f64, f64) { (0.0, 1.0) }").len(),
            1
        );
        let private_impl =
            "struct Inner;\nimpl Inner {\n    pub fn vth_shift(&self) -> f64 { 0.0 }\n}";
        assert!(sig_hits(private_impl).is_empty());
        let public_impl =
            "pub struct Outer;\nimpl Outer {\n    pub fn vth_shift(&self) -> f64 { 0.0 }\n}";
        assert_eq!(sig_hits(public_impl).len(), 1);
    }
}
