//! SARIF 2.1.0 rendering of lint reports.
//!
//! Hand-assembled JSON (the workspace is offline; no serde in the tool) in
//! a fixed key order over diagnostics already sorted by (file, line, rule),
//! so the output is byte-identical across runs and thread counts by
//! construction. The document targets GitHub code scanning: one run, the
//! full rule catalog in `tool.driver.rules` (indexed by `ruleIndex`), and
//! workspace-relative artifact URIs under the `SRCROOT` base id.

use crate::engine::{Diagnostic, Severity};
use crate::json::escape as esc;
use crate::rules::RuleId;

/// Render diagnostics (pre-sorted by (file, line, rule)) as a SARIF 2.1.0
/// document with a trailing newline.
#[must_use]
pub fn render(diags: &[&Diagnostic]) -> String {
    let mut out = String::with_capacity(4096 + diags.len() * 256);
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"ntv-xtask-lint\",\n");
    out.push_str(&format!(
        "          \"version\": \"{}\",\n",
        esc(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("          \"informationUri\": \"https://github.com/ntv-simd/ntv-simd\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, rule) in RuleId::ALL.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"fullDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"error\"}}}}{}\n",
            esc(rule.name()),
            esc(rule.short_name()),
            esc(&normalize_ws(rule.help())),
            if i + 1 < RuleId::ALL.len() { "," } else { "" },
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str(
        "      \"originalUriBaseIds\": {\"SRCROOT\": {\"description\": \
         {\"text\": \"workspace root\"}}},\n",
    );
    let results: Vec<String> = diags
        .iter()
        .map(|d| {
            let level = match d.severity {
                Severity::Deny => "error",
                Severity::Warn | Severity::Allow => "warning",
            };
            let index = RuleId::ALL
                .iter()
                .position(|&r| r == d.rule)
                .unwrap_or(usize::MAX);
            format!(
                "{{\"ruleId\": \"{}\", \"ruleIndex\": {index}, \
                 \"level\": \"{level}\", \"message\": {{\"text\": \"{}\"}}, \
                 \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
                 {{\"uri\": \"{}\", \"uriBaseId\": \"SRCROOT\"}}, \"region\": \
                 {{\"startLine\": {}}}}}}}]}}",
                esc(d.rule.name()),
                esc(&d.message),
                esc(&d.file.display().to_string().replace('\\', "/")),
                d.line,
            )
        })
        .collect();
    out.push_str("      \"results\": ");
    out.push_str(&crate::json::array(&results, 8, 6));
    out.push('\n');
    out.push_str("    }\n  ]\n}\n");
    out
}

/// Collapse the multi-line rustfmt-wrapped help strings to single spaces.
fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn diag(file: &str, line: u32, rule: RuleId) -> Diagnostic {
        Diagnostic {
            rule,
            severity: Severity::Deny,
            file: PathBuf::from(file),
            line,
            message: format!("test finding with \"quotes\" at {line}"),
        }
    }

    #[test]
    fn renders_schema_rules_and_results() {
        let d1 = diag("crates/core/src/engine.rs", 12, RuleId::PanicPath);
        let d2 = diag("crates/mc/src/ecdf.rs", 50, RuleId::Unwrap);
        let doc = render(&[&d1, &d2]);
        assert!(doc.contains("\"version\": \"2.1.0\""), "{doc}");
        assert!(doc.contains("sarif-2.1.0.json"), "{doc}");
        assert!(doc.contains("\"ruleId\": \"ntv::panic-path\""), "{doc}");
        assert!(doc.contains("\"startLine\": 12"), "{doc}");
        assert!(doc.contains("\\\"quotes\\\""), "{doc}");
        // Every rule appears in the catalog, and ruleIndex points into it.
        for rule in RuleId::ALL {
            assert!(
                doc.contains(&format!("\"id\": \"{}\"", rule.name())),
                "{doc}"
            );
        }
        let unwrap_index = RuleId::ALL
            .iter()
            .position(|&r| r == RuleId::Unwrap)
            .expect("catalog rule");
        assert!(
            doc.contains(&format!("\"ruleIndex\": {unwrap_index}")),
            "{doc}"
        );
        // Deterministic: same input renders byte-identically.
        assert_eq!(doc, render(&[&d1, &d2]));
    }

    #[test]
    fn empty_report_is_valid_and_stable() {
        let doc = render(&[]);
        assert!(doc.contains("\"results\": []"), "{doc}");
        assert_eq!(doc, render(&[]));
        assert!(doc.ends_with("}\n"), "trailing newline for clean files");
    }
}
