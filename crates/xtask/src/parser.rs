//! Signature-aware parsing layer: a hand-rolled recursive-descent pass over
//! the [`lexer`](crate::lexer) token stream that extracts item *declarations*
//! — function signatures with parameter and return types, struct and impl
//! headers, and `pub` visibility — without needing `syn` (the build
//! environment is offline).
//!
//! The parser is deliberately shallow: it never descends into expression
//! bodies, so it is total over in-progress code, and it only understands as
//! much of the declaration grammar as the signature-level rules
//! ([`rules::scan_signatures`](crate::rules::scan_signatures)) consume:
//!
//! * generic parameter lists are skipped by bracket balancing (with `->`
//!   inside `Fn(..) -> ..` bounds handled so the `>` is not miscounted);
//! * `pub(crate)` / `pub(super)` count as **not** public — the rules police
//!   the workspace-external API surface only;
//! * each item records the contiguous `///` doc block above it (attributes
//!   between the docs and the item are skipped);
//! * `macro_rules!` bodies are excluded wholesale: `$name:ident` fragments
//!   make token-level "signatures" meaningless there.

use crate::lexer::{LexedFile, Token, TokenKind};

/// One `name: Type` parameter of a function signature.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter pattern as written (usually a plain identifier).
    pub name: String,
    /// Rendered type (idents and puncts, no whitespace except between
    /// adjacent identifiers), e.g. `f64`, `&[Volts]`, `(f64,f64)`.
    pub ty: String,
    /// 1-based line the parameter name starts on.
    pub line: u32,
}

/// An extracted function signature.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `pub` exactly; `pub(crate)` / `pub(super)` are not public API.
    pub is_pub: bool,
    /// Non-receiver parameters (any `self` form is skipped).
    pub params: Vec<Param>,
    /// Rendered return type, if the signature has `->`.
    pub ret: Option<String>,
    /// Joined `///` doc block above the item (empty when undocumented).
    pub doc: String,
    /// Self-type name when declared inside an `impl` block.
    pub in_impl: Option<String>,
    /// Half-open token-index span of the body block (including both braces),
    /// or `None` for bodiless declarations (trait methods, extern fns).
    pub body: Option<(usize, usize)>,
}

/// A struct declaration header.
#[derive(Debug, Clone)]
pub struct StructDecl {
    /// Struct name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// `pub` exactly (same rule as [`FnSig::is_pub`]).
    pub is_pub: bool,
}

/// An impl-block header.
#[derive(Debug, Clone)]
pub struct ImplDecl {
    /// The self type's final path segment (`Volts` for
    /// `impl fmt::Display for Volts`).
    pub self_ty: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// Every declaration extracted from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All function signatures, in source order.
    pub fns: Vec<FnSig>,
    /// All struct declarations, in source order.
    pub structs: Vec<StructDecl>,
    /// All impl-block headers, in source order.
    pub impls: Vec<ImplDecl>,
}

impl ParsedFile {
    /// Is the struct named `name` declared `pub` in this file?
    ///
    /// Returns `None` when the file declares no such struct (the type may
    /// live elsewhere, so callers should treat unknown as public).
    #[must_use]
    pub fn struct_is_pub(&self, name: &str) -> Option<bool> {
        self.structs
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.is_pub)
    }
}

/// Parse one lexed file into its declarations.
#[must_use]
pub fn parse(lexed: &LexedFile) -> ParsedFile {
    let tokens = &lexed.tokens;
    let macro_spans = macro_rules_spans(tokens);
    let impl_spans = impl_spans(tokens, &macro_spans);
    let doc_lines = doc_comment_lines(lexed);

    let mut out = ParsedFile {
        impls: impl_spans
            .iter()
            .map(|s| ImplDecl {
                self_ty: s.self_ty.clone(),
                line: s.line,
            })
            .collect(),
        ..ParsedFile::default()
    };

    let mut i = 0usize;
    while i < tokens.len() {
        if in_any_span(&macro_spans, i) {
            i += 1;
            continue;
        }
        match tokens[i].ident() {
            Some("struct") => {
                if let Some(name_tok) = tokens.get(i + 1).and_then(Token::ident) {
                    let (is_pub, _) = visibility_before(tokens, i, &doc_lines);
                    out.structs.push(StructDecl {
                        name: name_tok.to_owned(),
                        line: tokens[i].line,
                        is_pub,
                    });
                }
                i += 1;
            }
            Some("fn") => {
                let (sig, next) = parse_fn(lexed, i, &doc_lines, &impl_spans);
                if let Some(sig) = sig {
                    out.fns.push(sig);
                }
                i = next;
            }
            _ => i += 1,
        }
    }
    out
}

/// A half-open token-index span with metadata.
struct Span {
    start: usize,
    end: usize,
    self_ty: String,
    line: u32,
}

fn in_any_span(spans: &[Span], i: usize) -> bool {
    spans.iter().any(|s| (s.start..s.end).contains(&i))
}

/// Token spans of `macro_rules! name { .. }` bodies.
fn macro_rules_spans(tokens: &[Token]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].ident() == Some("macro_rules")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            // Skip to the delimiter that opens the rule set and balance it.
            let mut j = i + 2;
            while let Some(t) = tokens.get(j) {
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    break;
                }
                j += 1;
            }
            let end = skip_balanced(tokens, j);
            spans.push(Span {
                start: i,
                end,
                self_ty: String::new(),
                line: tokens[i].line,
            });
            i = end;
        } else {
            i += 1;
        }
    }
    spans
}

/// Token spans of `impl .. { .. }` bodies with the self type's last path
/// segment (`impl Display for Volts` → `Volts`; `impl<T> Foo<T>` → `Foo`).
fn impl_spans(tokens: &[Token], macro_spans: &[Span]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].ident() != Some("impl") || in_any_span(macro_spans, i) {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        let mut j = i + 1;
        if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            j = skip_generics(tokens, j);
        }
        // Read the first type path; if `for` follows, the second path is the
        // self type (`impl Trait for Type`).
        let (first, after_first) = read_type_path(tokens, j);
        let (self_ty, mut k) = if tokens.get(after_first).and_then(Token::ident) == Some("for") {
            read_type_path(tokens, after_first + 1)
        } else {
            (first, after_first)
        };
        // Skip a `where` clause (and anything else) up to the body brace.
        while let Some(t) = tokens.get(k) {
            if t.is_punct('{') {
                break;
            }
            k += 1;
        }
        let end = skip_balanced(tokens, k);
        spans.push(Span {
            start: k,
            end,
            self_ty,
            line,
        });
        i = k.max(i + 1);
    }
    spans
}

/// Read a type path starting at `i`; return its final segment name and the
/// index just past the path (generic arguments skipped by balancing).
fn read_type_path(tokens: &[Token], mut i: usize) -> (String, usize) {
    let mut last = String::new();
    loop {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(s)) => {
                last = s.clone();
                i += 1;
            }
            Some(TokenKind::Punct(':')) => i += 1,
            Some(TokenKind::Punct('<')) => i = skip_generics(tokens, i),
            _ => break,
        }
    }
    (last, i)
}

/// From an opening `<` at `i`, return the index just past the matching `>`.
/// `->` arrows inside `Fn(..) -> ..` bounds are skipped so their `>` is not
/// miscounted as a closer.
fn skip_generics(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = tokens.get(i) {
        if t.is_punct('-') && tokens.get(i + 1).is_some_and(|n| n.is_punct('>')) {
            i += 2;
            continue;
        }
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// From an opening `(`/`[`/`{` at `i`, return the index just past its match.
pub(crate) fn skip_balanced(tokens: &[Token], open: usize) -> usize {
    let Some(first) = tokens.get(open) else {
        return open;
    };
    let (o, c) = match &first.kind {
        TokenKind::Punct('(') => ('(', ')'),
        TokenKind::Punct('[') => ('[', ']'),
        TokenKind::Punct('{') => ('{', '}'),
        _ => return open + 1,
    };
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = tokens.get(i) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// 1-based lines that hold `///` doc comments.
fn doc_comment_lines(lexed: &LexedFile) -> Vec<u32> {
    lexed
        .comments
        .iter()
        .filter(|c| c.text.starts_with("///") && !c.text.starts_with("////"))
        .map(|c| c.line)
        .collect()
}

/// Joined text of the contiguous `///` block ending on `end_line`.
fn doc_block_ending_at(lexed: &LexedFile, end_line: u32) -> String {
    let mut lines: Vec<&str> = Vec::new();
    let mut want = end_line;
    for c in lexed.comments.iter().rev() {
        if c.line == want && c.text.starts_with("///") && !c.text.starts_with("////") {
            lines.push(c.text.trim_start_matches('/').trim());
            want = want.saturating_sub(1);
        }
    }
    lines.reverse();
    lines.join("\n")
}

/// Look backwards from the item keyword at `i` over modifiers
/// (`const` / `async` / `unsafe` / `extern "C"` / `default`) and attributes
/// to find the visibility and the first line of the whole item (where the
/// doc block must end).
fn visibility_before(tokens: &[Token], i: usize, _doc_lines: &[u32]) -> (bool, u32) {
    let mut is_pub = false;
    let mut start_line = tokens[i].line;
    let mut j = i;
    while j > 0 {
        let prev = &tokens[j - 1];
        match &prev.kind {
            TokenKind::Ident(s)
                if matches!(
                    s.as_str(),
                    "const" | "async" | "unsafe" | "extern" | "default"
                ) =>
            {
                j -= 1;
                start_line = prev.line;
            }
            // The ABI string of `extern "C"`.
            TokenKind::Literal(_) => {
                if j >= 2 && tokens[j - 2].ident() == Some("extern") {
                    j -= 1;
                    start_line = prev.line;
                } else {
                    break;
                }
            }
            // `pub` or the tail of `pub(crate)` / `pub(super)`.
            TokenKind::Punct(')') => {
                // Walk back to the matching `(`; if `pub` precedes it this
                // is a restricted visibility — counted as non-public.
                let mut depth = 0usize;
                let mut k = j - 1;
                loop {
                    if tokens[k].is_punct(')') {
                        depth += 1;
                    } else if tokens[k].is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                if k > 0 && tokens[k - 1].ident() == Some("pub") {
                    start_line = tokens[k - 1].line;
                    j = k - 1;
                } else {
                    break;
                }
            }
            TokenKind::Ident(s) if s == "pub" => {
                is_pub = true;
                start_line = prev.line;
                j -= 1;
            }
            // An attribute `#[..]` ends right before the item head.
            TokenKind::Punct(']') => {
                let mut depth = 0usize;
                let mut k = j - 1;
                loop {
                    if tokens[k].is_punct(']') {
                        depth += 1;
                    } else if tokens[k].is_punct('[') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if k == 0 {
                        break;
                    }
                    k -= 1;
                }
                if k > 0 && tokens[k - 1].is_punct('#') {
                    start_line = tokens[k - 1].line;
                    j = k - 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    (is_pub, start_line)
}

/// Render declaration-position tokens back to compact source text.
fn render(tokens: &[Token]) -> String {
    let mut s = String::new();
    let mut prev_ident = false;
    for t in tokens {
        match &t.kind {
            TokenKind::Ident(id) => {
                if prev_ident {
                    s.push(' ');
                }
                s.push_str(id);
                prev_ident = true;
            }
            TokenKind::Punct(c) => {
                s.push(*c);
                prev_ident = false;
            }
            TokenKind::Literal(text) => {
                if prev_ident {
                    s.push(' ');
                }
                s.push_str(if text.is_empty() { "<lit>" } else { text });
                prev_ident = true;
            }
        }
    }
    s
}

/// Parse the signature of the `fn` keyword at index `i`. Returns the
/// signature (None for malformed heads) and the index to resume scanning at
/// (just past the parameter list — bodies are scanned for nested items by
/// the main loop).
fn parse_fn(
    lexed: &LexedFile,
    i: usize,
    doc_lines: &[u32],
    impl_spans: &[Span],
) -> (Option<FnSig>, usize) {
    let tokens = &lexed.tokens;
    let line = tokens[i].line;
    let Some(name) = tokens.get(i + 1).and_then(Token::ident) else {
        return (None, i + 1);
    };
    let (is_pub, start_line) = visibility_before(tokens, i, doc_lines);

    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        j = skip_generics(tokens, j);
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
        return (None, i + 1);
    }
    let params_end = skip_balanced(tokens, j);
    let params = parse_params(&tokens[j + 1..params_end.saturating_sub(1)]);

    // Optional `-> Type`, terminated by `{`, `;` or a `where` clause.
    let mut ret = None;
    let mut k = params_end;
    if tokens.get(k).is_some_and(|t| t.is_punct('-'))
        && tokens.get(k + 1).is_some_and(|t| t.is_punct('>'))
    {
        k += 2;
        let ret_start = k;
        let mut depth = 0usize;
        while let Some(t) = tokens.get(k) {
            match &t.kind {
                TokenKind::Punct('<' | '(' | '[') => depth += 1,
                TokenKind::Punct('>' | ')' | ']') => depth = depth.saturating_sub(1),
                TokenKind::Punct('{' | ';') if depth == 0 => break,
                TokenKind::Ident(s) if depth == 0 && s == "where" => break,
                _ => {}
            }
            k += 1;
        }
        ret = Some(render(&tokens[ret_start..k]));
    }

    // Body span: scan past any `where` clause to the opening brace. A `;`
    // first means a bodiless declaration (trait method, extern fn).
    let mut b = k;
    while let Some(t) = tokens.get(b) {
        if t.is_punct('{') || t.is_punct(';') {
            break;
        }
        b += 1;
    }
    let body = if tokens.get(b).is_some_and(|t| t.is_punct('{')) {
        Some((b, skip_balanced(tokens, b)))
    } else {
        None
    };

    // Doc block: contiguous `///` run ending on the line above the item head
    // (visibility / attributes included in "head").
    let doc = if doc_lines.contains(&start_line.saturating_sub(1)) {
        doc_block_ending_at(lexed, start_line.saturating_sub(1))
    } else {
        String::new()
    };

    let in_impl = impl_spans
        .iter()
        .rev()
        .find(|s| (s.start..s.end).contains(&i))
        .map(|s| s.self_ty.clone());

    (
        Some(FnSig {
            name: name.to_owned(),
            line,
            is_pub,
            params,
            ret,
            doc,
            in_impl,
            body,
        }),
        params_end,
    )
}

/// One call expression found inside a function body.
///
/// Extraction is token-shaped, not type-aware: `Volts(0.9)` (a tuple-struct
/// literal) and `Some(x)` (an enum constructor) come back as "calls" too —
/// the [resolver](crate::resolve) simply finds no function symbol for them.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name: the method name or the path's final segment.
    pub name: String,
    /// Immediate path qualifier (`Type` in `Type::name(..)`), if any.
    /// `Self` is left as written; the resolver substitutes the impl type.
    pub qualifier: Option<String>,
    /// True for `.name(..)` method-call position.
    pub is_method: bool,
    /// 1-based source line of the name token.
    pub line: u32,
    /// Token index of the name (for hold-region checks in `graph`).
    pub tok: usize,
}

/// Keywords that look like `ident (` in expression position but are not
/// calls (`match (a, b)`, `while (cond)`, `return (x)`, ...).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "break", "continue", "in", "as", "let",
    "else", "move", "fn", "unsafe", "where", "impl", "dyn", "ref", "mut",
];

/// Extract every call site in the half-open token span `span`.
///
/// Macro *invocations* (`name!(..)`) are not calls — the `!` breaks the
/// `ident (` shape — but the tokens of their arguments are still walked, so
/// calls nested inside `assert!(..)` and friends are found. Function values
/// passed without parentheses (`map(Self::helper)`) are not extracted; the
/// call graph is an under-approximation there (documented in DESIGN §10).
#[must_use]
pub fn calls_in(tokens: &[Token], span: (usize, usize)) -> Vec<CallSite> {
    let mut out = Vec::new();
    for i in span.0..span.1.min(tokens.len()) {
        let Some(name) = tokens[i].ident() else {
            continue;
        };
        if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if NON_CALL_KEYWORDS.contains(&name) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
        if prev.and_then(Token::ident) == Some("fn") {
            continue; // a nested `fn name(..)` definition
        }
        let is_method = prev.is_some_and(|t| t.is_punct('.'));
        let qualifier =
            if !is_method && i >= 3 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
                tokens[i - 3].ident().map(str::to_owned)
            } else {
                None
            };
        out.push(CallSite {
            name: name.to_owned(),
            qualifier,
            is_method,
            line: tokens[i].line,
            tok: i,
        });
    }
    out
}

/// Split a parameter-list token slice on top-level commas and extract
/// `name: Type` pairs, skipping any `self` receiver and attributes.
fn parse_params(tokens: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut seg_start = 0usize;
    let mut segments: Vec<&[Token]> = Vec::new();
    for (idx, t) in tokens.iter().enumerate() {
        match &t.kind {
            TokenKind::Punct('(' | '[' | '{' | '<') => depth += 1,
            TokenKind::Punct(')' | ']' | '}' | '>') => depth = depth.saturating_sub(1),
            TokenKind::Punct(',') if depth == 0 => {
                segments.push(&tokens[seg_start..idx]);
                seg_start = idx + 1;
            }
            _ => {}
        }
    }
    if seg_start < tokens.len() {
        segments.push(&tokens[seg_start..]);
    }

    for seg in segments {
        // Strip leading attributes and `mut`.
        let mut s = seg;
        while s.first().is_some_and(|t| t.is_punct('#')) {
            let end = skip_balanced(s, 1);
            s = &s[end..];
        }
        if s.first().and_then(Token::ident) == Some("mut") {
            s = &s[1..];
        }
        // A receiver: `self`, `&self`, `&'a mut self`, `mut self`, ...
        let first_ident = s.iter().find_map(|t| t.ident());
        if first_ident == Some("self") {
            continue;
        }
        // Find the top-level `:` splitting pattern from type (`::` never
        // appears at depth 0 on the pattern side of a declaration).
        let mut d = 0usize;
        let mut colon = None;
        for (idx, t) in s.iter().enumerate() {
            match &t.kind {
                TokenKind::Punct('(' | '[' | '{' | '<') => d += 1,
                TokenKind::Punct(')' | ']' | '}' | '>') => d = d.saturating_sub(1),
                TokenKind::Punct(':') if d == 0 => {
                    colon = Some(idx);
                    break;
                }
                _ => {}
            }
        }
        let Some(colon) = colon else { continue };
        let (pat, ty) = s.split_at(colon);
        if pat.is_empty() {
            continue;
        }
        params.push(Param {
            name: render(pat),
            ty: render(&ty[1..]),
            line: pat[0].line,
        });
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn extracts_free_fn_signature() {
        let p = parse_src("/// Supply in volts.\npub fn f(vdd: f64, n: usize) -> f64 { 0.0 }");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "f");
        assert!(f.is_pub);
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, "vdd");
        assert_eq!(f.params[0].ty, "f64");
        assert_eq!(f.params[1].ty, "usize");
        assert_eq!(f.ret.as_deref(), Some("f64"));
    }

    #[test]
    fn methods_record_their_impl_type_and_skip_self() {
        let p = parse_src(
            "pub struct Gate;\nimpl Gate {\n    pub fn delay(&self, vdd: f64) -> f64 { vdd }\n}",
        );
        assert_eq!(p.structs.len(), 1);
        assert!(p.structs[0].is_pub);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].in_impl.as_deref(), Some("Gate"));
        assert_eq!(p.fns[0].params.len(), 1);
        assert_eq!(p.fns[0].params[0].name, "vdd");
    }

    #[test]
    fn trait_impl_self_type_is_the_for_type() {
        let p = parse_src("impl std::fmt::Display for Volts { fn fmt(&self) -> Out { x } }");
        assert_eq!(p.impls.len(), 1);
        assert_eq!(p.impls[0].self_ty, "Volts");
    }

    #[test]
    fn pub_crate_is_not_public() {
        let p = parse_src("pub(crate) fn hidden(vdd: f64) {}");
        assert_eq!(p.fns.len(), 1);
        assert!(!p.fns[0].is_pub);
    }

    #[test]
    fn generics_with_fn_bounds_do_not_derail() {
        let p = parse_src("pub fn map<F: Fn(f64) -> f64>(vdd: f64, f: F) -> f64 { f(vdd) }");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].params.len(), 2);
        assert_eq!(p.fns[0].params[0].ty, "f64");
        assert_eq!(p.fns[0].ret.as_deref(), Some("f64"));
    }

    #[test]
    fn tuple_types_render_compactly() {
        let p = parse_src("pub fn bounds() -> (f64, f64) { (0.0, 1.0) }");
        assert_eq!(p.fns[0].ret.as_deref(), Some("(f64,f64)"));
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let p = parse_src(
            "macro_rules! gen { () => { pub fn vdd_volts(vdd: f64) {} }; }\npub fn real() {}",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn attributes_between_doc_and_fn_keep_the_doc() {
        let src = "/// Voltage in volts.\n#[must_use]\npub fn nominal_vdd() -> f64 { 1.0 }";
        let p = parse_src(src);
        assert!(!p.fns[0].doc.is_empty(), "{:?}", p.fns[0]);
    }
}
