//! The one byte-stable JSON writer behind every machine-readable report.
//!
//! Four emitters share this module — the `--format json` diagnostic array,
//! the SARIF log, and the `batch-readiness` / `nostd-readiness` worklists.
//! Each hand-assembles its own key order (the workspace is offline; no
//! serde), but the parts that must agree byte-for-byte across runs and
//! emitters — string escaping and array layout — live here exactly once.
//!
//! The array layout contract: `[` on the current line, one pre-rendered
//! item per line at `item_indent` spaces, `,`-separated, closing `]` at
//! `close_indent` spaces; an empty array collapses to `[]` with no
//! newlines. Every report's historical byte layout is an instance of this
//! rule, which is what lets them share the writer without re-golding.

/// Render pre-formatted items as a multi-line JSON array.
///
/// `item_indent` is the leading-space count of each item line and
/// `close_indent` that of the closing bracket. Empty input renders `[]`.
#[must_use]
pub fn array(items: &[String], item_indent: usize, close_indent: usize) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&" ".repeat(item_indent));
        out.push_str(item);
    }
    out.push('\n');
    out.push_str(&" ".repeat(close_indent));
    out.push(']');
    out
}

/// Render strings as a compact single-line JSON array of escaped strings
/// (`["a","b"]`) — witness chains and effect lists in the worklists.
#[must_use]
pub fn string_array(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", quoted.join(","))
}

/// Minimal JSON string escaping: quotes, backslashes, control characters.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_array_collapses() {
        assert_eq!(array(&[], 2, 0), "[]");
    }

    #[test]
    fn array_layout_matches_the_report_contract() {
        let items = vec!["{\"a\": 1}".to_string(), "{\"b\": 2}".to_string()];
        assert_eq!(array(&items, 2, 0), "[\n  {\"a\": 1},\n  {\"b\": 2}\n]");
        assert_eq!(
            array(&items[..1], 4, 2),
            "[\n    {\"a\": 1}\n  ]",
            "worklist indent"
        );
    }

    #[test]
    fn escape_covers_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn string_array_is_compact() {
        assert_eq!(
            string_array(&["a".to_string(), "b\"c".to_string()]),
            "[\"a\",\"b\\\"c\"]"
        );
    }
}
