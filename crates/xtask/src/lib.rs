//! `xtask` — workspace automation for the ntv-simd repo.
//!
//! The only subcommand today is `lint`: a custom static-analysis pass that
//! mechanically enforces the workspace's domain invariants (determinism,
//! float totality, panic hygiene, unit safety) as deny-by-default
//! diagnostics with `file:line` spans, a severity/allowlist system, and
//! inline waiver comments. Run it as `cargo xtask lint` (aliased in
//! `.cargo/config.toml`); CI treats a non-zero exit as a failed build.
//!
//! Design notes:
//!
//! * The pass is built on a hand-rolled lexer ([`lexer`]) rather than `syn`:
//!   the build environment is offline, and a comment/string-aware token
//!   stream cannot be fooled by `"thread_rng"` in a message string while
//!   staying total over in-progress code that does not parse yet.
//! * Token-pattern rules are pure functions over that stream; the
//!   signature-aware family additionally runs a shallow recursive-descent
//!   declaration parser ([`parser`]) that extracts fn signatures, parameter
//!   and return types, struct/impl headers and `pub` visibility — still no
//!   expression parsing, so it inherits the lexer's totality.
//! * Rules ([`rules`]) produce raw hits; the policy layer ([`engine`])
//!   decides where they apply (library vs bench vs harness vs tool code),
//!   applies `#[cfg(test)]` carve-outs, severity overrides and waivers, and
//!   renders diagnostics (human-readable, `--format json`, or
//!   `--format sarif` for code-scanning upload).
//! * A semantic layer sits on top of the per-file pass: [`resolve`] builds
//!   a workspace symbol table with name-shaped (soundly over-approximate)
//!   path resolution, [`graph`] assembles the call graph and runs
//!   reachability, powering `ntv::panic-path` and `ntv::lock-discipline`;
//!   the engine tracks waiver usage so `--check-waivers` can deny waivers
//!   that suppress nothing.
//! * Fixtures under `tests/fixtures/` pin every rule's behaviour — each bad
//!   fixture must keep tripping its diagnostic, and the clean fixture plus
//!   the real workspace must stay quiet.

pub mod concurrency;
pub mod dataflow;
pub mod effects;
pub mod engine;
pub mod graph;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod resolve;
pub mod rules;
pub mod sarif;

pub use engine::{
    lint_source, lint_sources, lint_workspace, lint_workspace_with, Diagnostic, FileClass,
    LintOptions, LintReport, Override, Policy, Severity,
};
pub use rules::RuleId;

use std::path::PathBuf;

/// The workspace root, resolved at compile time from this crate's location.
#[must_use]
pub fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> root. Falls back to the manifest dir itself
    // if the layout ever changes (the walk simply finds fewer files).
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .unwrap_or(&manifest)
        .to_path_buf()
}
