//! CLI for `cargo xtask` — see `lib.rs` for the architecture.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use xtask::{engine, json, sarif, Policy, RuleId, Severity};

const USAGE: &str = "\
usage: cargo xtask <command>

commands:
  lint [options] [paths...]   run the determinism / numerical-safety lint
                              over the workspace (default) or specific files
  help                        show this message

lint options:
  --list-rules     print every rule with its help text and exit
  --warn-only      report violations but always exit 0
  --rule <name>    only report the named rule (repeatable; short or
                   ntv::-prefixed names)
  --quiet          print only the summary line
  --format <fmt>   output format: text (default), json, or sarif — json
                   emits a stable (file, line, rule)-sorted array, sarif a
                   SARIF 2.1.0 document, both on stdout with the summary on
                   stderr; both are byte-identical across runs
  --check-waivers  additionally deny `ntv:allow(..)` waivers that suppress
                   zero findings (dead waivers)
  --report <name>  emit a machine-readable analysis report on stdout
                   (summary and diagnostics go to stderr). Reports:
                   batch-readiness — the vectorization worklist: every fn
                   reachable from a public `sample_*` root with its f64
                   reduction sites classified order-sensitive / order-free;
                   byte-identical across runs
                   nostd-readiness — the no-std/WASM worklist: every pub fn
                   classified portable / gated (waived or feature-gated
                   effects) / blocked (unwaived effects or unsafe, with the
                   shortest witness chain); byte-identical across runs
                   concurrency — the sync-topology inventory: every lock
                   class with its acquisition sites, the lock-order graph
                   edges with witnesses, and every atomic class with its
                   per-op orderings and handshake flag; byte-identical
                   across runs
  --bench-out <p>  write {files_scanned, diagnostics, wall_ms} JSON to <p>
                   after linting (perf baseline for the call-graph pass)

exit status: 0 clean, 1 deny-level diagnostics found, 2 usage or I/O error";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("help" | "--help" | "-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn lint(args: &[String]) -> ExitCode {
    let mut warn_only = false;
    let mut quiet = false;
    let mut check_waivers = false;
    let mut batch_readiness = false;
    let mut nostd_readiness = false;
    let mut concurrency = false;
    let mut format = Format::Text;
    let mut bench_out: Option<PathBuf> = None;
    let mut only_rules: Vec<RuleId> = Vec::new();
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in RuleId::ALL {
                    println!("{:<24} {}", rule.name(), rule.help());
                }
                return ExitCode::SUCCESS;
            }
            "--warn-only" => warn_only = true,
            "--quiet" => quiet = true,
            "--rule" => match it.next().and_then(|n| RuleId::from_waiver_name(n)) {
                Some(rule) => only_rules.push(rule),
                None => {
                    eprintln!("xtask lint: --rule needs a known rule name (see --list-rules)");
                    return ExitCode::from(2);
                }
            },
            "--check-waivers" => check_waivers = true,
            "--report" => match it.next().map(String::as_str) {
                Some("batch-readiness") => batch_readiness = true,
                Some("nostd-readiness") => nostd_readiness = true,
                Some("concurrency") => concurrency = true,
                _ => {
                    eprintln!(
                        "xtask lint: --report needs `batch-readiness`, `nostd-readiness` \
                         or `concurrency`"
                    );
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                _ => {
                    eprintln!("xtask lint: --format needs `text`, `json` or `sarif`");
                    return ExitCode::from(2);
                }
            },
            "--bench-out" => match it.next() {
                Some(p) => bench_out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("xtask lint: --bench-out needs a path");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("xtask lint: unknown flag `{flag}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    let policy = Policy::default();
    let options = engine::LintOptions {
        check_waivers,
        batch_readiness,
        nostd_readiness,
        concurrency,
    };
    let root = xtask::workspace_root();
    // ntv:allow(wall-clock): timing the linter itself is --bench-out's job
    let t0 = Instant::now();
    let report = if paths.is_empty() {
        match engine::lint_workspace_with(&root, &policy, &options) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("xtask lint: cannot scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        // Explicit paths are linted as one analysis unit, so cross-file
        // call-graph rules see all of them; the engine's path sort keeps a
        // report byte-identical however the file list was assembled.
        let mut files = Vec::new();
        for path in &paths {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("xtask lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let rel = path.strip_prefix(&root).unwrap_or(path).to_path_buf();
            files.push((rel, source));
        }
        engine::lint_sources(&files, &policy, &options)
    };
    let wall_ms = t0.elapsed().as_millis();

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut shown = Vec::new();
    for diag in &report.diagnostics {
        if !only_rules.is_empty() && !only_rules.contains(&diag.rule) {
            continue;
        }
        match diag.severity {
            Severity::Deny => errors += 1,
            Severity::Warn => warnings += 1,
            Severity::Allow => continue,
        }
        shown.push(diag);
    }

    // With --report, stdout is reserved for the report; diagnostics and
    // the summary move to stderr so piping/redirecting stays clean.
    let machine_report = report
        .batch_readiness
        .as_ref()
        .or(report.nostd_readiness.as_ref())
        .or(report.concurrency.as_ref());
    if let Some(rep) = machine_report {
        print!("{rep}");
        if !quiet && format == Format::Text {
            for diag in &shown {
                eprintln!("{diag}\n");
            }
        }
    } else {
        match format {
            Format::Json => println!("{}", render_json(&shown)),
            Format::Sarif => print!("{}", sarif::render(&shown)),
            Format::Text => {
                if !quiet {
                    for diag in &shown {
                        println!("{diag}\n");
                    }
                }
            }
        }
    }

    if let Some(path) = &bench_out {
        let bench = format!(
            "{{\n  \"files_scanned\": {},\n  \"diagnostics\": {},\n  \"wall_ms\": {wall_ms}\n}}\n",
            report.files_scanned,
            shown.len(),
        );
        if let Err(e) = std::fs::write(path, bench) {
            eprintln!("xtask lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let summary = format!(
        "xtask lint: {errors} error{}, {warnings} warning{} across {} files",
        if errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
        report.files_scanned,
    );
    // In machine-read formats stdout is reserved for the report.
    if format == Format::Text && machine_report.is_none() {
        println!("{summary}");
    } else {
        eprintln!("{summary}");
    }
    if errors > 0 && !warn_only {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Render diagnostics as a stable JSON array: objects with `file`, `line`,
/// `rule`, `severity`, `message` keys in that order, input order preserved
/// (already sorted by (file, line, rule)).
fn render_json(diags: &[&engine::Diagnostic]) -> String {
    let items: Vec<String> = diags
        .iter()
        .map(|d| {
            let severity = match d.severity {
                Severity::Deny => "deny",
                Severity::Warn => "warn",
                Severity::Allow => "allow",
            };
            format!(
                "{{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \
                 \"severity\": \"{severity}\", \"message\": \"{}\"}}",
                json::escape(&d.file.display().to_string().replace('\\', "/")),
                d.line,
                d.rule.name(),
                json::escape(&d.message),
            )
        })
        .collect();
    json::array(&items, 2, 0)
}
