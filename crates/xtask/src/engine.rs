//! The lint engine: applies `rules::scan` hits to files according to the
//! workspace policy (file classes, severities, allowlist overrides, inline
//! waivers, `#[cfg(test)]` regions) and renders diagnostics.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::concurrency;
use crate::dataflow;
use crate::effects;
use crate::graph;
use crate::lexer::{self, Token};
use crate::parser;
use crate::rules::{self, RuleId};

/// What kind of code a file contains, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Result-producing library code (`crates/*/src`, root `src/lib.rs`):
    /// every rule applies.
    Library,
    /// The bench/experiment crate: exempt from wall-clock, env, hash and
    /// panic-hygiene rules (it times things and prints tables), but still
    /// barred from OS entropy and NaN-unsafe orderings.
    Bench,
    /// Test / example / bin-target code: determinism of the underlying
    /// libraries is what matters; panics are the idiomatic failure mode.
    Harness,
    /// The xtask tool itself: held to panic hygiene and determinism, but
    /// allowed to read files and processes as it pleases.
    Tool,
    /// Not lint targets at all (vendored stubs, fixtures, generated output).
    Skip,
}

impl FileClass {
    /// Classify a path relative to the workspace root.
    #[must_use]
    pub fn classify(rel: &Path) -> FileClass {
        let p = rel.to_string_lossy().replace('\\', "/");
        // Lint fixtures opt into a class by directory name
        // (`tests/fixtures/library/bad_unwrap.rs` lints as Library code), so
        // `cargo xtask lint <fixture>` exercises the real policy; the
        // workspace walker never descends into fixtures.
        if let Some(idx) = p.find("tests/fixtures/") {
            let rest = &p[idx + "tests/fixtures/".len()..];
            return match rest.split('/').next() {
                Some("library") => FileClass::Library,
                Some("bench") => FileClass::Bench,
                Some("harness") => FileClass::Harness,
                Some("tool") => FileClass::Tool,
                _ => FileClass::Skip,
            };
        }
        if p.contains("vendor/")
            || p.contains("target/")
            || p.contains("fixtures/")
            || p.contains(".git/")
        {
            return FileClass::Skip;
        }
        if p.starts_with("crates/bench/") {
            return FileClass::Bench;
        }
        if p.starts_with("crates/xtask/") {
            return FileClass::Tool;
        }
        // The query service is deliberately effectful — sockets, wall-clock
        // idle timeouts, stderr logging — so the library-only purity rules
        // (hidden-io, ambient-clock) do not apply to it.
        if p.starts_with("crates/serve/") {
            return FileClass::Harness;
        }
        let in_dir = |d: &str| p.starts_with(&format!("{d}/")) || p.contains(&format!("/{d}/"));
        if in_dir("tests") || in_dir("benches") || in_dir("examples") || in_dir("bin") {
            return FileClass::Harness;
        }
        FileClass::Library
    }

    /// Does `rule` apply to files of this class at all?
    #[must_use]
    pub fn rule_applies(self, rule: RuleId) -> bool {
        use FileClass::{Library, Skip, Tool};
        if self == Skip {
            return false;
        }
        match rule {
            // OS entropy and NaN-unsafe orderings poison experiments no
            // matter where they live, tests and benches included; a rotted
            // waiver is likewise a lie wherever it lives.
            RuleId::ThreadRng
            | RuleId::PartialCmpUnwrap
            | RuleId::BadWaiver
            | RuleId::DeadWaiver => true,
            // Stateful generators are a library-crate concern: harnesses may
            // hold a `StreamRng` for legacy sequential checks, but result
            // code must go through the counter-based API. Environment reads
            // are likewise library-only (harnesses may take CLI/env knobs).
            // Unit newtypes likewise police the cross-crate API surface
            // only: harness and bench code deliberately holds raw `f64`
            // grids and wraps at the call boundary. The call-graph rules
            // (public-API reachability, lock discipline) police library
            // internals, which harness/bench consumers cannot change.
            // The numeric-dataflow family polices result-producing library
            // code: reduction order and cast truncation only corrupt
            // *results*, and harness/bench/tool code is full of benign
            // display-width casts and timing sums. The effect rules police
            // the same surface: what a harness prints or spawns is its own
            // business; what a library drags in is every consumer's.
            RuleId::StatefulRng
            | RuleId::EnvRead
            | RuleId::BareUnit
            | RuleId::PanicPath
            | RuleId::LockDiscipline
            | RuleId::ReductionOrder
            | RuleId::LossyCast
            | RuleId::UnitEscape
            | RuleId::HiddenIo
            | RuleId::AmbientClock
            | RuleId::EffectEscape => matches!(self, Library),
            // Concurrency soundness spans result code *and* the serve
            // stack: deadlock cycles, handshake orderings and blocking
            // under a guard are exactly where harness code bites, so
            // Library and Harness files are analysed as one topology.
            RuleId::LockOrderCycle | RuleId::AtomicOrdering | RuleId::BlockingUnderLock => {
                matches!(self, Library | FileClass::Harness)
            }
            RuleId::WallClock => matches!(self, Library | Tool),
            RuleId::HashContainer => matches!(self, Library | Tool),
            RuleId::Unwrap | RuleId::Panic => matches!(self, Library | Tool),
            // Result-producing code (library and experiment crates) must
            // share Gauss–Hermite builds through the operating-point cache;
            // harnesses may construct throwaway distributions.
            RuleId::UncachedBuild => matches!(self, Library | FileClass::Bench),
        }
    }
}

/// Diagnostic severity after policy is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported and fails the run.
    Deny,
    /// Reported, does not fail the run.
    Warn,
    /// Suppressed.
    Allow,
}

/// A path-scoped severity override — the allowlist mechanism.
///
/// `path_contains` matches against the `/`-normalized workspace-relative
/// path; `rule: None` matches every rule.
#[derive(Debug, Clone)]
pub struct Override {
    /// Substring of the workspace-relative path this override applies to.
    pub path_contains: &'static str,
    /// Rule to override, or `None` for all rules.
    pub rule: Option<RuleId>,
    /// Severity to apply when this override matches.
    pub severity: Severity,
}

/// The lint policy: base severity per rule plus allowlist overrides.
#[derive(Debug, Clone)]
pub struct Policy {
    overrides: Vec<Override>,
}

/// Built-in allowlist. Keep this list short and justified — prefer inline
/// `// ntv:allow(rule): reason` waivers, which sit next to the code they
/// excuse and are re-validated on every run.
const DEFAULT_OVERRIDES: &[Override] = &[
    // The mc::stats Welford accumulator compares against cached extrema by
    // identity; flagged sites there carry inline waivers instead. (Entry kept
    // as the canonical example of the mechanism; it matches nothing today.)
    Override {
        path_contains: "crates/mc/src/does-not-exist.rs",
        rule: None,
        severity: Severity::Allow,
    },
    // `ntv_mc::rng` is the one sanctioned wrapper around a stateful
    // generator: `StreamRng` keeps the legacy sequential sequences alive
    // behind the `SampleStream` trait.
    Override {
        path_contains: "crates/mc/src/rng.rs",
        rule: Some(RuleId::StatefulRng),
        severity: Severity::Allow,
    },
];

impl Default for Policy {
    fn default() -> Self {
        Self {
            overrides: DEFAULT_OVERRIDES.to_vec(),
        }
    }
}

impl Policy {
    /// A policy with extra overrides appended (used by tests and, later,
    /// per-invocation flags).
    #[must_use]
    pub fn with_overrides(mut self, extra: Vec<Override>) -> Self {
        self.overrides.extend(extra);
        self
    }

    /// Effective severity of `rule` for the file at `rel`, before waivers.
    #[must_use]
    pub fn severity(&self, rule: RuleId, rel: &Path) -> Severity {
        let p = rel.to_string_lossy().replace('\\', "/");
        // Last matching override wins, so callers can append refinements.
        let mut sev = Severity::Deny;
        for o in &self.overrides {
            if p.contains(o.path_contains) && o.rule.is_none_or(|r| r == rule) {
                sev = o.severity;
            }
        }
        sev
    }
}

/// One rendered diagnostic.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The violated rule.
    pub rule: RuleId,
    /// Effective severity after policy and overrides.
    pub severity: Severity,
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based source line of the violation.
    pub line: u32,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let level = match self.severity {
            Severity::Deny => "error",
            Severity::Warn => "warning",
            Severity::Allow => "allowed",
        };
        writeln!(f, "{level}[{}]: {}", self.rule.name(), self.message)?;
        writeln!(f, "  --> {}:{}", self.file.display(), self.line)?;
        write!(f, "  = help: {}", self.rule.help())
    }
}

/// Inclusive line ranges covered by `#[cfg(test)]` items.
#[derive(Debug, Default)]
struct TestRegions {
    ranges: Vec<(u32, u32)>,
}

impl TestRegions {
    fn contains(&self, line: u32) -> bool {
        self.ranges.iter().any(|&(a, b)| (a..=b).contains(&line))
    }
}

/// Find `#[cfg(test)]`-guarded items and return their brace-span line
/// ranges. Handles the common shapes: a guarded `mod … { … }` or `fn … { … }`
/// (any trailing attributes in between are skipped by brace-scanning to the
/// first `{`).
fn test_regions(tokens: &[Token]) -> TestRegions {
    let mut regions = TestRegions::default();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].ident() == Some("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].ident() == Some("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Scan forward to the first `{` (the guarded item's body) or a `;`
        // at nesting depth 0 (a guarded `use`/`mod name;` — no body).
        let mut j = i + 7;
        let mut body = None;
        while let Some(t) = tokens.get(j) {
            if t.is_punct('{') {
                body = Some(j);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            j += 1;
        }
        if let Some(open) = body {
            let start_line = tokens[i].line;
            let mut depth = 0usize;
            let mut k = open;
            let mut end_line = tokens[open].line;
            while let Some(t) = tokens.get(k) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        end_line = t.line;
                        break;
                    }
                }
                end_line = t.line;
                k += 1;
            }
            regions.ranges.push((start_line, end_line));
            i = open + 1;
        } else {
            i = j + 1;
        }
    }
    regions
}

/// One `ntv:allow(rule): reason` directive, with usage tracking so
/// `--check-waivers` can report waivers that suppress nothing.
#[derive(Debug)]
struct WaiverEntry {
    rule: RuleId,
    /// Comment line; the waiver covers this line and the next.
    line: u32,
    /// Set when the waiver suppresses at least one hit this run.
    used: bool,
}

/// Lines waived per rule by `// ntv:allow(rule, ...): reason` comments.
///
/// A waiver covers its own line and the following line, so it can trail the
/// offending expression or sit on the line above it.
#[derive(Debug, Default)]
struct Waivers {
    entries: Vec<WaiverEntry>,
    /// Malformed waivers become diagnostics themselves.
    bad: Vec<(u32, String)>,
}

fn parse_waivers(comments: &[lexer::Comment]) -> Waivers {
    let mut w = Waivers::default();
    for c in comments {
        // The directive must *start* the comment (after the `//`/`//!`/`/*`
        // sigils) — prose that merely mentions `ntv:allow(..)` mid-sentence,
        // like this lint's own documentation, is not a waiver.
        let trimmed = c.text.trim_start_matches(['/', '!', '*', ' ', '\t']);
        if !trimmed.starts_with("ntv:allow") {
            continue;
        }
        let rest = &trimmed["ntv:allow".len()..];
        let Some(open) = rest.find('(') else {
            w.bad.push((c.line, "missing `(rule)` list".to_string()));
            continue;
        };
        let Some(close) = rest.find(')') else {
            w.bad.push((c.line, "unclosed `(rule)` list".to_string()));
            continue;
        };
        let names = &rest[open + 1..close];
        let after = rest[close + 1..].trim_start();
        let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            w.bad.push((
                c.line,
                "waiver has no reason — write `ntv:allow(rule): <why>`".to_string(),
            ));
            continue;
        }
        let mut any = false;
        for name in names.split(',') {
            if let Some(rule) = RuleId::from_waiver_name(name) {
                w.entries.push(WaiverEntry {
                    rule,
                    line: c.line,
                    used: false,
                });
                any = true;
            } else {
                w.bad
                    .push((c.line, format!("unknown rule `{}`", name.trim())));
            }
        }
        if !any && names.trim().is_empty() {
            w.bad.push((c.line, "empty rule list".to_string()));
        }
    }
    w
}

impl Waivers {
    /// Does a waiver cover `(rule, line)`? Marks every matching waiver as
    /// used — the suppression *and* its bookkeeping in one step.
    fn cover(&mut self, rule: RuleId, line: u32) -> bool {
        let mut any = false;
        for e in &mut self.entries {
            if e.rule == rule && (e.line == line || e.line + 1 == line) {
                e.used = true;
                any = true;
            }
        }
        any
    }
}

/// Per-invocation switches that are not policy (severities) or scope (file
/// classes): extra analyses the caller opts into.
#[derive(Debug, Default, Clone)]
pub struct LintOptions {
    /// Report `ntv:allow(..)` waivers that suppressed zero findings this
    /// run as `ntv::dead-waiver` diagnostics (`xtask lint --check-waivers`).
    pub check_waivers: bool,
    /// Produce the batch-readiness JSON worklist (`xtask lint --report
    /// batch-readiness`) in [`LintReport::batch_readiness`].
    pub batch_readiness: bool,
    /// Produce the no-std/WASM readiness JSON worklist (`xtask lint
    /// --report nostd-readiness`) in [`LintReport::nostd_readiness`].
    pub nostd_readiness: bool,
    /// Produce the concurrency inventory (`xtask lint --report
    /// concurrency`) in [`LintReport::concurrency`].
    pub concurrency: bool,
}

/// Everything the engine knows about one file mid-run.
struct FileState {
    rel: PathBuf,
    class: FileClass,
    lexed: lexer::LexedFile,
    parsed: parser::ParsedFile,
    regions: TestRegions,
    waivers: Waivers,
    diags: Vec<Diagnostic>,
}

/// Filter one raw hit through class → test-region → waiver → policy and
/// record the surviving diagnostic. Waiver bookkeeping happens here: a
/// waiver is "used" iff it suppresses a hit its class/region let through.
fn apply_hit(st: &mut FileState, hit: rules::Hit, policy: &Policy) {
    if !st.class.rule_applies(hit.rule) {
        return;
    }
    // Test modules inside library crates follow harness rules for
    // panic hygiene and hash containers (assertions are the point).
    if st.regions.contains(hit.line)
        && matches!(
            hit.rule,
            RuleId::Unwrap
                | RuleId::Panic
                | RuleId::HashContainer
                | RuleId::WallClock
                | RuleId::BareUnit
                | RuleId::UncachedBuild
                | RuleId::PanicPath
                | RuleId::LockDiscipline
                | RuleId::ReductionOrder
                | RuleId::LossyCast
                | RuleId::UnitEscape
                | RuleId::HiddenIo
                | RuleId::AmbientClock
                | RuleId::EffectEscape
                | RuleId::LockOrderCycle
                | RuleId::AtomicOrdering
                | RuleId::BlockingUnderLock
        )
    {
        return;
    }
    if st.waivers.cover(hit.rule, hit.line) {
        return;
    }
    let severity = policy.severity(hit.rule, &st.rel);
    if severity == Severity::Allow {
        return;
    }
    st.diags.push(Diagnostic {
        rule: hit.rule,
        severity,
        file: st.rel.clone(),
        line: hit.line,
        message: hit.message,
    });
}

/// Lint a set of files as one analysis unit.
///
/// The per-file token and signature rules run file-locally exactly as
/// before; the call-graph rules (`ntv::panic-path`, `ntv::lock-discipline`)
/// see every Library-class file in `files` at once, so reachability crosses
/// module and crate boundaries. Input order does not matter: files are
/// sorted by path before analysis and diagnostics come back sorted by
/// (file, line, rule).
#[must_use]
pub fn lint_sources(
    files: &[(PathBuf, String)],
    policy: &Policy,
    options: &LintOptions,
) -> LintReport {
    let mut states: Vec<FileState> = files
        .iter()
        .filter_map(|(rel, source)| {
            let class = FileClass::classify(rel);
            if class == FileClass::Skip {
                return None;
            }
            let lexed = lexer::lex(source);
            let parsed = parser::parse(&lexed);
            let regions = test_regions(&lexed.tokens);
            let waivers = parse_waivers(&lexed.comments);
            Some(FileState {
                rel: rel.clone(),
                class,
                lexed,
                parsed,
                regions,
                waivers,
                diags: Vec::new(),
            })
        })
        .collect();
    states.sort_by(|a, b| a.rel.cmp(&b.rel));

    // Per-file rules.
    for st in &mut states {
        let mut hits = rules::scan(&st.lexed.tokens);
        if st.class.rule_applies(RuleId::BareUnit) {
            hits.extend(rules::scan_signatures(&st.parsed));
        }
        if st.class.rule_applies(RuleId::LossyCast) {
            hits.extend(dataflow::file_hits(&st.lexed.tokens, &st.parsed));
        }
        for hit in hits {
            apply_hit(st, hit, policy);
        }
    }

    // Call-graph rules over the Library-class subset.
    let lib_idx: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, s)| s.class == FileClass::Library)
        .map(|(i, _)| i)
        .collect();
    let mut batch_readiness = None;
    let mut nostd_readiness = None;
    if !lib_idx.is_empty() {
        let sem_hits = {
            let sem_files: Vec<graph::SemFile> = lib_idx
                .iter()
                .map(|&i| {
                    let s = &states[i];
                    graph::SemFile {
                        rel: &s.rel,
                        tokens: &s.lexed.tokens,
                        parsed: &s.parsed,
                        test_ranges: &s.regions.ranges,
                    }
                })
                .collect();
            let g = graph::Graph::build(&sem_files);
            let mut hits = g.panic_path_hits();
            hits.extend(g.lock_discipline_hits(&sem_files));
            hits.extend(dataflow::reduction_hits(&g, &sem_files));
            let eff = effects::Effects::collect(&g, &sem_files);
            hits.extend(effects::effect_hits(&g, &sem_files, &eff));
            if options.nostd_readiness {
                // Waived effect lines per library file (waiver line + next,
                // per rule): the report classifies waived effects as
                // `gated`, unwaived ones as `blocked`.
                let waivers: Vec<effects::FileWaivers> = lib_idx
                    .iter()
                    .map(|&i| {
                        let lines = |rule: RuleId| {
                            states[i]
                                .waivers
                                .entries
                                .iter()
                                .filter(|e| e.rule == rule)
                                .flat_map(|e| [e.line, e.line + 1])
                                .collect()
                        };
                        effects::FileWaivers {
                            hidden_io: lines(RuleId::HiddenIo),
                            ambient_clock: lines(RuleId::AmbientClock),
                            effect_escape: lines(RuleId::EffectEscape),
                        }
                    })
                    .collect();
                nostd_readiness = Some(effects::nostd_readiness_report(
                    &g, &sem_files, &eff, &waivers,
                ));
            }
            if options.batch_readiness {
                // Lines covered by a reduction-order waiver (the waiver
                // line and the next), per library file: the report
                // distinguishes waived pinned folds from unmigrated ones.
                let waived: Vec<std::collections::BTreeSet<u32>> = lib_idx
                    .iter()
                    .map(|&i| {
                        states[i]
                            .waivers
                            .entries
                            .iter()
                            .filter(|e| e.rule == RuleId::ReductionOrder)
                            .flat_map(|e| [e.line, e.line + 1])
                            .collect()
                    })
                    .collect();
                batch_readiness = Some(dataflow::batch_readiness_report(&g, &sem_files, &waived));
            }
            hits
        };
        for (fi, hit) in sem_hits {
            apply_hit(&mut states[lib_idx[fi]], hit, policy);
        }
    }

    // Concurrency rules see Library *and* Harness files as one analysis
    // unit: the serve stack (Harness) and the core cache (Library) share
    // one lock/atomic topology, and an ABBA deadlock does not care which
    // class its halves live in.
    let conc_idx: Vec<usize> = states
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s.class, FileClass::Library | FileClass::Harness))
        .map(|(i, _)| i)
        .collect();
    let mut concurrency_report = None;
    if !conc_idx.is_empty() {
        let conc_hits = {
            let sem_files: Vec<graph::SemFile> = conc_idx
                .iter()
                .map(|&i| {
                    let s = &states[i];
                    graph::SemFile {
                        rel: &s.rel,
                        tokens: &s.lexed.tokens,
                        parsed: &s.parsed,
                        test_ranges: &s.regions.ranges,
                    }
                })
                .collect();
            let g = graph::Graph::build(&sem_files);
            let eff = effects::Effects::collect(&g, &sem_files);
            let conc = concurrency::Concurrency::analyze(&g, &sem_files, &eff);
            if options.concurrency {
                concurrency_report = Some(conc.report().to_string());
            }
            conc.into_hits()
        };
        for (fi, hit) in conc_hits {
            apply_hit(&mut states[conc_idx[fi]], hit, policy);
        }
    }

    // Waiver hygiene: malformed waivers always, dead waivers on request.
    for st in &mut states {
        if !st.class.rule_applies(RuleId::BadWaiver) {
            continue;
        }
        let bad = std::mem::take(&mut st.waivers.bad);
        for (line, why) in bad {
            let severity = policy.severity(RuleId::BadWaiver, &st.rel);
            if severity == Severity::Allow {
                continue;
            }
            st.diags.push(Diagnostic {
                rule: RuleId::BadWaiver,
                severity,
                file: st.rel.clone(),
                line,
                message: why,
            });
        }
    }
    if options.check_waivers {
        for st in &mut states {
            report_dead_waivers(st, policy);
        }
    }

    let mut report = LintReport {
        files_scanned: files.len(),
        batch_readiness,
        nostd_readiness,
        concurrency: concurrency_report,
        ..LintReport::default()
    };
    for st in states {
        report.diagnostics.extend(st.diags);
    }
    report.sort();
    report
}

/// Emit `ntv::dead-waiver` for every waiver that suppressed nothing.
///
/// A dead waiver can itself be waived — `// ntv:allow(dead-waiver): <why>`
/// on the line above keeps e.g. fixture waivers alive intentionally — and a
/// `dead-waiver` waiver is "used" exactly when it shields another waiver,
/// so the meta-level cannot rot either. Waivers inside `#[cfg(test)]`
/// regions are ignored: most rules don't fire there, so their waivers
/// legitimately suppress nothing.
fn report_dead_waivers(st: &mut FileState, policy: &Policy) {
    let severity = policy.severity(RuleId::DeadWaiver, &st.rel);
    if severity == Severity::Allow {
        return;
    }
    let n = st.waivers.entries.len();
    let mut dead: Vec<usize> = Vec::new();
    for i in 0..n {
        let e = &st.waivers.entries[i];
        if e.used || e.rule == RuleId::DeadWaiver || st.regions.contains(e.line) {
            continue;
        }
        let line = e.line;
        let shielded = st.waivers.entries.iter_mut().any(|d| {
            let covers = d.rule == RuleId::DeadWaiver && (d.line == line || d.line + 1 == line);
            if covers {
                d.used = true;
            }
            covers
        });
        if !shielded {
            dead.push(i);
        }
    }
    for i in dead {
        let e = &st.waivers.entries[i];
        st.diags.push(Diagnostic {
            rule: RuleId::DeadWaiver,
            severity,
            file: st.rel.clone(),
            line: e.line,
            message: format!(
                "waiver `ntv:allow({})` suppresses no finding",
                e.rule.short_name()
            ),
        });
    }
}

/// Lint one file's source text.
///
/// `rel` is the workspace-relative path used for classification, policy
/// lookup and display. Returns only `Deny`/`Warn` diagnostics. The
/// call-graph rules see this file in isolation — cross-file reachability
/// needs [`lint_sources`] / [`lint_workspace`].
#[must_use]
pub fn lint_source(rel: &Path, source: &str, policy: &Policy) -> Vec<Diagnostic> {
    let files = [(rel.to_path_buf(), source.to_string())];
    lint_sources(&files, policy, &LintOptions::default()).diagnostics
}

/// Recursively collect every `.rs` file under `root`, skipping `target`,
/// `vendor`, VCS metadata and lint fixtures. Sorted for deterministic output.
pub fn collect_rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lint every Rust file in the workspace rooted at `root`.
///
/// Diagnostics come back sorted by (file, line, rule), so two runs over the
/// same tree render byte-identical reports regardless of filesystem
/// enumeration order.
pub fn lint_workspace(root: &Path, policy: &Policy) -> io::Result<LintReport> {
    lint_workspace_with(root, policy, &LintOptions::default())
}

/// [`lint_workspace`] with explicit [`LintOptions`].
pub fn lint_workspace_with(
    root: &Path,
    policy: &Policy,
    options: &LintOptions,
) -> io::Result<LintReport> {
    let mut files = Vec::new();
    for path in collect_rust_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        files.push((rel, fs::read_to_string(&path)?));
    }
    Ok(lint_sources(&files, policy, options))
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Every diagnostic produced, in file order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The batch-readiness JSON worklist, when
    /// [`LintOptions::batch_readiness`] was set.
    pub batch_readiness: Option<String>,
    /// The no-std/WASM readiness JSON worklist, when
    /// [`LintOptions::nostd_readiness`] was set.
    pub nostd_readiness: Option<String>,
    /// The concurrency inventory (`ntv-concurrency/1`), when
    /// [`LintOptions::concurrency`] was set.
    pub concurrency: Option<String>,
}

impl LintReport {
    /// Sort diagnostics by (file, line, rule) for byte-identical reports.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// Number of deny-severity diagnostics.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-severity diagnostics.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_path() -> PathBuf {
        PathBuf::from("crates/mc/src/order.rs")
    }

    #[test]
    fn classifies_workspace_layout() {
        let c = |p: &str| FileClass::classify(Path::new(p));
        assert_eq!(c("crates/mc/src/rng.rs"), FileClass::Library);
        assert_eq!(c("src/lib.rs"), FileClass::Library);
        assert_eq!(c("src/bin/ntv.rs"), FileClass::Harness);
        assert_eq!(c("tests/determinism.rs"), FileClass::Harness);
        assert_eq!(c("crates/circuit/tests/calibration.rs"), FileClass::Harness);
        assert_eq!(c("examples/quickstart.rs"), FileClass::Harness);
        assert_eq!(c("crates/bench/src/experiments/fig1.rs"), FileClass::Bench);
        assert_eq!(c("crates/serve/src/server.rs"), FileClass::Harness);
        assert_eq!(c("crates/serve/tests/http.rs"), FileClass::Harness);
        assert_eq!(c("crates/xtask/src/engine.rs"), FileClass::Tool);
        assert_eq!(c("vendor/rand/src/lib.rs"), FileClass::Skip);
        assert_eq!(c("crates/xtask/tests/fixtures/bad.rs"), FileClass::Skip);
    }

    #[test]
    fn library_violation_is_denied() {
        let d = lint_source(
            &lib_path(),
            "pub fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
            &Policy::default(),
        );
        assert_eq!(d.len(), 2, "{d:?}"); // partial-cmp-unwrap + unwrap
        assert!(d.iter().all(|x| x.severity == Severity::Deny));
    }

    #[test]
    fn harness_files_may_unwrap_but_not_thread_rng() {
        let p = PathBuf::from("tests/determinism.rs");
        assert!(lint_source(&p, "let x = y.unwrap();", &Policy::default()).is_empty());
        let d = lint_source(&p, "let r = rand::thread_rng();", &Policy::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::ThreadRng);
    }

    #[test]
    fn cfg_test_modules_follow_harness_rules() {
        let src = "
pub fn lib_code() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = Some(1).unwrap();
        let m = std::collections::HashMap::<u32, u32>::new();
        assert!(m.is_empty());
        let _ = x;
    }
}
";
        assert!(lint_source(&lib_path(), src, &Policy::default()).is_empty());
    }

    #[test]
    fn unwrap_outside_test_module_still_fires() {
        let src = "
pub fn lib_code() -> u32 { Some(1).unwrap() }

#[cfg(test)]
mod tests {}
";
        let d = lint_source(&lib_path(), src, &Policy::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RuleId::Unwrap);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn waiver_with_reason_suppresses_same_and_next_line() {
        let trailing = "let x = y.unwrap(); // ntv:allow(unwrap): y checked non-empty above";
        assert!(lint_source(&lib_path(), trailing, &Policy::default()).is_empty());
        let above = "// ntv:allow(unwrap): y checked non-empty above\nlet x = y.unwrap();";
        assert!(lint_source(&lib_path(), above, &Policy::default()).is_empty());
    }

    #[test]
    fn waiver_without_reason_is_itself_a_violation() {
        let src = "let x = y.unwrap(); // ntv:allow(unwrap)";
        let d = lint_source(&lib_path(), src, &Policy::default());
        // The unwrap still fires AND the waiver is flagged.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|x| x.rule == RuleId::BadWaiver));
        assert!(d.iter().any(|x| x.rule == RuleId::Unwrap));
    }

    #[test]
    fn waiver_only_covers_named_rule() {
        let src = "let t = Instant::now(); // ntv:allow(unwrap): wrong rule named";
        let d = lint_source(&lib_path(), src, &Policy::default());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::WallClock);
    }

    #[test]
    fn policy_override_can_demote_to_warning() {
        let policy = Policy::default().with_overrides(vec![Override {
            path_contains: "crates/mc/",
            rule: Some(RuleId::Unwrap),
            severity: Severity::Warn,
        }]);
        let d = lint_source(&lib_path(), "let x = y.unwrap();", &policy);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Warn);
    }

    #[test]
    fn bare_unit_fires_in_library_but_not_harness_or_bench() {
        let src = "pub fn solve(vdd: f64) -> f64 { vdd }";
        let d = lint_source(&lib_path(), src, &Policy::default());
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, RuleId::BareUnit);
        let harness = PathBuf::from("tests/determinism.rs");
        assert!(lint_source(&harness, src, &Policy::default()).is_empty());
        let bench = PathBuf::from("crates/bench/src/experiments/fig4.rs");
        assert!(lint_source(&bench, src, &Policy::default()).is_empty());
    }

    #[test]
    fn bare_unit_respects_waivers_and_test_regions() {
        let waived = "// ntv:allow(bare-unit): plotting boundary, wrapped by the one caller\n\
                      pub fn solve(vdd: f64) -> f64 { vdd }";
        assert!(lint_source(&lib_path(), waived, &Policy::default()).is_empty());
        let in_tests = "#[cfg(test)]\nmod tests {\n    pub fn solve(vdd: f64) -> f64 { vdd }\n}";
        assert!(lint_source(&lib_path(), in_tests, &Policy::default()).is_empty());
    }

    #[test]
    fn reports_sort_by_file_then_line_then_rule() {
        let mut r = LintReport::default();
        let diag = |file: &str, line: u32, rule: RuleId| Diagnostic {
            rule,
            severity: Severity::Deny,
            file: PathBuf::from(file),
            line,
            message: String::new(),
        };
        r.diagnostics = vec![
            diag("b.rs", 1, RuleId::Unwrap),
            diag("a.rs", 9, RuleId::Panic),
            diag("a.rs", 9, RuleId::Unwrap),
            diag("a.rs", 2, RuleId::Unwrap),
        ];
        r.sort();
        let key: Vec<(String, u32)> = r
            .diagnostics
            .iter()
            .map(|d| (d.file.display().to_string(), d.line))
            .collect();
        assert_eq!(
            key,
            vec![
                ("a.rs".to_string(), 2),
                ("a.rs".to_string(), 9),
                ("a.rs".to_string(), 9),
                ("b.rs".to_string(), 1),
            ]
        );
        assert_eq!(r.diagnostics[1].rule, RuleId::Unwrap);
        assert_eq!(r.diagnostics[2].rule, RuleId::Panic);
    }

    #[test]
    fn diagnostics_render_with_file_and_line() {
        let d = lint_source(
            &lib_path(),
            "\n\nlet t = Instant::now();",
            &Policy::default(),
        );
        let text = d[0].to_string();
        assert!(text.contains("error[ntv::wall-clock]"), "{text}");
        assert!(text.contains("crates/mc/src/order.rs:3"), "{text}");
        assert!(text.contains("help:"), "{text}");
    }
}
