//! Platform-effect inference over the workspace call graph.
//!
//! The no-std/WASM split (ROADMAP) needs to know which functions are
//! portable pure compute and which transitively reach threads, locks,
//! process-global state, I/O, or ambient clocks. This layer answers that
//! statically: a token scan seeds per-function **effect facts** —
//!
//! * `thread` — `std::thread` paths, `.spawn(..)` calls
//! * `sync` — `Mutex`/`RwLock`/`OnceLock`/`Condvar`/`Barrier`/atomics,
//!   `.get_or_init(..)`, and the [`graph`](crate::graph) lock-acquisition
//!   scan (an acquisition through a field never names the lock type)
//! * `global` — `static` items declared inside a body (the lexer drops
//!   lifetimes, so `'static` never masquerades as one)
//! * `io` — `println!`/`eprintln!` family, `std::io`, `std::fs`,
//!   `File::open`/`File::create`
//! * `clock` — `Instant::now`, `SystemTime::now`
//! * `env` — `std::env` reads, `available_parallelism`
//!
//! — and propagates them over the call graph in two modes:
//!
//! 1. **Over-approximate reachability** (the same witness machinery as
//!    `ntv::panic-path`) powers three deny rules: `ntv::hidden-io` (io
//!    reachable from any public Library fn), `ntv::ambient-clock`
//!    (clock/env reaching a sampling or solver path), and
//!    `ntv::effect-escape` (thread/sync/global reachable from the public
//!    API of a crate the WASM split must keep pure). Diagnostics land at
//!    the *seed* site, so one inline waiver stating the invariant absorbs
//!    every over-approximate path to it — the panic-path precedent.
//! 2. **Confidence-filtered propagation** powers the `--report
//!    nostd-readiness` worklist: only confident edges carry effects,
//!    non-confident *method* calls are assumed to target `std` (a
//!    documented under-approximation the rule layer backstops),
//!    non-confident qualified calls through known-std qualifiers
//!    (`Vec::..`, `Arc::..`) are skipped — their direct effects are
//!    already seeded at the call site — and every remaining ambiguous
//!    call widens the caller to `unknown`, which the report surfaces
//!    rather than hides.
//!
//! Like the rest of the pass, everything is deterministic: symbols are
//! path-ordered, worklists run in ascending id order, and the report is
//! byte-identical across runs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::graph::{Graph, SemFile};
use crate::json;
use crate::lexer::Token;
use crate::resolve::SymbolId;
use crate::rules::{Hit, RuleId};

/// Effect lattice bits (a `u8` bitmask per function).
pub const THREAD: u8 = 1 << 0;
/// Locks, once-cells, atomics.
pub const SYNC: u8 = 1 << 1;
/// Process-global `static` state.
pub const GLOBAL: u8 = 1 << 2;
/// Stdout/stderr/filesystem.
pub const IO: u8 = 1 << 3;
/// Wall-clock reads.
pub const CLOCK: u8 = 1 << 4;
/// Environment reads.
pub const ENV: u8 = 1 << 5;

/// Bit → report name, in mask-bit order (report arrays list effects in
/// this order, so output is deterministic).
const EFFECT_NAMES: [(u8, &str); 6] = [
    (THREAD, "thread"),
    (SYNC, "sync"),
    (GLOBAL, "global"),
    (IO, "io"),
    (CLOCK, "clock"),
    (ENV, "env"),
];

/// Which deny rule polices an effect bit — decides which waiver rule name
/// covers a seed in the readiness report.
fn bit_rule(bit: u8) -> RuleId {
    match bit {
        IO => RuleId::HiddenIo,
        CLOCK | ENV => RuleId::AmbientClock,
        _ => RuleId::EffectEscape,
    }
}

/// Render a mask as its effect names, mask-bit order.
fn mask_names(mask: u8) -> Vec<String> {
    EFFECT_NAMES
        .iter()
        .filter(|(bit, _)| mask & bit != 0)
        .map(|(_, name)| (*name).to_string())
        .collect()
}

/// One direct effect site inside a function body.
#[derive(Debug, Clone)]
pub struct Seed {
    /// 1-based source line of the effectful token.
    pub line: u32,
    /// Single effect bit this site contributes.
    pub mask: u8,
    /// What was found, for messages (e.g. ```std::thread```).
    pub what: String,
}

/// Per-symbol direct effect facts (pre-propagation).
pub struct Effects {
    /// Direct effect sites per symbol, (line, mask, what)-sorted.
    pub seeds: Vec<Vec<Seed>>,
    /// Symbol body contains an `unsafe` block — a hard portability stop.
    pub unsafe_direct: Vec<bool>,
}

impl Effects {
    /// Scan every symbol body for direct effect sites. Nested fns own
    /// their tokens (innermost span wins), mirroring the panic-op and
    /// reduction scans.
    #[must_use]
    pub fn collect(graph: &Graph, files: &[SemFile]) -> Effects {
        let n = graph.table.symbols.len();
        let mut file_spans: Vec<Vec<(SymbolId, (usize, usize))>> = vec![Vec::new(); files.len()];
        for (id, sym) in graph.table.symbols.iter().enumerate() {
            if let Some(span) = sym.body {
                file_spans[sym.file].push((id, span));
            }
        }
        let mut seeds: Vec<Vec<Seed>> = (0..n).map(|_| Vec::new()).collect();
        let mut unsafe_direct = vec![false; n];
        for (id, sym) in graph.table.symbols.iter().enumerate() {
            let Some(span) = sym.body else { continue };
            let file = &files[sym.file];
            let spans = &file_spans[sym.file];
            let own = |tok: usize| {
                spans
                    .iter()
                    .filter(|(_, (a, b))| (*a..*b).contains(&tok))
                    .max_by_key(|(_, (a, _))| *a)
                    .map(|&(o, _)| o)
                    == Some(id)
            };
            let (mut s, uns) = scan_effects(file.tokens, span, own);
            unsafe_direct[id] = uns;
            for line in graph.acquisition_lines(id) {
                s.push(Seed {
                    line,
                    mask: SYNC,
                    what: "lock acquisition".to_string(),
                });
            }
            s.sort_by(|a, b| (a.line, a.mask, &a.what).cmp(&(b.line, b.mask, &b.what)));
            s.dedup_by(|a, b| a.line == b.line && a.mask == b.mask && a.what == b.what);
            seeds[id] = s;
        }
        Effects {
            seeds,
            unsafe_direct,
        }
    }
}

/// Is token `i` followed by `::`?
fn double_colon(tokens: &[Token], i: usize) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
}

/// Is token `i` followed by `::name`?
fn path_call(tokens: &[Token], i: usize, name: &str) -> bool {
    double_colon(tokens, i) && tokens.get(i + 3).and_then(Token::ident) == Some(name)
}

/// Token scan of one body span for direct effect sites and `unsafe`.
fn scan_effects(
    tokens: &[Token],
    span: (usize, usize),
    own: impl Fn(usize) -> bool,
) -> (Vec<Seed>, bool) {
    let mut out = Vec::new();
    let mut has_unsafe = false;
    let mut seed = |line: u32, mask: u8, what: String| {
        out.push(Seed { line, mask, what });
    };
    for i in span.0..span.1.min(tokens.len()) {
        if !own(i) {
            continue;
        }
        let t = &tokens[i];
        let Some(id) = t.ident() else { continue };
        let method = i > 0 && tokens[i - 1].is_punct('.');
        match id {
            "thread" if double_colon(tokens, i) => {
                seed(t.line, THREAD, "`std::thread`".to_string());
            }
            "spawn" if method && tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) => {
                seed(t.line, THREAD, "`.spawn(..)`".to_string());
            }
            "Mutex" | "RwLock" | "OnceLock" | "Condvar" | "Barrier" => {
                seed(t.line, SYNC, format!("`{id}`"));
            }
            "get_or_init" if method => {
                seed(t.line, SYNC, "`OnceLock::get_or_init`".to_string());
            }
            "static" => {
                seed(t.line, GLOBAL, "`static` item".to_string());
            }
            "println" | "eprintln" | "print" | "eprint"
                if tokens.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
            {
                seed(t.line, IO, format!("`{id}!`"));
            }
            "io" | "fs" if double_colon(tokens, i) => {
                seed(t.line, IO, format!("`std::{id}`"));
            }
            "File" if path_call(tokens, i, "open") || path_call(tokens, i, "create") => {
                seed(t.line, IO, "`File` open/create".to_string());
            }
            "Instant" | "SystemTime" if path_call(tokens, i, "now") => {
                seed(t.line, CLOCK, format!("`{id}::now`"));
            }
            "env" if double_colon(tokens, i) => {
                seed(t.line, ENV, "`std::env`".to_string());
            }
            "available_parallelism" => {
                seed(t.line, ENV, "`available_parallelism`".to_string());
            }
            "unsafe" => has_unsafe = true,
            _ if id.starts_with("Atomic") && id.len() > "Atomic".len() => {
                seed(t.line, SYNC, format!("`{id}`"));
            }
            _ => {}
        }
    }
    (out, has_unsafe)
}

/// Is `name` a sampling/solver entry point for `ntv::ambient-clock`?
fn sampling_root(name: &str) -> bool {
    name.starts_with("sample")
        || name.contains("solve")
        || name.contains("quantile")
        || name.contains("min_spares")
}

/// Is this file part of the API surface the WASM split must keep pure?
fn pure_crate_path(rel: &std::path::Path) -> bool {
    let p = rel.to_string_lossy().replace('\\', "/");
    [
        "crates/units/",
        "crates/device/",
        "crates/circuit/",
        "crates/mc/",
        "crates/core/",
    ]
    .iter()
    .any(|d| p.starts_with(d))
        || p.contains("tests/fixtures/library/pure/")
}

/// First-root-wins witness over the over-approximate edges, restricted to
/// `roots` (ascending, so the lowest-id root is deterministic).
fn witness_from(graph: &Graph, roots: &[SymbolId]) -> Vec<SymbolId> {
    let mut witness = vec![usize::MAX; graph.table.symbols.len()];
    for &root in roots {
        if witness[root] != usize::MAX {
            continue;
        }
        witness[root] = root;
        let mut queue = vec![root];
        while let Some(s) = queue.pop() {
            for &t in graph.callees(s) {
                if witness[t] == usize::MAX {
                    witness[t] = root;
                    queue.push(t);
                }
            }
        }
    }
    witness
}

/// All `ntv::hidden-io` / `ntv::ambient-clock` / `ntv::effect-escape` hits
/// as (file index, hit). Diagnostics land at the seed site with a witness
/// chain root in the message, mirroring `ntv::panic-path`.
#[must_use]
pub fn effect_hits(graph: &Graph, files: &[SemFile], eff: &Effects) -> Vec<(usize, Hit)> {
    let syms = &graph.table.symbols;
    let clock_roots: Vec<SymbolId> = (0..syms.len())
        .filter(|&id| syms[id].is_pub && sampling_root(&syms[id].name))
        .collect();
    let clock_witness = witness_from(graph, &clock_roots);
    let pure_roots: Vec<SymbolId> = (0..syms.len())
        .filter(|&id| syms[id].is_pub && pure_crate_path(files[syms[id].file].rel))
        .collect();
    let pure_witness = witness_from(graph, &pure_roots);

    let mut out = Vec::new();
    for (id, sym) in syms.iter().enumerate() {
        for seed in &eff.seeds[id] {
            if seed.mask & IO != 0 {
                if let Some(root) = graph.witness_root(id) {
                    out.push((
                        sym.file,
                        Hit {
                            rule: RuleId::HiddenIo,
                            line: seed.line,
                            message: format!(
                                "hidden I/O ({}) in `{}` is reachable from public API `{}`",
                                seed.what, sym.fq, syms[root].fq
                            ),
                        },
                    ));
                }
            }
            if seed.mask & (CLOCK | ENV) != 0 && clock_witness[id] != usize::MAX {
                out.push((
                    sym.file,
                    Hit {
                        rule: RuleId::AmbientClock,
                        line: seed.line,
                        message: format!(
                            "ambient read ({}) in `{}` reaches the sampling/solver path \
                             rooted at public API `{}`",
                            seed.what, sym.fq, syms[clock_witness[id]].fq
                        ),
                    },
                ));
            }
            if seed.mask & (THREAD | SYNC | GLOBAL) != 0 && pure_witness[id] != usize::MAX {
                out.push((
                    sym.file,
                    Hit {
                        rule: RuleId::EffectEscape,
                        line: seed.line,
                        message: format!(
                            "platform effect ({}) in `{}` is reachable from pure-crate \
                             public API `{}`",
                            seed.what, sym.fq, syms[pure_witness[id]].fq
                        ),
                    },
                ));
            }
        }
    }
    out
}

/// Non-confident *qualified* calls through these qualifiers are `std`
/// shapes whose direct effects are already seeded at the call site
/// (`Mutex::new`, `Instant::now`, ...); they must not widen the caller to
/// `unknown`.
const STD_QUALIFIERS: &[&str] = &[
    "Arc",
    "BTreeMap",
    "BTreeSet",
    "Box",
    "Cell",
    "Condvar",
    "Cow",
    "Duration",
    "Err",
    "Instant",
    "Iterator",
    "Mutex",
    "Ok",
    "OnceLock",
    "Option",
    "Ordering",
    "Path",
    "PathBuf",
    "Rc",
    "RefCell",
    "Result",
    "RwLock",
    "Some",
    "String",
    "SystemTime",
    "Vec",
    "VecDeque",
    "alloc",
    "array",
    "bool",
    "char",
    "cmp",
    "collections",
    "core",
    "f32",
    "f64",
    "fmt",
    "i128",
    "i16",
    "i32",
    "i64",
    "i8",
    "isize",
    "iter",
    "mem",
    "num",
    "ptr",
    "slice",
    "std",
    "str",
    "u128",
    "u16",
    "u32",
    "u64",
    "u8",
    "usize",
];

fn is_std_qualifier(q: &str) -> bool {
    STD_QUALIFIERS.binary_search(&q).is_ok() || q.starts_with("Atomic") || q.starts_with("NonZero")
}

/// Confidence-filtered propagation state for the readiness report.
struct Propagated {
    /// Effects reachable through *unwaived* seeds — blocking.
    unwaived: Vec<u8>,
    /// Effects reachable through waived seeds — gated.
    waived: Vec<u8>,
    /// Widened by an ambiguous call somewhere in the filtered closure.
    unknown: Vec<bool>,
    /// `unsafe` reachable — a hard blocked marker.
    unsafe_reach: Vec<bool>,
    /// Filtered forward edges (ascending, deduplicated).
    fedges: Vec<Vec<SymbolId>>,
    /// The ambiguous call name that widened this symbol directly, if any.
    widen_call: Vec<Option<String>>,
}

/// Waiver line coverage for one library file, per effect rule (a waiver
/// covers its own line and the next, exactly as in the engine).
#[derive(Debug, Default, Clone)]
pub struct FileWaivers {
    /// Lines covered by an `ntv:allow(hidden-io)` waiver.
    pub hidden_io: BTreeSet<u32>,
    /// Lines covered by an `ntv:allow(ambient-clock)` waiver.
    pub ambient_clock: BTreeSet<u32>,
    /// Lines covered by an `ntv:allow(effect-escape)` waiver.
    pub effect_escape: BTreeSet<u32>,
}

impl FileWaivers {
    fn covers(&self, rule: RuleId, line: u32) -> bool {
        match rule {
            RuleId::HiddenIo => self.hidden_io.contains(&line),
            RuleId::AmbientClock => self.ambient_clock.contains(&line),
            RuleId::EffectEscape => self.effect_escape.contains(&line),
            _ => false,
        }
    }
}

/// Fixed-point propagation over confidence-filtered edges.
fn propagate(graph: &Graph, eff: &Effects, waivers: &[FileWaivers]) -> Propagated {
    let n = graph.table.symbols.len();
    let mut p = Propagated {
        unwaived: vec![0; n],
        waived: vec![0; n],
        unknown: vec![false; n],
        unsafe_reach: eff.unsafe_direct.clone(),
        fedges: vec![Vec::new(); n],
        widen_call: vec![None; n],
    };
    for id in 0..n {
        let sym = &graph.table.symbols[id];
        for seed in &eff.seeds[id] {
            if waivers[sym.file].covers(bit_rule(seed.mask), seed.line) {
                p.waived[id] |= seed.mask;
            } else {
                p.unwaived[id] |= seed.mask;
            }
        }
        for call in graph.calls(id) {
            if call.confident {
                p.fedges[id].extend_from_slice(&call.candidates);
                continue;
            }
            if call.site.is_method || call.candidates.is_empty() {
                continue; // assumed std / resolves to nothing
            }
            if call.site.qualifier.as_deref().is_some_and(is_std_qualifier) {
                continue; // std constructor/path: effects seeded at the site
            }
            if p.widen_call[id].is_none() {
                p.widen_call[id] = Some(call.site.name.clone());
            }
            p.unknown[id] = true;
        }
        p.fedges[id].sort_unstable();
        p.fedges[id].dedup();
    }
    loop {
        let mut changed = false;
        for id in 0..n {
            for k in 0..p.fedges[id].len() {
                let t = p.fedges[id][k];
                let uw = p.unwaived[id] | p.unwaived[t];
                let w = p.waived[id] | p.waived[t];
                let un = p.unknown[id] | p.unknown[t];
                let us = p.unsafe_reach[id] | p.unsafe_reach[t];
                if uw != p.unwaived[id]
                    || w != p.waived[id]
                    || un != p.unknown[id]
                    || us != p.unsafe_reach[id]
                {
                    p.unwaived[id] = uw;
                    p.waived[id] = w;
                    p.unknown[id] = un;
                    p.unsafe_reach[id] = us;
                    changed = true;
                }
            }
        }
        if !changed {
            return p;
        }
    }
}

/// Shortest path (by BFS over filtered edges, ascending neighbors) from
/// `from` to the first symbol satisfying `hit`, inclusive of both ends.
fn witness_chain(
    p: &Propagated,
    from: SymbolId,
    hit: impl Fn(SymbolId) -> bool,
) -> Option<Vec<SymbolId>> {
    let n = p.fedges.len();
    let mut parent: Vec<Option<SymbolId>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([from]);
    seen[from] = true;
    while let Some(s) = queue.pop_front() {
        if hit(s) {
            let mut chain = vec![s];
            let mut cur = s;
            while let Some(prev) = parent[cur] {
                chain.push(prev);
                cur = prev;
            }
            chain.reverse();
            return Some(chain);
        }
        for &t in &p.fedges[s] {
            if !seen[t] {
                seen[t] = true;
                parent[t] = Some(s);
                queue.push_back(t);
            }
        }
    }
    None
}

/// The `--report nostd-readiness` JSON: every `pub` fn classified as
/// `portable` / `gated` / `blocked` for the no-std/WASM split, with a
/// per-crate summary. Deterministic — symbols arrive path-sorted and every
/// list is emitted in sorted order — so two runs are byte-identical.
///
/// Classification over the confidence-filtered closure:
///
/// * **blocked** — reaches an *unwaived* effect seed, or `unsafe` code;
///   the entry carries the shortest witness chain to the blocking symbol.
/// * **gated** — reaches only *waived* seeds (an inline waiver states the
///   invariant, so a feature gate can carve the effect out) and/or was
///   widened to `unknown` by an ambiguous call; the entry lists the
///   effects and the carrier (`via`).
/// * **portable** — none of the above: pure compute, ready to move.
#[must_use]
pub fn nostd_readiness_report(
    graph: &Graph,
    files: &[SemFile],
    eff: &Effects,
    waivers: &[FileWaivers],
) -> String {
    assert_eq!(
        files.len(),
        waivers.len(),
        "waiver sets must parallel the file list"
    );
    let p = propagate(graph, eff, waivers);
    let syms = &graph.table.symbols;

    let mut crate_counts: BTreeMap<String, [usize; 3]> = BTreeMap::new();
    let mut entries: Vec<(String, u32, String)> = Vec::new();
    for (id, sym) in syms.iter().enumerate() {
        if !sym.is_pub {
            continue;
        }
        let rel = files[sym.file].rel.to_string_lossy().replace('\\', "/");
        let krate = sym.fq.split("::").next().unwrap_or("").to_string();
        let head = format!(
            "{{\"fn\":\"{}\",\"file\":\"{}\",\"line\":{}",
            json::escape(&sym.fq),
            json::escape(&rel),
            sym.line
        );
        let blocked = p.unsafe_reach[id] || p.unwaived[id] != 0;
        let gated = p.waived[id] != 0 || p.unknown[id];
        let (slot, entry) = if blocked {
            let chain = witness_chain(&p, id, |t| {
                eff.unsafe_direct[t]
                    || eff.seeds[t]
                        .iter()
                        .any(|s| !waivers[syms[t].file].covers(bit_rule(s.mask), s.line))
            })
            .unwrap_or_else(|| vec![id]);
            let chain_fqs: Vec<String> = chain.iter().map(|&t| syms[t].fq.clone()).collect();
            let mut e = format!(
                "{head},\"status\":\"blocked\",\"effects\":{},\"witness\":{}",
                json::string_array(&mask_names(p.unwaived[id])),
                json::string_array(&chain_fqs),
            );
            if p.unsafe_reach[id] {
                e.push_str(",\"unsafe\":true");
            }
            e.push('}');
            (2, e)
        } else if gated {
            let mut effects = mask_names(p.waived[id]);
            if p.unknown[id] {
                effects.push("unknown".to_string());
            }
            let via = witness_chain(&p, id, |t| {
                eff.seeds[t]
                    .iter()
                    .any(|s| waivers[syms[t].file].covers(bit_rule(s.mask), s.line))
            })
            .map(|chain| syms[*chain.last().unwrap_or(&id)].fq.clone())
            .or_else(|| {
                witness_chain(&p, id, |t| p.widen_call[t].is_some()).map(|chain| {
                    let t = *chain.last().unwrap_or(&id);
                    format!(
                        "{} -> `{}`(unresolved)",
                        syms[t].fq,
                        p.widen_call[t].as_deref().unwrap_or("?")
                    )
                })
            })
            .unwrap_or_else(|| sym.fq.clone());
            (
                1,
                format!(
                    "{head},\"status\":\"gated\",\"effects\":{},\"via\":\"{}\"}}",
                    json::string_array(&effects),
                    json::escape(&via),
                ),
            )
        } else {
            (0, format!("{head},\"status\":\"portable\"}}"))
        };
        crate_counts.entry(krate).or_default()[slot] += 1;
        entries.push((sym.fq.clone(), sym.line, entry));
    }
    entries.sort();

    let crate_items: Vec<String> = crate_counts
        .iter()
        .map(|(krate, counts)| {
            format!(
                "{{\"crate\":\"{}\",\"portable\":{},\"gated\":{},\"blocked\":{}}}",
                json::escape(krate),
                counts[0],
                counts[1],
                counts[2]
            )
        })
        .collect();
    let entry_items: Vec<String> = entries.into_iter().map(|(_, _, e)| e).collect();
    format!(
        "{{\n  \"schema\": \"ntv-nostd-readiness/1\",\n  \"crates\": {},\n  \
         \"functions\": {}\n}}\n",
        json::array(&crate_items, 4, 2),
        json::array(&entry_items, 4, 2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use std::path::PathBuf;

    fn analyze(src: &str, rel: &str) -> (Vec<(usize, Hit)>, String) {
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let rel = PathBuf::from(rel);
        let files = [SemFile {
            rel: &rel,
            tokens: &lexed.tokens,
            parsed: &parsed,
            test_ranges: &[],
        }];
        let graph = Graph::build(&files);
        let eff = Effects::collect(&graph, &files);
        let hits = effect_hits(&graph, &files, &eff);
        let report = nostd_readiness_report(&graph, &files, &eff, &[FileWaivers::default()]);
        (hits, report)
    }

    #[test]
    fn hidden_io_fires_on_reachable_print_and_classifies_blocked() {
        let (hits, report) = analyze(
            "pub fn api(x: u64) -> u64 { helper(x) }\nfn helper(x: u64) -> u64 { println!(\"{x}\"); x }",
            "crates/soda/src/x.rs",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1.rule, RuleId::HiddenIo);
        assert_eq!(hits[0].1.line, 2);
        assert!(hits[0].1.message.contains("ntv_soda::x::api"));
        assert!(report.contains("\"status\":\"blocked\""), "{report}");
        assert!(report.contains("\"effects\":[\"io\"]"), "{report}");
        assert!(
            report.contains("\"witness\":[\"ntv_soda::x::api\",\"ntv_soda::x::helper\"]"),
            "{report}"
        );
    }

    #[test]
    fn ambient_clock_fires_only_on_sampling_paths() {
        let (hits, _) = analyze(
            "pub fn sample_thing(n: u64) -> u64 { seed(n) }\nfn seed(n: u64) -> u64 { let t = std::env::var(\"X\"); let _ = t; n }",
            "crates/soda/src/x.rs",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1.rule, RuleId::AmbientClock);
        // The same effect without a sampling/solver root stays quiet.
        let (hits, _) = analyze(
            "pub fn tabulate(n: u64) -> u64 { seed(n) }\nfn seed(n: u64) -> u64 { let t = std::env::var(\"X\"); let _ = t; n }",
            "crates/soda/src/x.rs",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn effect_escape_fires_from_pure_crates_only() {
        let src = "pub fn total(n: u64) -> u64 { let m = Mutex::new(n); let _ = m; n }";
        let (hits, _) = analyze(src, "crates/device/src/x.rs");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1.rule, RuleId::EffectEscape);
        // Soda is not on the pure-crate list.
        let (hits, report) = analyze(src, "crates/soda/src/x.rs");
        assert!(hits.is_empty(), "{hits:?}");
        // ... but the readiness report still classifies it blocked.
        assert!(report.contains("\"status\":\"blocked\""), "{report}");
        assert!(report.contains("\"effects\":[\"sync\"]"), "{report}");
    }

    #[test]
    fn unsafe_blocks_and_statics_are_hard_markers() {
        let (_, report) = analyze(
            "pub fn raw(n: u64) -> u64 { unsafe { n } }",
            "crates/soda/src/x.rs",
        );
        assert!(report.contains("\"unsafe\":true"), "{report}");
        let (hits, report) = analyze(
            "pub fn counter() -> u64 { static N: u64 = 7; N }",
            "crates/core/src/x.rs",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].1.rule, RuleId::EffectEscape);
        assert!(report.contains("\"effects\":[\"global\"]"), "{report}");
    }

    #[test]
    fn waived_seeds_classify_gated_not_blocked() {
        let src = "pub fn total(n: u64) -> u64 { let m = Mutex::new(n); let _ = m; n }";
        let lexed = lex(src);
        let parsed = parse(&lexed);
        let rel = PathBuf::from("crates/core/src/x.rs");
        let files = [SemFile {
            rel: &rel,
            tokens: &lexed.tokens,
            parsed: &parsed,
            test_ranges: &[],
        }];
        let graph = Graph::build(&files);
        let eff = Effects::collect(&graph, &files);
        let waivers = [FileWaivers {
            effect_escape: BTreeSet::from([1u32]),
            ..FileWaivers::default()
        }];
        let report = nostd_readiness_report(&graph, &files, &eff, &waivers);
        assert!(report.contains("\"status\":\"gated\""), "{report}");
        assert!(report.contains("\"effects\":[\"sync\"]"), "{report}");
        assert!(
            report.contains("\"via\":\"ntv_core::x::total\""),
            "{report}"
        );
        assert!(!report.contains("blocked\":1"), "{report}");
    }

    #[test]
    fn ambiguous_free_calls_widen_to_unknown_not_portable() {
        // Two free fns named `helper` in different modules: a free call
        // can't pick one, so the caller is widened, not declared portable.
        let a = "pub fn entry(n: u64) -> u64 { helper(n) }\nfn helper(n: u64) -> u64 { n }";
        let b = "fn helper(n: u64) -> u64 { n + 1 }";
        let la = lex(a);
        let lb = lex(b);
        let pa = parse(&la);
        let pb = parse(&lb);
        let ra = PathBuf::from("crates/soda/src/a.rs");
        let rb = PathBuf::from("crates/soda/src/b.rs");
        let files = [
            SemFile {
                rel: &ra,
                tokens: &la.tokens,
                parsed: &pa,
                test_ranges: &[],
            },
            SemFile {
                rel: &rb,
                tokens: &lb.tokens,
                parsed: &pb,
                test_ranges: &[],
            },
        ];
        let graph = Graph::build(&files);
        let eff = Effects::collect(&graph, &files);
        let report = nostd_readiness_report(
            &graph,
            &files,
            &eff,
            &[FileWaivers::default(), FileWaivers::default()],
        );
        assert!(report.contains("\"status\":\"gated\""), "{report}");
        assert!(report.contains("\"effects\":[\"unknown\"]"), "{report}");
        assert!(report.contains("unresolved"), "{report}");
    }

    #[test]
    fn std_qualifiers_and_methods_stay_portable() {
        let (_, report) = analyze(
            "pub fn calc(xs: &[u64]) -> u64 { let v = Vec::from(xs); v.iter().copied().max().unwrap_or(0) }",
            "crates/soda/src/x.rs",
        );
        assert!(report.contains("\"status\":\"portable\""), "{report}");
        assert!(!report.contains("unknown"), "{report}");
    }

    #[test]
    fn report_is_byte_identical_and_counts_crates() {
        let src =
            "pub fn a() -> u64 { 1 }\npub fn b() -> u64 { let m = Mutex::new(1u64); let _ = m; 2 }";
        let (_, r1) = analyze(src, "crates/device/src/x.rs");
        let (_, r2) = analyze(src, "crates/device/src/x.rs");
        assert_eq!(r1, r2);
        assert!(r1.contains("\"schema\": \"ntv-nostd-readiness/1\""), "{r1}");
        assert!(
            r1.contains("{\"crate\":\"ntv_device\",\"portable\":1,\"gated\":0,\"blocked\":1}"),
            "{r1}"
        );
    }
}
