//! Fixture-based integration tests for `cargo xtask lint`.
//!
//! Every `tests/fixtures/library/bad_*.rs` file must trigger exactly the
//! diagnostic its name advertises; the clean fixtures and the real
//! workspace must lint clean. The binary is also exercised end-to-end so
//! the exit-code contract (0 clean / 1 violations) is pinned.

use std::path::{Path, PathBuf};
use std::process::Command;

use xtask::{engine, Policy, RuleId};

fn fixture(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(rel)
}

/// Lint one fixture through the library API, returning the rules that fired.
fn lint_rules(rel: &str) -> Vec<RuleId> {
    let path = fixture(rel);
    let source = std::fs::read_to_string(&path).expect("fixture exists");
    // Classify under the fixture's workspace-relative path.
    let ws_rel = Path::new("crates/xtask/tests/fixtures").join(rel);
    let mut rules: Vec<RuleId> = engine::lint_source(&ws_rel, &source, &Policy::default())
        .into_iter()
        .map(|d| d.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn each_bad_library_fixture_triggers_its_rule() {
    let cases = [
        ("library/bad_thread_rng.rs", RuleId::ThreadRng),
        ("library/bad_small_rng.rs", RuleId::StatefulRng),
        ("library/bad_wall_clock.rs", RuleId::WallClock),
        ("library/bad_env_read.rs", RuleId::EnvRead),
        ("library/bad_hash_map.rs", RuleId::HashContainer),
        ("library/bad_partial_cmp.rs", RuleId::PartialCmpUnwrap),
        ("library/bad_unwrap.rs", RuleId::Unwrap),
        ("library/bad_panic.rs", RuleId::Panic),
        ("library/bad_bare_unit.rs", RuleId::BareUnit),
        ("library/bad_uncached_build.rs", RuleId::UncachedBuild),
        ("library/bad_waiver.rs", RuleId::BadWaiver),
        ("library/bad_panic_path.rs", RuleId::PanicPath),
        ("library/bad_lock_discipline.rs", RuleId::LockDiscipline),
        ("library/bad_reduction_order.rs", RuleId::ReductionOrder),
        ("library/bad_lossy_cast.rs", RuleId::LossyCast),
        ("library/bad_unit_escape.rs", RuleId::UnitEscape),
        ("library/bad_hidden_io.rs", RuleId::HiddenIo),
        ("library/bad_ambient_clock.rs", RuleId::AmbientClock),
        ("library/pure/bad_effect_escape.rs", RuleId::EffectEscape),
    ];
    for (rel, rule) in cases {
        let rules = lint_rules(rel);
        assert!(
            rules.contains(&rule),
            "{rel}: expected {} among {rules:?}",
            rule.name()
        );
    }
}

#[test]
fn clean_library_fixture_passes() {
    assert_eq!(lint_rules("library/clean.rs"), vec![], "library/clean.rs");
}

#[test]
fn bare_unit_fixture_flags_every_shape_and_waiver_silences() {
    let source =
        std::fs::read_to_string(fixture("library/bad_bare_unit.rs")).expect("fixture exists");
    let ws_rel = Path::new("crates/xtask/tests/fixtures/library/bad_bare_unit.rs");
    let diags = engine::lint_source(ws_rel, &source, &Policy::default());
    // vdd param, nominal_vdd return, doc-typed clock_period return, and the
    // (f64, f64) vdd_bounds tuple.
    assert_eq!(diags.len(), 4, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == RuleId::BareUnit));

    assert_eq!(
        lint_rules("library/waived_bare_unit.rs"),
        vec![],
        "library/waived_bare_unit.rs"
    );
}

#[test]
fn uncached_build_waiver_silences_and_harness_is_exempt() {
    assert_eq!(
        lint_rules("library/waived_uncached_build.rs"),
        vec![],
        "library/waived_uncached_build.rs"
    );
    // Harness code may build throwaway distributions without a waiver.
    let source =
        std::fs::read_to_string(fixture("library/bad_uncached_build.rs")).expect("fixture exists");
    let harness_rel = Path::new("crates/core/tests/scratch.rs");
    assert!(
        engine::lint_source(harness_rel, &source, &Policy::default()).is_empty(),
        "harness files are exempt from ntv::uncached-build"
    );
}

#[test]
fn panic_path_fixture_flags_every_shape_and_waivers_silence() {
    let source =
        std::fs::read_to_string(fixture("library/bad_panic_path.rs")).expect("fixture exists");
    let ws_rel = Path::new("crates/xtask/tests/fixtures/library/bad_panic_path.rs");
    let diags = engine::lint_source(ws_rel, &source, &Policy::default());
    // The helper's expect, the messaged unreachable!, and the param index.
    assert_eq!(diags.len(), 3, "{diags:#?}");
    assert!(diags.iter().all(|d| d.rule == RuleId::PanicPath));
    assert!(
        diags.iter().any(|d| d.message.contains("::pick`")
            && d.message.contains("public API")
            && d.message.contains("::head`")),
        "{diags:#?}"
    );

    assert_eq!(
        lint_rules("library/waived_panic_path.rs"),
        vec![],
        "library/waived_panic_path.rs"
    );
    assert_eq!(
        lint_rules("library/waived_lock_discipline.rs"),
        vec![],
        "library/waived_lock_discipline.rs"
    );
}

/// Cross-file reachability: each half of the pair is clean alone; linted
/// together, the public entry point in one file makes the `.expect(..)` in
/// the other a `ntv::panic-path` finding.
#[test]
fn cross_file_pair_connects_only_when_linted_together() {
    assert_eq!(lint_rules("library/graph_entry.rs"), vec![]);
    assert_eq!(lint_rules("library/graph_helper.rs"), vec![]);

    let files: Vec<(PathBuf, String)> = ["graph_entry.rs", "graph_helper.rs"]
        .iter()
        .map(|name| {
            let source = std::fs::read_to_string(fixture(&format!("library/{name}")))
                .expect("fixture exists");
            let ws_rel = Path::new("crates/xtask/tests/fixtures/library").join(name);
            (ws_rel, source)
        })
        .collect();
    let report = engine::lint_sources(&files, &Policy::default(), &engine::LintOptions::default());
    assert_eq!(report.diagnostics.len(), 1, "{:#?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RuleId::PanicPath);
    assert!(d.file.ends_with("graph_helper.rs"), "{d:?}");
    assert!(
        d.message.contains("::helper_pick`")
            && d.message.contains("public API")
            && d.message.contains("::entry`"),
        "{d:?}"
    );
}

/// The dataflow rules flag every advertised shape, and their waived
/// counterparts (waivers + carve-outs) lint clean.
#[test]
fn dataflow_fixtures_flag_every_shape_and_waivers_silence() {
    let diags = |name: &str| {
        let source =
            std::fs::read_to_string(fixture(&format!("library/{name}"))).expect("fixture exists");
        let ws_rel = Path::new("crates/xtask/tests/fixtures/library").join(name);
        engine::lint_source(&ws_rel, &source, &Policy::default())
    };

    // Loop `+=`, `.sum::<f64>()`, and the `*=` product — one hit each.
    let red = diags("bad_reduction_order.rs");
    assert_eq!(red.len(), 3, "{red:#?}");
    assert!(red.iter().all(|d| d.rule == RuleId::ReductionOrder));

    // f64→usize, f64→f32, len→u16 — one hit each.
    let cast = diags("bad_lossy_cast.rs");
    assert_eq!(cast.len(), 3, "{cast:#?}");
    assert!(cast.iter().all(|d| d.rule == RuleId::LossyCast));

    // Direct tail `.0`, escape via a local, and the tuple — one per fn.
    let esc = diags("bad_unit_escape.rs");
    assert_eq!(esc.len(), 3, "{esc:#?}");
    assert!(esc.iter().all(|d| d.rule == RuleId::UnitEscape));

    for name in [
        "waived_reduction_order.rs",
        "waived_lossy_cast.rs",
        "waived_unit_escape.rs",
    ] {
        assert_eq!(lint_rules(&format!("library/{name}")), vec![], "{name}");
    }
}

/// The effect rules flag every advertised shape, and waivers stating the
/// invariant silence each of them.
#[test]
fn effect_fixtures_flag_every_shape_and_waivers_silence() {
    let diags = |rel: &str| {
        let source = std::fs::read_to_string(fixture(rel)).expect("fixture exists");
        let ws_rel = Path::new("crates/xtask/tests/fixtures").join(rel);
        engine::lint_source(&ws_rel, &source, &Policy::default())
    };

    // println! in a reachable helper + direct std::io grab — one hit each.
    let io = diags("library/bad_hidden_io.rs");
    assert_eq!(io.len(), 2, "{io:#?}");
    assert!(io.iter().all(|d| d.rule == RuleId::HiddenIo));
    assert!(
        io.iter().any(|d| d.message.contains("`println!`")
            && d.message.contains("::emit`")
            && d.message.contains("::report`")),
        "{io:#?}"
    );

    // One ambient read on the sample_* path.
    let clock = diags("library/bad_ambient_clock.rs");
    assert_eq!(clock.len(), 1, "{clock:#?}");
    assert_eq!(clock[0].rule, RuleId::AmbientClock);
    assert!(
        clock[0].message.contains("`available_parallelism`")
            && clock[0].message.contains("::sample_chunks`"),
        "{clock:#?}"
    );

    // Lock type, spawned thread, and body-local static — one hit each.
    let esc = diags("library/pure/bad_effect_escape.rs");
    assert_eq!(esc.len(), 3, "{esc:#?}");
    assert!(esc.iter().all(|d| d.rule == RuleId::EffectEscape));

    for rel in [
        "library/waived_hidden_io.rs",
        "library/waived_ambient_clock.rs",
        "library/pure/waived_effect_escape.rs",
    ] {
        assert_eq!(lint_rules(rel), vec![], "{rel}");
    }
}

/// The concurrency rules flag every advertised shape in harness-classed
/// fixtures, and waivers stating the invariant silence each of them.
#[test]
fn concurrency_fixtures_flag_every_shape_and_waivers_silence() {
    let diags = |rel: &str| {
        let source = std::fs::read_to_string(fixture(rel)).expect("fixture exists");
        let ws_rel = Path::new("crates/xtask/tests/fixtures").join(rel);
        engine::lint_source(&ws_rel, &source, &Policy::default())
    };

    // One cycle between the two opposite-order functions — one hit, with
    // the full witness chain in the message.
    let cycle = diags("harness/bad_lock_order_cycle.rs");
    assert_eq!(cycle.len(), 1, "{cycle:#?}");
    assert_eq!(cycle[0].rule, RuleId::LockOrderCycle);
    assert!(
        cycle[0].message.contains("JOURNAL")
            && cycle[0].message.contains("REGISTRY")
            && cycle[0].message.contains("::record`")
            && cycle[0].message.contains("::replay`"),
        "{cycle:#?}"
    );

    // The all-Relaxed peek on the CAS-guarded cell — one hit; the CAS's
    // Relaxed failure ordering stays clean.
    let atomic = diags("harness/bad_atomic_ordering.rs");
    assert_eq!(atomic.len(), 1, "{atomic:#?}");
    assert_eq!(atomic[0].rule, RuleId::AtomicOrdering);
    assert!(atomic[0].message.contains("Gate.free"), "{atomic:#?}");

    // recv() under the guard fires; the drop-then-recv twin stays clean.
    let blocking = diags("harness/bad_blocking_under_lock.rs");
    assert_eq!(blocking.len(), 1, "{blocking:#?}");
    assert_eq!(blocking[0].rule, RuleId::BlockingUnderLock);
    assert!(blocking[0].message.contains("recv"), "{blocking:#?}");

    for rel in [
        "harness/waived_lock_order_cycle.rs",
        "harness/waived_atomic_ordering.rs",
        "harness/waived_blocking_under_lock.rs",
    ] {
        assert_eq!(lint_rules(rel), vec![], "{rel}");
    }
}

/// Cross-file lock-order propagation: each half of the pair acquires the
/// `SplitPair` locks in a consistent order and is clean alone; linted
/// together, the opposite orders form an `ntv::lock-order-cycle`.
#[test]
fn lock_order_pair_cycles_only_when_linted_together() {
    assert_eq!(lint_rules("harness/cycle_split_a.rs"), vec![]);
    assert_eq!(lint_rules("harness/cycle_split_b.rs"), vec![]);

    let files: Vec<(PathBuf, String)> = ["cycle_split_a.rs", "cycle_split_b.rs"]
        .iter()
        .map(|name| {
            let source = std::fs::read_to_string(fixture(&format!("harness/{name}")))
                .expect("fixture exists");
            let ws_rel = Path::new("crates/xtask/tests/fixtures/harness").join(name);
            (ws_rel, source)
        })
        .collect();
    let report = engine::lint_sources(&files, &Policy::default(), &engine::LintOptions::default());
    assert_eq!(report.diagnostics.len(), 1, "{:#?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RuleId::LockOrderCycle);
    assert!(
        d.message.contains("SplitPair.left")
            && d.message.contains("SplitPair.right")
            && d.message.contains("::lr`")
            && d.message.contains("::rl`"),
        "{d:?}"
    );
}

/// `--report concurrency` emits a byte-identical sync-topology inventory
/// across runs, covering the serve stack's locks and atomics.
#[test]
fn concurrency_report_is_stable_and_covers_the_serve_stack() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let run = || {
        Command::new(bin)
            .args(["lint", "--report", "concurrency", "--quiet"])
            .current_dir(xtask::workspace_root())
            .output()
            .expect("xtask runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.status.code(), Some(0), "workspace must lint clean");
    assert_eq!(a.stdout, b.stdout, "report must be byte-identical");
    let report = String::from_utf8(a.stdout).expect("utf-8 report");
    assert!(
        report.contains("\"schema\": \"ntv-concurrency/1\""),
        "{report}"
    );
    // The op-point cache's entry map is the workspace's one real lock.
    assert!(
        report.contains("\"class\": \"OpPointCache.entries\", \"kind\": \"rwlock\""),
        "{report}"
    );
    // The admission gate's CAS handshake is inventoried with its mix of
    // orderings, and the waived seed load stays visible in the report.
    assert!(report.contains("\"class\": \"McGate.free\""), "{report}");
    assert!(report.contains("\"handshake\": true"), "{report}");
    assert!(report.contains("\"compare_exchange_weak\""), "{report}");
    // The shutdown flag and the stats counters are atomic classes too.
    assert!(report.contains("SeqCst"), "{report}");
    // The summary stays off the machine-read stream.
    assert!(!report.contains("xtask lint:"), "{report}");
}

/// Cross-file effect propagation: each half of the pair is clean alone;
/// linted together, the pure-crate public entry point in one file makes
/// the lock in the other an `ntv::effect-escape` finding.
#[test]
fn effect_pair_connects_only_when_linted_together() {
    assert_eq!(lint_rules("library/pure/effect_entry.rs"), vec![]);
    assert_eq!(lint_rules("library/pure/effect_helper.rs"), vec![]);

    let files: Vec<(PathBuf, String)> = ["effect_entry.rs", "effect_helper.rs"]
        .iter()
        .map(|name| {
            let source = std::fs::read_to_string(fixture(&format!("library/pure/{name}")))
                .expect("fixture exists");
            let ws_rel = Path::new("crates/xtask/tests/fixtures/library/pure").join(name);
            (ws_rel, source)
        })
        .collect();
    let report = engine::lint_sources(&files, &Policy::default(), &engine::LintOptions::default());
    assert_eq!(report.diagnostics.len(), 1, "{:#?}", report.diagnostics);
    let d = &report.diagnostics[0];
    assert_eq!(d.rule, RuleId::EffectEscape);
    assert!(d.file.ends_with("effect_helper.rs"), "{d:?}");
    assert!(
        d.message.contains("::bump`")
            && d.message.contains("pure-crate public API")
            && d.message.contains("::entry_total`"),
        "{d:?}"
    );
}

/// `--report nostd-readiness` emits a byte-identical worklist across runs,
/// and the crates the WASM split targets first have no blocked functions.
#[test]
fn nostd_readiness_report_is_stable_and_units_device_are_unblocked() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let run = || {
        Command::new(bin)
            .args(["lint", "--report", "nostd-readiness", "--quiet"])
            .current_dir(xtask::workspace_root())
            .output()
            .expect("xtask runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.status.code(), Some(0), "workspace must lint clean");
    assert_eq!(a.stdout, b.stdout, "report must be byte-identical");
    let report = String::from_utf8(a.stdout).expect("utf-8 report");
    assert!(
        report.contains("\"schema\": \"ntv-nostd-readiness/1\""),
        "{report}"
    );
    for krate in ["ntv_units", "ntv_device"] {
        let line = report
            .lines()
            .find(|l| l.contains(&format!("\"crate\":\"{krate}\"")))
            .expect("crate summary line present");
        assert!(line.contains("\"blocked\":0"), "{krate}: {line}");
    }
    // Every status is one of the three the schema promises.
    for status in ["\"status\":\"portable\"", "\"status\":\"gated\""] {
        assert!(report.contains(status), "{report}");
    }
    assert!(!report.contains("\"status\":\"blocked\""), "{report}");
    // The summary stays off the machine-read stream.
    assert!(!report.contains("xtask lint:"), "{report}");
}

/// Dead waivers are silent by default, reported under `--check-waivers`,
/// and an `ntv:allow(dead-waiver)` shield keeps an intentional one quiet.
#[test]
fn dead_waivers_only_fire_under_check_waivers() {
    let check = engine::LintOptions {
        check_waivers: true,
        ..engine::LintOptions::default()
    };
    let load = |name: &str| -> Vec<(PathBuf, String)> {
        let source =
            std::fs::read_to_string(fixture(&format!("library/{name}"))).expect("fixture exists");
        vec![(
            Path::new("crates/xtask/tests/fixtures/library").join(name),
            source,
        )]
    };

    assert_eq!(lint_rules("library/bad_dead_waiver.rs"), vec![]);
    let report = engine::lint_sources(&load("bad_dead_waiver.rs"), &Policy::default(), &check);
    assert_eq!(report.diagnostics.len(), 1, "{:#?}", report.diagnostics);
    assert_eq!(report.diagnostics[0].rule, RuleId::DeadWaiver);
    assert!(
        report.diagnostics[0].message.contains("ntv:allow(unwrap)"),
        "{:?}",
        report.diagnostics[0]
    );

    let shielded = engine::lint_sources(&load("waived_dead_waiver.rs"), &Policy::default(), &check);
    assert!(
        shielded.diagnostics.is_empty(),
        "shield must silence the rule: {:#?}",
        shielded.diagnostics
    );
}

#[test]
fn bench_class_allows_timing_but_not_entropy() {
    assert_eq!(lint_rules("bench/clean_timing.rs"), vec![]);
    assert_eq!(lint_rules("bench/bad_entropy.rs"), vec![RuleId::ThreadRng]);
}

#[test]
fn real_workspace_lints_clean() {
    let root = xtask::workspace_root();
    let report = engine::lint_workspace(&root, &Policy::default()).expect("workspace scans");
    let errors: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == engine::Severity::Deny)
        .map(ToString::to_string)
        .collect();
    assert!(
        errors.is_empty(),
        "workspace not clean:\n{}",
        errors.join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

/// The binary contract: exit 1 on a bad fixture, 0 on a clean one and on
/// the whole workspace.
#[test]
fn binary_exit_codes_match_the_contract() {
    let bin = env!("CARGO_BIN_EXE_xtask");

    let bad = Command::new(bin)
        .args(["lint", "--quiet"])
        .arg(fixture("library/bad_unwrap.rs"))
        .output()
        .expect("xtask runs");
    assert_eq!(bad.status.code(), Some(1), "bad fixture must exit 1");

    let clean = Command::new(bin)
        .args(["lint", "--quiet"])
        .arg(fixture("library/clean.rs"))
        .output()
        .expect("xtask runs");
    assert_eq!(clean.status.code(), Some(0), "clean fixture must exit 0");

    let workspace = Command::new(bin)
        .args(["lint", "--quiet"])
        .current_dir(xtask::workspace_root())
        .output()
        .expect("xtask runs");
    assert_eq!(
        workspace.status.code(),
        Some(0),
        "workspace must lint clean:\n{}",
        String::from_utf8_lossy(&workspace.stdout)
    );

    let warn_only = Command::new(bin)
        .args(["lint", "--warn-only", "--quiet"])
        .arg(fixture("library/bad_unwrap.rs"))
        .output()
        .expect("xtask runs");
    assert_eq!(
        warn_only.status.code(),
        Some(0),
        "--warn-only must always exit 0"
    );
}

/// `--format json` emits a parseable, (file, line, rule)-sorted report on
/// stdout that is byte-identical across runs; the summary goes to stderr.
#[test]
fn json_format_is_stable_and_machine_readable() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let run = || {
        Command::new(bin)
            .args(["lint", "--format", "json", "--warn-only"])
            .arg(fixture("library/bad_bare_unit.rs"))
            .arg(fixture("library/bad_unwrap.rs"))
            .output()
            .expect("xtask runs")
    };

    let a = run();
    let b = run();
    assert_eq!(a.stdout, b.stdout, "json report must be byte-identical");
    let stdout = String::from_utf8(a.stdout).expect("utf-8 json");
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.trim_end().ends_with(']'), "{stdout}");
    for key in [
        "\"file\":",
        "\"line\":",
        "\"rule\":",
        "\"severity\":",
        "\"message\":",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
    assert!(stdout.contains("ntv::bare-unit"), "{stdout}");
    assert!(stdout.contains("ntv::unwrap"), "{stdout}");
    // Sorted by file: bad_bare_unit.rs diagnostics come before bad_unwrap.rs.
    let first = stdout.find("bad_bare_unit.rs").expect("bare-unit file");
    let second = stdout.find("bad_unwrap.rs").expect("unwrap file");
    assert!(first < second, "{stdout}");
    // The summary must not pollute the machine-read stream.
    assert!(!stdout.contains("xtask lint:"), "{stdout}");
    let stderr = String::from_utf8_lossy(&a.stderr);
    assert!(stderr.contains("xtask lint:"), "{stderr}");

    // An empty report is the empty array, not the empty string.
    let clean = Command::new(bin)
        .args(["lint", "--format", "json"])
        .arg(fixture("library/clean.rs"))
        .output()
        .expect("xtask runs");
    assert_eq!(String::from_utf8_lossy(&clean.stdout).trim(), "[]");
}

/// `--format sarif` emits a SARIF 2.1.0 log that is byte-identical across
/// runs and agrees with the JSON report on (file, line, rule).
#[test]
fn sarif_format_is_stable_and_complete() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let run = |format: &str| {
        Command::new(bin)
            .args(["lint", "--format", format, "--warn-only"])
            .arg(fixture("library/bad_ambient_clock.rs"))
            .arg(fixture("library/bad_bare_unit.rs"))
            .arg(fixture("library/bad_hidden_io.rs"))
            .arg(fixture("library/bad_lossy_cast.rs"))
            .arg(fixture("library/bad_reduction_order.rs"))
            .arg(fixture("library/bad_unit_escape.rs"))
            .arg(fixture("library/bad_unwrap.rs"))
            .arg(fixture("library/pure/bad_effect_escape.rs"))
            .arg(fixture("harness/bad_lock_order_cycle.rs"))
            .arg(fixture("harness/bad_atomic_ordering.rs"))
            .arg(fixture("harness/bad_blocking_under_lock.rs"))
            .output()
            .expect("xtask runs")
    };

    let a = run("sarif");
    let b = run("sarif");
    assert_eq!(a.stdout, b.stdout, "sarif log must be byte-identical");
    let sarif = String::from_utf8(a.stdout).expect("utf-8 sarif");
    assert!(
        sarif.contains("\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""),
        "{sarif}"
    );
    assert!(sarif.contains("\"version\": \"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"name\": \"ntv-xtask-lint\""), "{sarif}");
    // Full rule catalog, including the semantic rules.
    for rule in RuleId::ALL {
        assert!(
            sarif.contains(&format!("\"id\": \"{}\"", rule.name())),
            "{}",
            rule.name()
        );
    }

    // Results agree with the JSON report on (file, line, rule).
    let json = String::from_utf8(run("json").stdout).expect("utf-8 json");
    let mut json_keys: Vec<(String, u32, String)> = Vec::new();
    for obj in json.split("{\"file\":").skip(1) {
        let field = |key: &str| -> String {
            let tail = obj.split(&format!("\"{key}\":")).nth(1).unwrap_or(obj);
            tail.trim_start_matches([' ', '"'])
                .split(['"', ',', '}'])
                .next()
                .unwrap_or_default()
                .to_string()
        };
        let file = obj
            .trim_start_matches([' ', '"'])
            .split('"')
            .next()
            .expect("split yields at least one piece")
            .to_string();
        json_keys.push((file, field("line").parse().unwrap_or(0), field("rule")));
    }
    assert!(!json_keys.is_empty());
    let sarif_results = sarif.matches("\"ruleId\"").count();
    assert_eq!(sarif_results, json_keys.len(), "result counts must agree");
    for (file, line, rule) in &json_keys {
        assert!(sarif.contains(&format!("\"ruleId\": \"{rule}\"")), "{rule}");
        assert!(sarif.contains(&format!("\"uri\": \"{file}\"")), "{file}");
        assert!(sarif.contains(&format!("\"startLine\": {line}")), "{line}");
    }

    // A clean lint still emits a valid log with an empty results array.
    let clean = Command::new(bin)
        .args(["lint", "--format", "sarif"])
        .arg(fixture("library/clean.rs"))
        .output()
        .expect("xtask runs");
    let clean_sarif = String::from_utf8_lossy(&clean.stdout);
    assert!(clean_sarif.contains("\"results\": []"), "{clean_sarif}");
}

/// `--check-waivers` flips the exit code on a dead waiver and stays 0 when
/// every waiver is live (the workspace itself must satisfy that).
#[test]
fn check_waivers_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_xtask");

    let dead = Command::new(bin)
        .args(["lint", "--check-waivers", "--quiet"])
        .arg(fixture("library/bad_dead_waiver.rs"))
        .output()
        .expect("xtask runs");
    assert_eq!(dead.status.code(), Some(1), "dead waiver must exit 1");

    let without = Command::new(bin)
        .args(["lint", "--quiet"])
        .arg(fixture("library/bad_dead_waiver.rs"))
        .output()
        .expect("xtask runs");
    assert_eq!(
        without.status.code(),
        Some(0),
        "dead waivers are advisory without the flag"
    );

    let shielded = Command::new(bin)
        .args(["lint", "--check-waivers", "--quiet"])
        .arg(fixture("library/waived_dead_waiver.rs"))
        .output()
        .expect("xtask runs");
    assert_eq!(shielded.status.code(), Some(0), "shielded waiver must pass");

    let workspace = Command::new(bin)
        .args(["lint", "--check-waivers", "--quiet"])
        .current_dir(xtask::workspace_root())
        .output()
        .expect("xtask runs");
    assert_eq!(
        workspace.status.code(),
        Some(0),
        "workspace has a dead waiver:\n{}",
        String::from_utf8_lossy(&workspace.stdout)
    );
}
