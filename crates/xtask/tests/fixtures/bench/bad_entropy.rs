//! Fixture: OS entropy is denied even in the bench class → `ntv::thread-rng`.

pub fn jittered_order() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
