//! Fixture: the bench class may read wall clocks and unwrap — but is still
//! barred from OS entropy (see `bad_entropy.rs`).

use std::time::Instant;

pub fn measure<F: FnMut()>(mut f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

pub fn report(samples: Vec<f64>) -> f64 {
    samples.into_iter().next().unwrap()
}
