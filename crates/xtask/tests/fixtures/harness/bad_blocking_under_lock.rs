//! Fixture: a channel `recv()` — a call that can block indefinitely —
//! while a mutex guard is live → `ntv::blocking-under-lock`.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

static LOG: Mutex<Vec<String>> = Mutex::new(Vec::new());

pub fn drain(rx: &Receiver<String>) {
    let mut log = LOG.lock().expect("log lock");
    let item = rx.recv().expect("sender alive");
    log.push(item);
}

pub fn drain_ok(rx: &Receiver<String>) {
    let item = rx.recv().expect("sender alive");
    let mut log = LOG.lock().expect("log lock");
    log.push(item);
}
