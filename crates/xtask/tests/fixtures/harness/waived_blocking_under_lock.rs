//! Fixture: an `ntv:allow(blocking-under-lock)` waiver stating why the
//! blocking call cannot deadlock silences the rule.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

static LOG: Mutex<Vec<String>> = Mutex::new(Vec::new());

pub fn drain(rx: &Receiver<String>) {
    let mut log = LOG.lock().expect("log lock");
    // ntv:allow(blocking-under-lock): sender never takes LOG; disconnect unblocks
    let item = rx.recv().expect("sender alive");
    log.push(item);
}
