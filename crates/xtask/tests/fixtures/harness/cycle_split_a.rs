//! Fixture (half 1 of a cross-file pair): acquires `left` before `right`.
//! Clean alone; forms an `ntv::lock-order-cycle` with `cycle_split_b.rs`,
//! which acquires the same pair in the opposite order.

use std::sync::Mutex;

pub struct SplitPair {
    pub left: Mutex<u64>,
    pub right: Mutex<u64>,
}

impl SplitPair {
    pub fn lr(&self) -> u64 {
        let l = self.left.lock().expect("left lock");
        let r = self.right.lock().expect("right lock");
        *l + *r
    }
}
