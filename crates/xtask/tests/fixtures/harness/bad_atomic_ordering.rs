//! Fixture: a fully-`Relaxed` load on an atomic whose other operations use
//! acquire/release orderings → `ntv::atomic-ordering`.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Gate {
    free: AtomicUsize,
}

impl Gate {
    pub fn peek(&self) -> usize {
        self.free.load(Ordering::Relaxed)
    }

    pub fn take(&self) -> bool {
        self.free
            .compare_exchange(1, 0, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }
}
