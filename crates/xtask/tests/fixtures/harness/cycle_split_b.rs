//! Fixture (half 2 of a cross-file pair): acquires `right` before `left`
//! on the same `SplitPair` as `cycle_split_a.rs`. Clean alone; a cycle
//! when the two files are analyzed together.

use crate::cycle_split_a::SplitPair;

impl SplitPair {
    pub fn rl(&self) -> u64 {
        let r = self.right.lock().expect("right lock");
        let l = self.left.lock().expect("left lock");
        *l + *r
    }
}
