//! Fixture: an `ntv:allow(lock-order-cycle)` waiver on the cycle's anchor
//! acquisition silences the rule where the two paths can never run
//! concurrently.

use std::sync::Mutex;

static REGISTRY: Mutex<Vec<u64>> = Mutex::new(Vec::new());
static JOURNAL: Mutex<Vec<u64>> = Mutex::new(Vec::new());

pub fn record(v: u64) {
    let mut reg = REGISTRY.lock().expect("registry lock");
    let mut jl = JOURNAL.lock().expect("journal lock");
    reg.push(v);
    jl.push(v);
}

pub fn replay() -> usize {
    let jl = JOURNAL.lock().expect("journal lock");
    // ntv:allow(lock-order-cycle): replay only runs after workers joined
    let reg = REGISTRY.lock().expect("registry lock");
    jl.len() + reg.len()
}
