//! Fixture: an `ntv:allow(atomic-ordering)` waiver stating why `Relaxed`
//! is sufficient silences the rule.

use std::sync::atomic::{AtomicUsize, Ordering};

pub struct Gate {
    free: AtomicUsize,
}

impl Gate {
    pub fn peek(&self) -> usize {
        // ntv:allow(atomic-ordering): monitoring probe; no decision is made on it
        self.free.load(Ordering::Relaxed)
    }

    pub fn take(&self) -> bool {
        self.free
            .compare_exchange(1, 0, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }
}
