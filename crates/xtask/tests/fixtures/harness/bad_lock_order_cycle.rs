//! Fixture: two functions acquiring the same pair of locks in opposite
//! orders → `ntv::lock-order-cycle`.

use std::sync::Mutex;

static REGISTRY: Mutex<Vec<u64>> = Mutex::new(Vec::new());
static JOURNAL: Mutex<Vec<u64>> = Mutex::new(Vec::new());

pub fn record(v: u64) {
    let mut reg = REGISTRY.lock().expect("registry lock");
    let mut jl = JOURNAL.lock().expect("journal lock");
    reg.push(v);
    jl.push(v);
}

pub fn replay() -> usize {
    let jl = JOURNAL.lock().expect("journal lock");
    let reg = REGISTRY.lock().expect("registry lock");
    jl.len() + reg.len()
}
