//! Fixture: invariant-stating waivers silence `ntv::reduction-order`, and
//! the rule's carve-outs (order-free min/max folds, stride updates,
//! integer accumulators) stay quiet without one.

pub fn total_delay_ps(delays: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &d in delays {
        acc += d; // ntv:allow(reduction-order): goldens pin this exact left-to-right order
    }
    acc
}

/// Min/max folds are associative and commutative — no order pinned.
pub fn worst_ps(delays: &[f64]) -> f64 {
    delays.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// A literal stride update (`x += 0.125`) is iteration bookkeeping, not a
/// reduction; integer counters are exact.
pub fn grid_count(lo: f64, hi: f64) -> usize {
    let mut x = lo;
    let mut n = 0usize;
    while x < hi {
        x += 0.125;
        n += 1;
    }
    n
}
