//! Fixture: wall-clock read in library code → `ntv::wall-clock`.

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
