//! Fixture: panicking operations reachable from public API →
//! `ntv::panic-path`.
//!
//! All three shapes: a `.expect(..)` in a private helper called from a
//! `pub fn`, a messaged `unreachable!(..)`, and slice indexing by a
//! caller-supplied parameter.

pub fn head(values: &[f64]) -> f64 {
    pick(values)
}

fn pick(values: &[f64]) -> f64 {
    values.first().copied().expect("non-empty input")
}

pub fn decode(mode: u8) -> u8 {
    match mode {
        0 | 1 => mode,
        _ => unreachable!("modes are two-valued"),
    }
}

pub fn lane_value(table: &[f64], lane: usize) -> f64 {
    table[lane]
}
