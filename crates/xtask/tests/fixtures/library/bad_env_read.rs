//! Fixture: environment read in library code → `ntv::env-read`.

pub fn seed_from_env() -> u64 {
    std::env::var("NTV_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}
