//! Fixture: `ntv:allow(panic-path)` waivers stating the invariant silence
//! every shape of the rule.

pub fn head(values: &[f64]) -> f64 {
    pick(values)
}

fn pick(values: &[f64]) -> f64 {
    // ntv:allow(panic-path): public callers validate non-emptiness first
    values.first().copied().expect("non-empty input")
}

pub fn decode(mode: u8) -> u8 {
    match mode {
        0 | 1 => mode,
        // ntv:allow(panic-path): the ISA encodes exactly two modes
        _ => unreachable!("modes are two-valued"),
    }
}

pub fn lane_value(table: &[f64], lane: usize) -> f64 {
    // ntv:allow(panic-path): documented panic; lane count is machine-fixed
    table[lane]
}
