//! Fixture: a justified waiver silences `ntv::unit-escape`, and the
//! carve-outs (unit-typed returns, derived values, accessor methods on
//! the newtype itself) stay quiet without one.

pub fn supply_raw(vdd: Volts) -> f64 {
    // ntv:allow(unit-escape): serialization boundary — the CSV writer needs the raw number
    vdd.0
}

/// Returning the newtype keeps the unit — nothing escapes.
pub fn margined(vdd: Volts) -> Volts {
    Volts(vdd.0 + 0.05)
}

/// A derived value is a new quantity, not a bare escape of the unit.
pub fn headroom(vdd: Volts, vth: Volts) -> f64 {
    vdd.0 - vth.0
}

impl Volts {
    /// Accessors on the newtype itself are the sanctioned exit.
    pub fn get(self) -> f64 {
        self.0
    }
}
