//! Fixture: a well-formed waiver that suppresses no finding →
//! `ntv::dead-waiver` under `--check-waivers` (clean otherwise).

pub fn scaled(x: f64) -> f64 {
    // ntv:allow(unwrap): nothing on this path can fail
    x * 2.0
}
