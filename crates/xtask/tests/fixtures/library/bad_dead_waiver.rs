//! Fixture: a well-formed waiver that suppresses no finding →
//! `ntv::dead-waiver` under `--check-waivers` (clean otherwise).

pub fn total(values: &[f64]) -> f64 {
    // ntv:allow(unwrap): sum never fails
    values.iter().sum()
}
