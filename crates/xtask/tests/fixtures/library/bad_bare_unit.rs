//! Fixture: physical quantities as bare `f64` in public signatures must
//! trigger `ntv::bare-unit`.

/// Scale factor applied on top of the nominal gate delay.
pub struct Derater {
    scale: f64,
}

impl Derater {
    /// Derated delay at the given supply.
    pub fn delay_ps(&self, vdd: f64) -> f64 {
        self.scale * 100.0 / vdd
    }
}

/// Nominal supply for this corner.
pub fn nominal_vdd() -> f64 {
    0.9
}

/// Critical-path period, in seconds.
pub fn clock_period() -> f64 {
    1.0e-9
}

/// Safe operating window for the supply.
pub fn vdd_bounds() -> (f64, f64) {
    (0.4, 1.0)
}
