//! Fixture: an `ntv:allow(lock-discipline)` waiver silences the rule where
//! a global lock order makes the nested acquisition safe.

use std::sync::Mutex;

static REGISTRY: Mutex<Vec<u64>> = Mutex::new(Vec::new());
static JOURNAL: Mutex<Vec<u64>> = Mutex::new(Vec::new());

fn journal_append(entry: u64) {
    JOURNAL.lock().expect("journal lock").push(entry);
}

fn register(entry: u64) {
    let guard = REGISTRY.lock().expect("registry lock");
    // ntv:allow(lock-discipline): registry-before-journal order is global
    journal_append(entry + guard.len() as u64);
}
