//! Cross-file effect-propagation fixture, entry half: the public entry
//! point is effect-free on its own; linted together with
//! `effect_helper.rs`, the helper's lock becomes reachable from this
//! pure-crate `pub fn` and `ntv::effect-escape` fires in the helper.

pub fn entry_total(n: u64) -> u64 {
    effect_helper::bump(n)
}
