//! Fixture: platform effects reachable from pure-crate public API →
//! `ntv::effect-escape`.
//!
//! All three effect families: a lock type, a spawned thread, and a
//! process-global `static` — each behind a `pub fn` of a file on the
//! pure-crate path the no-std/WASM split must keep effect-free.

pub fn guarded_total(seed: f64) -> f64 {
    let cell = std::sync::Mutex::new(seed);
    let _ = &cell;
    seed
}

pub fn offloaded(seed: u64) -> u64 {
    let worker = std::thread::spawn(move || seed + 1);
    drop(worker);
    seed
}

pub fn tallied(seed: u64) -> u64 {
    static CALLS: u64 = 0;
    CALLS + seed
}
