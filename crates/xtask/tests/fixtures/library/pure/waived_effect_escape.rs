//! Fixture: `ntv:allow(effect-escape)` waivers stating the invariant
//! silence every shape of the rule.

pub fn guarded_total(seed: f64) -> f64 {
    // ntv:allow(effect-escape): guards a pure memo; value is a function of the key
    let cell = std::sync::Mutex::new(seed);
    let _ = &cell;
    seed
}

pub fn offloaded(seed: u64) -> u64 {
    // ntv:allow(effect-escape): fork-join over a pure fn; merge preserves order
    let worker = std::thread::spawn(move || seed + 1);
    drop(worker);
    seed
}

pub fn tallied(seed: u64) -> u64 {
    // ntv:allow(effect-escape): immutable table, never written after init
    static CALLS: u64 = 0;
    CALLS + seed
}
