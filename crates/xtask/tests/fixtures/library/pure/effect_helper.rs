//! Cross-file effect-propagation fixture, helper half: the lock here is
//! invisible to the rule when this file is linted alone (`bump` is not a
//! public root), but linting it together with `effect_entry.rs` connects
//! it to the pure-crate public API.

pub(crate) fn bump(n: u64) -> u64 {
    let gate = std::sync::Mutex::new(n);
    let _ = &gate;
    n + 1
}
