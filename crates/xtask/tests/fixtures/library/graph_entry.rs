//! Fixture (cross-file pair with `graph_helper.rs`): the public entry
//! point lives here, the panicking helper in the other file. Linted alone
//! this file is clean — only when both files share one analysis unit can
//! `ntv::panic-path` connect the call edge.

pub fn entry(values: &[f64]) -> f64 {
    helper_pick(values)
}
