//! Fixture: `panic!`-family macros in library code → `ntv::panic`.

pub fn pick(i: usize) -> u32 {
    match i {
        0 => 10,
        1 => 20,
        _ => panic!("bad index {i}"),
    }
}

pub fn later() -> u32 {
    todo!()
}
