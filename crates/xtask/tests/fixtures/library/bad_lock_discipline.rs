//! Fixture: a lock guard held across a call into another lock-acquiring
//! function → `ntv::lock-discipline`.

use std::sync::Mutex;

static REGISTRY: Mutex<Vec<u64>> = Mutex::new(Vec::new());
static JOURNAL: Mutex<Vec<u64>> = Mutex::new(Vec::new());

fn journal_append(entry: u64) {
    JOURNAL.lock().expect("journal lock").push(entry);
}

fn register(entry: u64) {
    let guard = REGISTRY.lock().expect("registry lock");
    journal_append(entry + guard.len() as u64);
}
