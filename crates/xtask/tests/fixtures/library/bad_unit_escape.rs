//! Fixture: `.0` projections of `ntv-units` newtypes escaping a public fn
//! as bare `f64` → `ntv::unit-escape` (direct tail, via a local, tuple).

pub fn supply(vdd: Volts) -> f64 {
    vdd.0
}

pub fn stripped(vdd: Volts) -> f64 {
    let raw = vdd.0;
    raw
}

pub fn bounds(lo: Volts, hi: Volts) -> (f64, f64) {
    (lo.0, hi.0)
}
