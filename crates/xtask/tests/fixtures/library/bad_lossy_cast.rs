//! Fixture: truncating `as` casts with no bounds guard in the same fn →
//! `ntv::lossy-cast` (f64→usize bin math, f64→f32 narrowing, len→u16).

pub fn bucket(x: f64, width: f64) -> usize {
    (x / width) as usize
}

pub fn narrow(x: f64) -> f32 {
    x as f32
}

pub fn small_len(xs: &[u64]) -> u16 {
    xs.len() as u16
}
