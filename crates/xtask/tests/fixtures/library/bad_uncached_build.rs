//! Fixture: direct `PathDistribution::build` in result-producing code must
//! trigger `ntv::uncached-build` — identical Gauss–Hermite builds belong in
//! the shared operating-point cache.

pub fn q99_ps(tech: &TechModel, vdd: Volts, path_length: usize) -> f64 {
    let dist = PathDistribution::build(tech, vdd, path_length);
    dist.quantile_by_survival(0.01)
}
