//! Fixture: `ntv:allow(dead-waiver)` shields an intentionally idle waiver
//! (kept for a feature-gated code path) from `--check-waivers`.

pub fn scaled(x: f64) -> f64 {
    // ntv:allow(dead-waiver): the unwrap waiver covers a cfg-gated path
    // ntv:allow(unwrap): the gated code path unwraps a checked conversion
    x * 2.0
}
