//! Fixture: `ntv:allow(dead-waiver)` shields an intentionally idle waiver
//! (kept for a feature-gated code path) from `--check-waivers`.

pub fn total(values: &[f64]) -> f64 {
    // ntv:allow(dead-waiver): the unwrap waiver covers a cfg-gated path
    // ntv:allow(unwrap): the gated accumulation path unwraps a checked sum
    values.iter().sum()
}
