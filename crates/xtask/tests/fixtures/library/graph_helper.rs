//! Fixture (cross-file pair with `graph_entry.rs`): a crate-private helper
//! whose `.expect(..)` is only reachable through the other file's public
//! entry point — clean alone, flagged when linted as a pair.

pub(crate) fn helper_pick(values: &[f64]) -> f64 {
    values.first().copied().expect("entry validates non-emptiness")
}
