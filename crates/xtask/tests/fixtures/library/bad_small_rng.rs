// Fixture: direct stateful-generator use in library code must trigger
// ntv::stateful-rng — the counter-based API is the only sanctioned entry
// point outside `ntv_mc::rng`.
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub fn sample(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    rng.next_u64()
}
