//! Fixture: a justified inline waiver silences `ntv::bare-unit`, and the
//! rule's carve-outs (scale suffixes, wrapped types, aggregates) stay quiet
//! without one.

/// Raw supply sweep start, kept as `f64` at the plotting boundary.
// ntv:allow(bare-unit): serialization boundary; the one caller wraps into Volts
pub fn sweep_start(vdd_min: f64) -> Vec<f64> {
    vec![vdd_min]
}

/// FO4 unit at the margined operating point (picoseconds — scale-suffixed
/// names are plain numbers in a stated scale by workspace convention).
pub fn fo4_unit_ps(margin_mv: f64) -> f64 {
    441.0 + margin_mv
}

/// Newtype-carrying signatures are exactly what the rule wants.
pub fn solve(vdd: Volts) -> Seconds {
    Seconds(vdd.get() * 1.0e-9)
}
