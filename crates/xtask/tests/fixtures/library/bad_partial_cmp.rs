//! Fixture: NaN-unsafe float ordering → `ntv::partial-cmp-unwrap`.

pub fn sort(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn max(v: &[f64]) -> f64 {
    v.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("finite"))
        .unwrap_or(f64::NAN)
}
