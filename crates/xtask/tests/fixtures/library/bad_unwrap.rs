//! Fixture: bare `unwrap()` in library code → `ntv::unwrap`.

pub fn first_line(text: &str) -> &str {
    text.lines().next().unwrap()
}
