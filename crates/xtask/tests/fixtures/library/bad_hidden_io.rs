//! Fixture: I/O reachable from public API → `ntv::hidden-io`.
//!
//! Both shapes: a `println!` buried in a private helper called from a
//! `pub fn`, and a direct `std::io` handle grab in a public function.

pub fn report(total: f64) -> f64 {
    emit(total);
    total
}

fn emit(total: f64) {
    println!("total = {total}");
}

pub fn flush_now() {
    let handle = std::io::stdout();
    let _ = handle;
}
