//! Fixture: `ntv:allow(hidden-io)` waivers stating the invariant silence
//! every shape of the rule.

pub fn report(total: f64) -> f64 {
    emit(total);
    total
}

fn emit(total: f64) {
    // ntv:allow(hidden-io): diagnostic trace behind a debug-only build
    println!("total = {total}");
}

pub fn flush_now() {
    // ntv:allow(hidden-io): explicit flush requested by the one CLI caller
    let handle = std::io::stdout();
    let _ = handle;
}
