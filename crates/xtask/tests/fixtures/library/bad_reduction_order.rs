//! Fixture: order-sensitive f64 reductions reachable from a public fn →
//! `ntv::reduction-order` (loop `+=`, `.sum::<f64>()`, and a float fold).

pub fn total_delay_ps(delays: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &d in delays {
        acc += d;
    }
    acc
}

pub fn mean_ps(delays: &[f64]) -> f64 {
    delays.iter().sum::<f64>() / delays.len() as f64
}

pub fn product(factors: &[f64]) -> f64 {
    let mut p = 1.0;
    for &f in factors {
        p *= f;
    }
    p
}
