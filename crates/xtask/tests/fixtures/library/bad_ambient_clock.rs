//! Fixture: ambient environment read on a sampling path →
//! `ntv::ambient-clock`.
//!
//! The worker-count probe changes chunking — and therefore results for
//! order-sensitive folds — per machine, so it may not sit on a path
//! reachable from a public `sample_*` entry point.

pub fn sample_chunks(n: usize) -> usize {
    chunk_count(n)
}

fn chunk_count(n: usize) -> usize {
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
    n / workers.max(1)
}
