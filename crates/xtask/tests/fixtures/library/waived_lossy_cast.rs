//! Fixture: guards and invariant-stating waivers silence `ntv::lossy-cast`
//! — a clamp in the operand, a `.min` on the cast value, a later rebind
//! through `.min`, and a waived widening-by-contract cast.

pub fn bucket(x: f64, width: f64, bins: usize) -> usize {
    ((x / width).clamp(0.0, (bins - 1) as f64)) as usize
}

pub fn capped_bin(x: f64, bins: usize) -> usize {
    (x as usize).min(bins - 1)
}

pub fn rebound_bin(x: f64, bins: usize) -> usize {
    let idx = x as usize;
    let idx = idx.min(bins - 1);
    idx
}

pub fn quantized(x: f64) -> u32 {
    // ntv:allow(lossy-cast): caller contract bounds x to [0, 2^16)
    x as u32
}

/// Widening integer casts are exact — no guard needed.
pub fn widened(xs: &[u64]) -> u64 {
    xs.len() as u64
}
