//! Fixture: OS-entropy randomness in library code → `ntv::thread-rng`.

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
