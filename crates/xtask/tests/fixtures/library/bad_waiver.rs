//! Fixture: malformed waiver comments → `ntv::bad-waiver`.

// ntv:allow(unwrap)
pub fn missing_reason(x: Option<u32>) -> u32 {
    x.unwrap()
}

// ntv:allow(not-a-rule): the rule name does not exist
pub fn unknown_rule() -> u32 {
    7
}
