//! Fixture: idiomatic library code — every rule passes.
//!
//! Exercises the machinery that must NOT fire: total float orderings,
//! documented expects, a valid waiver, `BTreeMap`, and a `#[cfg(test)]`
//! module whose unwraps are exempt.

use std::collections::BTreeMap;

/// Sorted copy, NaN-total.
pub fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(f64::total_cmp);
    v
}

/// Deterministic tally.
pub fn tally(xs: &[u32]) -> BTreeMap<u32, usize> {
    let mut m = BTreeMap::new();
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

/// Documented invariant via `expect` is allowed, but on a public path the
/// invariant must also be waived for `ntv::panic-path`.
pub fn head(xs: &[u32]) -> u32 {
    // ntv:allow(panic-path): caller guarantees a non-empty slice
    *xs.first().expect("caller guarantees a non-empty slice")
}

/// A well-formed waiver suppresses the diagnostic on the next line.
pub fn waived(x: Option<u32>) -> u32 {
    // ntv:allow(unwrap): fixture demonstrating a justified waiver
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
