//! Fixture: a reasoned `ntv:allow(uncached-build)` waiver silences the rule
//! at a sanctioned construction site.

pub fn build_uncacheable(tech: &TechModel, vdd: Volts, path_length: usize) -> PathDistribution {
    // ntv:allow(uncached-build): per-call params have no cache identity
    PathDistribution::build(tech, vdd, path_length)
}
