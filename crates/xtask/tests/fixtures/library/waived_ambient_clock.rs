//! Fixture: an `ntv:allow(ambient-clock)` waiver stating the invariant
//! silences the rule.

pub fn sample_chunks(n: usize) -> usize {
    chunk_count(n)
}

fn chunk_count(n: usize) -> usize {
    // ntv:allow(ambient-clock): worker count only sizes chunks; the merge preserves index order
    let workers = std::thread::available_parallelism().map_or(1, |p| p.get());
    n / workers.max(1)
}
