//! Property-style tests for the expression shapes the dataflow layer
//! consumes: compound assignment across every loop form, method chains of
//! arbitrary depth, closures nested inside public fns, and the literal
//! classification the float-binding facts depend on.
//!
//! Each case is generated programmatically and pushed through the full
//! `lint_source` pipeline (lexer → parser → call graph → dataflow), so a
//! regression in any layer shows up as a wrong rule set for some shape.

use std::path::Path;

use xtask::lexer::lex;
use xtask::{engine, Policy, RuleId};

/// Lint a generated source as Library code, returning the deduped rules.
fn rules_of(source: &str) -> Vec<RuleId> {
    let ws_rel = Path::new("crates/xtask/tests/fixtures/library/generated_case.rs");
    let mut rules: Vec<RuleId> = engine::lint_source(ws_rel, source, &Policy::default())
        .into_iter()
        .map(|d| d.rule)
        .collect();
    rules.dedup();
    rules
}

/// `+=` and `*=` on an f64 accumulator fire in every loop form; the same
/// shapes with an integer accumulator never do.
#[test]
fn compound_assignment_fires_in_every_loop_form_for_floats_only() {
    let loops = [
        ("for", "for i in 0..n {", "}"),
        ("while", "let mut i = 0usize; while i < n { i += 1;", "}"),
        (
            "loop",
            "let mut i = 0usize; loop { if i >= n { break; } i += 1;",
            "}",
        ),
    ];
    for op in ["+=", "*="] {
        for (label, open, close) in loops {
            let float = format!(
                "pub fn f(n: usize, xs: &[f64]) -> f64 {{\n\
                 let mut acc = 1.0;\n{open}\nacc {op} xs[i % xs.len()];\n{close}\nacc\n}}\n"
            );
            assert_eq!(
                rules_of(&float),
                vec![RuleId::ReductionOrder],
                "float {op} in {label}"
            );

            let int = format!(
                "pub fn f(n: usize, xs: &[u64]) -> u64 {{\n\
                 let mut acc = 1u64;\n{open}\nacc {op} xs[i % xs.len()];\n{close}\nacc\n}}\n"
            );
            assert_eq!(rules_of(&int), vec![], "integer {op} in {label}");
        }
    }
}

/// The same accumulation *outside* any loop is a straight-line sum of a
/// fixed number of terms — not a reduction.
#[test]
fn compound_assignment_outside_a_loop_is_quiet() {
    let src = "pub fn f(a: f64, b: f64) -> f64 {\n\
               let mut acc = 0.0;\nacc += a;\nacc += b;\nacc\n}\n";
    assert_eq!(rules_of(src), vec![]);
}

/// `.sum::<f64>()` is flagged at any method-chain depth; the equivalent
/// chain ending in an order-free terminal (`count`, min/max fold) is not.
#[test]
fn method_chain_depth_does_not_hide_a_sum() {
    for depth in 0..4 {
        let links = ".map(|x| x * 2.0)".repeat(depth);
        let flagged =
            format!("pub fn f(xs: &[f64]) -> f64 {{\nxs.iter().copied(){links}.sum::<f64>()\n}}\n");
        assert_eq!(
            rules_of(&flagged),
            vec![RuleId::ReductionOrder],
            "sum at chain depth {depth}"
        );

        let quiet = format!(
            "pub fn f(xs: &[f64]) -> f64 {{\n\
             xs.iter().copied(){links}.fold(f64::NEG_INFINITY, f64::max)\n}}\n"
        );
        assert_eq!(rules_of(&quiet), vec![], "max fold at chain depth {depth}");
    }
}

/// A reduction buried in a closure nested inside a public fn is still
/// attributed to that fn, and a trailing waiver still silences it there.
#[test]
fn nested_closures_neither_hide_nor_break_attribution() {
    for depth in 1..4 {
        let open: String = (0..depth)
            .map(|i| format!("let c{i} = |ys: &[f64]| {{\n"))
            .collect();
        let close = "};\n".repeat(depth);
        let src = format!(
            "pub fn f(xs: &[f64]) -> f64 {{\n{open}\
             let mut acc = 0.0;\nfor &y in ys {{\nacc += y;\n}}\nacc\n{close}c0(xs)\n}}\n"
        );
        assert_eq!(
            rules_of(&src),
            vec![RuleId::ReductionOrder],
            "closure depth {depth}"
        );

        let waived = src.replace(
            "acc += y;",
            "acc += y; // ntv:allow(reduction-order): golden order",
        );
        assert_eq!(rules_of(&waived), vec![], "waived closure depth {depth}");
    }
}

/// An unguarded truncating cast fires wherever the expression sits —
/// statement position or inside a closure body — and a clamp in the
/// operand silences every one of those shapes. (An *untyped* closure
/// param is not a known float binding: the facts err toward silence.)
#[test]
fn lossy_cast_shapes_fire_and_guards_silence() {
    let shapes = [
        "pub fn f(x: f64) -> usize {\nlet i = x as usize;\ni\n}\n".to_string(),
        "pub fn f(xs: &[f64]) -> Vec<usize> {\n\
         xs.iter().map(|&v| {\nlet x: f64 = v;\nx as usize\n}).collect()\n}\n"
            .to_string(),
    ];
    for (i, src) in shapes.iter().enumerate() {
        assert_eq!(rules_of(src), vec![RuleId::LossyCast], "shape {i}");
        let guarded = src.replace("x as usize", "x.clamp(0.0, 63.0) as usize");
        assert_eq!(rules_of(&guarded), vec![], "guarded shape {i}");
    }

    let untyped =
        "pub fn f(xs: &[f64]) -> Vec<usize> {\nxs.iter().map(|&x| x as usize).collect()\n}\n";
    assert_eq!(
        rules_of(untyped),
        vec![],
        "untyped closure param stays quiet"
    );
}

/// Literal classification: integer suffixes (including the `e`-carrying
/// `usize`/`isize`), base prefixes and float forms must sort correctly —
/// the float-binding facts are built on this.
#[test]
fn numeric_literal_classification_matrix() {
    let float_forms = [
        "1.0", "0.5", "1e3", "2E-4", "1.5e2", "3f64", "2f32", "1_000.25",
    ];
    let int_forms = [
        "1", "42", "0usize", "7isize", "1u8", "2i8", "3u16", "4i16", "5u32", "6i32", "7u64",
        "8i64", "9u128", "10i128", "1_000", "0xfe", "0o17", "0b1010",
    ];
    for (forms, want) in [(&float_forms[..], true), (&int_forms[..], false)] {
        for lit in forms {
            let lexed = lex(&format!("let x = {lit};"));
            let tok = lexed
                .tokens
                .iter()
                .find(|t| t.literal().is_some())
                .expect("every generated statement holds one literal token");
            assert_eq!(tok.is_float_literal(), want, "{lit}");
        }
    }
    // String/char literal content is discarded: a float spelled inside a
    // message can never look like a float literal to the dataflow layer.
    for lit in ["\"1.5e3\"", "'e'"] {
        let lexed = lex(&format!("let x = {lit};"));
        assert!(
            lexed
                .tokens
                .iter()
                .filter_map(|t| t.literal())
                .all(str::is_empty),
            "{lit}"
        );
    }
}

/// Formatting noise — interleaved comments, multi-line parameter lists,
/// odd whitespace — must not change what the dataflow layer sees.
#[test]
fn formatting_noise_is_invariant() {
    let dense = "pub fn f(xs: &[f64], scale: f64) -> f64 {\n\
                 let mut acc = 0.0;\nfor &x in xs {\nacc += x * scale;\n}\nacc\n}\n";
    let noisy = "pub fn f(\n    xs: &[f64], // the samples\n    scale: f64,\n) -> f64 {\n\
                 // running total\n    let mut acc = 0.0;\n    for &x in xs\n    {\n\
                 acc += x /* weight applied */ * scale;\n    }\n    acc\n}\n";
    assert_eq!(rules_of(dense), rules_of(noisy));
    assert_eq!(rules_of(dense), vec![RuleId::ReductionOrder]);
}
