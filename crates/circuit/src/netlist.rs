//! Combinational netlists as append-only DAGs.
//!
//! A [`Netlist`] is built by adding inputs and gates whose fan-ins must
//! already exist, so insertion order is a topological order by
//! construction — there is no way to express a combinational loop. This is
//! the substrate for the static-timing-analysis engine ([`crate::sta`]) and
//! the adder generators ([`crate::adder`]).

use serde::{Deserialize, Serialize};

use crate::gate::GateKind;

/// Handle to a gate inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GateId(pub(crate) usize);

impl GateId {
    /// Index into the netlist's gate array (also its topological position).
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// One instantiated gate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GateNode {
    kind: GateKind,
    fanin: Vec<GateId>,
}

impl GateNode {
    /// Cell type.
    #[must_use]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Fan-in gate handles.
    #[must_use]
    pub fn fanin(&self) -> &[GateId] {
        &self.fanin
    }
}

/// A combinational DAG netlist.
///
/// # Example
///
/// ```
/// use ntv_circuit::{GateKind, Netlist};
///
/// let mut n = Netlist::new("half-adder");
/// let a = n.add_input("a");
/// let b = n.add_input("b");
/// let sum = n.add_gate(GateKind::Xor2, &[a, b]);
/// let carry = n.add_gate(GateKind::And2, &[a, b]);
/// n.mark_output(sum, "sum");
/// n.mark_output(carry, "carry");
/// assert_eq!(n.gate_count(), 2);
/// assert_eq!(n.logic_depth(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    gates: Vec<GateNode>,
    input_names: Vec<(GateId, String)>,
    output_names: Vec<(GateId, String)>,
}

impl Netlist {
    /// Create an empty netlist.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            gates: Vec::new(),
            input_names: Vec::new(),
            output_names: Vec::new(),
        }
    }

    /// Netlist name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a primary input and return its handle.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        let id = GateId(self.gates.len());
        self.gates.push(GateNode {
            kind: GateKind::Input,
            fanin: Vec::new(),
        });
        self.input_names.push((id, name.into()));
        id
    }

    /// Add a gate of `kind` driven by `fanin` and return its handle.
    ///
    /// # Panics
    ///
    /// Panics if any fan-in handle does not exist yet (which also rules out
    /// combinational loops), or if the fan-in count does not match the
    /// cell's arity.
    pub fn add_gate(&mut self, kind: GateKind, fanin: &[GateId]) -> GateId {
        assert!(
            kind != GateKind::Input,
            "use add_input to create primary inputs"
        );
        for &f in fanin {
            assert!(
                f.0 < self.gates.len(),
                "fan-in {f:?} does not exist yet (netlists are append-only DAGs)"
            );
        }
        if let Some(arity) = kind.fanin_arity() {
            assert!(
                fanin.len() == arity,
                "{kind} expects {arity} inputs, got {}",
                fanin.len()
            );
        }
        let id = GateId(self.gates.len());
        self.gates.push(GateNode {
            kind,
            fanin: fanin.to_vec(),
        });
        id
    }

    /// Mark a gate as a primary output.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not exist.
    pub fn mark_output(&mut self, id: GateId, name: impl Into<String>) {
        assert!(id.0 < self.gates.len(), "output {id:?} does not exist");
        self.output_names.push((id, name.into()));
    }

    /// All gates in topological order (construction order).
    #[must_use]
    pub fn nodes(&self) -> &[GateNode] {
        &self.gates
    }

    /// Gate node by handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    #[must_use]
    pub fn node(&self, id: GateId) -> &GateNode {
        &self.gates[id.0]
    }

    /// Total nodes including primary inputs.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of logic gates (excluding primary inputs).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| g.kind != GateKind::Input)
            .count()
    }

    /// Primary inputs (handle, name).
    #[must_use]
    pub fn inputs(&self) -> &[(GateId, String)] {
        &self.input_names
    }

    /// Primary outputs (handle, name).
    #[must_use]
    pub fn outputs(&self) -> &[(GateId, String)] {
        &self.output_names
    }

    /// Maximum number of logic levels from any input to any node.
    #[must_use]
    pub fn logic_depth(&self) -> usize {
        let mut depth = vec![0usize; self.gates.len()];
        let mut max_depth = 0;
        for (i, gate) in self.gates.iter().enumerate() {
            if gate.kind == GateKind::Input {
                continue;
            }
            let d = gate.fanin.iter().map(|f| depth[f.0]).max().unwrap_or(0) + 1;
            depth[i] = d;
            max_depth = max_depth.max(d);
        }
        max_depth
    }

    /// Iterate gate handles in topological order.
    pub fn ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len()).map(GateId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level() -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateKind::Nand2, &[a, b]);
        let g2 = n.add_gate(GateKind::Inv, &[g1]);
        n.mark_output(g2, "y");
        n
    }

    #[test]
    fn counts_and_depth() {
        let n = two_level();
        assert_eq!(n.node_count(), 4);
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.logic_depth(), 2);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
    }

    #[test]
    fn construction_order_is_topological() {
        let n = two_level();
        for id in n.ids() {
            for &f in n.node(id).fanin() {
                assert!(f.index() < id.index());
            }
        }
    }

    #[test]
    fn inputs_have_depth_zero() {
        let mut n = Netlist::new("inputs-only");
        n.add_input("a");
        n.add_input("b");
        assert_eq!(n.logic_depth(), 0);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_rejected() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        // Fabricate a handle that doesn't exist.
        let bogus = GateId(99);
        let _ = n.add_gate(GateKind::Nand2, &[a, bogus]);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn wrong_arity_rejected() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let _ = n.add_gate(GateKind::Nand2, &[a]);
    }

    #[test]
    #[should_panic(expected = "use add_input")]
    fn cannot_add_input_via_add_gate() {
        let mut n = Netlist::new("bad");
        let _ = n.add_gate(GateKind::Input, &[]);
    }
}
