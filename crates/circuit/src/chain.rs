//! The chain of FO4 inverters — the paper's canonical test circuit.
//!
//! §3.2: *"a chain of 50 FO4 inverters is used to emulate a critical path of
//! the SIMD datapath because they are similar in terms of average delay and
//! variation at all voltages."* This module is the exact gate-level
//! Monte-Carlo engine behind Figs 1, 2 and 11: every sample draws a fresh
//! chip (systematic variation) and a fresh random variation for each of the
//! `N` inverters.

use ntv_device::{ChipSample, TechModel};
#[cfg(test)]
use ntv_mc::StreamRng;
use ntv_mc::{SampleStream, Summary};
use ntv_units::Volts;

/// Gate-level Monte-Carlo engine for an `N`-stage FO4 inverter chain.
///
/// # Example
///
/// ```
/// use ntv_circuit::chain::ChainMc;
/// use ntv_device::{TechModel, TechNode};
/// use ntv_mc::StreamRng;
/// use ntv_units::Volts;
///
/// let tech = TechModel::new(TechNode::Gp90);
/// let single = ChainMc::new(&tech, 1);
/// let chain = ChainMc::new(&tech, 50);
/// let mut rng = StreamRng::from_seed(3);
/// let s1 = single.summary(Volts(0.5), 400, &mut rng);
/// let s50 = chain.summary(Volts(0.5), 400, &mut rng);
/// // Uncorrelated per-gate variation averages out along the chain (Fig 1).
/// assert!(s50.three_sigma_over_mu() < 0.6 * s1.three_sigma_over_mu());
/// ```
#[derive(Debug, Clone)]
pub struct ChainMc<'a> {
    tech: &'a TechModel,
    length: usize,
}

impl<'a> ChainMc<'a> {
    /// A chain of `length` FO4 inverters in technology `tech`.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0`.
    #[must_use]
    pub fn new(tech: &'a TechModel, length: usize) -> Self {
        assert!(length > 0, "a chain needs at least one stage");
        Self { tech, length }
    }

    /// Number of stages.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// The technology model in use.
    #[must_use]
    pub fn tech(&self) -> &TechModel {
        self.tech
    }

    /// Variation-free chain delay (ps) at `vdd`.
    #[must_use]
    pub fn nominal_delay_ps(&self, vdd: Volts) -> f64 {
        self.length as f64 * self.tech.fo4_delay_ps(vdd)
    }

    /// Sample the chain delay (ps) on an already-drawn chip.
    ///
    /// SoA batch form: all per-gate random offsets are drawn first (same
    /// draw order as the old per-stage loop — delay evaluation consumes no
    /// randomness), the whole delay vector is evaluated with one
    /// [`TechModel::gate_delay_ps_batch`] call, and the chain sum keeps
    /// the stage order. Bit-identical to the draw-evaluate-accumulate
    /// loop it replaced (pinned by test).
    pub fn sample_on_chip_ps<R: SampleStream + ?Sized>(
        &self,
        vdd: Volts,
        chip: &ChipSample,
        rng: &mut R,
    ) -> f64 {
        let mut dvth = Vec::with_capacity(self.length);
        let mut ln_k = Vec::with_capacity(self.length);
        for _ in 0..self.length {
            let gate = self.tech.sample_gate(rng);
            dvth.push(gate.dvth);
            ln_k.push(gate.ln_k);
        }
        let mut delays = vec![0.0; self.length];
        self.tech
            .gate_delay_ps_batch(vdd, chip, &dvth, &ln_k, &mut delays);
        ntv_mc::reduce::sum_ordered(delays.iter().copied())
    }

    /// Sample the chain delay (ps), drawing a fresh chip (cross-chip
    /// Monte Carlo, as in Fig 1).
    pub fn sample_ps<R: SampleStream + ?Sized>(&self, vdd: Volts, rng: &mut R) -> f64 {
        let chip = self.tech.sample_chip(rng);
        self.sample_on_chip_ps(vdd, &chip, rng)
    }

    /// Draw `samples` cross-chip delays (ps).
    #[must_use]
    pub fn distribution_ps<R: SampleStream + ?Sized>(
        &self,
        vdd: Volts,
        samples: usize,
        rng: &mut R,
    ) -> Vec<f64> {
        (0..samples).map(|_| self.sample_ps(vdd, rng)).collect()
    }

    /// Summary statistics of `samples` cross-chip delays.
    #[must_use]
    pub fn summary<R: SampleStream + ?Sized>(
        &self,
        vdd: Volts,
        samples: usize,
        rng: &mut R,
    ) -> Summary {
        (0..samples).map(|_| self.sample_ps(vdd, rng)).collect()
    }

    /// The paper's variation metric 3σ/μ for this chain at `vdd`.
    #[must_use]
    pub fn three_sigma_over_mu<R: SampleStream + ?Sized>(
        &self,
        vdd: Volts,
        samples: usize,
        rng: &mut R,
    ) -> f64 {
        self.summary(vdd, samples, rng).three_sigma_over_mu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntv_device::TechNode;

    #[test]
    fn chain_delay_scales_linearly_with_length() {
        let tech = TechModel::new(TechNode::Gp45);
        let c10 = ChainMc::new(&tech, 10);
        let c40 = ChainMc::new(&tech, 40);
        assert!(
            (c40.nominal_delay_ps(Volts(0.6)) / c10.nominal_delay_ps(Volts(0.6)) - 4.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn mean_tracks_nominal_delay() {
        let tech = TechModel::new(TechNode::Gp90);
        let chain = ChainMc::new(&tech, 50);
        let mut rng = StreamRng::from_seed(21);
        let s = chain.summary(Volts(0.7), 2000, &mut rng);
        // The nonlinear Vth dependence introduces a small positive bias;
        // the mean must stay within a few percent of nominal.
        let nominal = chain.nominal_delay_ps(Volts(0.7));
        assert!(
            (s.mean() / nominal - 1.0).abs() < 0.05,
            "mean {} nominal {nominal}",
            s.mean()
        );
    }

    #[test]
    fn variation_shrinks_with_chain_length_at_fixed_voltage() {
        // Fig 11: 3 sigma/mu falls with N (with diminishing returns).
        let tech = TechModel::new(TechNode::Gp90);
        let mut rng = StreamRng::from_seed(5);
        let v = Volts(0.55);
        let s1 = ChainMc::new(&tech, 1).three_sigma_over_mu(v, 3000, &mut rng);
        let s10 = ChainMc::new(&tech, 10).three_sigma_over_mu(v, 3000, &mut rng);
        let s100 = ChainMc::new(&tech, 100).three_sigma_over_mu(v, 1500, &mut rng);
        assert!(s1 > s10, "{s1} vs {s10}");
        assert!(s10 > s100, "{s10} vs {s100}");
        // ...but not with the 1/sqrt(N) of a purely random model: the
        // systematic floor keeps s100 well above s1/10.
        assert!(s100 > s1 / 10.0);
    }

    #[test]
    fn variation_grows_as_voltage_drops() {
        let tech = TechModel::new(TechNode::PtmHp22);
        let chain = ChainMc::new(&tech, 50);
        let mut rng = StreamRng::from_seed(6);
        let hi = chain.three_sigma_over_mu(Volts(0.8), 2000, &mut rng);
        let lo = chain.three_sigma_over_mu(Volts(0.5), 2000, &mut rng);
        assert!(lo > 1.5 * hi, "0.5V: {lo}, 0.8V: {hi}");
    }

    #[test]
    fn distribution_is_right_skewed_at_low_voltage() {
        // Fig 1a histograms at 0.5 V have a long right tail.
        let tech = TechModel::new(TechNode::Gp90);
        let chain = ChainMc::new(&tech, 1);
        let mut rng = StreamRng::from_seed(9);
        let s = chain.summary(Volts(0.5), 4000, &mut rng);
        assert!(s.skewness() > 0.2, "skewness {}", s.skewness());
    }

    #[test]
    fn deterministic_given_seed() {
        let tech = TechModel::new(TechNode::Gp90);
        let chain = ChainMc::new(&tech, 5);
        let a = chain.distribution_ps(Volts(0.6), 10, &mut StreamRng::from_seed(1));
        let b = chain.distribution_ps(Volts(0.6), 10, &mut StreamRng::from_seed(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_length_rejected() {
        let tech = TechModel::new(TechNode::Gp90);
        let _ = ChainMc::new(&tech, 0);
    }

    /// The SoA rewrite (draw all gates, batch-evaluate, ordered sum) must
    /// reproduce the legacy draw-evaluate-accumulate loop bit for bit.
    #[test]
    fn soa_sampling_matches_legacy_interleaved_loop_bitwise() {
        let tech = TechModel::new(TechNode::Gp45);
        let chain = ChainMc::new(&tech, 50);
        let vdd = Volts(0.55);
        let mut rng_soa = StreamRng::from_seed(77);
        let mut rng_legacy = StreamRng::from_seed(77);
        for _ in 0..20 {
            let batch = chain.sample_ps(vdd, &mut rng_soa);
            // Legacy formulation: draw chip, then per stage draw a gate and
            // immediately evaluate its delay, accumulating left to right.
            let chip = tech.sample_chip(&mut rng_legacy);
            let legacy = ntv_mc::reduce::sum_ordered((0..chain.length()).map(|_| {
                let gate = tech.sample_gate(&mut rng_legacy);
                tech.gate_delay_ps(vdd, &chip, &gate)
            }));
            assert_eq!(batch.to_bits(), legacy.to_bits());
        }
    }
}
