//! Netlist reporting: statistics and Graphviz export.
//!
//! Small EDA-tool conveniences over [`crate::netlist::Netlist`]: a cell
//! census with depth/width metrics, and a DOT emitter for inspecting
//! small netlists visually (`dot -Tsvg`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// Cell census and shape metrics for a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistStats {
    /// Gate count per cell type (excluding inputs).
    pub cell_census: BTreeMap<String, usize>,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Logic gates.
    pub gates: usize,
    /// Maximum logic depth.
    pub depth: usize,
    /// Total fan-in edges.
    pub edges: usize,
}

impl NetlistStats {
    /// Compute statistics for a netlist.
    #[must_use]
    pub fn of(netlist: &Netlist) -> Self {
        let mut cell_census: BTreeMap<String, usize> = BTreeMap::new();
        let mut edges = 0;
        for node in netlist.nodes() {
            if node.kind() != GateKind::Input {
                *cell_census.entry(node.kind().to_string()).or_insert(0) += 1;
            }
            edges += node.fanin().len();
        }
        Self {
            cell_census,
            inputs: netlist.inputs().len(),
            outputs: netlist.outputs().len(),
            gates: netlist.gate_count(),
            depth: netlist.logic_depth(),
            edges,
        }
    }
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} gates ({} inputs, {} outputs), depth {}, {} edges",
            self.gates, self.inputs, self.outputs, self.depth, self.edges
        )?;
        for (cell, count) in &self.cell_census {
            writeln!(f, "  {cell:<6} x{count}")?;
        }
        Ok(())
    }
}

/// Emit the netlist as a Graphviz `digraph`, optionally highlighting a
/// path (e.g. the STA critical path) in red.
#[must_use]
pub fn to_dot(netlist: &Netlist, highlight: &[crate::netlist::GateId]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", netlist.name());
    let _ = writeln!(out, "  rankdir=LR;");
    let on_path = |id: crate::netlist::GateId| highlight.contains(&id);
    for id in netlist.ids() {
        let node = netlist.node(id);
        let shape = if node.kind() == GateKind::Input {
            "circle"
        } else {
            "box"
        };
        let color = if on_path(id) {
            ", color=red, penwidth=2"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape={shape}{color}];",
            id.index(),
            node.kind()
        );
    }
    for id in netlist.ids() {
        for &src in netlist.node(id).fanin() {
            let color = if on_path(id) && on_path(src) {
                " [color=red, penwidth=2]"
            } else {
                ""
            };
            let _ = writeln!(out, "  n{} -> n{}{color};", src.index(), id.index());
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::kogge_stone;
    use crate::sta;
    use ntv_device::{TechModel, TechNode};
    use ntv_units::Volts;

    #[test]
    fn stats_census_adds_up() {
        let ks = kogge_stone(16);
        let stats = NetlistStats::of(&ks);
        let census_total: usize = stats.cell_census.values().sum();
        assert_eq!(census_total, stats.gates);
        assert_eq!(stats.inputs, 32);
        assert_eq!(stats.outputs, 17);
        assert_eq!(stats.depth, 6);
        assert!(stats.cell_census.contains_key("XOR2"));
        assert!(stats.cell_census.contains_key("AOI21"));
    }

    #[test]
    fn display_lists_cells() {
        let text = NetlistStats::of(&kogge_stone(8)).to_string();
        assert!(text.contains("gates"));
        assert!(text.contains("XOR2"));
    }

    #[test]
    fn dot_output_is_well_formed() {
        let ks = kogge_stone(4);
        let dot = to_dot(&ks, &[]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        // One node line per netlist node, one edge line per fan-in edge.
        let node_lines = dot.lines().filter(|l| l.contains("[label=")).count();
        assert_eq!(node_lines, ks.node_count());
        let edge_lines = dot.lines().filter(|l| l.contains(" -> ")).count();
        let expected_edges: usize = ks.nodes().iter().map(|n| n.fanin().len()).sum();
        assert_eq!(edge_lines, expected_edges);
    }

    #[test]
    fn critical_path_highlighting_marks_red() {
        let tech = TechModel::new(TechNode::Gp90);
        let ks = kogge_stone(8);
        let delays = sta::nominal_delays(&ks, &tech, Volts(1.0));
        let result = sta::analyze(&ks, &delays);
        let dot = to_dot(&ks, &result.critical_path);
        assert!(dot.contains("color=red"));
        // At least one red edge along the path.
        assert!(dot.lines().any(|l| l.contains(" -> ") && l.contains("red")));
    }
}
