//! Closed-form critical-path delay model.
//!
//! The architecture study needs the delay distribution of **12 800+
//! critical paths per chip sample** (128 lanes × 100 paths) over 10 000
//! chips. Simulating every one of the 50 gates per path is ~10⁹ device
//! evaluations per experiment; this module replaces the inner loop with a
//! two-moment closed form:
//!
//! 1. **Conditional gate moments.** Given the chip's systematic variation,
//!    a gate's delay is `D₀(Vth0 + ΔVth_sys + δv) · exp(−ln_k_sys − ε)` with
//!    `δv ~ N(0, σ_vr)` and `ε ~ N(0, σ_kr)` independent. The ε factor has
//!    exact log-normal moments; the δv expectation is evaluated with a
//!    16-point Gauss–Hermite rule. Cost: 16 delay-model calls per chip.
//! 2. **CLT over the chain.** A critical path is the sum of `L = 50`
//!    i.i.d. (conditionally) gate delays, so it is asymptotically
//!    `Normal(L·μ_g, L·σ_g²)`. At `L = 50` the normal approximation is
//!    excellent (validated against the exact gate-level engine in this
//!    module's tests and in `tests/engines_agree.rs`).
//!
//! Path delays then live in a conditional-normal world where lane maxima
//! can be sampled in O(1) via [`ntv_mc::order::sample_max_normal`].

use ntv_device::{ChipSample, GateSample, TechModel};
use ntv_mc::GaussHermite;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

/// Conditional mean/σ of a critical-path delay given one chip's systematic
/// variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathMoments {
    /// Conditional mean path delay (ps).
    pub mean_ps: f64,
    /// Conditional standard deviation (ps).
    pub std_ps: f64,
}

/// Closed-form conditional path-delay model for a chain-shaped critical
/// path of `length` gates.
///
/// # Example
///
/// ```
/// use ntv_circuit::path_model::PathModel;
/// use ntv_device::{ChipSample, TechModel, TechNode};
/// use ntv_units::Volts;
///
/// let tech = TechModel::new(TechNode::Gp90);
/// let model = PathModel::new(&tech, 50);
/// let m = model.conditional_moments(Volts(0.55), &ChipSample::nominal());
/// // Mean is close to 50 nominal FO4 delays; variation adds a small bias.
/// let nominal = 50.0 * tech.fo4_delay_ps(Volts(0.55));
/// assert!((m.mean_ps / nominal - 1.0).abs() < 0.1);
/// assert!(m.std_ps > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PathModel<'a> {
    tech: &'a TechModel,
    length: usize,
    quadrature: GaussHermite,
}

impl<'a> PathModel<'a> {
    /// Default Gauss–Hermite order; 16 points integrate the delay-vs-Vth
    /// nonlinearity to well below Monte-Carlo noise.
    pub const DEFAULT_QUADRATURE_ORDER: usize = 16;

    /// Model for a path of `length` FO4 stages.
    ///
    /// # Panics
    ///
    /// Panics if `length == 0`.
    #[must_use]
    pub fn new(tech: &'a TechModel, length: usize) -> Self {
        assert!(length > 0, "a path needs at least one stage");
        Self {
            tech,
            length,
            quadrature: GaussHermite::new(Self::DEFAULT_QUADRATURE_ORDER),
        }
    }

    /// Number of stages.
    #[must_use]
    pub fn length(&self) -> usize {
        self.length
    }

    /// The technology model in use.
    #[must_use]
    pub fn tech(&self) -> &TechModel {
        self.tech
    }

    /// Conditional mean and σ of a *single gate's* delay (ps) given `chip`.
    ///
    /// Runs as the batch split of the 16-point quadrature — abscissas,
    /// one [`TechModel::gate_delay_ps_dvth_batch`] call over the whole
    /// ΔVth vector, ordered fold — bit-identical to the closure-driven
    /// `moments_normal` path it replaced (pinned by test).
    #[must_use]
    pub fn conditional_gate_moments(&self, vdd: Volts, chip: &ChipSample) -> (f64, f64) {
        let p = self.tech.params();
        // Quadrature over the random Vth deviation with kappa factored out.
        let n = self.quadrature.order();
        let mut pts = vec![0.0; n];
        self.quadrature
            .abscissas_into(0.0, p.sigma_vth_random.get(), &mut pts);
        let dvs: Vec<Volts> = pts.iter().map(|&dv| Volts(dv)).collect();
        let mut delays = vec![0.0; n];
        self.tech
            .gate_delay_ps_dvth_batch(vdd, chip, &dvs, 0.0, &mut delays);
        let (q1, qvar) = self.quadrature.moments_from_values(&delays);
        let q2 = qvar + q1 * q1; // E[D0^2]
                                 // Log-normal moments of exp(-eps), eps ~ N(0, sigma_kr).
        let s2 = p.sigma_k_random * p.sigma_k_random;
        let e_k = (0.5 * s2).exp(); // E[exp(-eps)]
        let e_k2 = (2.0 * s2).exp(); // E[exp(-2 eps)]
        let mean = q1 * e_k;
        let var = (q2 * e_k2 - mean * mean).max(0.0);
        (mean, var.sqrt())
    }

    /// [`conditional_gate_moments`](Self::conditional_gate_moments) over a
    /// whole voltage grid in one pass, loop-interchanged: each quadrature
    /// node evaluates its delay across *all* voltages with the device
    /// voltage-grid kernel, and every voltage's moment accumulators fold
    /// nodes in the scalar order — so each element of the result is
    /// bit-identical to the scalar call at that voltage (pinned by test).
    ///
    /// # Panics
    ///
    /// Panics if any voltage is outside the supported range.
    #[must_use]
    pub fn conditional_gate_moments_grid(
        &self,
        vdds: &[Volts],
        chip: &ChipSample,
    ) -> Vec<(f64, f64)> {
        let p = self.tech.params();
        let nv = vdds.len();
        let n = self.quadrature.order();
        let mut pts = vec![0.0; n];
        self.quadrature
            .abscissas_into(0.0, p.sigma_vth_random.get(), &mut pts);

        // Interchanged quadrature: node-major evaluation, voltage-major
        // accumulation in node order (the scalar fold order per voltage).
        const INV_SQRT_PI: f64 = 0.564_189_583_547_756_3;
        let mut m1 = vec![0.0; nv];
        let mut m2 = vec![0.0; nv];
        let mut row = vec![0.0; nv];
        for (&dv, &w) in pts.iter().zip(self.quadrature.weights()) {
            let gate = GateSample {
                dvth: Volts(dv),
                ln_k: 0.0,
            };
            self.tech.gate_delay_ps_grid(vdds, chip, &gate, &mut row);
            ntv_mc::reduce::sum2_axpy_ordered(&mut m1, &mut m2, w, &row);
        }

        // Log-normal moments of exp(-eps) are voltage-invariant.
        let s2 = p.sigma_k_random * p.sigma_k_random;
        let e_k = (0.5 * s2).exp();
        let e_k2 = (2.0 * s2).exp();
        m1.iter()
            .zip(&m2)
            .map(|(&s1, &s2v)| {
                let q1 = s1 * INV_SQRT_PI;
                let q2m = s2v * INV_SQRT_PI;
                let qvar = (q2m - q1 * q1).max(0.0);
                let q2 = qvar + q1 * q1;
                let mean = q1 * e_k;
                let var = (q2 * e_k2 - mean * mean).max(0.0);
                (mean, var.sqrt())
            })
            .collect()
    }

    /// Conditional path moments given `chip`: `Normal(L·μ_g, L·σ_g²)`.
    #[must_use]
    pub fn conditional_moments(&self, vdd: Volts, chip: &ChipSample) -> PathMoments {
        let (mu, sigma) = self.conditional_gate_moments(vdd, chip);
        PathMoments {
            mean_ps: self.length as f64 * mu,
            std_ps: (self.length as f64).sqrt() * sigma,
        }
    }

    /// [`conditional_moments`](Self::conditional_moments) over a voltage
    /// grid: element `i` is bit-identical to the scalar call at `vdds[i]`.
    ///
    /// # Panics
    ///
    /// Panics if any voltage is outside the supported range.
    #[must_use]
    pub fn conditional_moments_grid(&self, vdds: &[Volts], chip: &ChipSample) -> Vec<PathMoments> {
        self.conditional_gate_moments_grid(vdds, chip)
            .into_iter()
            .map(|(mu, sigma)| PathMoments {
                mean_ps: self.length as f64 * mu,
                std_ps: (self.length as f64).sqrt() * sigma,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::ChainMc;
    use ntv_device::TechNode;
    use ntv_mc::{StreamRng, Summary};

    #[test]
    fn gate_moments_match_direct_monte_carlo() {
        let tech = TechModel::new(TechNode::Gp90);
        let model = PathModel::new(&tech, 1);
        let mut rng = StreamRng::from_seed(17);
        let chip = tech.sample_chip(&mut rng);
        for vdd in [Volts(0.5), Volts(0.7), Volts(1.0)] {
            let (mu, sigma) = model.conditional_gate_moments(vdd, &chip);
            let mc: Summary = (0..100_000)
                .map(|_| {
                    let g = tech.sample_gate(&mut rng);
                    tech.gate_delay_ps(vdd, &chip, &g)
                })
                .collect();
            assert!(
                (mc.mean() / mu - 1.0).abs() < 0.01,
                "{vdd}: MC mean {} vs quadrature {mu}",
                mc.mean()
            );
            assert!(
                (mc.std_dev() / sigma - 1.0).abs() < 0.03,
                "{vdd}: MC sigma {} vs quadrature {sigma}",
                mc.std_dev()
            );
        }
    }

    #[test]
    fn path_distribution_matches_gate_level_chain() {
        // Compare full cross-chip distributions: closed form (sample chip,
        // then normal) vs exact gate-level chain.
        let tech = TechModel::new(TechNode::Gp45);
        let model = PathModel::new(&tech, 50);
        let chain = ChainMc::new(&tech, 50);
        let vdd = Volts(0.55);
        let n = 4000;

        let mut rng_fast = StreamRng::from_seed(100);
        let fast: Summary = (0..n)
            .map(|_| {
                let chip = tech.sample_chip(&mut rng_fast);
                let m = model.conditional_moments(vdd, &chip);
                rng_fast.normal(m.mean_ps, m.std_ps)
            })
            .collect();

        let mut rng_slow = StreamRng::from_seed(200);
        let slow = chain.summary(vdd, n, &mut rng_slow);

        assert!(
            (fast.mean() / slow.mean() - 1.0).abs() < 0.01,
            "mean: fast {} slow {}",
            fast.mean(),
            slow.mean()
        );
        assert!(
            (fast.std_dev() / slow.std_dev() - 1.0).abs() < 0.08,
            "sigma: fast {} slow {}",
            fast.std_dev(),
            slow.std_dev()
        );
    }

    #[test]
    fn systematically_slow_chip_has_larger_mean() {
        let tech = TechModel::new(TechNode::PtmHp22);
        let model = PathModel::new(&tech, 50);
        let nominal = model.conditional_moments(Volts(0.55), &ChipSample::nominal());
        let slow_chip = ChipSample {
            dvth: 2.0 * tech.params().sigma_vth_systematic,
            ln_k: -2.0 * tech.params().sigma_k_systematic,
        };
        let slow = model.conditional_moments(Volts(0.55), &slow_chip);
        assert!(slow.mean_ps > nominal.mean_ps);
    }

    #[test]
    fn sigma_shrinks_relative_to_mean_with_length() {
        let tech = TechModel::new(TechNode::Gp90);
        let short =
            PathModel::new(&tech, 10).conditional_moments(Volts(0.55), &ChipSample::nominal());
        let long =
            PathModel::new(&tech, 100).conditional_moments(Volts(0.55), &ChipSample::nominal());
        assert!(long.std_ps / long.mean_ps < short.std_ps / short.mean_ps);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_length_rejected() {
        let tech = TechModel::new(TechNode::Gp90);
        let _ = PathModel::new(&tech, 0);
    }

    /// The batch split must reproduce the closure-driven quadrature path
    /// (the pre-batch implementation) bit for bit.
    #[test]
    fn batch_gate_moments_match_legacy_closure_quadrature_bitwise() {
        for node in [TechNode::Gp90, TechNode::PtmHp22] {
            let tech = TechModel::new(node);
            let model = PathModel::new(&tech, 50);
            let mut rng = StreamRng::from_seed(23);
            for _ in 0..3 {
                let chip = tech.sample_chip(&mut rng);
                for vdd in [Volts(0.45), Volts(0.6), Volts(0.9)] {
                    let (mu, sigma) = model.conditional_gate_moments(vdd, &chip);
                    // Legacy formulation: closure-driven moments_normal.
                    let p = tech.params();
                    let gh = GaussHermite::new(PathModel::DEFAULT_QUADRATURE_ORDER);
                    let (q1, qvar) = gh.moments_normal(0.0, p.sigma_vth_random.get(), |dv| {
                        tech.gate_delay_ps_at(vdd, &chip, Volts(dv), 0.0)
                    });
                    let q2 = qvar + q1 * q1;
                    let s2 = p.sigma_k_random * p.sigma_k_random;
                    let e_k = (0.5 * s2).exp();
                    let e_k2 = (2.0 * s2).exp();
                    let mean = q1 * e_k;
                    let var = (q2 * e_k2 - mean * mean).max(0.0);
                    assert_eq!(mu.to_bits(), mean.to_bits(), "{node} {vdd}");
                    assert_eq!(sigma.to_bits(), var.sqrt().to_bits(), "{node} {vdd}");
                }
            }
        }
    }

    /// Each element of the voltage-grid interchange must carry the same
    /// bits as the scalar call at that voltage.
    #[test]
    fn grid_moments_match_scalar_per_voltage_bitwise() {
        let tech = TechModel::new(TechNode::Gp45);
        let model = PathModel::new(&tech, 50);
        let mut rng = StreamRng::from_seed(31);
        let chip = tech.sample_chip(&mut rng);
        for n in [0usize, 1, 7, 24] {
            let vdds: Vec<Volts> = (0..n)
                .map(|i| Volts(0.42 + 0.02 * f64::from(i as i32)))
                .collect();
            let gate = model.conditional_gate_moments_grid(&vdds, &chip);
            let path = model.conditional_moments_grid(&vdds, &chip);
            assert_eq!(gate.len(), n);
            assert_eq!(path.len(), n);
            for (i, &v) in vdds.iter().enumerate() {
                let (mu, sigma) = model.conditional_gate_moments(v, &chip);
                assert_eq!(gate[i].0.to_bits(), mu.to_bits(), "n={n} i={i}");
                assert_eq!(gate[i].1.to_bits(), sigma.to_bits(), "n={n} i={i}");
                let m = model.conditional_moments(v, &chip);
                assert_eq!(path[i].mean_ps.to_bits(), m.mean_ps.to_bits());
                assert_eq!(path[i].std_ps.to_bits(), m.std_ps.to_bits());
            }
        }
    }
}
