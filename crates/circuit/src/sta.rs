//! Static timing analysis over a netlist with sampled delays.
//!
//! One Monte-Carlo trial of a real circuit works in three steps:
//!
//! 1. draw a chip ([`ntv_device::TechModel::sample_chip`]),
//! 2. sample one delay per gate instance ([`sample_delays`]),
//! 3. propagate arrival times through the DAG ([`analyze`]) to get the
//!    critical-path delay.
//!
//! Unlike the plain inverter chain, a prefix-adder netlist has massive
//! reconvergent fan-out, so its critical-path statistics combine the
//! chain-averaging effect with a max-over-paths effect — this is exactly
//! the structure the paper's architecture model abstracts (100 critical
//! paths per SIMD lane).

use ntv_device::{ChipSample, TechModel};
use ntv_mc::SampleStream;
use ntv_units::Volts;

use crate::gate::GateKind;
use crate::netlist::{GateId, Netlist};

/// Result of one timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct StaResult {
    /// Arrival time (ps) at each node, indexed by [`GateId::index`].
    pub arrival_ps: Vec<f64>,
    /// Largest arrival time over all nodes.
    pub critical_delay_ps: f64,
    /// The critical path, from a primary input to the latest node.
    pub critical_path: Vec<GateId>,
}

/// Sample one delay (ps) per gate instance on the given chip.
///
/// The returned vector is indexed by [`GateId::index`]; primary inputs get
/// delay 0.
#[must_use]
pub fn sample_delays<R: SampleStream + ?Sized>(
    netlist: &Netlist,
    tech: &TechModel,
    vdd: Volts,
    chip: &ChipSample,
    rng: &mut R,
) -> Vec<f64> {
    netlist
        .nodes()
        .iter()
        .map(|g| g.kind().sample_delay_ps(tech, vdd, chip, rng))
        .collect()
}

/// Variation-free delays (ps) per gate instance.
#[must_use]
pub fn nominal_delays(netlist: &Netlist, tech: &TechModel, vdd: Volts) -> Vec<f64> {
    let fo4 = tech.fo4_delay_ps(vdd);
    netlist
        .nodes()
        .iter()
        .map(|g| g.kind().delay_factor() * fo4)
        .collect()
}

/// Propagate arrival times and extract the critical path.
///
/// # Panics
///
/// Panics if `delays.len()` does not match the netlist's node count, or if
/// the netlist is empty.
#[must_use]
pub fn analyze(netlist: &Netlist, delays: &[f64]) -> StaResult {
    assert_eq!(
        delays.len(),
        netlist.node_count(),
        "need exactly one delay per netlist node"
    );
    assert!(netlist.node_count() > 0, "cannot analyze an empty netlist");

    let n = netlist.node_count();
    let mut arrival = vec![0.0_f64; n];
    let mut critical_fanin: Vec<Option<GateId>> = vec![None; n];

    for id in netlist.ids() {
        let gate = netlist.node(id);
        if gate.kind() == GateKind::Input {
            arrival[id.index()] = 0.0;
            continue;
        }
        let (worst_in, worst_arrival) = gate
            .fanin()
            .iter()
            .map(|&f| (f, arrival[f.index()]))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            // ntv:allow(panic-path): every GateKind constructor wires at least one fan-in
            .expect("logic gates have at least one fan-in");
        arrival[id.index()] = worst_arrival + delays[id.index()];
        critical_fanin[id.index()] = Some(worst_in);
    }

    let (end, &critical_delay_ps) = arrival
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        // ntv:allow(panic-path): arrival holds one slot per gate and netlists have ≥1 gate
        .expect("non-empty netlist");

    let mut path = Vec::new();
    let mut cursor = Some(GateId(end));
    while let Some(id) = cursor {
        path.push(id);
        cursor = critical_fanin[id.index()];
    }
    path.reverse();

    StaResult {
        arrival_ps: arrival,
        critical_delay_ps,
        critical_path: path,
    }
}

/// Monte-Carlo critical-path delays (ps) for a netlist: each sample draws a
/// fresh chip and fresh per-gate delays.
#[must_use]
pub fn mc_critical_delays<R: SampleStream + ?Sized>(
    netlist: &Netlist,
    tech: &TechModel,
    vdd: Volts,
    samples: usize,
    rng: &mut R,
) -> Vec<f64> {
    (0..samples)
        .map(|_| {
            let chip = tech.sample_chip(rng);
            let delays = sample_delays(netlist, tech, vdd, &chip, rng);
            analyze(netlist, &delays).critical_delay_ps
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntv_device::TechNode;
    use ntv_mc::StreamRng;

    fn chain_netlist(len: usize) -> Netlist {
        let mut n = Netlist::new("chain");
        let mut prev = n.add_input("in");
        for _ in 0..len {
            prev = n.add_gate(GateKind::Inv, &[prev]);
        }
        n.mark_output(prev, "out");
        n
    }

    #[test]
    fn chain_arrival_is_sum_of_delays() {
        let n = chain_netlist(4);
        let delays = vec![0.0, 1.0, 2.0, 3.0, 4.0];
        let r = analyze(&n, &delays);
        assert_eq!(r.critical_delay_ps, 10.0);
        assert_eq!(r.critical_path.len(), 5); // input + 4 inverters
    }

    #[test]
    fn diamond_takes_slower_branch() {
        let mut n = Netlist::new("diamond");
        let a = n.add_input("a");
        let fast = n.add_gate(GateKind::Inv, &[a]);
        let slow = n.add_gate(GateKind::Inv, &[a]);
        let join = n.add_gate(GateKind::Nand2, &[fast, slow]);
        n.mark_output(join, "y");
        let delays = vec![0.0, 1.0, 5.0, 2.0];
        let r = analyze(&n, &delays);
        assert_eq!(r.critical_delay_ps, 7.0);
        // Path must run through the slow branch.
        assert!(r.critical_path.contains(&n.ids().nth(2).unwrap()));
    }

    #[test]
    fn nominal_sta_matches_chain_formula() {
        let tech = TechModel::new(TechNode::Gp90);
        let n = chain_netlist(50);
        let delays = nominal_delays(&n, &tech, Volts(0.6));
        let r = analyze(&n, &delays);
        let expect = 50.0 * tech.fo4_delay_ps(Volts(0.6));
        assert!((r.critical_delay_ps - expect).abs() < 1e-9);
    }

    #[test]
    fn mc_critical_delay_is_at_least_nominal_shaped() {
        let tech = TechModel::new(TechNode::Gp90);
        let n = chain_netlist(20);
        let mut rng = StreamRng::from_seed(4);
        let samples = mc_critical_delays(&n, &tech, Volts(0.6), 200, &mut rng);
        assert_eq!(samples.len(), 200);
        assert!(samples.iter().all(|&d| d > 0.0));
        let nominal = 20.0 * tech.fo4_delay_ps(Volts(0.6));
        let mean = samples.iter().sum::<f64>() / 200.0;
        assert!((mean / nominal - 1.0).abs() < 0.1);
    }

    #[test]
    fn critical_path_is_connected() {
        let tech = TechModel::new(TechNode::Gp45);
        let n = crate::adder::kogge_stone(16);
        let mut rng = StreamRng::from_seed(77);
        let chip = tech.sample_chip(&mut rng);
        let delays = sample_delays(&n, &tech, Volts(0.6), &chip, &mut rng);
        let r = analyze(&n, &delays);
        for w in r.critical_path.windows(2) {
            assert!(n.node(w[1]).fanin().contains(&w[0]));
        }
        // Path starts at a primary input.
        assert_eq!(n.node(r.critical_path[0]).kind(), GateKind::Input);
    }

    #[test]
    #[should_panic(expected = "one delay per netlist node")]
    fn wrong_delay_count_rejected() {
        let n = chain_netlist(2);
        let _ = analyze(&n, &[0.0, 1.0]);
    }
}
