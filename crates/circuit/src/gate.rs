//! A small standard-cell library.
//!
//! Gate delays are expressed as **logical-effort factors** relative to the
//! FO4 inverter delay of the active technology model: a NAND2 driving a
//! similar load is ≈1.25× slower than an inverter, a NOR2 ≈1.5×, and so
//! on. This keeps all voltage and variation physics in `ntv-device` while
//! letting netlists mix cell types.

use ntv_device::{ChipSample, GateSample, TechModel};
use ntv_mc::SampleStream;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

/// Combinational cell types available to netlists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Primary input / source node (zero delay).
    Input,
    /// Inverter (the FO4 reference cell, factor 1.0).
    Inv,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND (NAND + INV).
    And2,
    /// 2-input OR (NOR + INV).
    Or2,
    /// 2-input XOR.
    Xor2,
    /// AND-OR-invert 21 cell.
    Aoi21,
    /// Buffer (two inverters).
    Buf,
}

impl GateKind {
    /// Logical-effort delay factor relative to an FO4 inverter.
    ///
    /// Classical logical-effort values for equal output load (Sutherland &
    /// Sproull): NAND2 g=4/3, NOR2 g=5/3, XOR2 ≈ 2 stages.
    #[must_use]
    pub fn delay_factor(self) -> f64 {
        match self {
            GateKind::Input => 0.0,
            GateKind::Inv => 1.0,
            GateKind::Nand2 => 1.25,
            GateKind::Nor2 => 1.5,
            GateKind::And2 => 2.1,
            GateKind::Or2 => 2.3,
            GateKind::Xor2 => 2.2,
            GateKind::Aoi21 => 1.6,
            GateKind::Buf => 2.0,
        }
    }

    /// Number of logic inputs the cell expects (`None` for variadic cells).
    #[must_use]
    pub fn fanin_arity(self) -> Option<usize> {
        match self {
            GateKind::Input => Some(0),
            GateKind::Inv | GateKind::Buf => Some(1),
            GateKind::Nand2 | GateKind::Nor2 | GateKind::And2 | GateKind::Or2 | GateKind::Xor2 => {
                Some(2)
            }
            GateKind::Aoi21 => Some(3),
        }
    }

    /// Sample this cell's delay (ps) on a given chip.
    ///
    /// Inputs are delay-free sources; every other cell scales a freshly
    /// varied FO4 delay by its logical-effort factor.
    pub fn sample_delay_ps<R: SampleStream + ?Sized>(
        self,
        tech: &TechModel,
        vdd: Volts,
        chip: &ChipSample,
        rng: &mut R,
    ) -> f64 {
        if self == GateKind::Input {
            return 0.0;
        }
        let gate: GateSample = tech.sample_gate(rng);
        self.delay_factor() * tech.gate_delay_ps(vdd, chip, &gate)
    }
}

impl std::fmt::Display for GateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            GateKind::Inv => "INV",
            GateKind::Nand2 => "NAND2",
            GateKind::Nor2 => "NOR2",
            GateKind::And2 => "AND2",
            GateKind::Or2 => "OR2",
            GateKind::Xor2 => "XOR2",
            GateKind::Aoi21 => "AOI21",
            GateKind::Buf => "BUF",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntv_device::TechNode;
    use ntv_mc::StreamRng;

    #[test]
    fn inverter_is_the_reference() {
        assert_eq!(GateKind::Inv.delay_factor(), 1.0);
        assert_eq!(GateKind::Input.delay_factor(), 0.0);
    }

    #[test]
    fn complex_gates_are_slower_than_inverter() {
        for kind in [
            GateKind::Nand2,
            GateKind::Nor2,
            GateKind::Xor2,
            GateKind::Aoi21,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Buf,
        ] {
            assert!(kind.delay_factor() > 1.0, "{kind}");
        }
    }

    #[test]
    fn sampled_delay_tracks_factor() {
        let tech = TechModel::new(TechNode::Gp90);
        let chip = ChipSample::nominal();
        let mut rng = StreamRng::from_seed(2);
        let mut inv = 0.0;
        let mut nand = 0.0;
        for _ in 0..2000 {
            inv += GateKind::Inv.sample_delay_ps(&tech, Volts(0.7), &chip, &mut rng);
            nand += GateKind::Nand2.sample_delay_ps(&tech, Volts(0.7), &chip, &mut rng);
        }
        let ratio = nand / inv;
        assert!((ratio - 1.25).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn input_sampling_is_free_and_consumes_no_randomness() {
        let tech = TechModel::new(TechNode::Gp45);
        let chip = ChipSample::nominal();
        let mut a = StreamRng::from_seed(9);
        let mut b = StreamRng::from_seed(9);
        assert_eq!(
            GateKind::Input.sample_delay_ps(&tech, Volts(0.6), &chip, &mut a),
            0.0
        );
        // `a` should still be in lockstep with `b`.
        assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
    }

    #[test]
    fn arity_is_consistent() {
        assert_eq!(GateKind::Inv.fanin_arity(), Some(1));
        assert_eq!(GateKind::Nand2.fanin_arity(), Some(2));
        assert_eq!(GateKind::Aoi21.fanin_arity(), Some(3));
        assert_eq!(GateKind::Input.fanin_arity(), Some(0));
    }
}
