#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Tests assert exact golden values; strict float equality is the point there.
#![cfg_attr(test, allow(clippy::float_cmp))]

//! Gate- and circuit-level delay modelling under process variation.
//!
//! This crate sits between the device models of [`ntv_device`] and the
//! architecture-level analysis of `ntv-core`. It provides:
//!
//! * [`gate`] — a small standard-cell library with logical-effort delay
//!   factors relative to an FO4 inverter,
//! * [`chain`] — the paper's canonical circuit: a chain of `N` FO4
//!   inverters, with an exact gate-level Monte-Carlo engine (Fig 1, Fig 2,
//!   Fig 11),
//! * [`netlist`] — a combinational DAG netlist builder,
//! * [`sta`] — static timing analysis (arrival times, critical path) over a
//!   netlist with per-instance sampled delays,
//! * [`adder`] — 64-bit Kogge–Stone and ripple-carry adder netlists (the
//!   validation circuit cited by the paper: ≈8.4 % delay variation at
//!   0.5 V for a 64-bit Kogge–Stone adder),
//! * [`multiplier`] — a carry-save array multiplier (the FU's deepest
//!   path),
//! * [`report`] — netlist statistics and Graphviz export,
//! * [`path_model`] — the fast closed-form critical-path model
//!   (Gauss–Hermite conditional gate moments + CLT over the chain) that the
//!   architecture engine uses, cross-validated against the gate-level
//!   engine.
//!
//! # Example
//!
//! ```
//! use ntv_circuit::chain::ChainMc;
//! use ntv_device::{TechModel, TechNode};
//! use ntv_mc::StreamRng;
//! use ntv_units::Volts;
//!
//! let tech = TechModel::new(TechNode::Gp90);
//! let chain = ChainMc::new(&tech, 50);
//! let mut rng = StreamRng::from_seed(7);
//! let summary = chain.summary(Volts(0.5), 500, &mut rng);
//! // Chain-of-50 delay variation at 0.5 V is ≈9.4% in the paper (Fig 1b).
//! assert!(summary.three_sigma_over_mu() > 0.05);
//! assert!(summary.three_sigma_over_mu() < 0.16);
//! ```

pub mod adder;
pub mod chain;
pub mod gate;
pub mod multiplier;
pub mod netlist;
pub mod path_model;
pub mod report;
pub mod sta;

pub use chain::ChainMc;
pub use gate::GateKind;
pub use netlist::{GateId, Netlist};
pub use path_model::PathMoments;
