//! Array-multiplier netlist generator.
//!
//! Diet SODA's functional units pair an ALU with a 16-bit multiplier, and
//! the FU multiplier path is the deepest logic in the lane — exactly the
//! kind of critical path the 50-FO4 chain emulates. [`array_multiplier`]
//! builds the classic carry-save array: an AND-gate partial-product plane
//! followed by rows of full adders, with a ripple final stage. Its STA
//! distribution under variation complements the adder studies.

use crate::gate::GateKind;
use crate::netlist::{GateId, Netlist};

/// Add a full-adder cell (sum XOR-XOR, carry as AOI21-class majority) and
/// return `(sum, carry)`.
fn full_adder(n: &mut Netlist, a: GateId, b: GateId, cin: GateId) -> (GateId, GateId) {
    let p = n.add_gate(GateKind::Xor2, &[a, b]);
    let sum = n.add_gate(GateKind::Xor2, &[p, cin]);
    let g = n.add_gate(GateKind::And2, &[a, b]);
    let carry = n.add_gate(GateKind::Aoi21, &[g, p, cin]);
    (sum, carry)
}

/// Build a `width × width` carry-save array multiplier netlist.
///
/// Structure: `width²` AND partial products, `width − 1` carry-save rows
/// of full adders, and a final ripple row; the product is `2·width` bits.
/// Critical path depth grows linearly in `width` (≈`2·width` cells),
/// making the 16-bit instance comparable in FO4 depth to the paper's
/// 50-stage critical-path proxy.
///
/// # Panics
///
/// Panics if `width < 2`.
///
/// # Example
///
/// ```
/// let m = ntv_circuit::multiplier::array_multiplier(8);
/// assert_eq!(m.outputs().len(), 16);
/// ```
#[must_use]
pub fn array_multiplier(width: usize) -> Netlist {
    assert!(width >= 2, "multiplier width must be at least 2 bits");
    let mut n = Netlist::new(format!("array-multiplier-{width}"));

    let a: Vec<_> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
    // A constant-zero source for the first carry-save row.
    let zero = n.add_input("zero");

    // Partial products pp[i][j] = a[j] & b[i].
    let pp: Vec<Vec<GateId>> = (0..width)
        .map(|i| {
            (0..width)
                .map(|j| n.add_gate(GateKind::And2, &[a[j], b[i]]))
                .collect()
        })
        .collect();

    // Carry-save accumulation of the rows.
    // Running sum/carry vectors, aligned to the current row's weight.
    let mut sums: Vec<GateId> = pp[0].clone();
    let mut carries: Vec<GateId> = vec![zero; width];
    let mut product: Vec<GateId> = Vec::with_capacity(2 * width);

    for pp_row in pp.iter().skip(1) {
        product.push(sums[0]); // the lowest live bit is final
        let mut new_sums = Vec::with_capacity(width);
        let mut new_carries = Vec::with_capacity(width);
        for col in 0..width {
            let s_in = if col + 1 < width { sums[col + 1] } else { zero };
            let (s, c) = full_adder(&mut n, pp_row[col], s_in, carries[col]);
            new_sums.push(s);
            new_carries.push(c);
        }
        sums = new_sums;
        carries = new_carries;
    }

    // Final ripple stage merges the remaining sum and carry vectors.
    product.push(sums[0]);
    let mut carry = carries[0];
    for col in 1..width {
        let (s, c) = full_adder(&mut n, sums[col], carries[col], carry);
        product.push(s);
        carry = c;
    }
    product.push(carry);

    for (i, &bit) in product.iter().enumerate() {
        n.mark_output(bit, format!("p{i}"));
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adder::kogge_stone;
    use crate::sta;
    use ntv_device::{TechModel, TechNode};
    use ntv_mc::{StreamRng, Summary};
    use ntv_units::Volts;

    #[test]
    fn product_width_and_io() {
        let m = array_multiplier(16);
        assert_eq!(m.outputs().len(), 32);
        assert_eq!(m.inputs().len(), 33); // a, b, zero
                                          // n^2 partial products plus adder cells.
        assert!(m.gate_count() > 16 * 16);
    }

    #[test]
    fn depth_grows_linearly() {
        let d4 = array_multiplier(4).logic_depth();
        let d8 = array_multiplier(8).logic_depth();
        let d16 = array_multiplier(16).logic_depth();
        assert!(d8 > d4 + 3);
        assert!(d16 > d8 + 7);
    }

    #[test]
    fn multiplier_is_the_lane_critical_path() {
        // At equal operand width, the multiplier's critical path dwarfs the
        // prefix adder's — justifying the paper's premise that FU paths set
        // the lane timing.
        let tech = TechModel::new(TechNode::Gp90);
        let mul = array_multiplier(16);
        let add = kogge_stone(16);
        let dm =
            sta::analyze(&mul, &sta::nominal_delays(&mul, &tech, Volts(1.0))).critical_delay_ps;
        let da =
            sta::analyze(&add, &sta::nominal_delays(&add, &tech, Volts(1.0))).critical_delay_ps;
        assert!(dm > 2.0 * da, "mul {dm} vs add {da}");
        // And its nominal depth is in the ballpark of the 50-FO4 proxy.
        let fo4 = tech.fo4_delay_ps(Volts(1.0));
        let depth_fo4 = dm / fo4;
        assert!((25.0..120.0).contains(&depth_fo4), "depth {depth_fo4} FO4");
    }

    #[test]
    fn multiplier_variation_sits_in_the_chain_band() {
        let tech = TechModel::new(TechNode::Gp90);
        let m = array_multiplier(16);
        let mut rng = StreamRng::from_seed(3);
        let s: Summary = sta::mc_critical_delays(&m, &tech, Volts(0.5), 100, &mut rng)
            .into_iter()
            .collect();
        let v = s.three_sigma_over_mu();
        // Long chains with reconvergence: the same ~5-15% band as the
        // chain-of-50 and the prefix adders at 0.5 V.
        assert!((0.03..0.18).contains(&v), "3sigma/mu {v}");
    }
}
