//! Adder netlist generators.
//!
//! §3.1 of the paper validates the chain-averaging claim against a real
//! datapath circuit: Drego et al. measured only ≈8.4 % delay variation at
//! 0.5 V for a **64-bit Kogge–Stone adder** — close to the chain-of-50
//! figure. We rebuild that comparison: [`kogge_stone`] emits a full
//! propagate/generate prefix network, [`ripple_carry`] the linear-depth
//! baseline, and the STA Monte Carlo in [`crate::sta`] produces their
//! critical-path distributions.

use crate::gate::GateKind;
use crate::netlist::Netlist;

/// Build a `width`-bit Kogge–Stone adder netlist.
///
/// Structure: per-bit propagate (XOR2) and generate (AND2) cells, ⌈log₂ w⌉
/// levels of prefix cells (each an AOI21 "generate" merge plus an AND2
/// "propagate" merge), and a final sum XOR per bit. The logic function is
/// represented structurally for timing purposes (every cell contributes its
/// logical-effort delay); functional simulation is not required for the
/// variation study.
///
/// # Panics
///
/// Panics if `width < 2`.
///
/// # Example
///
/// ```
/// let adder = ntv_circuit::adder::kogge_stone(64);
/// // log2(64) = 6 prefix levels + PG + sum = depth 8.
/// assert_eq!(adder.logic_depth(), 8);
/// ```
#[must_use]
pub fn kogge_stone(width: usize) -> Netlist {
    assert!(width >= 2, "adder width must be at least 2 bits");
    let mut n = Netlist::new(format!("kogge-stone-{width}"));

    let a: Vec<_> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();

    // Level 0: bitwise propagate p = a^b, generate g = a&b.
    let mut p: Vec<_> = (0..width)
        .map(|i| n.add_gate(GateKind::Xor2, &[a[i], b[i]]))
        .collect();
    let mut g: Vec<_> = (0..width)
        .map(|i| n.add_gate(GateKind::And2, &[a[i], b[i]]))
        .collect();
    let sum_p = p.clone();

    // Kogge-Stone prefix tree: at level l, combine with the node 2^l back.
    let mut span = 1;
    while span < width {
        let mut new_p = p.clone();
        let mut new_g = g.clone();
        for i in span..width {
            // g' = g | (p & g_prev): an AOI21-class cell.
            new_g[i] = n.add_gate(GateKind::Aoi21, &[g[i], p[i], g[i - span]]);
            // p' = p & p_prev.
            new_p[i] = n.add_gate(GateKind::And2, &[p[i], p[i - span]]);
        }
        p = new_p;
        g = new_g;
        span *= 2;
    }

    // Sum bits: s0 = p0; s_i = p_i ^ c_{i-1} with c_{i-1} = g[i-1] (prefix).
    n.mark_output(sum_p[0], "s0");
    for i in 1..width {
        let s = n.add_gate(GateKind::Xor2, &[sum_p[i], g[i - 1]]);
        n.mark_output(s, format!("s{i}"));
    }
    // ntv:allow(panic-path): `g` holds `width` carries and width >= 2 is asserted on entry
    n.mark_output(g[width - 1], "cout");
    n
}

/// Build a `width`-bit ripple-carry adder netlist (linear-depth baseline).
///
/// Per-bit full adder: sum = (a^b)^cin (two XOR2), carry = majority
/// realized as AOI21 over (a&b, a^b, cin).
///
/// # Panics
///
/// Panics if `width < 2`.
#[must_use]
pub fn ripple_carry(width: usize) -> Netlist {
    assert!(width >= 2, "adder width must be at least 2 bits");
    let mut n = Netlist::new(format!("ripple-carry-{width}"));

    let a: Vec<_> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();
    let cin = n.add_input("cin");

    let mut carry = cin;
    for i in 0..width {
        let p = n.add_gate(GateKind::Xor2, &[a[i], b[i]]);
        let gbit = n.add_gate(GateKind::And2, &[a[i], b[i]]);
        let s = n.add_gate(GateKind::Xor2, &[p, carry]);
        n.mark_output(s, format!("s{i}"));
        carry = n.add_gate(GateKind::Aoi21, &[gbit, p, carry]);
    }
    n.mark_output(carry, "cout");
    n
}

/// Build a `width`-bit Brent–Kung adder netlist.
///
/// The Brent–Kung prefix tree trades depth for wiring: `2·log₂w − 1` prefix
/// levels (vs Kogge–Stone's `log₂w`) but only `~2w` prefix cells (vs
/// `~w·log₂w`). Under variation, its longer critical path averages more
/// random per-gate variation (the chain effect of Fig 1) at the cost of a
/// slower nominal delay — a trade-off the STA Monte Carlo can quantify.
///
/// # Panics
///
/// Panics if `width` is not a power of two or is less than 2.
#[must_use]
pub fn brent_kung(width: usize) -> Netlist {
    assert!(
        width >= 2 && width.is_power_of_two(),
        "width must be a power of two >= 2"
    );
    let mut n = Netlist::new(format!("brent-kung-{width}"));

    let a: Vec<_> = (0..width).map(|i| n.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..width).map(|i| n.add_input(format!("b{i}"))).collect();

    let p: Vec<_> = (0..width)
        .map(|i| n.add_gate(GateKind::Xor2, &[a[i], b[i]]))
        .collect();
    let mut g: Vec<_> = (0..width)
        .map(|i| n.add_gate(GateKind::And2, &[a[i], b[i]]))
        .collect();
    let mut pp = p.clone();
    let sum_p = p;

    // Up-sweep: combine at strides 1, 2, 4, ...
    let mut stride = 1;
    while stride < width {
        let mut i = 2 * stride - 1;
        while i < width {
            g[i] = n.add_gate(GateKind::Aoi21, &[g[i], pp[i], g[i - stride]]);
            pp[i] = n.add_gate(GateKind::And2, &[pp[i], pp[i - stride]]);
            i += 2 * stride;
        }
        stride *= 2;
    }
    // Down-sweep: fill in the intermediate prefixes.
    stride = width / 4;
    while stride >= 1 {
        let mut i = 3 * stride - 1;
        while i < width {
            g[i] = n.add_gate(GateKind::Aoi21, &[g[i], pp[i], g[i - stride]]);
            pp[i] = n.add_gate(GateKind::And2, &[pp[i], pp[i - stride]]);
            i += 2 * stride;
        }
        stride /= 2;
    }

    n.mark_output(sum_p[0], "s0");
    for i in 1..width {
        let s = n.add_gate(GateKind::Xor2, &[sum_p[i], g[i - 1]]);
        n.mark_output(s, format!("s{i}"));
    }
    // ntv:allow(panic-path): `g` holds `width` carries and width >= 2 is asserted on entry
    n.mark_output(g[width - 1], "cout");
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sta;
    use ntv_device::{TechModel, TechNode};
    use ntv_mc::{StreamRng, Summary};
    use ntv_units::Volts;

    #[test]
    fn kogge_stone_depth_is_logarithmic() {
        assert_eq!(kogge_stone(8).logic_depth(), 5); // PG + 3 prefix + sum
        assert_eq!(kogge_stone(16).logic_depth(), 6);
        assert_eq!(kogge_stone(64).logic_depth(), 8);
    }

    #[test]
    fn ripple_carry_depth_is_linear() {
        let d8 = ripple_carry(8).logic_depth();
        let d16 = ripple_carry(16).logic_depth();
        assert!(d16 > d8 + 6, "d8={d8} d16={d16}");
    }

    #[test]
    fn kogge_stone_gate_count_is_n_log_n() {
        let n64 = kogge_stone(64).gate_count();
        // 2n PG + n-1 sum + prefix cells 2*sum_{l}(n - 2^l) ~ 2(n log n - n + 1)
        assert!(n64 > 700 && n64 < 1100, "gate count {n64}");
    }

    #[test]
    fn io_counts() {
        let ks = kogge_stone(16);
        assert_eq!(ks.inputs().len(), 32);
        assert_eq!(ks.outputs().len(), 17); // 16 sums + cout
        let rc = ripple_carry(16);
        assert_eq!(rc.inputs().len(), 33); // + cin
        assert_eq!(rc.outputs().len(), 17);
    }

    #[test]
    fn kogge_stone_is_faster_than_ripple_at_nominal() {
        let tech = TechModel::new(TechNode::Gp90);
        let ks = kogge_stone(32);
        let rc = ripple_carry(32);
        let dk = sta::analyze(&ks, &sta::nominal_delays(&ks, &tech, Volts(1.0))).critical_delay_ps;
        let dr = sta::analyze(&rc, &sta::nominal_delays(&rc, &tech, Volts(1.0))).critical_delay_ps;
        assert!(dk < 0.5 * dr, "KS {dk} vs RC {dr}");
    }

    #[test]
    fn brent_kung_is_deeper_but_smaller_than_kogge_stone() {
        let ks = kogge_stone(64);
        let bk = brent_kung(64);
        assert!(
            bk.logic_depth() > ks.logic_depth(),
            "{} vs {}",
            bk.logic_depth(),
            ks.logic_depth()
        );
        assert!(
            bk.gate_count() < ks.gate_count(),
            "{} vs {}",
            bk.gate_count(),
            ks.gate_count()
        );
        assert_eq!(bk.outputs().len(), 65);
    }

    #[test]
    fn brent_kung_nominal_delay_between_ks_and_ripple() {
        let tech = TechModel::new(TechNode::Gp90);
        let d = |nl: &crate::netlist::Netlist| {
            sta::analyze(nl, &sta::nominal_delays(nl, &tech, Volts(1.0))).critical_delay_ps
        };
        let ks = d(&kogge_stone(32));
        let bk = d(&brent_kung(32));
        let rc = d(&ripple_carry(32));
        assert!(ks < bk && bk < rc, "ks {ks} bk {bk} rc {rc}");
    }

    #[test]
    fn prefix_topologies_sit_in_the_same_variation_band() {
        // Two opposing effects meet in a prefix adder: longer chains damp
        // per-gate variation (Fig 1's averaging), while many reconvergent
        // near-critical paths tighten the max statistics. Kogge-Stone has
        // far more parallel paths, so despite its shorter chains its
        // relative spread comes out slightly *below* Brent-Kung's. Both
        // stay in the chain-of-50 band the paper leans on.
        let tech = TechModel::new(TechNode::Gp90);
        let mut rng = StreamRng::from_seed(41);
        let mut cv = |nl: &crate::netlist::Netlist| {
            let s: Summary = sta::mc_critical_delays(nl, &tech, Volts(0.5), 120, &mut rng)
                .into_iter()
                .collect();
            s.three_sigma_over_mu()
        };
        let ks = cv(&kogge_stone(32));
        let bk = cv(&brent_kung(32));
        assert!(
            ks < bk,
            "reconvergence should tighten KS below BK: ks {ks} bk {bk}"
        );
        assert!(bk < 1.8 * ks, "same band: bk {bk} vs ks {ks}");
        assert!((0.04..0.20).contains(&ks) && (0.04..0.20).contains(&bk));
    }

    #[test]
    fn kogge_stone_variation_matches_drego_order_of_magnitude() {
        // Paper cites ~8.4% (3 sigma/mu) at 0.5 V for a 64-bit Kogge-Stone.
        // Accept the right order: between 4% and 20%.
        let tech = TechModel::new(TechNode::Gp90);
        let ks = kogge_stone(64);
        let mut rng = StreamRng::from_seed(12);
        let s: Summary = sta::mc_critical_delays(&ks, &tech, Volts(0.5), 150, &mut rng)
            .into_iter()
            .collect();
        let v = s.three_sigma_over_mu();
        assert!(v > 0.04 && v < 0.20, "KS 3sigma/mu at 0.5V: {v}");
    }
}
